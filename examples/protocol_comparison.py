#!/usr/bin/env python
"""Protocol shoot-out: Iso-Map vs the four baselines on one field.

Runs every protocol the paper compares (Table 1 / Figs. 14-16) over the
harbor bathymetry at density 1 and prints the full cost/fidelity matrix:
delivered units, traffic, per-node computation, per-node energy, and
mapping accuracy.

Run:  python examples/protocol_comparison.py
"""

from repro.baselines import (
    DataSuppressionProtocol,
    EScanProtocol,
    INLRProtocol,
    IsolineAggregationProtocol,
    TinyDBProtocol,
)
from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.energy import energy_from_costs
from repro.field import make_harbor_field
from repro.field.harbor import DEFAULT_ISOLEVELS
from repro.metrics import mapping_accuracy
from repro.network import SensorNetwork

N_NODES = 2500


def main() -> None:
    field = make_harbor_field()
    levels = list(DEFAULT_ISOLEVELS)
    # Iso-Map works on the random deployment; the grid-requiring baselines
    # (Section 4.3) get their native grid.
    random_net = SensorNetwork.random_deploy(field, N_NODES, radio_range=1.5, seed=1)
    grid_net = SensorNetwork.grid_deploy(field, N_NODES, radio_range=1.5, seed=1)

    rows = []

    query = ContourQuery(6.0, 12.0, 2.0)
    iso = IsoMapProtocol(query, FilterConfig(30.0, 4.0)).run(random_net)
    rows.append(
        (
            "iso-map",
            "random",
            len(iso.delivered_reports),
            iso.costs,
            mapping_accuracy(field, iso.contour_map, levels),
        )
    )

    for proto, net in (
        (TinyDBProtocol(levels), grid_net),
        (INLRProtocol(levels), grid_net),
        (EScanProtocol(levels), random_net),
        (DataSuppressionProtocol(levels), grid_net),
        (IsolineAggregationProtocol(query), random_net),
    ):
        run = proto.run(net)
        rows.append(
            (
                run.name,
                "grid" if net is grid_net else "random",
                run.reports_delivered,
                run.costs,
                mapping_accuracy(field, run.band_map, levels),
            )
        )

    header = (
        f"{'protocol':12s} {'deploy':7s} {'delivered':>9s} {'traffic KB':>10s} "
        f"{'ops/node':>9s} {'energy mJ':>9s} {'accuracy':>8s}"
    )
    print(f"harbor field, n = {N_NODES}, density 1, radio range 1.5")
    print(header)
    print("-" * len(header))
    for name, deploy, delivered, costs, acc in rows:
        energy = energy_from_costs(costs)
        print(
            f"{name:12s} {deploy:7s} {delivered:9d} "
            f"{costs.total_traffic_kb():10.1f} "
            f"{costs.per_node_ops_mean():9.1f} "
            f"{energy.per_node_mean_mj():9.3f} "
            f"{acc:8.1%}"
        )
    print(
        "\nIso-Map delivers comparable fidelity to the full-collection "
        "reference at a fraction of the traffic and energy -- the paper's "
        "headline result."
    )


if __name__ == "__main__":
    main()
