#!/usr/bin/env python
"""Quickstart: map the harbor bathymetry with Iso-Map.

Builds the paper's density-1 operating point -- 2500 sensors over the
50 x 50 unit Huanghua-Harbor stand-in -- runs one Iso-Map epoch and
prints the true isobath map next to the reconstruction, plus the cost
summary that motivates the protocol.

Run:  python examples/quickstart.py
"""

from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.energy import energy_from_costs
from repro.field import make_harbor_field
from repro.field.contours import classify_raster
from repro.field.harbor import DEFAULT_ISOLEVELS
from repro.metrics import mapping_accuracy
from repro.network import SensorNetwork
from repro.viz import render_raster, side_by_side


def main() -> None:
    field = make_harbor_field()
    network = SensorNetwork.random_deploy(field, n=2500, radio_range=1.5, seed=1)
    print(
        f"deployed {network.n_nodes} sensors | "
        f"average degree {network.average_degree():.1f} | "
        f"network diameter {network.diameter_hops} hops"
    )

    query = ContourQuery(value_lo=6.0, value_hi=12.0, granularity=2.0)
    protocol = IsoMapProtocol(query, FilterConfig(30.0, 4.0))
    result = protocol.run(network)

    levels = list(DEFAULT_ISOLEVELS)
    truth = render_raster(classify_raster(field, levels, 64, 28))
    estimate = render_raster(result.contour_map.classify_raster(64, 28))
    print()
    print(side_by_side(truth, estimate, titles=("TRUE ISOBATH MAP", "ISO-MAP RECONSTRUCTION")))

    accuracy = mapping_accuracy(field, result.contour_map, levels)
    energy = energy_from_costs(result.costs)
    print()
    print(f"isoline nodes self-appointed : {len(result.detection.isoline_nodes)}")
    print(f"reports delivered to sink    : {len(result.delivered_reports)} "
          f"(after dropping {result.dropped_by_filter} in-network)")
    print(f"total traffic                : {result.costs.total_traffic_kb():.1f} KB")
    print(f"mapping accuracy             : {accuracy:.1%}")
    print(f"mean per-node energy         : {energy.per_node_mean_mj():.3f} mJ")


if __name__ == "__main__":
    main()
