#!/usr/bin/env python
"""Serving the harbor map: snapshots, delta streams, late joiners.

The harbor network stands watch; this example puts a service in front
of it.  A `repro.serving.MapService` runs one standing contour query as
a long-lived session, advancing epochs over a tide-like field drift.
Clients get the map two ways:

- a *snapshot* request returns the full wire-encoded map at the latest
  epoch;
- a *subscription* streams per-epoch deltas -- a client that folds them
  with `DeltaReplayer` holds, at every epoch, byte-for-byte the same
  payload a snapshot would return (checked live below, and pinned by
  tests/serving/).

A second subscriber joins mid-stream: the session replays the epochs it
missed before handing it live updates.

Run:  python examples/serving_demo.py
      python examples/serving_demo.py --nodes 300 --epochs 4   # quick
"""

import argparse
import asyncio

from repro.serving import DeltaReplayer, MapService, SessionConfig


def harbor_config(nodes: int, seed: int) -> SessionConfig:
    return SessionConfig(
        query_id="harbor",
        n_nodes=nodes,
        seed=seed,
        field="harbor",
        scenario="tide",
        value_lo=6.0,
        value_hi=12.0,
        granularity=2.0,
        epsilon_fraction=0.05,
        radio_range=1.5,
    )


async def demo(nodes: int, epochs: int, seed: int) -> None:
    config = harbor_config(nodes, seed)
    async with MapService([config]) as service:
        session = service.session("harbor")
        replayer = DeltaReplayer()
        sub = service.subscribe("harbor", since_epoch=0)

        print(f"{'epoch':>5s} {'delta B':>8s} {'snapshot B':>10s} "
              f"{'records':>7s} {'replay==snapshot':>16s}")
        join_at = max(2, epochs // 2)
        late = None
        for epoch in range(1, epochs + 1):
            await session.advance()
            message = await sub.__anext__()
            replayer.apply(message)
            snapshot = service.snapshot("harbor")
            ok = replayer.render() == snapshot.payload
            print(f"{epoch:>5d} {len(message.payload):>8d} "
                  f"{len(snapshot.payload):>10d} {replayer.record_count:>7d} "
                  f"{'OK' if ok else 'MISMATCH':>16s}")
            if epoch == join_at:
                late = service.subscribe("harbor", since_epoch=0)

        if late is not None:
            catchup = DeltaReplayer()
            while catchup.epoch < replayer.epoch:
                catchup.apply(await late.__anext__())
            same = catchup.render() == replayer.render()
            print(f"\nlate joiner (joined after epoch {join_at}) replayed "
                  f"{catchup.epoch} epochs: "
                  f"{'identical map' if same else 'MISMATCH'}")
            late.close()
        sub.close()


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--nodes", type=int, default=2500)
    ap.add_argument("--epochs", type=int, default=8)
    ap.add_argument("--seed", type=int, default=11)
    args = ap.parse_args()
    asyncio.run(demo(args.nodes, args.epochs, args.seed))


if __name__ == "__main__":
    main()
