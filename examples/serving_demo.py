#!/usr/bin/env python
"""Serving the harbor map: snapshots, delta streams, late joiners.

The harbor network stands watch; this example puts a service in front
of it.  A `repro.serving.MapService` runs one standing contour query as
a long-lived session, advancing epochs over a tide-like field drift.
Clients get the map two ways:

- a *snapshot* request returns the full wire-encoded map at the latest
  epoch;
- a *subscription* streams per-epoch deltas -- a client that folds them
  with `DeltaReplayer` holds, at every epoch, byte-for-byte the same
  payload a snapshot would return (checked live below, and pinned by
  tests/serving/).

A second subscriber joins mid-stream: the session replays the epochs it
missed before handing it live updates.

With ``--prediction-tolerance`` the session's monitor runs the
model-predictive suppressor: sources whose drift the sink's mirrored
predictor already dead-reckons within tolerance skip their reports, the
served deltas are tagged ``DELTA_PREDICTED``, and the per-epoch line
shows how many cached records were extrapolated rather than delivered.
The replay == snapshot check holds unchanged -- extrapolation happens
identically on both sides of the wire.

Run:  python examples/serving_demo.py
      python examples/serving_demo.py --nodes 300 --epochs 4   # quick
      python examples/serving_demo.py --scenario front --prediction-tolerance 1.1
"""

import argparse
import asyncio

from repro.serving import DeltaReplayer, MapService, SessionConfig


def harbor_config(
    nodes: int,
    seed: int,
    scenario: str = "tide",
    prediction_tolerance=None,
    prediction_heartbeat: int = 8,
) -> SessionConfig:
    return SessionConfig(
        query_id="harbor",
        n_nodes=nodes,
        seed=seed,
        field="harbor",
        scenario=scenario,
        value_lo=6.0,
        value_hi=12.0,
        granularity=2.0,
        epsilon_fraction=0.05,
        radio_range=1.5,
        prediction_tolerance=prediction_tolerance,
        prediction_heartbeat=prediction_heartbeat,
    )


async def demo(config: SessionConfig, epochs: int) -> None:
    async with MapService([config]) as service:
        session = service.session("harbor")
        replayer = DeltaReplayer()
        sub = service.subscribe("harbor", since_epoch=0)

        predicting = session.prediction_enabled
        extra = f" {'predicted':>9s}" if predicting else ""
        print(f"{'epoch':>5s} {'kind':>6s} {'delta B':>8s} "
              f"{'snapshot B':>10s} {'records':>7s}{extra} "
              f"{'replay==snapshot':>16s}")
        join_at = max(2, epochs // 2)
        late = None
        for epoch in range(1, epochs + 1):
            stats = await session.advance()
            message = await sub.__anext__()
            replayer.apply(message)
            snapshot = service.snapshot("harbor")
            ok = replayer.render() == snapshot.payload
            kind = "PDELTA" if message.predicted else "DELTA"
            extra = (
                f" {stats.get('predicted', 0):>9d}" if predicting else ""
            )
            print(f"{epoch:>5d} {kind:>6s} {len(message.payload):>8d} "
                  f"{len(snapshot.payload):>10d} {replayer.record_count:>7d}"
                  f"{extra} {'OK' if ok else 'MISMATCH':>16s}")
            if epoch == join_at:
                late = service.subscribe("harbor", since_epoch=0)

        if late is not None:
            catchup = DeltaReplayer()
            while catchup.epoch < replayer.epoch:
                catchup.apply(await late.__anext__())
            same = catchup.render() == replayer.render()
            print(f"\nlate joiner (joined after epoch {join_at}) replayed "
                  f"{catchup.epoch} epochs: "
                  f"{'identical map' if same else 'MISMATCH'}")
            late.close()
        sub.close()


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--nodes", type=int, default=2500)
    ap.add_argument("--epochs", type=int, default=8)
    ap.add_argument("--seed", type=int, default=11)
    ap.add_argument("--scenario", default="tide",
                    choices=("steady", "tide", "storm", "pulse", "front"))
    ap.add_argument("--prediction-tolerance", type=float, default=None,
                    help="enable model-predictive suppression at this "
                    "position tolerance (field units)")
    ap.add_argument("--prediction-heartbeat", type=int, default=8,
                    help="staleness bound: max consecutive suppressed "
                    "epochs per track")
    args = ap.parse_args()
    config = harbor_config(
        args.nodes,
        args.seed,
        scenario=args.scenario,
        prediction_tolerance=args.prediction_tolerance,
        prediction_heartbeat=args.prediction_heartbeat,
    )
    asyncio.run(demo(config, args.epochs))


if __name__ == "__main__":
    main()
