#!/usr/bin/env python
"""Continuous monitoring: a week of epochs at the harbor.

The harbor network doesn't map once -- it stands watch.  This example
runs the epoch-delta extension (`repro.core.continuous.ContinuousIsoMap`)
through a timeline: calm epochs, a gradually building silt deposit, a
storm spike, and the new steady state.  Per-epoch traffic is printed
against what re-running the snapshot protocol would cost, showing the
delta protocol collapsing to the churn rate whenever nothing moves.

Run:  python examples/continuous_monitoring.py
"""

from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.core.continuous import ContinuousIsoMap
from repro.field import CompositeField, GaussianBumpField, make_harbor_field
from repro.field.harbor import DEFAULT_ISOLEVELS
from repro.metrics import mapping_accuracy
from repro.network import SensorNetwork


def silted_field(base, severity):
    """The harbor field with a silt deposit of the given severity (m)."""
    if severity <= 0:
        return base
    return CompositeField(
        base.bounds,
        [base, GaussianBumpField(base.bounds, 0.0, [(-severity, (28.0, 26.0), 4.0)])],
    )


#: (label, silt severity in metres) per epoch.
TIMELINE = (
    ("calm", 0.0),
    ("calm", 0.0),
    ("silt building", 0.8),
    ("silt building", 1.6),
    ("STORM", 4.0),
    ("post-storm", 4.0),
    ("post-storm", 4.0),
)


def main() -> None:
    base = make_harbor_field()
    net = SensorNetwork.random_deploy(base, 2500, radio_range=1.5, seed=11)
    query = ContourQuery(6.0, 12.0, 2.0)
    monitor = ContinuousIsoMap(query, angle_delta_deg=10.0)
    snapshot = IsoMapProtocol(query, FilterConfig.disabled())
    levels = list(DEFAULT_ISOLEVELS)

    print(
        f"{'epoch':>5s} {'event':>14s} {'delta KB':>9s} {'snapshot KB':>11s} "
        f"{'new':>4s} {'retracted':>9s} {'suppressed':>10s} {'accuracy':>8s}"
    )
    total_delta = total_snap = 0.0
    for epoch, (label, severity) in enumerate(TIMELINE):
        field_now = silted_field(base, severity)
        net.resense(field_now)
        delta = monitor.epoch(net)
        snap = snapshot.run(net)
        acc = mapping_accuracy(field_now, delta.contour_map, levels, 60, 60)
        total_delta += delta.costs.total_traffic_kb()
        total_snap += snap.costs.total_traffic_kb()
        print(
            f"{epoch:5d} {label:>14s} {delta.costs.total_traffic_kb():9.1f} "
            f"{snap.costs.total_traffic_kb():11.1f} {len(delta.new_reports):4d} "
            f"{len(delta.retractions):9d} {delta.suppressed:10d} {acc:8.1%}"
        )
    print(
        f"\ncumulative traffic: delta {total_delta:.0f} KB vs snapshot "
        f"{total_snap:.0f} KB ({total_snap / total_delta:.1f}x saved)"
    )


if __name__ == "__main__":
    main()
