#!/usr/bin/env python
"""Harbor siltation monitoring: the paper's Section 2 scenario.

Huanghua Harbor's sea route needs 13.5 m of water for 50k-ton ships and
was cut from 9.5 m to 5.7 m by a single 2003 storm.  The deployed buoy
network continuously maps the isobaths; this example:

1. maps the harbor in normal conditions and reports which depth bands
   each ship class can use,
2. simulates a storm dumping silt onto the navigation channel,
3. re-senses and re-maps with the SAME deployment, and
4. diffs the two maps to locate the newly dangerous area -- the alarm
   the harbor administration needs instead of cruising sonar boats.

Run:  python examples/harbor_monitoring.py
"""

from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.field import CompositeField, GaussianBumpField, make_harbor_field
from repro.network import SensorNetwork
from repro.viz import render_raster, side_by_side

#: Minimum water depth (m) required per ship class (tons).
SHIP_DRAFT_REQUIREMENTS = {
    "50k-ton bulk carrier": 12.0,
    "35k-ton freighter": 10.0,
    "20k-ton coaster": 8.0,
    "5k-ton barge": 6.0,
}

#: The storm deposit: silt mounds dropped onto the channel axis.
STORM_SILT = (
    (-3.8, (28.0, 26.0), 4.0),
    (-2.5, (36.0, 31.0), 3.0),
)


def navigable_fraction(contour_map, min_depth, levels, raster=60):
    """Fraction of the monitored area with depth >= min_depth."""
    bands = contour_map.classify_raster(raster, raster)
    needed_band = sum(1 for v in levels if min_depth >= v)
    return float((bands >= needed_band).mean())


def run_epoch(network, query):
    protocol = IsoMapProtocol(query, FilterConfig(30.0, 4.0))
    return protocol.run(network)


def main() -> None:
    calm_field = make_harbor_field()
    network = SensorNetwork.random_deploy(calm_field, n=2500, radio_range=1.5, seed=7)
    query = ContourQuery(value_lo=6.0, value_hi=12.0, granularity=2.0)
    levels = query.isolevels

    print("=== calm conditions ===")
    calm = run_epoch(network, query)
    print(
        f"{len(calm.delivered_reports)} isoline reports, "
        f"{calm.costs.total_traffic_kb():.1f} KB traffic"
    )
    for ship, draft in SHIP_DRAFT_REQUIREMENTS.items():
        frac = navigable_fraction(calm.contour_map, draft, levels)
        print(f"  {ship:24s} needs {draft:4.1f} m -> {frac:6.1%} of area navigable")

    # -- the storm hits: silt buries part of the channel -----------------
    storm_field = CompositeField(
        calm_field.bounds,
        [calm_field, GaussianBumpField(calm_field.bounds, base=0.0, bumps=STORM_SILT)],
    )
    network.resense(storm_field)

    print("\n=== after the storm (same deployment, re-sensed) ===")
    storm = run_epoch(network, query)
    print(
        f"{len(storm.delivered_reports)} isoline reports, "
        f"{storm.costs.total_traffic_kb():.1f} KB traffic"
    )
    for ship, draft in SHIP_DRAFT_REQUIREMENTS.items():
        before = navigable_fraction(calm.contour_map, draft, levels)
        after = navigable_fraction(storm.contour_map, draft, levels)
        marker = "  << ALERT" if after < 0.8 * before else ""
        print(
            f"  {ship:24s} navigable {before:6.1%} -> {after:6.1%}{marker}"
        )

    print("\nisobath maps (darker = deeper):")
    before_map = render_raster(calm.contour_map.classify_raster(56, 24))
    after_map = render_raster(storm.contour_map.classify_raster(56, 24))
    print(side_by_side(before_map, after_map, titles=("BEFORE STORM", "AFTER STORM")))

    # Locate the damage: raster cells that LOST a depth band.
    lost = (
        calm.contour_map.classify_raster(56, 24)
        - storm.contour_map.classify_raster(56, 24)
    )
    shoaled = render_raster((lost >= 1).astype(int), ramp=" #")
    print("\nshoaled area (silt deposit detected by map diff):")
    print(shoaled)


if __name__ == "__main__":
    main()
