#!/usr/bin/env python
"""The network maps its own residual energy (eScan's application, done
with Iso-Map).

eScan [28] -- one of the paper's baselines -- exists to build contour
maps of the network's *residual energy* so operators can spot draining
regions.  This example closes the loop with Iso-Map itself:

1. run several contour-mapping epochs over the harbor bathymetry and
   accumulate each node's real energy spend from the cost accountant;
2. turn the per-node residual batteries into a scalar field
   (inverse-distance interpolation over the node positions);
3. run Iso-Map ON THAT FIELD -- the network charts its own energy
   hotspot, which sits around the sink where the collection tree
   funnels every report.

Run:  python examples/energy_self_map.py
"""

import numpy as np

from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.energy import energy_from_costs
from repro.field import ScatteredField, make_harbor_field
from repro.field.contours import isolevels_for
from repro.network import SensorNetwork
from repro.viz import render_band_map

#: Initial battery budget per node, in Joules (2 AA cells ~ 20 kJ; we use
#: a small budget so a handful of epochs shows structure).
BATTERY_J = 0.05

EPOCHS = 8


def main() -> None:
    field = make_harbor_field()
    network = SensorNetwork.random_deploy(field, 2500, radio_range=1.5, seed=5)
    query = ContourQuery(6.0, 12.0, 2.0)
    protocol = IsoMapProtocol(query, FilterConfig(30.0, 4.0))

    spent = np.zeros(network.n_nodes)
    for _ in range(EPOCHS):
        result = protocol.run(network)
        spent += energy_from_costs(result.costs).total_j

    residual_pct = 100.0 * np.maximum(0.0, BATTERY_J - spent) / BATTERY_J
    print(
        f"after {EPOCHS} mapping epochs: residual battery "
        f"min {residual_pct.min():.1f}% / mean {residual_pct.mean():.1f}% / "
        f"max {residual_pct.max():.1f}%"
    )
    sink = network.sink_index
    print(f"sink-adjacent funnel: node {sink} neighbourhood at "
          f"{residual_pct[[sink] + network.alive_neighbors(sink)].mean():.1f}%")

    # A single node's battery gauge is noisy (whether it happened to be
    # an isoline node or a relay is a per-epoch lottery), so nodes gossip
    # battery levels with their 1-hop neighbours and report the
    # neighbourhood average -- two gossip rounds smooth the lottery while
    # keeping the spatial structure.
    smoothed = residual_pct.copy()
    for _ in range(2):
        averaged = np.empty_like(smoothed)
        for i in range(network.n_nodes):
            clique = [i] + list(network.adjacency[i])
            averaged[i] = smoothed[clique].mean()
        smoothed = averaged

    # Residual battery is heavily skewed (most nodes near-full, drained
    # stripes along the worked isolines, a basin at the funnel), so chart
    # percentile strata: the p5 / p30 levels outline the drained regions.
    p5, p30 = np.percentile(smoothed, [5, 30])
    granularity = max(0.5, float(p30 - p5))
    levels = isolevels_for(float(p5), float(p30), granularity)

    # The network senses its OWN energy: each node's reading is the
    # gossiped battery average; the field is their interpolation.
    energy_field = ScatteredField(
        network.bounds,
        [node.position for node in network.nodes],
        list(smoothed),
    )
    energy_net = SensorNetwork(
        energy_field,
        [node.position for node in network.nodes],
        radio_range=network.radio_range,
        sink_index=network.sink_index,
    )
    # Straddle detection (the adaptive extension) instead of the fixed
    # border: the basin walls are steep in value, so the fixed epsilon
    # band would catch almost nobody on them.
    equery = ContourQuery(
        levels[0], levels[-1], granularity, detection_mode="straddle"
    )
    emap = IsoMapProtocol(equery, FilterConfig(30.0, 4.0)).run(energy_net)

    print(
        f"\nenergy self-map: {len(emap.delivered_reports)} reports, "
        f"{emap.costs.total_traffic_kb():.1f} KB"
    )
    print("residual-energy contour map (darker = fuller battery).  The light")
    print("regions are where the network spends itself: the basin around the")
    print("sink funnel, plus stripes along the worked bathymetry isolines")
    print("where isoline nodes pay for probes and reports every epoch:\n")
    print(render_band_map(emap.contour_map, nx=64, ny=26))


if __name__ == "__main__":
    main()
