#!/usr/bin/env python
"""Failure resilience: mapping quality as sensors die (Figs. 11b / 12b).

Buoys fail -- batteries drown, ropes snap.  This example sweeps the
failure ratio under both failure semantics the simulator models:

- ``sensing``: the node stops producing data but keeps forwarding
  (the paper's smooth-degradation regime), and
- ``crash``: the node disappears entirely and routing re-forms around
  the survivors (harsher: the graph fragments near the percolation
  threshold at average degree ~7).

It also contrasts the paper's epsilon remedy: a rough border region
(eps = 0.25 T) keeps more redundant isoline nodes and tolerates failures
better, at some cost in failure-free fidelity.

Run:  python examples/failure_resilience.py
"""

from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.field import make_harbor_field
from repro.field.harbor import DEFAULT_ISOLEVELS
from repro.metrics import mapping_accuracy
from repro.network import SensorNetwork

RATIOS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def run_once(network, eps):
    query = ContourQuery(6.0, 12.0, 2.0, epsilon_fraction=eps)
    return IsoMapProtocol(query, FilterConfig(30.0, 4.0)).run(network)


def main() -> None:
    field = make_harbor_field()
    levels = list(DEFAULT_ISOLEVELS)

    for mode in ("sensing", "crash"):
        print(f"=== failure mode: {mode} ===")
        print(
            f"{'failures':>8s} {'reports(e=.05)':>14s} {'acc(e=.05)':>10s} "
            f"{'reports(e=.25)':>14s} {'acc(e=.25)':>10s} {'reachable':>9s}"
        )
        for ratio in RATIOS:
            network = SensorNetwork.random_deploy(
                field, 2500, radio_range=1.5, seed=3
            )
            network.fail_random(ratio, mode=mode)
            cells = []
            for eps in (0.05, 0.25):
                result = run_once(network, eps)
                acc = mapping_accuracy(field, result.contour_map, levels)
                cells.append((len(result.delivered_reports), acc))
            print(
                f"{ratio:8.0%} {cells[0][0]:14d} {cells[0][1]:10.1%} "
                f"{cells[1][0]:14d} {cells[1][1]:10.1%} "
                f"{network.tree.reachable_count():9d}"
            )
        print()
    print(
        "Past ~40% failures the maps stop being usable (the paper's "
        "observation); the rough border region degrades more gracefully."
    )


if __name__ == "__main__":
    main()
