"""Unit tests for the experiment harness scaffolding."""

import pytest

import repro.experiments.common as common
from repro.experiments.common import (
    ExperimentResult,
    PAPER_FILTER,
    PAPER_QUERY,
    default_levels,
    harbor_network,
    radio_range_for_density,
    run_isomap,
)


class TestExperimentResult:
    def test_add_row_and_column(self):
        r = ExperimentResult("x", "t", ["a", "b"])
        r.add_row(a=1, b=2)
        r.add_row(a=3, b=4)
        assert r.column("a") == [1, 3]

    def test_missing_column_raises(self):
        r = ExperimentResult("x", "t", ["a", "b"])
        with pytest.raises(ValueError):
            r.add_row(a=1)

    def test_unknown_column_raises(self):
        r = ExperimentResult("x", "t", ["a"])
        r.add_row(a=1)
        with pytest.raises(KeyError):
            r.column("zzz")

    def test_to_table_contains_everything(self):
        r = ExperimentResult("figX", "demo", ["a"], notes="hello")
        r.add_row(a=1.23456)
        text = r.to_table()
        assert "figX" in text
        assert "demo" in text
        assert "1.235" in text
        assert "hello" in text

    def test_to_table_empty(self):
        r = ExperimentResult("figX", "demo", ["a"])
        assert "figX" in r.to_table()


class TestPaperDefaults:
    def test_paper_filter(self):
        assert PAPER_FILTER.angular_separation_deg == 30.0
        assert PAPER_FILTER.distance_separation == 4.0

    def test_paper_query(self):
        assert PAPER_QUERY.isolevels == [6.0, 8.0, 10.0, 12.0]
        assert PAPER_QUERY.epsilon == pytest.approx(0.1)

    def test_default_levels(self):
        assert default_levels() == [6.0, 8.0, 10.0, 12.0]


class TestRadioRangeForDensity:
    def test_fixed_at_or_above_density_one(self):
        assert radio_range_for_density(1.0) == 1.5
        assert radio_range_for_density(4.0) == 1.5

    def test_grows_below_density_one(self):
        assert radio_range_for_density(0.25) == pytest.approx(3.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            radio_range_for_density(0.0)


class TestHarborNetwork:
    def test_random_deployment(self):
        net = harbor_network(100, "random", seed=2)
        assert net.n_nodes == 100
        assert net.radio_range == 1.5

    def test_grid_deployment(self):
        net = harbor_network(100, "grid")
        xs = {round(node.position[0], 6) for node in net.nodes}
        assert len(xs) == 10

    def test_unknown_deployment(self):
        with pytest.raises(ValueError):
            harbor_network(10, "hexagonal")

    def test_run_isomap_defaults(self):
        net = harbor_network(400, "random", seed=3, radio_range=3.0)
        result = run_isomap(net)
        assert result.costs.reports_generated >= 0
        assert result.contour_map.levels == [6.0, 8.0, 10.0, 12.0]


class TestSkeletonCacheLru:
    @pytest.fixture(autouse=True)
    def clean_cache(self):
        common._SKELETON_CACHE.clear()
        yield
        common._SKELETON_CACHE.clear()

    def test_capacity_is_bounded(self):
        cap = common._SKELETON_CACHE_CAPACITY
        for seed in range(cap + 3):
            harbor_network(60, "random", seed=seed, reuse_topology=True)
        assert len(common._SKELETON_CACHE) == cap

    def test_evicts_least_recently_used(self):
        cap = common._SKELETON_CACHE_CAPACITY
        for seed in range(cap):
            harbor_network(60, "random", seed=seed, reuse_topology=True)
        # Touch seed 0 so seed 1 becomes the LRU victim.
        harbor_network(60, "random", seed=0, reuse_topology=True)
        harbor_network(60, "random", seed=cap, reuse_topology=True)
        seeds = {key[2] for key in common._SKELETON_CACHE}
        assert 0 in seeds and cap in seeds
        assert 1 not in seeds

    def test_hit_reuses_skeleton(self):
        a = harbor_network(60, "random", seed=9, reuse_topology=True)
        assert len(common._SKELETON_CACHE) == 1
        b = harbor_network(60, "random", seed=9, reuse_topology=True)
        assert len(common._SKELETON_CACHE) == 1
        assert b.csr is a.csr or (
            b.csr.indptr is a.csr.indptr and b.csr.indices is a.csr.indices
        )


class TestCsvExport:
    def test_basic_csv(self):
        r = ExperimentResult("figX", "demo", ["a", "b"])
        r.add_row(a=1, b=2.5)
        r.add_row(a="x,y", b='he said "hi"')
        csv = r.to_csv()
        lines = csv.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == '"x,y","he said ""hi"""'
        assert csv.endswith("\n")

    def test_empty_rows(self):
        r = ExperimentResult("figX", "demo", ["a"])
        assert r.to_csv() == "a\n"

    def test_roundtrip_with_csv_module(self):
        import csv as csv_mod
        import io

        r = ExperimentResult("figX", "demo", ["a", "b"])
        r.add_row(a=1.5, b="plain")
        r.add_row(a=2.5, b="with,comma")
        parsed = list(csv_mod.reader(io.StringIO(r.to_csv())))
        assert parsed[0] == ["a", "b"]
        assert parsed[2] == ["2.5", "with,comma"]
