"""Tests for the parallel sweep runner.

The load-bearing property is determinism: a sweep must produce
byte-identical tables at any ``jobs`` count, because each point derives
all randomness from the explicit seed in its kwargs and results come
back in submission order.  The cache must be a pure memo -- hits skip
computation, corrupt entries fall back to recomputation, and keys depend
only on (function identity, kwargs).
"""

import json
import os

import pytest

from repro.experiments.fig14_traffic import run_fig14a
from repro.experiments.runner import (
    SweepPoint,
    grid_points,
    group_by_config,
    run_sweep,
    seed_mean,
)


def square_point(x, seed):
    """Deterministic toy point function (top-level: picklable)."""
    return {"sq": float(x * x), "seed": seed}


# ----------------------------------------------------------------------
# Grid helpers
# ----------------------------------------------------------------------


def test_grid_points_is_config_major_seed_minor():
    pts = grid_points(square_point, [{"x": 1}, {"x": 2}], seeds=(7, 8))
    assert [p.kwargs for p in pts] == [
        {"x": 1, "seed": 7},
        {"x": 1, "seed": 8},
        {"x": 2, "seed": 7},
        {"x": 2, "seed": 8},
    ]
    assert all(p.fn is square_point for p in pts)


def test_group_by_config_round_trips_the_grid():
    results = [{"v": k} for k in range(6)]
    assert group_by_config(results, 3) == [
        [{"v": 0}, {"v": 1}, {"v": 2}],
        [{"v": 3}, {"v": 4}, {"v": 5}],
    ]
    with pytest.raises(ValueError):
        group_by_config(results, 4)
    with pytest.raises(ValueError):
        group_by_config(results, 0)


def test_seed_mean_matches_serial_sum_order():
    group = [{"a": 0.1}, {"a": 0.2}, {"a": 0.3}]
    # Identical arithmetic to the serial drivers: left-to-right sum / k.
    assert seed_mean(group, "a") == (0.1 + 0.2 + 0.3) / 3


def test_cache_key_depends_on_fn_and_kwargs_only():
    a = SweepPoint(square_point, {"x": 1, "seed": 7})
    b = SweepPoint(square_point, {"seed": 7, "x": 1})  # key order irrelevant
    c = SweepPoint(square_point, {"x": 2, "seed": 7})
    assert a.cache_key() == b.cache_key()
    assert a.cache_key() != c.cache_key()
    assert len(a.cache_key()) == 64


# ----------------------------------------------------------------------
# run_sweep
# ----------------------------------------------------------------------


def test_run_sweep_preserves_submission_order():
    pts = grid_points(square_point, [{"x": x} for x in (3, 1, 2)], seeds=(0,))
    assert [r["sq"] for r in run_sweep(pts)] == [9.0, 1.0, 4.0]


def test_run_sweep_rejects_bad_jobs():
    with pytest.raises(ValueError):
        run_sweep([], jobs=0)


def test_run_sweep_parallel_matches_serial_on_toy_grid():
    pts = grid_points(square_point, [{"x": x} for x in range(8)], seeds=(1, 2))
    assert run_sweep(pts, jobs=1) == run_sweep(pts, jobs=4)


def test_cache_hit_skips_computation(tmp_path):
    cache = str(tmp_path)
    pts = [SweepPoint(square_point, {"x": 5, "seed": 1})]
    first = run_sweep(pts, jobs=1, cache_dir=cache)
    assert first == [{"sq": 25.0, "seed": 1}]
    entries = [e for e in os.listdir(cache) if e.endswith(".json")]
    assert len(entries) == 1

    # Tamper with the stored result: if the second run returns the
    # tampered value, it came from the cache, not from recomputation.
    path = os.path.join(cache, entries[0])
    entry = json.load(open(path))
    assert entry["fn"].endswith("square_point")
    assert entry["kwargs"] == {"x": 5, "seed": 1}
    entry["result"]["sq"] = -1.0
    json.dump(entry, open(path, "w"))
    assert run_sweep(pts, jobs=1, cache_dir=cache) == [{"sq": -1.0, "seed": 1}]


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    cache = str(tmp_path)
    pts = [SweepPoint(square_point, {"x": 3, "seed": 1})]
    run_sweep(pts, cache_dir=cache)
    (entry,) = [e for e in os.listdir(cache) if e.endswith(".json")]
    with open(os.path.join(cache, entry), "w") as f:
        f.write("not json{")
    assert run_sweep(pts, cache_dir=cache) == [{"sq": 9.0, "seed": 1}]


def test_partial_cache_computes_only_missing_points(tmp_path):
    cache = str(tmp_path)
    warm = grid_points(square_point, [{"x": 1}], seeds=(1, 2))
    run_sweep(warm, cache_dir=cache)
    full = grid_points(square_point, [{"x": 1}, {"x": 2}], seeds=(1, 2))
    out = run_sweep(full, jobs=2, cache_dir=cache)
    assert [r["sq"] for r in out] == [1.0, 1.0, 4.0, 4.0]
    assert len(os.listdir(cache)) == 4


# ----------------------------------------------------------------------
# End-to-end determinism on a real figure sweep
# ----------------------------------------------------------------------


def test_fig14a_rows_identical_at_any_job_count():
    # The satellite claim of the PR: --jobs 1 and --jobs 4 produce the
    # exact same table rows (floats included) on a real figure sweep.
    serial = run_fig14a(sides=(15,), seeds=(1, 2), jobs=1)
    parallel = run_fig14a(sides=(15,), seeds=(1, 2), jobs=4)
    assert serial.rows == parallel.rows
    assert serial.to_csv() == parallel.to_csv()


def test_fig14a_cache_round_trip(tmp_path):
    cache = str(tmp_path)
    first = run_fig14a(sides=(15,), seeds=(1,), jobs=1, cache_dir=cache)
    again = run_fig14a(sides=(15,), seeds=(1,), jobs=1, cache_dir=cache)
    assert first.rows == again.rows
    assert len(os.listdir(cache)) == 1
