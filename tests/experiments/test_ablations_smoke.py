"""Reduced-size smoke tests for the ablation and extension experiments."""

from repro.experiments.ablations import (
    run_ablation_filtering_placement,
    run_ablation_gradient,
    run_ablation_localization,
    run_ablation_regression,
    run_ablation_regulation,
)
from repro.experiments.extensions import run_continuous_monitoring, run_lossy_links


class TestAblationSmoke:
    def test_gradient(self):
        res = run_ablation_gradient(n=2500, seeds=(1,), raster=40)
        rows = {r["directions"]: r["accuracy"] for r in res.rows}
        assert rows["reported"] > rows["random"]

    def test_filtering_placement(self):
        res = run_ablation_filtering_placement(n=2500, seeds=(1,))
        rows = {r["placement"]: r for r in res.rows}
        assert rows["in-network"]["traffic_kb"] <= rows["sink-side"]["traffic_kb"]

    def test_regulation(self):
        res = run_ablation_regulation(n=2500, seeds=(1,), grid=80)
        rows = {r["regulation"]: r for r in res.rows}
        assert rows["off"]["rules_applied"] == 0
        assert rows["on"]["hausdorff"] > 0

    def test_regression(self):
        res = run_ablation_regression(n=2500, seeds=(1,))
        rows = {r["model"]: r for r in res.rows}
        assert rows["quadratic"]["isoline_node_ops"] > rows["linear"]["isoline_node_ops"]

    def test_localization(self):
        res = run_ablation_localization(
            n=2500, seeds=(1,), position_noise=(0.0, 2.0), raster=40
        )
        rows = {r["position_noise"]: r["accuracy"] for r in res.rows}
        assert rows[2.0] < rows[0.0]


class TestExtensionSmoke:
    def test_lossy_links(self):
        res = run_lossy_links(n=2500, loss_rates=(0.0, 0.3), seeds=(1,))
        rows = {r["loss_rate"]: r for r in res.rows}
        assert rows[0.3]["delivered_arq"] > rows[0.3]["delivered_no_arq"]
        assert rows[0.0]["delivered_no_arq"] == 1.0

    def test_continuous(self):
        res = run_continuous_monitoring(n=2500, epochs=4, raster=40)
        rows = {r["epoch"]: r for r in res.rows}
        assert rows[1]["delta_reports"] == 0
        assert rows[1]["delta_kb"] < rows[1]["snapshot_kb"]
        assert rows[3]["delta_accuracy"] > 0.8

    def test_localized_isomap(self):
        from repro.experiments.extensions import run_localized_isomap

        res = run_localized_isomap(
            n=2500, anchor_fractions=(0.1, 0.4), seeds=(1,), raster=40
        )
        rows = {r["anchor_fraction"]: r for r in res.rows}
        assert rows[0.4]["loc_mean_err"] < rows[0.1]["loc_mean_err"]

    def test_epoch_latency(self):
        from repro.experiments.extensions import run_epoch_latency

        res = run_epoch_latency(sides=(15, 25), seeds=(1,))
        for row in res.rows:
            assert row["isomap_s"] < row["tinydb_s"]

    def test_isoline_agg(self):
        from repro.experiments.ablations import run_ablation_isoline_agg

        res = run_ablation_isoline_agg(n=2500, seeds=(1,), raster=40)
        rows = {r["protocol"]: r for r in res.rows}
        assert rows["iso-map"]["accuracy"] > rows["isoline-agg"]["accuracy"]

    def test_detection_mode(self):
        from repro.experiments.ablations import run_ablation_detection_mode

        res = run_ablation_detection_mode(densities=(0.16, 1.0), seeds=(1,), raster=40)
        rows = {r["density"]: r for r in res.rows}
        assert rows[0.16]["acc_straddle"] > rows[0.16]["acc_border"]

    def test_lifetime(self):
        from repro.experiments.extensions import run_network_lifetime

        res = run_network_lifetime(n=2500, seeds=(1,))
        rows = {r["protocol"]: r for r in res.rows}
        assert rows["iso-map"]["epochs_first_death"] > rows["tinydb"]["epochs_first_death"]

    def test_sink_placement(self):
        from repro.experiments.extensions import run_sink_placement

        res = run_sink_placement(n=2500, seeds=(1,))
        rows = {r["placement"]: r for r in res.rows}
        assert rows["corner"]["diameter_hops"] > rows["centre"]["diameter_hops"]
