"""Small-scale smoke tests of every experiment module.

The full-size runs live in ``benchmarks/``; these reduced versions pin
the row structure and the core qualitative claim of each figure so a
regression is caught by the ordinary test suite.
"""

import math

import pytest

from repro.experiments.fig07_gradient_error import run_fig07
from repro.experiments.fig10_maps import run_fig10
from repro.experiments.fig11_accuracy import run_fig11a, run_fig11b
from repro.experiments.fig12_hausdorff import run_fig12a, run_fig12b
from repro.experiments.fig13_filtering import run_fig09, run_fig13
from repro.experiments.fig14_traffic import run_fig14a, run_fig14b
from repro.experiments.fig15_computation import run_fig15
from repro.experiments.fig16_energy import run_fig16
from repro.experiments.table1_overheads import (
    analytical_table,
    run_table1,
    run_theorem41,
)


class TestFig07:
    def test_rows_and_shape(self):
        # n=900 on the 50x50 field is density 0.36: ranges must be larger
        # than the paper's 1.5 to keep the graph connected at this scale.
        res = run_fig07(n=900, ranges=(2.2, 3.2), seeds=(1,))
        assert res.experiment_id == "fig07"
        assert len(res.rows) == 2
        # Error falls (or at least does not explode) with degree.
        assert res.rows[1]["mean_err_deg"] <= res.rows[0]["mean_err_deg"] * 1.5


class TestFig10:
    def test_rows(self):
        res = run_fig10(densities=((1.0, 900),), seed=1)
        assert {r["protocol"] for r in res.rows} == {"iso-map", "tinydb"}
        iso = next(r for r in res.rows if r["protocol"] == "iso-map")
        tdb = next(r for r in res.rows if r["protocol"] == "tinydb")
        assert iso["reports_at_sink"] < tdb["reports_at_sink"]

    def test_rasters_collected(self):
        res = run_fig10(densities=((1.0, 400),), seed=1, raster=20, collect_rasters=True)
        assert ("truth", 0.0) in res.rasters
        assert ("iso-map", 1.0) in res.rasters
        assert res.rasters[("truth", 0.0)].shape == (20, 20)


class TestFig11:
    def test_fig11a_rows(self):
        res = run_fig11a(densities=(1.0,), seeds=(1,), raster=40)
        row = res.rows[0]
        assert row["tinydb"] > 0.8
        assert row["isomap_eps005"] > 0.8

    def test_fig11b_degrades(self):
        res = run_fig11b(failures=(0.0, 0.4), n=900, seeds=(1,), raster=40)
        assert res.rows[1]["isomap_eps005"] <= res.rows[0]["isomap_eps005"] + 0.02


class TestFig12:
    def test_fig12a_rows(self):
        res = run_fig12a(densities=(1.0,), seeds=(1,), grid=80)
        row = res.rows[0]
        assert not math.isnan(row["isomap_random"])
        assert row["isomap_random"] > 0

    def test_fig12b_rows(self):
        res = run_fig12b(failures=(0.0, 0.3), n=900, seeds=(1,), grid=80)
        assert len(res.rows) == 2


class TestFig13:
    def test_sweeps_monotone(self):
        res = run_fig13(n=900, sa_values=(0.0, 45.0), sd_values=(0.0, 6.0), seeds=(1,), raster=40)
        sa = [r for r in res.rows if r["swept"] == "sa"]
        sd = [r for r in res.rows if r["swept"] == "sd"]
        assert sa[1]["reports"] <= sa[0]["reports"]
        assert sd[1]["reports"] <= sd[0]["reports"]

    def test_fig09(self):
        res = run_fig09(n=900, raster=40)
        off, on = res.rows
        assert on["reports"] <= off["reports"]


class TestFig14:
    def test_fig14a_ordering(self):
        res = run_fig14a(sides=(15, 25), seeds=(1,))
        for row in res.rows:
            assert row["isomap_kb"] < row["tinydb_kb"]

    def test_fig14b_growth(self):
        res = run_fig14b(densities=(0.5, 2.0), side=20, seeds=(1,))
        assert res.rows[1]["tinydb_kb"] > res.rows[0]["tinydb_kb"]


class TestFig15And16:
    def test_fig15_inlr_heaviest(self):
        res = run_fig15(sides=(15, 25), seeds=(1,))
        for row in res.rows:
            assert row["inlr_ops"] > row["isomap_ops"]
            assert row["inlr_ops"] > row["tinydb_ops"]

    def test_fig16_isomap_cheapest(self):
        res = run_fig16(sides=(15, 25), seeds=(1,))
        for row in res.rows:
            assert row["isomap_mj"] < row["tinydb_mj"]
            assert row["isomap_mj"] < row["inlr_mj"]


class TestTable1:
    def test_analytical_table(self):
        assert "Iso-Map" in analytical_table()

    def test_scaling_rows(self):
        res = run_table1(sides=(15, 25), seeds=(1,))
        protocols = {r["protocol"] for r in res.rows}
        assert protocols == {"isomap", "tinydb", "suppression"}
        tdb = next(r for r in res.rows if r["protocol"] == "tinydb")
        assert tdb["fitted_exponent"] == pytest.approx(1.0, abs=0.05)

    def test_theorem41_regime(self):
        res = run_theorem41(sides=(15, 30, 50), seeds=(1,))
        assert "exponent" in res.notes
        counts = res.column("isoline_nodes")
        # Counts grow sublinearly in n: n grows ~11x, counts far less.
        assert counts[-1] < 6 * counts[0]


class TestFigFaults:
    def test_reduced_sweep_structure_and_defense_effect(self):
        from repro.experiments.fig_faults import run_fig_faults

        # Reduced scale: 600 nodes need range 2.8 on the 50x50 field to
        # stay connected (same density scaling as fig07's reduced runs).
        res = run_fig_faults(
            seeds=(1,), n=600, intensities=(0.0, 1.0), radio_range=2.8
        )
        assert res.experiment_id == "fig_faults"
        assert len(res.rows) == 2 * 2 * 4  # intensities x defenses x protocols
        by = {
            (r["intensity"], r["defenses"], r["protocol"]): r for r in res.rows
        }
        for protocol in ("iso-map", "isoline-agg", "tinydb", "inlr"):
            # Zero faults: the defense knobs change nothing at all.
            on0 = {k: v for k, v in by[(0.0, "on", protocol)].items()
                   if k != "defenses"}
            off0 = {k: v for k, v in by[(0.0, "off", protocol)].items()
                    if k != "defenses"}
            assert on0 == off0
            assert on0["retransmissions"] == 0
            # Full intensity: defended delivery dominates undefended.
            on1 = by[(1.0, "on", protocol)]
            off1 = by[(1.0, "off", protocol)]
            assert on1["delivery_rate"] >= off1["delivery_rate"]
        assert sum(by[(1.0, "on", p)]["retransmissions"]
                   for p in ("iso-map", "tinydb", "inlr")) > 0


class TestFigContinuous:
    def test_reduced_timeline_structure(self):
        from repro.experiments.fig_continuous import run_fig_continuous

        # Reduced scale: 600 nodes need range 2.8 on the 50x50 field to
        # stay connected (same density scaling as fig07's reduced runs).
        res = run_fig_continuous(
            seeds=(1,), n=600, epochs=4, radio_range=2.8, raster=40
        )
        assert res.experiment_id == "fig_continuous"
        assert len(res.rows) == 2 * 4  # workloads x epochs
        by = {(r["workload"], r["epoch"]): r for r in res.rows}

        n_levels = 4  # default_levels() on the harbor field
        for workload in ("steady_drift", "local_storm"):
            # Cold start is a full rebuild; the map is usable right away.
            first = by[(workload, 0)]
            assert first["full_rebuilds"] >= 1
            assert first["dirty_fraction"] == 1.0
            for epoch in range(4):
                row = by[(workload, epoch)]
                assert row["accuracy"] > 0.6
                # Delta traffic never exceeds the snapshot re-run.
                assert row["delta_kb"] <= row["snapshot_kb"]

        # Steady drift settles into (at least partly) incremental
        # epochs: churn is localized, so not every level falls back.
        # (At this reduced scale each level has only ~15 reports, so the
        # dirty fraction is far noisier than at n=2500.)
        for epoch in (1, 2, 3):
            row = by[("steady_drift", epoch)]
            assert row["full_rebuilds"] < n_levels
            assert row["dirty_fraction"] < 1.0

        # The storm (epoch 2 = epochs // 2) changes far more cells than
        # the calm epoch before it, and its dirty fraction trips the
        # full-rebuild fallback.
        calm = by[("local_storm", 1)]
        storm = by[("local_storm", 2)]
        assert storm["cells_recomputed"] > calm["cells_recomputed"]
        assert storm["full_rebuilds"] >= 1
        # Post-storm steady state is quiet again.
        assert by[("local_storm", 3)]["dirty_fraction"] < 1.0


class TestFigSimplify:
    def test_reduced_sweep_passthrough_and_trade(self):
        from repro.experiments.fig_simplify import run_fig_simplify

        # Reduced scale: 600 nodes need range 2.8 on the 50x50 field to
        # stay connected (same density scaling as fig07's reduced runs).
        res = run_fig_simplify(
            seeds=(1,), n=600, epochs=2, scenarios=("steady",),
            tolerances=(0.0, 1.0), radio_range=2.8,
        )
        assert res.experiment_id == "fig_simplify"
        assert len(res.rows) == 2
        zero, one = sorted(res.rows, key=lambda r: r["tolerance"])
        # Tolerance 0 is the byte-identical passthrough.
        assert zero["bytes_ratio"] == 1.0
        assert zero["hausdorff_dev"] == 0.0
        assert zero["records_kept"] == zero["records_full"]
        # A real tolerance drops records and bytes, within the guarantee.
        assert one["records_kept"] < one["records_full"]
        assert one["bytes_ratio"] > 1.0
        assert one["hausdorff_dev"] <= 1.0 + 1e-9
        # One grid cell is one field unit on the 50-raster harbor map.
        assert one["hausdorff_cells"] == pytest.approx(one["hausdorff_dev"])
