"""Tests for the command-line interface."""

import pytest

from repro.cli import _experiment_registry, build_parser, main


class TestParser:
    def test_map_defaults(self):
        args = build_parser().parse_args(["map"])
        assert args.nodes == 2500
        assert args.sa == 30.0
        assert args.sd == 4.0

    def test_experiment_requires_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_map_runs(self, capsys):
        rc = main(["map", "--nodes", "600", "--radio-range", "2.5", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reports delivered" in out
        assert "mapping accuracy" in out

    def test_map_render(self, capsys):
        rc = main(
            [
                "map", "--nodes", "600", "--radio-range", "2.5",
                "--render", "--width", "20", "--height", "8",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # The rendered raster contributes 8 extra lines.
        assert len(out.splitlines()) >= 14

    def test_theory(self, capsys):
        assert main(["theory"]) == 0
        assert "Iso-Map" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig14a" in out
        assert "theorem41" in out

    def test_unknown_experiment(self, capsys):
        rc = main(["experiment", "fig99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_fig09(self, capsys):
        rc = main(["experiment", "fig09"])
        assert rc == 0
        assert "fig09" in capsys.readouterr().out


class TestRegistry:
    def test_every_figure_registered(self):
        registry = _experiment_registry()
        for key in (
            "fig07", "fig09", "fig10", "fig11a", "fig11b", "fig12a",
            "fig12b", "fig13", "fig14a", "fig14b", "fig15", "fig16",
            "fig_continuous", "fig_faults", "fig_simplify", "table1",
            "theorem41",
        ):
            assert key in registry

    def test_ablations_and_extensions_registered(self):
        registry = _experiment_registry()
        assert "ablation_gradient" in registry
        assert "ext_continuous" in registry
        assert "ext_localization" in registry


class TestServeFlags:
    def test_simplify_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--simplify-tolerance", "0.8",
             "--simplified-subscribers", "2"]
        )
        assert args.simplify_tolerance == 0.8
        assert args.simplified_subscribers == 2
        # Off by default: the plain session is unchanged.
        defaults = build_parser().parse_args(["serve"])
        assert defaults.simplify_tolerance is None
        assert defaults.simplified_subscribers == 0

    def test_negative_tolerance_rejected(self, capsys):
        rc = main(["serve", "--simplify-tolerance", "-1.0", "--epochs", "1"])
        assert rc == 2
        assert "non-negative" in capsys.readouterr().err

    def test_simplified_subscribers_need_tolerance(self, capsys):
        rc = main(["serve", "--simplified-subscribers", "1", "--epochs", "1"])
        assert rc == 2
        assert "--simplify-tolerance" in capsys.readouterr().err
