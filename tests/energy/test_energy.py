"""Unit tests for the Mica2 energy model."""

import pytest

from repro.energy import Mica2Model, energy_from_costs
from repro.network import CostAccountant


class TestMica2Constants:
    def test_tx_energy_per_byte(self):
        m = Mica2Model()
        # 8 bits at 38.4 kbps = 208.3 us; at 42 mW that is 8.75 uJ.
        assert m.tx_joules_per_byte == pytest.approx(8.75e-6, rel=1e-3)

    def test_rx_energy_per_byte(self):
        m = Mica2Model()
        assert m.rx_joules_per_byte == pytest.approx(6.04e-6, rel=1e-2)

    def test_tx_costs_more_than_rx(self):
        m = Mica2Model()
        assert m.tx_joules_per_byte > m.rx_joules_per_byte

    def test_cpu_energy_per_instruction(self):
        m = Mica2Model()
        assert m.joules_per_instruction == pytest.approx(4.13e-9, rel=1e-2)

    def test_radio_byte_dwarfs_cpu_op(self):
        # The motivation for Iso-Map: one transmitted byte costs ~100x one
        # arithmetic operation, so traffic dominates energy.
        m = Mica2Model()
        assert m.tx_joules_per_byte > 50 * m.joules_per_op


class TestEnergyFromCosts:
    def test_linear_in_counters(self):
        acc = CostAccountant(2)
        acc.charge_tx(0, 1000)
        acc.charge_rx(1, 1000)
        acc.charge_ops(0, 10_000)
        rep = energy_from_costs(acc)
        m = Mica2Model()
        assert rep.radio_j[0] == pytest.approx(1000 * m.tx_joules_per_byte)
        assert rep.radio_j[1] == pytest.approx(1000 * m.rx_joules_per_byte)
        assert rep.cpu_j[0] == pytest.approx(10_000 * m.joules_per_op)
        assert rep.cpu_j[1] == 0.0

    def test_totals(self):
        acc = CostAccountant(3)
        acc.charge_hop(0, 1, 100)
        rep = energy_from_costs(acc)
        assert rep.network_total_j == pytest.approx(
            100 * (Mica2Model().tx_joules_per_byte + Mica2Model().rx_joules_per_byte)
        )
        assert rep.per_node_mean_j == pytest.approx(rep.network_total_j / 3)
        assert rep.per_node_max_j >= rep.per_node_mean_j

    def test_custom_model(self):
        acc = CostAccountant(1)
        acc.charge_tx(0, 1)
        cheap_radio = Mica2Model(tx_power_w=1e-6)
        rep = energy_from_costs(acc, cheap_radio)
        assert rep.radio_j[0] < 1e-9

    def test_mj_unit(self):
        acc = CostAccountant(1)
        acc.charge_tx(0, 100_000)
        rep = energy_from_costs(acc)
        assert rep.per_node_mean_mj() == pytest.approx(rep.per_node_mean_j * 1e3)
