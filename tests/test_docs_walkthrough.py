"""Executes the code blocks of docs/walkthrough.md so the document
cannot rot.

The walkthrough's snippets share one namespace (each block builds on the
previous), exactly as a reader would run them in a REPL.
"""

import pathlib
import re

WALKTHROUGH = pathlib.Path(__file__).parent.parent / "docs" / "walkthrough.md"


def _code_blocks(text: str):
    return re.findall(r"```python\n(.*?)```", text, re.DOTALL)


def test_walkthrough_blocks_execute_in_order():
    text = WALKTHROUGH.read_text()
    blocks = _code_blocks(text)
    assert len(blocks) >= 11, "the walkthrough should keep all its snippets"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"walkthrough block {i}", "exec"), namespace)
        except AssertionError as exc:  # pragma: no cover - doc rot signal
            raise AssertionError(
                f"walkthrough block {i} assertion failed: {exc}\n{block}"
            ) from exc


def test_walkthrough_mentions_tests_that_pin_it():
    text = WALKTHROUGH.read_text()
    assert "tests/core/test_reconstruction.py" in text
    # The continuous section must keep pointing at the differential
    # suite that pins the incremental sink's bit-identity contract.
    assert "tests/core/test_reconstruction_incremental.py" in text


def test_walkthrough_covers_continuous_monitoring():
    text = WALKTHROUGH.read_text()
    assert "ContinuousIsoMap" in text
    assert "SinkReconstructor" in text
