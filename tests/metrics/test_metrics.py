"""Unit tests for the evaluation metrics."""

import math

import numpy as np
import pytest

from repro.core.contour_map import build_contour_map
from repro.core.reports import IsolineReport
from repro.field import PlaneField, RadialField
from repro.geometry import BoundingBox
from repro.metrics import (
    directed_hausdorff,
    gradient_errors,
    hausdorff_distance,
    isoline_hausdorff,
    mapping_accuracy,
    raster_accuracy,
)
from repro.metrics.gradient_error import summarize_errors
from repro.metrics.hausdorff import mean_isoline_hausdorff

BOX = BoundingBox(0, 0, 10, 10)


class TestRasterAccuracy:
    def test_identical(self):
        r = np.array([[0, 1], [1, 2]])
        assert raster_accuracy(r, r) == 1.0

    def test_half(self):
        a = np.array([[0, 0], [1, 1]])
        b = np.array([[0, 1], [1, 0]])
        assert raster_accuracy(a, b) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            raster_accuracy(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_empty(self):
        with pytest.raises(ValueError):
            raster_accuracy(np.zeros((0,)), np.zeros((0,)))


class TestMappingAccuracy:
    def test_perfect_ring_map_scores_high(self):
        field = RadialField(BOX, center=(5, 5), peak=10, slope=1)
        # Build the contour map from perfectly placed reports.
        reports = []
        n = 24
        for k in range(n):
            t = 2 * math.pi * k / n
            p = (5 + 3 * math.cos(t), 5 + 3 * math.sin(t))
            reports.append(IsolineReport(7.0, p, (math.cos(t), math.sin(t)), k))
        cmap = build_contour_map(reports, [7.0], BOX)
        acc = mapping_accuracy(field, cmap, [7.0], nx=60, ny=60)
        assert acc > 0.97

    def test_empty_map_scores_low_inside(self):
        field = RadialField(BOX, center=(5, 5), peak=10, slope=1)
        cmap = build_contour_map([], [7.0], BOX, sink_value=None)
        acc = mapping_accuracy(field, cmap, [7.0], nx=40, ny=40)
        # The disc of radius 3 (area ~28 of 100) is misclassified.
        assert acc == pytest.approx(1 - math.pi * 9 / 100, abs=0.05)


class TestHausdorff:
    def test_directed_asymmetry(self):
        a = [(0, 0)]
        b = [(0, 0), (10, 0)]
        assert directed_hausdorff(a, b) == 0.0
        assert directed_hausdorff(b, a) == 10.0

    def test_symmetric(self):
        a = [(0, 0), (1, 0)]
        b = [(0, 1)]
        assert hausdorff_distance(a, b) == pytest.approx(math.sqrt(2))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            directed_hausdorff([], [(0, 0)])

    def test_identical_sets(self):
        pts = [(1, 2), (3, 4), (5, 6)]
        assert hausdorff_distance(pts, pts) == 0.0

    def test_isoline_hausdorff_perfect_circle(self):
        field = RadialField(BOX, center=(5, 5), peak=10, slope=1)
        # Estimated isoline = the exact circle, sampled coarsely.
        circle = [
            (5 + 3 * math.cos(t), 5 + 3 * math.sin(t))
            for t in np.linspace(0, 2 * math.pi, 64)
        ]
        d = isoline_hausdorff(field, 7.0, [circle], spacing=0.3, grid=120)
        assert d is not None
        assert d < 0.2

    def test_isoline_hausdorff_missing_estimate(self):
        field = RadialField(BOX, center=(5, 5), peak=10, slope=1)
        assert isoline_hausdorff(field, 7.0, []) is None

    def test_isoline_hausdorff_missing_truth(self):
        field = PlaneField(BOX, c0=0, cx=1, cy=0)
        assert isoline_hausdorff(field, 99.0, [[(0, 0), (1, 1)]]) is None

    def test_normalised(self):
        field = RadialField(BOX, center=(5, 5), peak=10, slope=1)
        circle = [
            (5 + 3 * math.cos(t), 5 + 3 * math.sin(t))
            for t in np.linspace(0, 2 * math.pi, 64)
        ]
        d = isoline_hausdorff(field, 7.0, [circle], normalize=True)
        assert d is not None
        assert d < 0.2 / BOX.diagonal * 10  # scaled down

    def test_mean_isoline_hausdorff(self):
        field = RadialField(BOX, center=(5, 5), peak=10, slope=1)

        class FakeMap:
            def isolines(self, level):
                r = 10 - level
                return [
                    [
                        (5 + r * math.cos(t), 5 + r * math.sin(t))
                        for t in np.linspace(0, 2 * math.pi, 48)
                    ]
                ]

        d = mean_isoline_hausdorff(field, FakeMap(), [6.0, 7.0])
        assert d is not None
        assert d < 0.3


class TestGradientError:
    def test_perfect_directions_zero_error(self):
        field = RadialField(BOX, center=(5, 5), peak=10, slope=1)
        reports = [
            IsolineReport(7.0, (8, 5), (1, 0), 0),  # outward at angle 0
            IsolineReport(7.0, (5, 8), (0, 1), 1),
        ]
        errs = gradient_errors(field, reports)
        assert errs == pytest.approx([0.0, 0.0], abs=1e-6)

    def test_opposite_direction_180(self):
        field = RadialField(BOX, center=(5, 5), peak=10, slope=1)
        reports = [IsolineReport(7.0, (8, 5), (-1, 0), 0)]
        errs = gradient_errors(field, reports)
        assert errs[0] == pytest.approx(180.0)

    def test_flat_spots_skipped(self):
        field = PlaneField(BOX, c0=5, cx=0, cy=0)
        reports = [IsolineReport(5.0, (5, 5), (1, 0), 0)]
        assert gradient_errors(field, reports) == []

    def test_summary(self):
        stats = summarize_errors([1.0, 2.0, 3.0, 4.0])
        assert stats.mean_deg == pytest.approx(2.5)
        assert stats.max_deg == 4.0
        assert stats.count == 4
        assert stats.p95_deg == 4.0

    def test_summary_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_errors([])
