"""Differential tests for the vectorized Hausdorff/resample pipeline.

``directed_hausdorff`` and ``hausdorff_distance`` are blocked-broadcast
NumPy kernels claimed *bit-identical* to the scalar references (min/max
reductions are order-exact; sqrt is monotone and correctly rounded) --
pinned here with ``==``, not ``approx``.  ``resample_polyline_fast``
is only tolerance-compatible (cumulative sums reassociate the arclength
addition), so it gets the spacing-scaled tolerance discipline instead.

Also holds the regression tests for the empty-handling contract:
the point-set kernels raise, and ``isoline_hausdorff`` is the single
place empties become ``None``.
"""

import math
import random

import numpy as np
import pytest

from repro.field.synthetic import RadialField
from repro.geometry import BoundingBox, polyline_length, resample_polyline
from repro.geometry.polyline import resample_polyline_fast
from repro.metrics.hausdorff import (
    _VEC_MIN_PAIRS,
    directed_hausdorff,
    directed_hausdorff_reference,
    hausdorff_distance,
    isoline_hausdorff,
    mean_isoline_hausdorff,
)


def cloud(n, seed, lo=0.0, hi=50.0):
    rng = random.Random(seed)
    return [(rng.uniform(lo, hi), rng.uniform(lo, hi)) for _ in range(n)]


class TestDirectedHausdorffDifferential:
    @pytest.mark.parametrize("na,nb", [(40, 40), (120, 50), (300, 300), (1, 500)])
    def test_bit_identical_to_reference(self, na, nb):
        a, b = cloud(na, seed=na), cloud(nb, seed=nb + 1)
        assert directed_hausdorff(a, b) == directed_hausdorff_reference(a, b)

    def test_dispatch_threshold_is_invisible(self):
        # Sizes straddling the vectorization cutover must agree exactly.
        side = int(math.isqrt(_VEC_MIN_PAIRS))
        for n in (side - 1, side, side + 1):
            a, b = cloud(n, seed=3), cloud(n, seed=4)
            assert directed_hausdorff(a, b) == directed_hausdorff_reference(a, b)

    def test_blocking_is_invisible(self, monkeypatch):
        # Force tiny blocks so one call spans many chunks; still exact.
        import repro.metrics.hausdorff as H

        a, b = cloud(400, seed=5), cloud(350, seed=6)
        want = directed_hausdorff_reference(a, b)
        monkeypatch.setattr(H, "_BLOCK_FLOATS", 512)
        assert directed_hausdorff(a, b) == want

    def test_symmetric_matches_both_directions(self):
        a, b = cloud(250, seed=7), cloud(180, seed=8)
        assert hausdorff_distance(a, b) == max(
            directed_hausdorff_reference(a, b), directed_hausdorff_reference(b, a)
        )

    def test_empty_sets_raise(self):
        with pytest.raises(ValueError):
            directed_hausdorff([], [(0, 0)])
        with pytest.raises(ValueError):
            directed_hausdorff([(0, 0)], [])
        with pytest.raises(ValueError):
            hausdorff_distance([], [])


class TestResampleDifferential:
    @pytest.mark.parametrize("seed", range(5))
    def test_fast_matches_scalar_within_spacing_tolerance(self, seed):
        rng = random.Random(seed)
        pts = []
        for k in range(80):
            x = k * 0.7
            pts.append((x, 5 * math.sin(0.4 * x) + rng.uniform(-0.3, 0.3)))
        spacing = 0.25
        ref = resample_polyline(pts, spacing)
        fast = resample_polyline_fast(pts, spacing)
        # The cumulative-length formulation may gain/lose one sample at
        # the very end; every shared sample agrees to well under the
        # spacing (the metric's resolution).
        assert abs(len(ref) - len(fast)) <= 1
        m = min(len(ref), len(fast))
        assert np.allclose(np.asarray(ref[:m]), np.asarray(fast[:m]), atol=1e-6)
        assert fast[0] == ref[0]
        # Endpoints are preserved by both paths.
        assert math.dist(fast[-1], pts[-1]) <= spacing + 1e-9

    def test_degenerate_inputs_match(self):
        assert resample_polyline_fast([], 1.0) == resample_polyline([], 1.0)
        assert resample_polyline_fast([(2, 3)], 1.0) == resample_polyline([(2, 3)], 1.0)
        two = [(0.0, 0.0), (1.0, 0.0)]
        assert resample_polyline_fast(two, 10.0) == resample_polyline(two, 10.0)

    def test_fast_sample_spacing_property(self):
        pts = [(0.0, 0.0), (3.0, 4.0), (6.0, 0.0), (10.0, 0.0)]
        fast = resample_polyline_fast(pts, 0.5)
        for i in range(len(fast) - 1):
            assert polyline_length(fast[i : i + 2]) <= 0.5 + 1e-6


class TestEmptyHandlingContract:
    """``isoline_hausdorff`` absorbs empties into ``None`` -- the protocol
    may legitimately deliver no isoline for a level, and that must never
    surface as the point-set kernels' ``ValueError``."""

    # f = 10 - |p - (25, 25)|: the isoline at level 5 is the radius-5
    # circle, and no isoline exists far above the peak.
    FIELD = RadialField(BoundingBox(0, 0, 50, 50), center=(25.0, 25.0))

    def test_empty_estimate_returns_none(self):
        assert isoline_hausdorff(self.FIELD, 5.0, []) is None

    def test_degenerate_estimate_polylines_return_none(self):
        # Present but empty/degenerate polylines resample to no points.
        assert isoline_hausdorff(self.FIELD, 5.0, [[]]) is None

    def test_missing_truth_returns_none(self):
        # No isoline of the radial field at a level beyond the box.
        est = [[(25.0, 35.0), (35.0, 25.0)]]
        assert isoline_hausdorff(self.FIELD, 1e6, est) is None

    def test_mean_skips_empty_levels(self):
        class OneLevelMap:
            def isolines(self, level):
                if level == 5.0:
                    return [[(25 + 5 * math.cos(t), 25 + 5 * math.sin(t))
                             for t in np.linspace(0, 2 * math.pi, 60)]]
                return []

        got = mean_isoline_hausdorff(self.FIELD, OneLevelMap(), [5.0, 7.0])
        assert got is not None and got < 0.5

    def test_mean_with_no_comparable_level_is_none(self):
        class EmptyMap:
            def isolines(self, level):
                return []

        assert mean_isoline_hausdorff(self.FIELD, EmptyMap(), [5.0, 7.0]) is None
