"""Unit tests for the four baseline protocols."""

import pytest

from repro.baselines import (
    DataSuppressionProtocol,
    EScanProtocol,
    INLRProtocol,
    TinyDBProtocol,
)
from repro.core.wire import GRID_REPORT_BYTES, VALUE_REPORT_BYTES
from repro.field import PlaneField, RadialField
from repro.geometry import BoundingBox
from repro.metrics import mapping_accuracy
from repro.network import SensorNetwork

BOX = BoundingBox(0, 0, 20, 20)
LEVELS = [8.0, 12.0, 16.0]


def radial_grid_net(n=400, seed=0):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.grid_deploy(field, n, radio_range=2.0, seed=seed)


class TestTinyDB:
    def test_every_sensing_node_reports(self):
        net = radial_grid_net()
        run = TinyDBProtocol(LEVELS).run(net)
        assert run.reports_delivered == net.tree.reachable_count()
        assert run.costs.reports_generated == run.reports_delivered

    def test_high_accuracy_on_dense_grid(self):
        net = radial_grid_net(n=900)
        run = TinyDBProtocol(LEVELS).run(net)
        field = net.field
        assert mapping_accuracy(field, run.band_map, LEVELS, 50, 50) > 0.9

    def test_grid_vs_coordinate_addressing_bytes(self):
        net = radial_grid_net()
        grid_run = TinyDBProtocol(LEVELS, grid_addressing=True).run(net)
        coord_run = TinyDBProtocol(LEVELS, grid_addressing=False).run(net)
        ratio = (
            coord_run.costs.total_traffic_bytes()
            / grid_run.costs.total_traffic_bytes()
        )
        # Report payloads differ 6:4; dissemination bytes are shared.
        assert 1.0 < ratio <= VALUE_REPORT_BYTES / GRID_REPORT_BYTES + 0.1

    def test_sensing_failures_lose_reports(self):
        net = radial_grid_net(seed=1)
        net.fail_random(0.3, mode="sensing")
        run = TinyDBProtocol(LEVELS).run(net)
        assert run.reports_delivered < net.n_nodes * 0.75

    def test_interpolation_covers_failures(self):
        net = radial_grid_net(n=900, seed=2)
        net.fail_random(0.2, mode="sensing")
        run = TinyDBProtocol(LEVELS).run(net)
        acc = mapping_accuracy(net.field, run.band_map, LEVELS, 40, 40)
        assert acc > 0.8  # degraded but usable (Fig. 11b regime)

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            TinyDBProtocol([])


class TestINLR:
    def test_aggregation_reduces_delivered_units(self):
        net = radial_grid_net()
        run = INLRProtocol(LEVELS).run(net)
        assert run.reports_delivered < run.costs.reports_generated
        assert run.costs.reports_generated == net.tree.reachable_count()

    def test_computation_heavier_than_tinydb(self):
        net = radial_grid_net()
        inlr = INLRProtocol(LEVELS).run(net)
        tinydb = TinyDBProtocol(LEVELS).run(net)
        assert inlr.costs.per_node_ops_mean() > 3 * tinydb.costs.per_node_ops_mean()

    def test_computation_grows_with_network_size(self):
        small = radial_grid_net(n=100)
        big = radial_grid_net(n=900)
        ops_small = INLRProtocol(LEVELS).run(small).costs.per_node_ops_mean()
        ops_big = INLRProtocol(LEVELS).run(big).costs.per_node_ops_mean()
        assert ops_big > 1.5 * ops_small  # Fig. 15a: INLR grows with size

    def test_region_bands_cover_field_bands(self):
        net = radial_grid_net()
        run = INLRProtocol(LEVELS).run(net)
        raster = run.band_map.classify_raster(20, 20)
        assert raster.max() >= 1

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            INLRProtocol([])


class TestEScan:
    def test_tuples_aggregate(self):
        net = radial_grid_net()
        run = EScanProtocol(LEVELS).run(net)
        assert 0 < run.reports_delivered < net.n_nodes

    def test_value_tolerance_bounds_interval(self):
        net = radial_grid_net()
        proto = EScanProtocol(LEVELS, value_tolerance=2.0)
        run = proto.run(net)
        assert run.reports_delivered > EScanProtocol(
            LEVELS, value_tolerance=50.0
        ).run(net).reports_delivered

    def test_computation_heavy(self):
        net = radial_grid_net()
        escan = EScanProtocol(LEVELS).run(net)
        tinydb = TinyDBProtocol(LEVELS).run(net)
        assert escan.costs.total_ops() > tinydb.costs.total_ops()

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            EScanProtocol([])


class TestDataSuppression:
    def test_suppression_reduces_reports(self):
        net = radial_grid_net()
        run = DataSuppressionProtocol(LEVELS).run(net)
        assert 0 < run.reports_delivered < net.tree.reachable_count()

    def test_traffic_below_tinydb(self):
        net = radial_grid_net()
        sup = DataSuppressionProtocol(LEVELS).run(net)
        tdb = TinyDBProtocol(LEVELS, grid_addressing=False).run(net)
        assert sup.costs.total_traffic_bytes() < tdb.costs.total_traffic_bytes()

    def test_reports_still_linear_in_n(self):
        # Table 1: suppression lowers traffic by a (2-hop) degree factor
        # but stays O(n) at fixed density: growing the FIELD (not the
        # density) grows the representative count proportionally.
        small_box = BoundingBox(0, 0, 10, 10)
        big_box = BoundingBox(0, 0, 20, 20)
        f_small = RadialField(small_box, center=(5, 5), peak=20, slope=1)
        f_big = RadialField(big_box, center=(10, 10), peak=20, slope=1)
        small = SensorNetwork.grid_deploy(f_small, 225, radio_range=1.5)
        big = SensorNetwork.grid_deploy(f_big, 900, radio_range=1.5)
        r_small = DataSuppressionProtocol(LEVELS).run(small).reports_delivered
        r_big = DataSuppressionProtocol(LEVELS).run(big).reports_delivered
        assert r_big > 2.0 * r_small

    def test_similarity_threshold_controls_density(self):
        net = radial_grid_net()
        loose = DataSuppressionProtocol(LEVELS, similarity=5.0).run(net)
        tight = DataSuppressionProtocol(LEVELS, similarity=0.5).run(net)
        assert loose.reports_delivered < tight.reports_delivered

    def test_flat_field_suppresses_almost_everything(self):
        field = PlaneField(BOX, c0=10.0, cx=1e-4, cy=0)
        net = SensorNetwork.grid_deploy(field, 400, radio_range=2.0)
        run = DataSuppressionProtocol([10.0], similarity=1.0).run(net)
        assert run.reports_delivered < 0.2 * net.n_nodes

    def test_invalid_similarity(self):
        with pytest.raises(ValueError):
            DataSuppressionProtocol(LEVELS, similarity=0.0)

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            DataSuppressionProtocol([])


class TestAccuracyOrdering:
    def test_tinydb_is_fidelity_reference(self):
        # Section 5: "TinyDB ... achieves the best fidelity compared with
        # all other existing approaches."
        net = radial_grid_net(n=900, seed=3)
        field = net.field
        acc_tdb = mapping_accuracy(
            field, TinyDBProtocol(LEVELS).run(net).band_map, LEVELS, 40, 40
        )
        acc_inlr = mapping_accuracy(
            field, INLRProtocol(LEVELS).run(net).band_map, LEVELS, 40, 40
        )
        assert acc_tdb >= acc_inlr
