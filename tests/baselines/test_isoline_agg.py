"""Unit tests for the isoline-aggregation baseline [22]."""

import pytest

from repro.baselines import IsolineAggregationProtocol
from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.field import RadialField, make_harbor_field
from repro.geometry import BoundingBox
from repro.metrics import mapping_accuracy
from repro.network import SensorNetwork

BOX = BoundingBox(0, 0, 20, 20)


def radial_net(n=600, seed=1):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.random_deploy(field, n, radio_range=2.2, seed=seed)


class TestIsolineAggregation:
    def test_reports_come_from_isoline_nodes_only(self):
        import math

        net = radial_net()
        q = ContourQuery(15.0, 15.0, 2.0, epsilon_fraction=0.2)
        run = IsolineAggregationProtocol(q).run(net)
        assert 0 < run.reports_delivered < 0.2 * net.n_nodes
        # All delivered positions sit near the radius-5 circle.
        for p in run.band_map.positions:
            assert abs(math.dist(p, (10, 10)) - 5.0) < 0.6

    def test_traffic_scale_matches_isomap(self):
        net = radial_net(n=800)
        q = ContourQuery(15.0, 15.0, 2.0, epsilon_fraction=0.2)
        agg = IsolineAggregationProtocol(q).run(net)
        iso = IsoMapProtocol(q, FilterConfig(30, 4)).run(net)
        # Same restricted-reporting regime: within a small factor.
        assert agg.costs.total_traffic_bytes() < 2 * iso.costs.total_traffic_bytes()

    def test_fidelity_below_isomap_on_harbor(self):
        # The headline: without gradient directions the same report
        # budget produces a far worse map (the Fig. 4 ambiguity).
        field = make_harbor_field()
        net = SensorNetwork.random_deploy(field, 2500, seed=1)
        q = ContourQuery(6.0, 12.0, 2.0)
        levels = q.isolevels
        agg = IsolineAggregationProtocol(q).run(net)
        iso = IsoMapProtocol(q, FilterConfig(30, 4)).run(net)
        acc_agg = mapping_accuracy(field, agg.band_map, levels, 50, 50)
        acc_iso = mapping_accuracy(field, iso.contour_map, levels, 50, 50)
        assert acc_iso > acc_agg + 0.2

    def test_distance_thinning(self):
        net = radial_net(n=800)
        q = ContourQuery(15.0, 15.0, 2.0, epsilon_fraction=0.2)
        loose = IsolineAggregationProtocol(q, distance_separation=0.0).run(net)
        tight = IsolineAggregationProtocol(q, distance_separation=4.0).run(net)
        assert tight.reports_delivered < loose.reports_delivered

    def test_invalid_separation(self):
        with pytest.raises(ValueError):
            IsolineAggregationProtocol(ContourQuery(0, 10, 2), distance_separation=-1)

    def test_value_only_probes_cheaper_than_isomap_probes(self):
        # Detection probes carry 2-byte values, not 6-byte tuples, so the
        # probe traffic is lower than Iso-Map's for the same candidates.
        net = radial_net(n=800, seed=2)
        q = ContourQuery(15.0, 15.0, 2.0, epsilon_fraction=0.2)
        agg = IsolineAggregationProtocol(q, distance_separation=0.0).run(net)
        iso = IsoMapProtocol(q, FilterConfig.disabled()).run(net)
        # Compare rx at candidate nodes (the probe replies land there).
        assert agg.costs.rx_bytes.sum() < iso.costs.rx_bytes.sum()
