"""Unit tests for shared baseline infrastructure."""

import numpy as np
import pytest

from repro.baselines.base import (
    NearestReportBandMap,
    disseminate_query,
    forward_reports_to_sink,
)
from repro.field import PlaneField
from repro.geometry import BoundingBox
from repro.network import CostAccountant, SensorNetwork

BOX = BoundingBox(0, 0, 10, 10)


class TestNearestReportBandMap:
    def test_band_at_nearest(self):
        m = NearestReportBandMap(
            BOX, [(2, 2), (8, 8)], [1.0, 9.0], levels=[5.0]
        )
        assert m.band_at((1, 1)) == 0
        assert m.band_at((9, 9)) == 1

    def test_value_at(self):
        m = NearestReportBandMap(BOX, [(2, 2), (8, 8)], [1.0, 9.0], [5.0])
        assert m.value_at((0, 0)) == 1.0
        assert m.value_at((10, 10)) == 9.0

    def test_empty_map(self):
        m = NearestReportBandMap(BOX, [], [], [5.0])
        assert m.band_at((5, 5)) == 0
        assert m.value_at((5, 5)) is None
        assert m.classify_raster(4, 4).sum() == 0
        assert m.isolines(5.0) == []

    def test_classify_points_matches_band_at(self):
        m = NearestReportBandMap(
            BOX, [(2, 2), (8, 8), (2, 8)], [1.0, 9.0, 6.0], levels=[5.0, 8.0]
        )
        pts = [(x + 0.5, y + 0.5) for x in range(10) for y in range(10)]
        vec = m.classify_points(pts)
        for p, b in zip(pts, vec):
            assert m.band_at(p) == b

    def test_classify_raster_shape(self):
        m = NearestReportBandMap(BOX, [(5, 5)], [9.0], [5.0])
        r = m.classify_raster(6, 4)
        assert r.shape == (4, 6)
        assert (r == 1).all()

    def test_isolines_of_split_field(self):
        # Left half low, right half high: one isoline near x = 5.
        positions = [(x + 0.5, y + 0.5) for x in range(10) for y in range(10)]
        values = [0.0 if p[0] < 5 else 10.0 for p in positions]
        m = NearestReportBandMap(BOX, positions, values, [5.0])
        lines = m.isolines(5.0, grid=50)
        assert lines
        for line in lines:
            for p in line:
                assert 4.0 < p[0] < 6.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            NearestReportBandMap(BOX, [(0, 0)], [1.0, 2.0], [5.0])


class TestForwarding:
    def _net(self):
        field = PlaneField(BOX, 0, 1, 0)
        positions = [(float(i) + 0.5, 5.0) for i in range(8)]
        return SensorNetwork(field, positions, radio_range=1.2, sink_index=0)

    def test_bytes_proportional_to_hops(self):
        net = self._net()
        costs = CostAccountant(net.n_nodes)
        forward_reports_to_sink(net, [4], report_bytes=10, costs=costs)
        # Node 4 is 4 hops from the sink: 4 transmissions, 4 receptions.
        assert costs.tx_bytes.sum() == 40
        assert costs.rx_bytes.sum() == 40
        assert costs.rx_bytes[0] == 10  # the sink receives once

    def test_unreachable_sources_skipped(self):
        field = PlaneField(BOX, 0, 1, 0)
        positions = [(0.5, 5.0), (1.5, 5.0), (9.5, 5.0)]  # node 2 isolated
        net = SensorNetwork(field, positions, radio_range=1.2, sink_index=0)
        costs = CostAccountant(net.n_nodes)
        delivered = forward_reports_to_sink(net, [1, 2], 10, costs)
        assert delivered == [1]

    def test_relay_ops_charged(self):
        net = self._net()
        costs = CostAccountant(net.n_nodes)
        forward_reports_to_sink(net, [4], 10, costs, ops_per_forward=3)
        assert costs.ops[1] == 3  # relay
        assert costs.ops[4] == 3  # source transmission bookkeeping

    def test_disseminate_query_reaches_all_internal_nodes(self):
        net = self._net()
        costs = CostAccountant(net.n_nodes)
        disseminate_query(net, query_bytes=8, costs=costs)
        # Line network: nodes 0..6 each broadcast once to one child.
        assert costs.tx_bytes.sum() == 7 * 8
        assert costs.rx_bytes.sum() == 7 * 8
