"""Intra-repo reference checking for the user-facing documentation.

Two kinds of references are checked across ``README.md``,
``EXPERIMENTS.md`` and ``docs/*.md``:

- markdown links ``[text](target)`` whose target is not an external URL
  or a pure fragment must resolve to a file or directory in the repo
  (relative to the document, fragments stripped);
- backticked path-like tokens (`` `docs/performance.md` ``,
  `` `../benchmarks/record.py` ``) must resolve too -- these are how
  this repo's docs cross-reference files, so a renamed module or a
  typo'd path is doc rot just like a dead link.

The CI ``docs`` job runs this next to the executable walkthrough.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).parent.parent

DOC_FILES = sorted(
    [REPO / "README.md", REPO / "EXPERIMENTS.md"]
    + list((REPO / "docs").glob("*.md"))
)

_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: A backticked token counts as a path claim when it has a directory
#: separator and a known source/doc/config suffix, with no spaces,
#: wildcards or placeholders.
_TICKED = re.compile(r"`([^`\s]+)`")
_PATHLIKE = re.compile(
    r"^[\w.\-/]+\.(?:py|md|json|yml|yaml|toml|txt|csv)$"
)

#: Paths documented as *generated at run time* (never committed).
_GENERATED = frozenset({"benchmarks/results"})


def _iter_targets(text):
    """Yield (target, is_link) for every checkable reference."""
    for m in _MD_LINK.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if target:
            yield target, True
    for m in _TICKED.finditer(text):
        token = m.group(1)
        if "/" in token and _PATHLIKE.match(token):
            yield token, False


def _resolves(doc: pathlib.Path, target: str) -> bool:
    if any(target.strip("/").startswith(g) for g in _GENERATED):
        return True
    candidates = [doc.parent / target]
    if not target.startswith("."):
        # Backticked paths are conventionally repo-root-relative even in
        # docs/ ("tests/core/test_reconstruction.py" in the walkthrough).
        candidates.append(REPO / target)
    return any(c.exists() for c in candidates)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_intra_repo_references_resolve(doc):
    assert doc.exists(), f"documentation file vanished: {doc}"
    broken = []
    for target, is_link in _iter_targets(doc.read_text()):
        if not _resolves(doc, target):
            kind = "link" if is_link else "path"
            broken.append(f"{kind}: {target}")
    assert not broken, (
        f"{doc.relative_to(REPO)} has broken intra-repo references:\n  "
        + "\n  ".join(broken)
    )


def test_doc_set_is_nonempty():
    # The parametrization above silently passes if the glob breaks.
    assert len(DOC_FILES) >= 5
    names = {p.name for p in DOC_FILES}
    assert {"README.md", "EXPERIMENTS.md", "architecture.md",
            "walkthrough.md", "performance.md", "serving.md"} <= names
