"""Slow end-to-end smoke at n = 10000 (the large-n scaling path).

Excluded from the default run by the ``slow`` marker (``pytest -m slow``
runs it; CI has a dedicated step).  One moderate-fault collection epoch
of Iso-Map and one of TinyDB on the side-100 harbor field: the point is
that the batched transport and vectorized topology keep a 10k-node epoch
in single-digit seconds while every invariant still holds.
"""

import pytest

from repro.baselines import TinyDBProtocol
from repro.core import IsoMapProtocol
from repro.experiments.common import (
    PAPER_FILTER,
    PAPER_QUERY,
    default_levels,
    harbor_network,
)
from repro.field import make_harbor_field
from repro.network.faults import FaultPlan

N = 10000
SIDE = 100


@pytest.mark.slow
class TestLargeNSmoke:
    def test_isomap_moderate_fault_epoch(self):
        field = make_harbor_field(side=SIDE)
        net = harbor_network(N, "random", seed=1, field=field, reuse_topology=True)
        res = IsoMapProtocol(
            PAPER_QUERY, PAPER_FILTER, fault_plan=FaultPlan.moderate(seed=3)
        ).run(net)
        deg = res.degradation
        assert deg is not None and deg.is_conserved
        assert deg.generated > 0
        assert len(res.delivered_reports) > 0
        assert res.contour_map is not None
        # O(sqrt(n)) sources: a 10k-node field must not report en masse.
        assert res.costs.reports_generated < N / 5

    def test_tinydb_moderate_fault_epoch(self):
        field = make_harbor_field(side=SIDE)
        net = harbor_network(N, "grid", seed=1, field=field, reuse_topology=True)
        res = TinyDBProtocol(
            default_levels(), fault_plan=FaultPlan.moderate(seed=3)
        ).run(net)
        deg = res.degradation
        assert deg is not None and deg.is_conserved
        # Every sensing node generates; faults may strand some.
        assert deg.generated > 0.9 * N
        assert res.reports_delivered > 0.5 * N
