"""Cross-cutting protocol invariants, checked over randomised runs.

These pin the bookkeeping identities the evaluation rests on: report
conservation through the filter, tx/rx symmetry of unicast forwarding,
nesting monotonicity of the contour map, and the determinism of a run.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.core.contour_map import build_contour_map
from repro.core.reports import IsolineReport
from repro.field import RadialField, make_harbor_field
from repro.geometry import BoundingBox
from repro.network import SensorNetwork

BOX = BoundingBox(0, 0, 20, 20)


def radial_net(seed, n=500):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.random_deploy(field, n, radio_range=2.2, seed=seed)


QUERY = ContourQuery(13.0, 17.0, 2.0, epsilon_fraction=0.2)


class TestReportConservation:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_generated_equals_delivered_plus_dropped(self, seed):
        net = radial_net(seed)
        res = IsoMapProtocol(QUERY, FilterConfig(30, 3)).run(net)
        assert len(res.generated_reports) == len(res.delivered_reports) + res.dropped_by_filter

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_disabled_filter_delivers_everything(self, seed):
        net = radial_net(seed)
        res = IsoMapProtocol(QUERY, FilterConfig.disabled()).run(net)
        # All sources are routed (detection requires it), so with no
        # filtering every generated report arrives.
        assert len(res.delivered_reports) == len(res.generated_reports)
        assert res.dropped_by_filter == 0

    @pytest.mark.parametrize("seed", [1, 2])
    def test_filter_only_reduces(self, seed):
        net = radial_net(seed)
        tight = IsoMapProtocol(QUERY, FilterConfig(60, 8)).run(net)
        loose = IsoMapProtocol(QUERY, FilterConfig(10, 1)).run(net)
        off = IsoMapProtocol(QUERY, FilterConfig.disabled()).run(net)
        assert len(tight.delivered_reports) <= len(loose.delivered_reports)
        assert len(loose.delivered_reports) <= len(off.delivered_reports)


class TestTrafficSymmetry:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_rx_at_least_report_bytes_delivered(self, seed):
        # Every delivered report was received at least once by the sink.
        net = radial_net(seed)
        res = IsoMapProtocol(QUERY, FilterConfig(30, 3)).run(net)
        from repro.core.wire import ISOLINE_REPORT_BYTES

        assert (
            res.costs.rx_bytes[net.sink_index]
            >= len(res.delivered_reports) * ISOLINE_REPORT_BYTES
        )

    @pytest.mark.parametrize("seed", [1, 2])
    def test_total_rx_not_less_than_tx(self, seed):
        # Unicast hops are 1:1; local broadcasts are 1:many -- so network
        # rx bytes can only exceed tx bytes, never undercut them, as long
        # as every transmitter has at least one listener.
        net = radial_net(seed)
        res = IsoMapProtocol(QUERY, FilterConfig(30, 3)).run(net)
        assert res.costs.rx_bytes.sum() >= res.costs.tx_bytes.sum() * 0.99


class TestNestingMonotonicity:
    def _nested_map(self):
        reports = []
        for level, radius in ((5.0, 6.0), (7.0, 4.0), (9.0, 2.0)):
            for k in range(8):
                t = 2 * math.pi * k / 8
                p = (10 + radius * math.cos(t), 10 + radius * math.sin(t))
                reports.append(
                    IsolineReport(level, p, (math.cos(t), math.sin(t)), len(reports))
                )
        return build_contour_map(reports, [5.0, 7.0, 9.0], BOX)

    def test_band_counts_consecutive_containment(self):
        cmap = self._nested_map()
        rng = random.Random(5)
        for _ in range(200):
            p = (rng.uniform(0, 20), rng.uniform(0, 20))
            band = cmap.band_at(p)
            # By definition: the first `band` levels contain p, the next
            # one (if any) does not.
            for i, level in enumerate(cmap.levels):
                if i < band:
                    assert cmap.level_contains(level, p)
                elif i == band:
                    assert not cmap.level_contains(level, p)
                    break

    def test_vectorised_matches_scalar(self):
        cmap = self._nested_map()
        rng = random.Random(6)
        pts = [(rng.uniform(0, 20), rng.uniform(0, 20)) for _ in range(300)]
        vec = cmap.classify_points(pts)
        for p, b in zip(pts, vec):
            assert cmap.band_at(p) == b


class TestDeterminism:
    def test_identical_runs_bitwise_equal_costs(self):
        def run():
            net = radial_net(9)
            res = IsoMapProtocol(QUERY, FilterConfig(30, 3)).run(net)
            return (
                res.costs.tx_bytes.tobytes(),
                res.costs.rx_bytes.tobytes(),
                res.costs.ops.tobytes(),
            )

        assert run() == run()


@given(
    seed=st.integers(min_value=0, max_value=30),
    sa=st.floats(min_value=5, max_value=90),
    sd=st.floats(min_value=0.5, max_value=8),
)
@settings(max_examples=15, deadline=None)
def test_conservation_property(seed, sa, sd):
    """Report conservation holds for any filter thresholds and seed."""
    net = radial_net(seed, n=300)
    res = IsoMapProtocol(QUERY, FilterConfig(sa, sd)).run(net)
    assert len(res.generated_reports) == len(res.delivered_reports) + res.dropped_by_filter
    # The contour map only uses delivered reports.
    assert res.contour_map.report_count() <= len(res.delivered_reports)
