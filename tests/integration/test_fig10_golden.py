"""Golden-snapshot test for the Fig. 10 contour maps.

``golden/fig10_map.json`` was captured from the pre-vectorization
implementation: the per-protocol report counts and accuracies at two
densities (``float.hex`` strings) plus SHA-256 digests of the rendered
band rasters, ground truth included.  The vectorized sink pipeline must
reproduce every byte of it -- this is the acceptance check that the
reconstruction/evaluation rewrite changed *nothing* observable in the
paper's headline figure.

The density-4 panel (10000 nodes) is deliberately left out of the golden
config to keep the test's runtime reasonable; the two retained panels
cover both deployment regimes (dense random/grid and sparse).
"""

import hashlib
import json
import pathlib

from repro.experiments.fig10_maps import run_fig10

GOLDEN = pathlib.Path(__file__).parent / "golden" / "fig10_map.json"


def snapshot_fig10(config):
    """Re-run Fig. 10 for ``config`` and serialise it golden-style."""
    result = run_fig10(
        densities=[tuple(d) for d in config["densities"]],
        seed=config["seed"],
        raster=config["raster"],
        collect_rasters=True,
    )
    rows = [
        {
            "accuracy": float.hex(float(r["accuracy"])),
            "density": float.hex(float(r["density"])),
            "n_nodes": int(r["n_nodes"]),
            "protocol": r["protocol"],
            "reports_at_sink": int(r["reports_at_sink"]),
        }
        for r in result.rows
    ]
    hashes = {
        f"{proto}|{density}": hashlib.sha256(arr.tobytes()).hexdigest()
        for (proto, density), arr in result.rasters.items()
    }
    return {
        "densities": [list(d) for d in config["densities"]],
        "raster": config["raster"],
        "raster_sha256": hashes,
        "rows": rows,
        "seed": config["seed"],
    }


def test_fig10_matches_golden_snapshot():
    golden = json.loads(GOLDEN.read_text())
    fresh = snapshot_fig10(
        {k: golden[k] for k in ("densities", "raster", "seed")}
    )
    # Piecewise first for readable failures, then the full-dict check.
    assert fresh["raster_sha256"] == golden["raster_sha256"]
    assert fresh["rows"] == golden["rows"]
    assert fresh == golden


def test_fig10_golden_file_sanity():
    golden = json.loads(GOLDEN.read_text())
    assert golden["raster"] >= 64
    assert any(key.startswith("truth|") for key in golden["raster_sha256"])
    assert len(golden["rows"]) == 2 * len(golden["densities"])
    for digest in golden["raster_sha256"].values():
        assert len(digest) == 64
