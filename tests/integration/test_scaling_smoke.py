"""Slow end-to-end smoke at n = 100000 (the tiled million-node path).

Excluded from the default run by the ``slow`` marker (``pytest -m slow``
runs it; the CI ``scaling`` job has a dedicated step).  One faulted,
tile-sharded Iso-Map epoch on the side-316 harbor field: the point is
that the tiling layer carries a 10^5-node faulted epoch end to end --
tiled adjacency identical to the monolithic build, the degradation
ledger conserved, and the report count still sublinear in n.
"""

import math

import numpy as np
import pytest

from repro.experiments.common import harbor_network, run_isomap
from repro.experiments.fig14_traffic import auto_tile_size
from repro.field import make_harbor_field
from repro.network.faults import FaultPlan
from repro.network.tiling import TilePartition, build_csr_adjacency_tiled

N = 100000
SIDE = round(math.sqrt(N))


@pytest.mark.slow
class TestScalingSmoke:
    def test_tiled_faulted_epoch_at_1e5(self):
        field = make_harbor_field(side=SIDE)
        net = harbor_network(N, "random", seed=1, field=field)
        tile_size = auto_tile_size(SIDE)
        res = run_isomap(
            net,
            fault_plan=FaultPlan.at_intensity(0.5, seed=1),
            tile_size=tile_size,
        )
        deg = res.degradation
        assert deg is not None and deg.is_conserved
        assert deg.generated > 0
        assert len(res.delivered_reports) > 0
        # O(sqrt(n)) sources: the fitted exponent lives in the bench;
        # here a hard sublinearity cap guards the invariant.
        assert 0 < res.costs.reports_generated < N**0.7

        # The tiled adjacency build is bit-identical to the monolithic
        # CSR the network built (same contract the unit suite pins at
        # small n, re-proven once at scale).
        part = TilePartition.build(net.positions_array, net.bounds, tile_size)
        csr = build_csr_adjacency_tiled(net.positions_array, 1.5, part)
        assert np.array_equal(csr.indptr, net.csr.indptr)
        assert np.array_equal(csr.indices, net.csr.indices)
