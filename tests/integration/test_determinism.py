"""Nondeterminism audit for the fault-injection and transport stack.

Two layers of defense:

1. A static AST scan proving that ``protocol.py``, ``faults.py`` and
   ``transport.py`` never call the *module-global* random functions
   (``random.random()``, ``random.randint()``, ...), whose hidden shared
   state would make results depend on call order across modules.
   Constructing explicit ``random.Random(seed)`` streams is the one
   allowed use of the module.
2. A dynamic check: two runs from the same seed must agree byte-for-byte
   -- every delivered report float, every per-node cost counter, and the
   degradation accounting.
"""

import ast
import hashlib
import pathlib

import pytest

import repro.core.protocol
import repro.network.faults
import repro.network.transport
from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.field import RadialField
from repro.geometry import BoundingBox
from repro.network import SensorNetwork
from repro.network.faults import FaultPlan

AUDITED_MODULES = (
    repro.core.protocol,
    repro.network.faults,
    repro.network.transport,
)

#: random-module functions that consume the hidden global stream.
GLOBAL_RANDOM_FUNCS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}


@pytest.mark.parametrize("module", AUDITED_MODULES, ids=lambda m: m.__name__)
def test_no_global_random_stream_use(module):
    tree = ast.parse(pathlib.Path(module.__file__).read_text())
    offenders = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        if (
            isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Name)
            and fn.value.id == "random"
            and fn.attr in GLOBAL_RANDOM_FUNCS
        ):
            offenders.append(f"random.{fn.attr} at line {node.lineno}")
        # A bare name call like `choice(...)` from `from random import ...`.
        if isinstance(fn, ast.Name) and fn.id in GLOBAL_RANDOM_FUNCS:
            offenders.append(f"{fn.id} at line {node.lineno}")
    assert not offenders, (
        f"{module.__name__} uses the global random stream: {offenders}; "
        "thread an explicit random.Random through instead"
    )


def _fault_epoch(seed):
    field = RadialField(BoundingBox(0, 0, 20, 20), center=(10, 10), peak=20, slope=1)
    net = SensorNetwork.random_deploy(field, 500, radio_range=2.0, seed=3)
    query = ContourQuery(14.0, 16.0, 2.0, epsilon_fraction=0.2)
    res = IsoMapProtocol(
        query, FilterConfig(30, 4), fault_plan=FaultPlan.moderate(seed=seed)
    ).run(net)
    reports = tuple(
        (
            r.source,
            float.hex(r.isolevel),
            tuple(map(float.hex, r.position)),
            tuple(map(float.hex, r.direction)),
        )
        for r in res.delivered_reports
    )
    digests = tuple(
        hashlib.sha256(arr.tobytes()).hexdigest()
        for arr in (res.costs.tx_bytes, res.costs.rx_bytes, res.costs.ops)
    )
    return reports, digests, res.degradation


def test_same_seed_fault_epochs_are_byte_identical():
    a_reports, a_digests, a_deg = _fault_epoch(seed=17)
    b_reports, b_digests, b_deg = _fault_epoch(seed=17)
    assert a_reports == b_reports
    assert a_digests == b_digests
    assert a_deg == b_deg
    assert a_deg.is_degraded  # the plan actually injected something


def test_different_seeds_diverge():
    _, a_digests, _ = _fault_epoch(seed=17)
    _, b_digests, _ = _fault_epoch(seed=18)
    assert a_digests != b_digests
