"""Golden-snapshot regression test for the full Iso-Map pipeline.

``golden/isomap_n2500_seed1.json`` was captured from the pre-vectorization
implementation at the paper's main operating point (2500 nodes, harbor
field, seed 1).  Every delivered report is stored as ``float.hex`` strings
and the per-node cost arrays as SHA-256 digests, so this test proves the
vectorized kernels changed *nothing* observable: not one report float,
not one charged op, not one byte of counted traffic.

If a future change legitimately alters the output, regenerate the file
with ``snapshot_run()`` below -- but treat any diff as a red flag first:
the whole point of the vectorization was bit-compatibility.
"""

import hashlib
import json
import os
import pathlib

from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.field import make_harbor_field
from repro.network import SensorNetwork

GOLDEN = pathlib.Path(__file__).parent / "golden" / "isomap_n2500_seed1.json"


def _report_dict(report):
    return {
        "direction": [float.hex(report.direction[0]), float.hex(report.direction[1])],
        "isolevel": float.hex(report.isolevel),
        "position": [float.hex(report.position[0]), float.hex(report.position[1])],
        "source": report.source,
    }


def _sha(array):
    return hashlib.sha256(array.tobytes()).hexdigest()


def snapshot_run(config):
    """Re-run the pipeline for ``config`` and serialise it golden-style."""
    field = make_harbor_field()
    network = SensorNetwork.random_deploy(field, config["n"], seed=config["seed"])
    query = ContourQuery(*config["query"])
    result = IsoMapProtocol(query, FilterConfig(*config["filter"])).run(network)
    costs = result.costs
    return {
        "config": config,
        "costs": {
            "ops_sha256": _sha(costs.ops),
            "ops_total": int(costs.ops.sum()),
            "reports_delivered": costs.reports_delivered,
            "reports_generated": costs.reports_generated,
            "rx_sha256": _sha(costs.rx_bytes),
            "rx_total": int(costs.rx_bytes.sum()),
            "tx_sha256": _sha(costs.tx_bytes),
            "tx_total": int(costs.tx_bytes.sum()),
        },
        "delivered_reports": [_report_dict(r) for r in result.delivered_reports],
        "dropped_by_filter": result.dropped_by_filter,
        "generated_reports": len(result.generated_reports),
    }


def _flatten(prefix, value, out):
    if isinstance(value, dict):
        for k, v in sorted(value.items()):
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, out)
    elif isinstance(value, list):
        for i, v in enumerate(value):
            _flatten(f"{prefix}[{i}]", v, out)
    else:
        out[prefix] = value


def _dump_diff(golden, fresh):
    """On mismatch, leave a reviewable trail in ``$GOLDEN_DIFF_DIR``.

    CI uploads the directory as an artifact when the job fails, so a
    broken byte-compatibility guarantee comes with the fresh snapshot
    and a field-by-field diff instead of just a red cross.
    """
    out_dir = os.environ.get("GOLDEN_DIFF_DIR")
    if not out_dir:
        return
    path = pathlib.Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    (path / "fresh_snapshot.json").write_text(
        json.dumps(fresh, indent=2, sort_keys=True) + "\n"
    )
    want, got = {}, {}
    _flatten("", golden, want)
    _flatten("", fresh, got)
    lines = []
    for key in sorted(set(want) | set(got)):
        if want.get(key) != got.get(key):
            lines.append(
                f"{key}: golden={want.get(key, '<absent>')!r} "
                f"fresh={got.get(key, '<absent>')!r}"
            )
    (path / "diff.txt").write_text("\n".join(lines) + "\n")


def test_pipeline_matches_golden_snapshot():
    golden = json.loads(GOLDEN.read_text())
    fresh = snapshot_run(golden["config"])
    if fresh != golden:
        _dump_diff(golden, fresh)

    # Compare piecewise for a readable failure before the full-dict check.
    assert fresh["costs"] == golden["costs"]
    assert fresh["generated_reports"] == golden["generated_reports"]
    assert fresh["dropped_by_filter"] == golden["dropped_by_filter"]
    assert len(fresh["delivered_reports"]) == len(golden["delivered_reports"])
    for k, (got, want) in enumerate(
        zip(fresh["delivered_reports"], golden["delivered_reports"])
    ):
        assert got == want, f"delivered report {k} diverged"
    assert fresh == golden


def test_golden_file_sanity():
    golden = json.loads(GOLDEN.read_text())
    assert golden["config"]["n"] == 2500
    assert golden["config"]["field"] == "harbor-default"
    assert golden["generated_reports"] >= len(golden["delivered_reports"]) > 0
    for key in ("ops", "tx", "rx"):
        assert len(golden["costs"][f"{key}_sha256"]) == 64
        assert golden["costs"][f"{key}_total"] > 0
