"""Cross-module integration tests: the paper's pipeline end to end."""

import math

import pytest

from repro import (
    ContourQuery,
    FilterConfig,
    IsoMapProtocol,
    SensorNetwork,
    energy_from_costs,
    make_harbor_field,
    mapping_accuracy,
)
from repro.baselines import TinyDBProtocol
from repro.field.harbor import DEFAULT_ISOLEVELS
from repro.metrics.hausdorff import mean_isoline_hausdorff


@pytest.fixture(scope="module")
def harbor_run():
    """One density-1 Iso-Map epoch shared by the integration assertions."""
    field = make_harbor_field()
    network = SensorNetwork.random_deploy(field, 2500, radio_range=1.5, seed=1)
    query = ContourQuery(6.0, 12.0, 2.0)
    result = IsoMapProtocol(query, FilterConfig(30.0, 4.0)).run(network)
    return field, network, result


class TestPaperOperatingPoint:
    def test_connectivity_regime(self, harbor_run):
        _, network, _ = harbor_run
        assert 6.0 < network.average_degree() < 8.0
        assert network.tree.reachable_count() > 0.98 * network.n_nodes

    def test_report_scale(self, harbor_run):
        _, network, result = harbor_run
        # Theorem 4.1 regime: far fewer reports than nodes; the paper sees
        # 89 delivered at this operating point.
        assert len(result.delivered_reports) < 0.05 * network.n_nodes
        assert len(result.delivered_reports) >= 20

    def test_accuracy_above_90(self, harbor_run):
        field, _, result = harbor_run
        acc = mapping_accuracy(field, result.contour_map, list(DEFAULT_ISOLEVELS))
        assert acc > 0.9

    def test_hausdorff_reasonable(self, harbor_run):
        field, _, result = harbor_run
        d = mean_isoline_hausdorff(
            field, result.contour_map, list(DEFAULT_ISOLEVELS), grid=100
        )
        assert d is not None
        # Under ~10% of the field diagonal.
        assert d / field.bounds.diagonal < 0.1

    def test_energy_beats_full_collection(self, harbor_run):
        field, network, result = harbor_run
        grid_net = SensorNetwork.grid_deploy(field, 2500, radio_range=1.5)
        tdb = TinyDBProtocol(list(DEFAULT_ISOLEVELS)).run(grid_net)
        iso_energy = energy_from_costs(result.costs).per_node_mean_j
        tdb_energy = energy_from_costs(tdb.costs).per_node_mean_j
        assert iso_energy < 0.5 * tdb_energy

    def test_every_queried_level_reconstructed(self, harbor_run):
        _, _, result = harbor_run
        cmap = result.contour_map
        for level in (6.0, 8.0, 10.0, 12.0):
            assert level in cmap.regions or level in cmap.full_levels

    def test_gradient_directions_sane(self, harbor_run):
        field, _, result = harbor_run
        from repro.metrics import gradient_errors

        errors = gradient_errors(field, result.delivered_reports)
        assert errors
        # Median error well under 45 degrees at the paper's density.
        assert sorted(errors)[len(errors) // 2] < 20.0


class TestDeterminism:
    def test_same_seed_same_result(self):
        field = make_harbor_field()
        query = ContourQuery(6.0, 12.0, 2.0)

        def run():
            net = SensorNetwork.random_deploy(field, 900, radio_range=2.2, seed=9)
            res = IsoMapProtocol(query, FilterConfig(30.0, 4.0)).run(net)
            return (
                len(res.delivered_reports),
                res.costs.total_traffic_bytes(),
                res.costs.total_ops(),
            )

        assert run() == run()


class TestContinuousMonitoring:
    def test_resense_changes_map(self):
        from repro.field import CompositeField, GaussianBumpField

        field = make_harbor_field()
        net = SensorNetwork.random_deploy(field, 900, radio_range=2.2, seed=4)
        query = ContourQuery(6.0, 12.0, 2.0)
        before = IsoMapProtocol(query).run(net)

        changed = CompositeField(
            field.bounds,
            [field, GaussianBumpField(field.bounds, 0.0, [(-4.0, (25, 25), 6.0)])],
        )
        net.resense(changed)
        after = IsoMapProtocol(query).run(net)

        # The silt deposit raised the seabed at the centre: the deep band
        # there must shrink or vanish.
        assert after.contour_map.band_at((25, 25)) <= before.contour_map.band_at(
            (25, 25)
        )
        raster_before = before.contour_map.classify_raster(30, 30)
        raster_after = after.contour_map.classify_raster(30, 30)
        assert raster_after.sum() < raster_before.sum()


class TestPublicAPI:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None
