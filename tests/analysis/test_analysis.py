"""Unit and property tests for scaling fits and the Table 1 renderer."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import TABLE1_ROWS, fit_power_law, table1


class TestFitPowerLaw:
    def test_exact_square_root(self):
        xs = [100, 400, 900, 1600]
        ys = [10, 20, 30, 40]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5)
        assert fit.coefficient == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_linear(self):
        xs = [1, 2, 4, 8]
        ys = [3, 6, 12, 24]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.0)
        assert fit.coefficient == pytest.approx(3.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert fit.predict(8) == pytest.approx(16.0)

    def test_noisy_data_r_squared_below_one(self):
        xs = [1, 2, 4, 8, 16]
        ys = [2.1, 3.8, 8.4, 15.1, 33.0]
        fit = fit_power_law(xs, ys)
        assert 0.9 < fit.r_squared < 1.0
        assert fit.exponent == pytest.approx(1.0, abs=0.1)

    def test_errors(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, -2])
        with pytest.raises(ValueError):
            fit_power_law([2, 2], [1, 2])


class TestTable1:
    def test_all_protocols_present(self):
        text = table1()
        for row in TABLE1_ROWS:
            assert row.protocol in text

    def test_isomap_sqrt_claim(self):
        iso = next(r for r in TABLE1_ROWS if r.protocol == "Iso-Map")
        assert "sqrt" in iso.reports
        assert iso.deployment == "any"

    def test_renders_header(self):
        assert "Generated reports" in table1()


@given(
    a=st.floats(min_value=0.1, max_value=100),
    b=st.floats(min_value=-2, max_value=2),
)
@settings(max_examples=100)
def test_fit_recovers_exact_power_laws(a, b):
    xs = [1.0, 3.0, 10.0, 30.0, 100.0]
    ys = [a * x**b for x in xs]
    if any(not math.isfinite(y) or y <= 0 for y in ys):
        return
    fit = fit_power_law(xs, ys)
    assert fit.exponent == pytest.approx(b, abs=1e-6)
    assert fit.coefficient == pytest.approx(a, rel=1e-6)
