"""Unit tests for the line utilities."""

import math

import pytest

from repro.geometry import (
    Line,
    intersect_lines,
    line_point_normal,
    line_through,
    project_point,
)
from repro.geometry.lines import angle_of, param_on_line, segment_intersection


class TestLineConstruction:
    def test_line_through_contains_both_points(self):
        line = line_through((0, 0), (2, 2))
        assert abs(line.signed_distance((0, 0))) < 1e-9
        assert abs(line.signed_distance((2, 2))) < 1e-9
        assert abs(line.signed_distance((1, 1))) < 1e-9

    def test_line_through_coincident_raises(self):
        with pytest.raises(ValueError):
            line_through((1, 1), (1, 1))

    def test_line_point_normal(self):
        # Line through the origin with normal +x is the y axis.
        line = line_point_normal((0, 0), (5, 0))
        assert abs(line.signed_distance((0, 7))) < 1e-9
        assert line.signed_distance((3, 0)) == pytest.approx(3.0)

    def test_point_on(self):
        line = line_point_normal((2, 3), (0, 1))
        p = line.point_on()
        assert abs(line.signed_distance(p)) < 1e-9


class TestIntersections:
    def test_perpendicular_lines(self):
        l1 = Line((1, 0), 2.0)  # x = 2
        l2 = Line((0, 1), 3.0)  # y = 3
        assert intersect_lines(l1, l2) == pytest.approx((2, 3))

    def test_parallel_lines_return_none(self):
        l1 = Line((1, 0), 2.0)
        l2 = Line((1, 0), 5.0)
        assert intersect_lines(l1, l2) is None

    def test_antiparallel_normals_return_none(self):
        l1 = Line((1, 0), 2.0)
        l2 = Line((-1, 0), -2.0)  # the same line, opposite orientation
        assert intersect_lines(l1, l2) is None

    def test_oblique(self):
        l1 = line_through((0, 0), (1, 1))
        l2 = line_through((0, 2), (2, 0))
        assert intersect_lines(l1, l2) == pytest.approx((1, 1))


class TestProjection:
    def test_project_onto_axis(self):
        line = Line((0, 1), 0.0)  # x axis
        assert project_point(line, (3, 4)) == pytest.approx((3, 0))

    def test_projection_is_idempotent(self):
        line = line_through((1, 0), (0, 1))
        p = project_point(line, (5, 5))
        q = project_point(line, p)
        assert p == pytest.approx(q)

    def test_param_on_line_orders_points(self):
        line = Line((0, 1), 0.0)  # x axis, direction is -x or +x consistently
        t1 = param_on_line(line, (1, 0))
        t2 = param_on_line(line, (4, 0))
        t3 = param_on_line(line, (9, 0))
        assert (t1 < t2 < t3) or (t1 > t2 > t3)


class TestSegmentIntersection:
    def test_crossing(self):
        hit = segment_intersection((0, 0), (2, 2), (0, 2), (2, 0))
        assert hit is not None
        t, p = hit
        assert p == pytest.approx((1, 1))
        assert t == pytest.approx(0.5)

    def test_non_crossing(self):
        assert segment_intersection((0, 0), (1, 0), (0, 1), (1, 1)) is None

    def test_crossing_beyond_ends(self):
        assert segment_intersection((0, 0), (1, 0), (2, -1), (2, 1)) is None

    def test_parallel(self):
        assert segment_intersection((0, 0), (1, 0), (0, 1), (1, 1)) is None


def test_angle_of():
    assert angle_of((1, 0)) == pytest.approx(0.0)
    assert angle_of((0, 1)) == pytest.approx(math.pi / 2)
    assert angle_of((-1, 0)) == pytest.approx(math.pi)
