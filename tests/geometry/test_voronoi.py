"""Unit and property tests for the bounded Voronoi construction."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import BoundingBox, bounded_voronoi, dist
from repro.geometry.voronoi import shared_edges, total_cell_area


BOX = BoundingBox(0, 0, 10, 10)


class TestBoundedVoronoi:
    def test_empty_sites(self):
        assert bounded_voronoi([], BOX) == []

    def test_single_site_gets_whole_box(self):
        cells = bounded_voronoi([(5, 5)], BOX)
        assert len(cells) == 1
        assert cells[0].polygon.area() == pytest.approx(BOX.area)
        assert cells[0].neighbors == set()

    def test_two_sites_split_by_bisector(self):
        cells = bounded_voronoi([(2.5, 5), (7.5, 5)], BOX)
        assert cells[0].polygon.area() == pytest.approx(50.0)
        assert cells[1].polygon.area() == pytest.approx(50.0)
        assert cells[0].neighbors == {1}
        assert cells[1].neighbors == {0}

    def test_cells_contain_their_site(self):
        rng = random.Random(7)
        sites = [(rng.uniform(0.5, 9.5), rng.uniform(0.5, 9.5)) for _ in range(40)]
        cells = bounded_voronoi(sites, BOX)
        for cell in cells:
            assert cell.polygon.contains(cell.site, tol=1e-6)

    def test_cells_partition_box(self):
        rng = random.Random(3)
        sites = [(rng.uniform(0.5, 9.5), rng.uniform(0.5, 9.5)) for _ in range(60)]
        cells = bounded_voronoi(sites, BOX)
        assert total_cell_area(cells) == pytest.approx(BOX.area, rel=1e-6)

    def test_nearest_site_property(self):
        rng = random.Random(11)
        sites = [(rng.uniform(0.5, 9.5), rng.uniform(0.5, 9.5)) for _ in range(25)]
        cells = bounded_voronoi(sites, BOX)
        for _ in range(200):
            p = (rng.uniform(0, 10), rng.uniform(0, 10))
            nearest = min(range(len(sites)), key=lambda i: dist(p, sites[i]))
            # p must be contained in the nearest site's cell.
            assert cells[nearest].polygon.contains(p, tol=1e-6)

    def test_adjacency_is_symmetric(self):
        rng = random.Random(5)
        sites = [(rng.uniform(0.5, 9.5), rng.uniform(0.5, 9.5)) for _ in range(30)]
        cells = bounded_voronoi(sites, BOX)
        for cell in cells:
            for j in cell.neighbors:
                assert cell.site_index in cells[j].neighbors

    def test_shared_edges_match_between_cells(self):
        rng = random.Random(13)
        sites = [(rng.uniform(0.5, 9.5), rng.uniform(0.5, 9.5)) for _ in range(20)]
        cells = bounded_voronoi(sites, BOX)
        for (i, j, a, b) in shared_edges(cells):
            # The twin edge in cell j spans (numerically) the same segment.
            twins = cells[j].polygon.edges_with_label(i)
            assert twins, f"cell {j} lost its edge against {i}"
            (ta, tb) = twins[0]
            ends = sorted([ta, tb])
            mine = sorted([a, b])
            for (p, q) in zip(ends, mine):
                assert dist(p, q) < 1e-5

    def test_coincident_sites_raise(self):
        with pytest.raises(ValueError):
            bounded_voronoi([(1, 1), (1, 1)], BOX)

    def test_site_outside_box_raises(self):
        with pytest.raises(ValueError):
            bounded_voronoi([(50, 50)], BOX)

    def test_collinear_sites(self):
        sites = [(2, 5), (5, 5), (8, 5)]
        cells = bounded_voronoi(sites, BOX)
        assert total_cell_area(cells) == pytest.approx(BOX.area)
        assert cells[1].neighbors == {0, 2}

    def test_grid_sites(self):
        sites = [(1 + 2 * i, 1 + 2 * j) for i in range(5) for j in range(5)]
        cells = bounded_voronoi(sites, BOX)
        assert total_cell_area(cells) == pytest.approx(BOX.area, rel=1e-6)
        # Interior grid cells have exactly 4 neighbours at this spacing.
        centre = sites.index((5, 5))
        assert len(cells[centre].neighbors) == 4


@st.composite
def distinct_sites(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    pts = []
    for _ in range(n):
        x = draw(st.floats(min_value=0.2, max_value=9.8))
        y = draw(st.floats(min_value=0.2, max_value=9.8))
        if all((x - px) ** 2 + (y - py) ** 2 > 1e-4 for px, py in pts):
            pts.append((x, y))
    return pts


@given(sites=distinct_sites())
@settings(max_examples=60, deadline=None)
def test_voronoi_partition_property(sites):
    cells = bounded_voronoi(sites, BOX)
    assert total_cell_area(cells) == pytest.approx(BOX.area, rel=1e-5)
    for cell in cells:
        assert cell.polygon.contains(cell.site, tol=1e-5)
