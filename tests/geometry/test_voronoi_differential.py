"""Differential tests: batched Voronoi construction vs the scalar reference.

``bounded_voronoi_batched`` replaces the per-site Python sort with a
blocked NumPy prefilter and prunes provably-no-op clips with a vectorized
signed-violation test.  Both transformations are argued bit-exact in the
module docstrings; these tests *pin* that argument on adversarial site
sets -- uniform scatter, sites on a closed curve (sliver cells whose
clipping the early exit barely helps), exact-tie lattices (the stable
argsort must reproduce Python ``sorted`` tie-breaking), and clusters.

Equality is exact -- vertex tuples, edge labels and neighbor sets must
match float-for-float, the same discipline as the network-layer
differential tests.
"""

import math
import random

import pytest

from repro.geometry import BoundingBox
from repro.geometry.voronoi import (
    _BATCH_MIN_SITES,
    bounded_voronoi,
    bounded_voronoi_batched,
    bounded_voronoi_reference,
    total_cell_area,
)

BOX = BoundingBox(0, 0, 50, 50)


def uniform_sites(m, seed):
    rng = random.Random(seed)
    return [(rng.uniform(0.5, 49.5), rng.uniform(0.5, 49.5)) for _ in range(m)]


def curve_sites(m, seed=0):
    """Sites on a wiggly closed curve: the realistic Iso-Map shape and the
    adversarial one (sliver cells meeting at the medial axis)."""
    rng = random.Random(seed)
    out = []
    for k in range(m):
        ang = 2 * math.pi * k / m + rng.uniform(-0.5, 0.5) * math.pi / m
        r = 15 + 4 * math.sin(5 * ang) + rng.uniform(-0.3, 0.3)
        out.append((25 + r * math.cos(ang), 25 + r * math.sin(ang)))
    return out


def lattice_sites(side, jitter=0.0, seed=0):
    """Regular lattice: every interior site has 4-8 *exactly* equidistant
    neighbours, exercising the sort's tie-breaking on every row."""
    rng = random.Random(seed)
    step = 50.0 / (side + 1)
    return [
        (step * (i + 1) + rng.uniform(-jitter, jitter),
         step * (j + 1) + rng.uniform(-jitter, jitter))
        for j in range(side)
        for i in range(side)
    ]


def cluster_sites(m, seed):
    rng = random.Random(seed)
    centers = [(12, 12), (38, 12), (25, 40)]
    out = []
    for k in range(m):
        cx, cy = centers[k % len(centers)]
        out.append((cx + rng.gauss(0, 2.5), cy + rng.gauss(0, 2.5)))
    return [(min(49.5, max(0.5, x)), min(49.5, max(0.5, y))) for x, y in out]


def assert_cells_identical(got, want):
    assert len(got) == len(want)
    for cg, cw in zip(got, want):
        assert cg.site_index == cw.site_index
        assert cg.site == cw.site
        assert cg.polygon.vertices == cw.polygon.vertices
        assert cg.polygon.labels == cw.polygon.labels
        assert cg.neighbors == cw.neighbors


@pytest.mark.parametrize(
    "sites",
    [
        uniform_sites(_BATCH_MIN_SITES, seed=1),
        uniform_sites(90, seed=2),
        uniform_sites(170, seed=3),
        curve_sites(150),
        lattice_sites(9),           # 81 sites, exact ties everywhere
        lattice_sites(8, jitter=1e-3, seed=4),
        cluster_sites(120, seed=5),
    ],
    ids=["uniform-min", "uniform-90", "uniform-170", "curve", "lattice-exact",
         "lattice-jitter", "clusters"],
)
def test_batched_matches_reference_exactly(sites):
    assert_cells_identical(
        bounded_voronoi_batched(sites, BOX), bounded_voronoi_reference(sites, BOX)
    )


def test_dispatch_is_equivalent_across_threshold():
    for m in (_BATCH_MIN_SITES - 1, _BATCH_MIN_SITES, _BATCH_MIN_SITES + 1):
        sites = uniform_sites(m, seed=m)
        assert_cells_identical(
            bounded_voronoi(sites, BOX), bounded_voronoi_reference(sites, BOX)
        )


def test_batched_partitions_box():
    cells = bounded_voronoi_batched(curve_sites(100, seed=7), BOX)
    assert total_cell_area(cells) == pytest.approx(BOX.width * BOX.height, rel=1e-9)
    assert all(not c.polygon.is_empty for c in cells)


def test_batched_rejects_coincident_sites():
    sites = uniform_sites(60, seed=9)
    sites.append(sites[17])
    with pytest.raises(ValueError, match="coincident"):
        bounded_voronoi_batched(sites, BOX)


def test_batched_rejects_site_outside_box():
    sites = uniform_sites(60, seed=10)
    sites[30] = (55.0, 25.0)
    with pytest.raises(ValueError, match="outside"):
        bounded_voronoi_batched(sites, BOX)
