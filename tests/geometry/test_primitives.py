"""Unit tests for the vector/bounding-box primitives."""

import math

import pytest

from repro.geometry import (
    BoundingBox,
    add,
    angle_between,
    cross,
    dist,
    dist_sq,
    dot,
    norm,
    normalize,
    perpendicular,
    scale,
    sub,
    unit_from_angle,
)


class TestVectorOps:
    def test_add_sub_scale(self):
        assert add((1, 2), (3, 4)) == (4, 6)
        assert sub((3, 4), (1, 2)) == (2, 2)
        assert scale((1, -2), 3) == (3, -6)

    def test_dot_orthogonal(self):
        assert dot((1, 0), (0, 5)) == 0.0

    def test_cross_sign_convention(self):
        # +x cross +y is positive (counter-clockwise).
        assert cross((1, 0), (0, 1)) == pytest.approx(1.0)
        assert cross((0, 1), (1, 0)) == pytest.approx(-1.0)

    def test_norm_and_dist(self):
        assert norm((3, 4)) == pytest.approx(5.0)
        assert dist((0, 0), (3, 4)) == pytest.approx(5.0)
        assert dist_sq((0, 0), (3, 4)) == pytest.approx(25.0)

    def test_normalize_unit_length(self):
        v = normalize((10, -7))
        assert norm(v) == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            normalize((0.0, 0.0))

    def test_perpendicular_is_ccw_rotation(self):
        assert perpendicular((1, 0)) == (0, 1)
        assert perpendicular((0, 1)) == (-1, 0)

    def test_unit_from_angle(self):
        v = unit_from_angle(math.pi / 2)
        assert v[0] == pytest.approx(0.0, abs=1e-12)
        assert v[1] == pytest.approx(1.0)

    def test_angle_between_basic(self):
        assert angle_between((1, 0), (0, 1)) == pytest.approx(math.pi / 2)
        assert angle_between((1, 0), (-1, 0)) == pytest.approx(math.pi)
        assert angle_between((1, 1), (2, 2)) == pytest.approx(0.0, abs=1e-6)

    def test_angle_between_zero_vector_is_zero(self):
        assert angle_between((0, 0), (1, 0)) == 0.0


class TestBoundingBox:
    def test_measures(self):
        box = BoundingBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.area == 12
        assert box.center == (2.0, 1.5)
        assert box.diagonal == pytest.approx(5.0)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)

    def test_contains(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains((0.5, 0.5))
        assert box.contains((0.0, 1.0))  # boundary is inside (closed box)
        assert not box.contains((1.5, 0.5))

    def test_corners_ccw(self):
        box = BoundingBox(0, 0, 2, 1)
        cs = box.corners()
        assert cs[0] == (0, 0)
        assert cs[2] == (2, 1)
        # Shoelace of corners is positive => CCW.
        a2 = sum(
            cs[i][0] * cs[(i + 1) % 4][1] - cs[(i + 1) % 4][0] * cs[i][1]
            for i in range(4)
        )
        assert a2 > 0

    def test_clamp(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.clamp((2, -1)) == (1, 0)
        assert box.clamp((0.3, 0.7)) == (0.3, 0.7)

    def test_sample_grid_count_and_bounds(self):
        box = BoundingBox(0, 0, 10, 5)
        pts = box.sample_grid(4, 2)
        assert len(pts) == 8
        assert all(box.contains(p) for p in pts)
        # First point is the centre of the bottom-left cell.
        assert pts[0] == (1.25, 1.25)

    def test_sample_grid_invalid(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).sample_grid(0, 5)

    def test_around(self):
        box = BoundingBox.around([(0, 0), (2, 3), (-1, 1)], margin=0.5)
        assert box.xmin == -1.5
        assert box.ymax == 3.5

    def test_around_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.around([])
