"""The resampler pair's deviation contract, bounded as a property.

``resample_polyline`` / ``resample_polyline_fast`` are the repo's one
kernel pair that is *not* bit-identical (per-segment remainder walk vs
one cumulative-sum pass).  The exact deviation is documented on
:func:`repro.geometry.polyline.resample_polyline` as a three-point
contract; this suite pins each point on random polylines so a change
that widens the deviation (instead of just reordering ULPs) fails here
rather than silently degrading the Hausdorff metric downstream:

1. both outputs keep the input's first and last points;
2. their lengths differ by at most one sample, and the odd boundary
   sample lies within one spacing of the final point;
3. over the common prefix, corresponding samples agree to 1e-6
   absolute.

The ``simplify_tolerance`` pre-step must not widen the contract: the
two resamplers pre-simplify with the two halves of the *bit-identical*
simplifier pair, so the contract is checked with the knob on as well.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.polyline import resample_polyline, resample_polyline_fast

coords = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
polylines = st.lists(st.tuples(coords, coords), min_size=2, max_size=50)
spacings = st.floats(min_value=0.05, max_value=20.0, allow_nan=False)


def assert_contract(line, spacing, tolerance=0.0):
    ref = resample_polyline(line, spacing, simplify_tolerance=tolerance)
    fast = resample_polyline_fast(line, spacing, simplify_tolerance=tolerance)

    # 1. endpoints kept by both.
    for out in (ref, fast):
        assert out[0] == (line[0][0], line[0][1])
        assert out[-1] == (line[-1][0], line[-1][1])

    # 2. lengths differ by at most one boundary sample, within one
    #    spacing of the final point.
    assert abs(len(ref) - len(fast)) <= 1, (len(ref), len(fast))
    if len(ref) != len(fast):
        longer = ref if len(ref) > len(fast) else fast
        extra = longer[-2]  # the sample the other implementation omitted
        end = longer[-1]
        assert math.hypot(extra[0] - end[0], extra[1] - end[1]) <= spacing + 1e-9

    # 3. common-prefix agreement to 1e-6 absolute.
    for (rx, ry), (fx, fy) in zip(ref, fast):
        assert abs(rx - fx) <= 1e-6 and abs(ry - fy) <= 1e-6, (
            (rx, ry),
            (fx, fy),
        )


@given(line=polylines, spacing=spacings)
@settings(max_examples=300, deadline=None)
def test_resample_contract_random(line, spacing):
    assert_contract(line, spacing)


@given(line=polylines, spacing=spacings,
       tolerance=st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_resample_contract_with_simplify(line, spacing, tolerance):
    assert_contract(line, spacing, tolerance=tolerance)


def test_resample_contract_boundary_landing():
    # Total length an exact multiple of the spacing: the adversarial
    # case for point 2 (a sample lands within FP noise of the end).
    line = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]
    for spacing in (0.5, 1.0, 1.5, 3.0):
        assert_contract(line, spacing)


def test_simplify_pre_step_identical_vertex_list():
    # The pre-simplified polylines feeding the two resamplers are the
    # same vertex list (the simplifier pair is bit-identical), so with a
    # coarse tolerance and a huge spacing both outputs collapse to the
    # identical endpoints-only result.
    import random

    rng = random.Random(7)
    line = [(x * 0.1, rng.uniform(-0.2, 0.2)) for x in range(200)]
    ref = resample_polyline(line, 1000.0, simplify_tolerance=1.0)
    fast = resample_polyline_fast(line, 1000.0, simplify_tolerance=1.0)
    assert ref == fast == [line[0], line[-1]]
