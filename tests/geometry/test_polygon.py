"""Unit and property tests for labelled convex polygons and clipping."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    BORDER_LABEL,
    ConvexPolygon,
    HalfPlane,
    point_in_convex,
    point_in_polygon,
    polygon_area,
)


def unit_square():
    return ConvexPolygon.from_box(0, 0, 1, 1)


class TestHalfPlane:
    def test_contains(self):
        hp = HalfPlane((1, 0), 0.5)  # x <= 0.5
        assert hp.contains((0.2, 9.0))
        assert not hp.contains((0.7, 0.0))

    def test_bisector_midpoint_on_boundary(self):
        hp = HalfPlane.bisector((0, 0), (2, 0))
        assert abs(hp.signed_violation((1.0, 5.0))) < 1e-9
        assert hp.contains((0.3, 0.0))
        assert not hp.contains((1.7, 0.0))

    def test_bisector_coincident_raises(self):
        with pytest.raises(ValueError):
            HalfPlane.bisector((1, 1), (1, 1))

    def test_from_line_orientation(self):
        from repro.geometry import line_point_normal

        line = line_point_normal((0, 0), (1, 0))  # vertical line x = 0
        hp = HalfPlane.from_line(line, (-1, 0))
        assert hp.contains((-0.5, 3))
        assert not hp.contains((0.5, 3))
        hp2 = HalfPlane.from_line(line, (1, 0))
        assert hp2.contains((0.5, 3))


class TestConvexPolygon:
    def test_box_area_and_labels(self):
        sq = unit_square()
        assert sq.area() == pytest.approx(1.0)
        assert sq.labels == [BORDER_LABEL] * 4

    def test_degenerate_input_is_empty(self):
        assert ConvexPolygon([(0, 0), (1, 1)]).is_empty
        assert ConvexPolygon([(0, 0), (0, 0), (0, 0), (0, 0)]).is_empty

    def test_centroid_of_square(self):
        c = unit_square().centroid()
        assert c[0] == pytest.approx(0.5)
        assert c[1] == pytest.approx(0.5)

    def test_contains(self):
        sq = unit_square()
        assert sq.contains((0.5, 0.5))
        assert sq.contains((0.0, 0.5))  # closed
        assert not sq.contains((1.2, 0.5))

    def test_clip_keeps_half_area(self):
        sq = unit_square()
        clipped = sq.clip(HalfPlane((1, 0), 0.5), new_label=7)
        assert clipped.area() == pytest.approx(0.5)
        assert 7 in clipped.labels
        # Exactly one new edge from a single convex cut.
        assert clipped.labels.count(7) == 1

    def test_clip_fully_inside_is_identity(self):
        sq = unit_square()
        clipped = sq.clip(HalfPlane((1, 0), 5.0), new_label=7)
        assert clipped.area() == pytest.approx(1.0)
        assert 7 not in clipped.labels

    def test_clip_fully_outside_is_empty(self):
        sq = unit_square()
        clipped = sq.clip(HalfPlane((1, 0), -1.0), new_label=7)
        assert clipped.is_empty
        assert clipped.area() == 0.0

    def test_clip_through_vertex(self):
        # Diagonal cut exactly through two opposite corners.
        sq = unit_square()
        n = (1 / math.sqrt(2), -1 / math.sqrt(2))
        hp = HalfPlane(n, 0.0)  # keeps the y >= x side
        clipped = sq.clip(hp, new_label=3)
        assert clipped.area() == pytest.approx(0.5, abs=1e-6)

    def test_split_partitions_area(self):
        sq = unit_square()
        hp = HalfPlane((0, 1), 0.3)
        inner, outer = sq.split(hp, new_label=5)
        assert inner.area() + outer.area() == pytest.approx(1.0)
        assert inner.area() == pytest.approx(0.3)
        assert 5 in inner.labels and 5 in outer.labels

    def test_split_degenerate_side(self):
        sq = unit_square()
        inner, outer = sq.split(HalfPlane((0, 1), 0.0), new_label=5)
        assert inner.area() == pytest.approx(0.0, abs=1e-9)
        assert outer.area() == pytest.approx(1.0)

    def test_edges_with_label(self):
        sq = unit_square().clip(HalfPlane((1, 0), 0.5), new_label=9)
        chords = sq.edges_with_label(9)
        assert len(chords) == 1
        (a, b) = chords[0]
        assert a[0] == pytest.approx(0.5)
        assert b[0] == pytest.approx(0.5)

    def test_max_vertex_distance(self):
        sq = unit_square()
        assert sq.max_vertex_distance((0, 0)) == pytest.approx(math.sqrt(2))
        assert ConvexPolygon.empty().max_vertex_distance((0, 0)) == 0.0

    def test_label_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ConvexPolygon([(0, 0), (1, 0), (0, 1)], labels=[1, 2])


class TestPointInPolygon:
    def test_even_odd_square(self):
        verts = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert point_in_polygon(verts, (0.5, 0.5))
        assert not point_in_polygon(verts, (1.5, 0.5))

    def test_even_odd_concave(self):
        # L-shaped polygon: notch at the top right.
        verts = [(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)]
        assert point_in_polygon(verts, (0.5, 1.5))
        assert not point_in_polygon(verts, (1.5, 1.5))

    def test_too_few_vertices(self):
        assert not point_in_polygon([(0, 0), (1, 1)], (0.5, 0.5))
        assert not point_in_convex([(0, 0), (1, 1)], (0.5, 0.5))

    def test_polygon_area_concave(self):
        verts = [(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)]
        assert polygon_area(verts) == pytest.approx(3.0)


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------

coords = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)


@st.composite
def half_planes(draw):
    angle = draw(st.floats(min_value=0, max_value=2 * math.pi))
    offset = draw(st.floats(min_value=-40, max_value=40))
    return HalfPlane((math.cos(angle), math.sin(angle)), offset)


@given(hp=half_planes())
@settings(max_examples=200)
def test_clip_never_grows_area(hp):
    sq = ConvexPolygon.from_box(-10, -10, 10, 10)
    clipped = sq.clip(hp, new_label=1)
    assert clipped.area() <= sq.area() + 1e-7


@given(hp=half_planes())
@settings(max_examples=200)
def test_split_partitions_total_area(hp):
    sq = ConvexPolygon.from_box(-10, -10, 10, 10)
    inner, outer = sq.split(hp, new_label=1)
    assert inner.area() + outer.area() == pytest.approx(sq.area(), rel=1e-6)


@given(hp=half_planes(), x=coords, y=coords)
@settings(max_examples=200)
def test_clipped_polygon_respects_half_plane(hp, x, y):
    sq = ConvexPolygon.from_box(-10, -10, 10, 10)
    clipped = sq.clip(hp, new_label=1)
    p = (x, y)
    if clipped.contains(p, tol=-1e-6):  # strictly inside
        assert hp.contains(p, tol=1e-5)


@given(
    hps=st.lists(half_planes(), min_size=1, max_size=8),
)
@settings(max_examples=100)
def test_repeated_clipping_stays_convex_and_consistent(hps):
    poly = ConvexPolygon.from_box(-10, -10, 10, 10)
    area = poly.area()
    for k, hp in enumerate(hps):
        poly = poly.clip(hp, new_label=k)
        new_area = poly.area()
        assert new_area <= area + 1e-7
        area = new_area
        if poly.is_empty:
            break
        # Centroid of a convex polygon lies inside it.
        assert poly.contains(poly.centroid(), tol=1e-6)
        # Labels stay aligned with vertices.
        assert len(poly.labels) == len(poly.vertices)
