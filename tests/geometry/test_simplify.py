"""Property and differential tests for the isoline simplifier.

The contract under test (module docstring of
:mod:`repro.geometry.simplify`):

- **pairing**: the vectorized kernels are bit-identical to their scalar
  references on any input;
- **guarantee**: every original vertex lies within the tolerance of the
  simplified curve (point-to-segment, which bounds the symmetric
  Hausdorff distance);
- **identity**: tolerance 0 returns the input unchanged (the serving
  byte-identity differentials lean on this);
- **idempotence**: simplifying a simplified curve is a no-op;
- **topology**: ring simplification preserves orientation and the
  guarded family simplifier never emits a self-intersecting ring or a
  broken nesting.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.simplify import (
    chain_points,
    polyline_deviation,
    ring_self_intersects,
    simplify_isolines,
    simplify_polyline,
    simplify_polyline_reference,
    simplify_ring,
    simplify_ring_reference,
    simplify_rings,
)

coords = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
points = st.lists(st.tuples(coords, coords), min_size=0, max_size=60)
tolerances = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


def wiggly_line(n, seed=0, noise=0.8):
    rng = random.Random(seed)
    return [
        (x, 5.0 * math.sin(0.4 * x) + rng.uniform(-noise, noise))
        for x in [20.0 * k / max(n - 1, 1) for k in range(n)]
    ]


def noisy_ring(n, seed=0, noise=0.4, ccw=True):
    rng = random.Random(seed)
    pts = []
    for k in range(n):
        th = 2.0 * math.pi * k / n
        r = 10.0 + 2.0 * math.sin(3.0 * th) + rng.uniform(-noise, noise)
        pts.append((r * math.cos(th), r * math.sin(th)))
    return pts if ccw else [pts[0]] + pts[1:][::-1]


# ----------------------------------------------------------------------
# Kernel pairing: bit-identity
# ----------------------------------------------------------------------


@given(pts=points, tol=tolerances)
@settings(max_examples=300, deadline=None)
def test_polyline_pair_bit_identical(pts, tol):
    assert simplify_polyline(pts, tol) == simplify_polyline_reference(pts, tol)


@given(pts=st.lists(st.tuples(coords, coords), min_size=3, max_size=40),
       tol=tolerances)
@settings(max_examples=300, deadline=None)
def test_ring_pair_bit_identical(pts, tol):
    assert simplify_ring(pts, tol) == simplify_ring_reference(pts, tol)


def test_pair_bit_identical_on_realistic_curves():
    for seed in range(20):
        line = wiggly_line(200, seed=seed)
        ring = noisy_ring(150, seed=seed)
        for tol in (0.05, 0.3, 1.0, 4.0):
            assert simplify_polyline(line, tol) == simplify_polyline_reference(
                line, tol
            )
            assert simplify_ring(ring, tol) == simplify_ring_reference(ring, tol)


# ----------------------------------------------------------------------
# The tolerance guarantee
# ----------------------------------------------------------------------


@given(pts=st.lists(st.tuples(coords, coords), min_size=2, max_size=60),
       tol=st.floats(min_value=1e-3, max_value=10.0, allow_nan=False))
@settings(max_examples=300, deadline=None)
def test_polyline_deviation_bounded_by_tolerance(pts, tol):
    simplified = simplify_polyline(pts, tol)
    assert polyline_deviation(pts, simplified) <= tol + 1e-12


@given(pts=st.lists(st.tuples(coords, coords), min_size=3, max_size=40),
       tol=st.floats(min_value=1e-3, max_value=10.0, allow_nan=False))
@settings(max_examples=300, deadline=None)
def test_ring_deviation_bounded_by_tolerance(pts, tol):
    simplified = simplify_ring(pts, tol)
    closed = simplified + [simplified[0]]
    assert polyline_deviation(pts, closed) <= tol + 1e-12


def test_endpoints_always_kept():
    line = wiggly_line(100, seed=3)
    for tol in (0.1, 1.0, 100.0):
        s = simplify_polyline(line, tol)
        assert s[0] == line[0] and s[-1] == line[-1]
        assert len(s) >= 2


# ----------------------------------------------------------------------
# Tolerance-0 identity and idempotence
# ----------------------------------------------------------------------


@given(pts=points)
@settings(max_examples=200, deadline=None)
def test_tolerance_zero_is_identity(pts):
    assert simplify_polyline(pts, 0.0) == [(p[0], p[1]) for p in pts]


@given(pts=st.lists(st.tuples(coords, coords), min_size=2, max_size=60),
       tol=tolerances)
@settings(max_examples=200, deadline=None)
def test_polyline_idempotent(pts, tol):
    once = simplify_polyline(pts, tol)
    assert simplify_polyline(once, tol) == once


@given(pts=st.lists(st.tuples(coords, coords), min_size=3, max_size=40),
       tol=tolerances)
@settings(max_examples=200, deadline=None)
def test_ring_idempotent(pts, tol):
    once = simplify_ring(pts, tol)
    assert simplify_ring(once, tol) == once


def test_negative_tolerance_rejected():
    with pytest.raises(ValueError):
        simplify_polyline([(0, 0), (1, 1)], -0.1)
    with pytest.raises(ValueError):
        simplify_polyline_reference([(0, 0), (1, 1)], -0.1)


# ----------------------------------------------------------------------
# Ring topology: orientation, self-intersection, nesting
# ----------------------------------------------------------------------


def signed_area(ring):
    return 0.5 * sum(
        ring[i][0] * ring[(i + 1) % len(ring)][1]
        - ring[(i + 1) % len(ring)][0] * ring[i][1]
        for i in range(len(ring))
    )


@pytest.mark.parametrize("ccw", [True, False])
def test_ring_orientation_preserved(ccw):
    ring = noisy_ring(120, seed=5, ccw=ccw)
    for tol in (0.2, 0.8):
        s = simplify_ring(ring, tol)
        assert len(s) >= 3
        assert (signed_area(s) > 0) == (signed_area(ring) > 0)


def test_simplify_rings_never_self_intersects():
    rings = [noisy_ring(150, seed=s, noise=1.2) for s in range(8)]
    for tol in (0.5, 2.0, 5.0):
        for s in simplify_rings(rings, tol):
            assert not ring_self_intersects(s)


def test_simplify_rings_preserves_nesting():
    outer = noisy_ring(200, seed=1, noise=0.3)
    inner = [(0.35 * x, 0.35 * y) for x, y in noisy_ring(120, seed=2, noise=0.1)]
    for tol in (0.5, 2.0):
        s_outer, s_inner = simplify_rings([outer, inner], tol)
        # Every kept inner vertex still inside the kept outer ring is the
        # guarded invariant; the guard falls back to originals otherwise.
        from repro.geometry.polygon import point_in_polygon

        assert all(point_in_polygon(s_outer, p) for p in s_inner)


# ----------------------------------------------------------------------
# simplify_isolines: the mixed open/closed entry point
# ----------------------------------------------------------------------


def test_simplify_isolines_handles_open_and_closed():
    ring = noisy_ring(100, seed=9)
    closed = ring + [ring[0]]  # explicit closing vertex, as regions emit
    open_line = wiggly_line(100, seed=9)
    out = simplify_isolines([closed, open_line], 0.5)
    assert len(out) == 2
    s_closed, s_open = out
    # The closed polyline stays explicitly closed and shrinks.
    assert s_closed[0] == s_closed[-1]
    assert 3 < len(s_closed) < len(closed)
    # The open polyline keeps its endpoints.
    assert s_open[0] == open_line[0] and s_open[-1] == open_line[-1]
    assert len(s_open) < len(open_line)


def test_simplify_isolines_tolerance_zero_identity():
    lines = [wiggly_line(30, seed=2), noisy_ring(20, seed=2)]
    assert simplify_isolines(lines, 0.0) == [
        [(p[0], p[1]) for p in line] for line in lines
    ]


# ----------------------------------------------------------------------
# chain_points: deterministic reassembly
# ----------------------------------------------------------------------


def test_chain_points_reassembles_shuffled_ring():
    ring = noisy_ring(60, seed=4, noise=0.05)
    order = list(range(len(ring)))
    random.Random(11).shuffle(order)
    shuffled = [ring[i] for i in order]
    chains = chain_points(shuffled)
    assert len(chains) == 1
    indices, is_ring = chains[0]
    assert is_ring
    assert sorted(indices) == list(range(len(ring)))


def test_chain_points_deterministic():
    rng = random.Random(13)
    pts = [(rng.uniform(0, 20), rng.uniform(0, 20)) for _ in range(80)]
    assert chain_points(pts) == chain_points(list(pts))
    assert chain_points(pts, gap_factor=12.0) == chain_points(
        list(pts), gap_factor=12.0
    )


def test_chain_points_splits_distant_branches():
    a = [(float(k), 0.0) for k in range(10)]
    b = [(float(k), 30.0) for k in range(10)]
    chains = chain_points(a + b)
    assert len(chains) == 2
    got = sorted(sorted(c) for c, _ in chains)
    assert got == [list(range(10)), list(range(10, 20))]
