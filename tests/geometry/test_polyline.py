"""Unit tests for polyline utilities and loop stitching."""

import pytest

from repro.geometry import polyline_length, resample_polyline, stitch_segments_into_loops
from repro.geometry.polyline import (
    TYPE1,
    TYPE2,
    BoundarySegment,
    loop_is_closed,
    loop_points,
)


def seg(a, b, kind=TYPE1, cell=0):
    return BoundarySegment(a, b, kind, cell)


class TestPolylineBasics:
    def test_length(self):
        assert polyline_length([(0, 0), (3, 0), (3, 4)]) == pytest.approx(7.0)
        assert polyline_length([(0, 0)]) == 0.0

    def test_resample_spacing(self):
        pts = resample_polyline([(0, 0), (10, 0)], spacing=1.0)
        assert len(pts) == 11
        assert pts[0] == (0, 0)
        assert pts[-1] == (10, 0)
        for i in range(len(pts) - 1):
            assert polyline_length(pts[i : i + 2]) == pytest.approx(1.0, abs=1e-6)

    def test_resample_includes_endpoints(self):
        pts = resample_polyline([(0, 0), (1, 0), (1, 1)], spacing=0.7)
        assert pts[0] == (0, 0)
        assert pts[-1] == (1, 1)

    def test_resample_invalid_spacing(self):
        with pytest.raises(ValueError):
            resample_polyline([(0, 0), (1, 1)], spacing=0)

    def test_resample_empty(self):
        assert resample_polyline([], 1.0) == []
        assert resample_polyline([(2, 2)], 1.0) == [(2, 2)]


class TestStitching:
    def test_square_loop(self):
        segs = [
            seg((0, 0), (1, 0)),
            seg((1, 0), (1, 1)),
            seg((1, 1), (0, 1)),
            seg((0, 1), (0, 0)),
        ]
        loops = stitch_segments_into_loops(segs)
        assert len(loops) == 1
        assert loop_is_closed(loops[0])
        assert len(loops[0]) == 4

    def test_loop_with_reversed_segments(self):
        segs = [
            seg((0, 0), (1, 0)),
            seg((1, 1), (1, 0)),  # reversed
            seg((1, 1), (0, 1)),
            seg((0, 0), (0, 1)),  # reversed
        ]
        loops = stitch_segments_into_loops(segs)
        assert len(loops) == 1
        assert loop_is_closed(loops[0])

    def test_two_disjoint_loops(self):
        square1 = [
            seg((0, 0), (1, 0)),
            seg((1, 0), (1, 1)),
            seg((1, 1), (0, 1)),
            seg((0, 1), (0, 0)),
        ]
        square2 = [
            seg((5, 5), (6, 5)),
            seg((6, 5), (6, 6)),
            seg((6, 6), (5, 6)),
            seg((5, 6), (5, 5)),
        ]
        loops = stitch_segments_into_loops(square1 + square2)
        assert len(loops) == 2
        assert all(loop_is_closed(lp) for lp in loops)

    def test_tolerance_bridges_small_gaps(self):
        segs = [
            seg((0, 0), (1, 0)),
            seg((1 + 1e-8, 0), (1, 1)),
            seg((1, 1), (0, 1)),
            seg((0, 1), (0, 1e-8)),
        ]
        loops = stitch_segments_into_loops(segs, tol=1e-6)
        assert len(loops) == 1
        assert loop_is_closed(loops[0], tol=1e-6)

    def test_zero_length_segments_dropped(self):
        segs = [
            seg((0, 0), (0, 0)),
            seg((0, 0), (1, 0)),
            seg((1, 0), (1, 1)),
            seg((1, 1), (0, 0)),
        ]
        loops = stitch_segments_into_loops(segs)
        assert len(loops) == 1
        assert len(loops[0]) == 3

    def test_empty_input(self):
        assert stitch_segments_into_loops([]) == []

    def test_loop_points_order(self):
        segs = [
            seg((0, 0), (1, 0)),
            seg((1, 0), (1, 1)),
            seg((1, 1), (0, 0)),
        ]
        loops = stitch_segments_into_loops(segs)
        pts = loop_points(loops[0])
        assert len(pts) == 3
        assert pts[0] == (0, 0)

    def test_kind_preserved_through_stitching(self):
        segs = [
            seg((0, 0), (1, 0), kind=TYPE1),
            seg((1, 0), (1, 1), kind=TYPE2),
            seg((1, 1), (0, 0), kind=TYPE1),
        ]
        loops = stitch_segments_into_loops(segs)
        kinds = sorted(s.kind for s in loops[0])
        assert kinds == [TYPE1, TYPE1, TYPE2]
