"""Unit and property tests for 1-D interval arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Interval, merge_intervals, subtract_intervals
from repro.geometry.intervals import total_length


class TestInterval:
    def test_normalisation(self):
        iv = Interval(3, 1)
        assert iv.lo == 1 and iv.hi == 3

    def test_length(self):
        assert Interval(1, 4).length == 3

    def test_intersects(self):
        assert Interval(0, 2).intersects(Interval(1, 3))
        assert not Interval(0, 1).intersects(Interval(2, 3))
        assert Interval(0, 1).intersects(Interval(1, 2))  # touching counts

    def test_intersection(self):
        assert Interval(0, 2).intersection(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).intersection(Interval(2, 3)) is None


class TestMerge:
    def test_merges_overlapping(self):
        out = merge_intervals([Interval(0, 2), Interval(1, 3), Interval(5, 6)])
        assert out == [Interval(0, 3), Interval(5, 6)]

    def test_merges_touching_within_tol(self):
        out = merge_intervals([Interval(0, 1), Interval(1 + 1e-12, 2)])
        assert len(out) == 1

    def test_empty(self):
        assert merge_intervals([]) == []


class TestSubtract:
    def test_hole_in_middle(self):
        out = subtract_intervals(Interval(0, 10), [Interval(4, 6)])
        assert out == [Interval(0, 4), Interval(6, 10)]

    def test_hole_covers_everything(self):
        assert subtract_intervals(Interval(2, 3), [Interval(0, 10)]) == []

    def test_hole_at_edges(self):
        out = subtract_intervals(Interval(0, 10), [Interval(0, 2), Interval(8, 10)])
        assert out == [Interval(2, 8)]

    def test_disjoint_hole_no_effect(self):
        out = subtract_intervals(Interval(0, 1), [Interval(5, 6)])
        assert out == [Interval(0, 1)]

    def test_multiple_holes(self):
        out = subtract_intervals(
            Interval(0, 10), [Interval(1, 2), Interval(3, 4), Interval(9, 12)]
        )
        assert out == [Interval(0, 1), Interval(2, 3), Interval(4, 9)]

    def test_degenerate_slivers_dropped(self):
        out = subtract_intervals(Interval(0, 1), [Interval(1e-12, 1)])
        assert out == []


ivs = st.builds(
    Interval,
    st.floats(min_value=-100, max_value=100),
    st.floats(min_value=-100, max_value=100),
)


@given(base=ivs, holes=st.lists(ivs, max_size=8))
@settings(max_examples=200)
def test_subtract_never_exceeds_base(base, holes):
    out = subtract_intervals(base, holes)
    for seg in out:
        assert seg.lo >= base.lo - 1e-9
        assert seg.hi <= base.hi + 1e-9
    assert total_length(out) <= base.length + 1e-6


@given(base=ivs, holes=st.lists(ivs, max_size=8))
@settings(max_examples=200)
def test_subtract_result_disjoint_from_holes(base, holes):
    out = subtract_intervals(base, holes)
    for seg in out:
        mid = (seg.lo + seg.hi) / 2
        for hole in holes:
            # The midpoint of a surviving segment is never strictly inside
            # a hole.
            assert not (hole.lo + 1e-9 < mid < hole.hi - 1e-9)


@given(base=ivs, holes=st.lists(ivs, max_size=8))
@settings(max_examples=200)
def test_subtract_conserves_length(base, holes):
    out = subtract_intervals(base, holes)
    covered = total_length(
        [h.intersection(base) for h in holes if h.intersection(base) is not None]
    )
    assert total_length(out) == pytest.approx(base.length - covered, abs=1e-4)
