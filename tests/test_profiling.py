"""Unit tests for the stage-profiling harness.

The contract the instrumented pipeline relies on: disabled profiling is
free (a shared no-op object, no stats mutation), enabled profiling
accumulates per-stage totals/counts, and worker snapshots merge
additively into the parent's counters.
"""

import time

import pytest

from repro import profiling


@pytest.fixture(autouse=True)
def clean_profiling_state():
    profiling.disable()
    profiling.reset()
    yield
    profiling.disable()
    profiling.reset()


class TestDisabledPath:
    def test_stage_returns_shared_noop(self):
        assert profiling.stage("a") is profiling.stage("b")

    def test_nothing_recorded_when_disabled(self):
        with profiling.stage("quiet"):
            pass
        assert profiling.snapshot() == {}

    def test_decorator_passes_through(self):
        @profiling.profiled("fn")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert profiling.snapshot() == {}

    def test_format_table_empty_message(self):
        assert "no stages recorded" in profiling.format_table()


class TestEnabledPath:
    def test_stage_records_time_and_calls(self):
        profiling.enable()
        for _ in range(3):
            with profiling.stage("work"):
                time.sleep(0.001)
        snap = profiling.snapshot()
        seconds, calls = snap["work"]
        assert calls == 3
        assert seconds >= 0.003

    def test_decorator_records_and_preserves_result(self):
        profiling.enable()

        @profiling.profiled("fn")
        def mul(a, b):
            return a * b

        assert mul(6, 7) == 42
        assert mul.__name__ == "mul"
        assert profiling.snapshot()["fn"][1] == 1

    def test_decorator_records_on_exception(self):
        profiling.enable()

        @profiling.profiled("boom")
        def explode():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            explode()
        assert profiling.snapshot()["boom"][1] == 1

    def test_nested_stages_both_recorded(self):
        profiling.enable()
        with profiling.stage("outer"):
            with profiling.stage("inner"):
                pass
        snap = profiling.snapshot()
        assert snap["outer"][1] == 1
        assert snap["inner"][1] == 1

    def test_disable_keeps_stats_reset_clears(self):
        profiling.enable()
        with profiling.stage("kept"):
            pass
        profiling.disable()
        assert "kept" in profiling.snapshot()
        profiling.reset()
        assert profiling.snapshot() == {}

    def test_is_enabled_tracks_switch(self):
        assert not profiling.is_enabled()
        profiling.enable()
        assert profiling.is_enabled()
        profiling.disable()
        assert not profiling.is_enabled()


class TestSnapshotMerge:
    def test_merge_adds_counters(self):
        profiling.enable()
        with profiling.stage("shared"):
            pass
        profiling.merge_snapshot({"shared": (0.5, 4), "worker_only": (0.25, 2)})
        snap = profiling.snapshot()
        assert snap["shared"][1] == 5
        assert snap["shared"][0] >= 0.5
        assert snap["worker_only"] == (0.25, 2)

    def test_merge_accepts_json_roundtrip_shape(self):
        # Worker snapshots cross a pickle/JSON boundary as lists.
        profiling.merge_snapshot({"s": [0.125, 3]})
        assert profiling.snapshot()["s"] == (0.125, 3)

    def test_snapshot_is_a_copy(self):
        profiling.enable()
        with profiling.stage("iso"):
            pass
        snap = profiling.snapshot()
        snap["iso"] = (999.0, 999)
        assert profiling.snapshot()["iso"] != (999.0, 999)


class TestFormatTable:
    def test_table_contains_stages_and_totals(self):
        profiling.merge_snapshot({"slow": (0.75, 3), "fast": (0.25, 5)})
        table = profiling.format_table("my title")
        assert "my title" in table
        assert "slow" in table and "fast" in table
        assert "(sum of stages)" in table
        # Slowest first.
        assert table.index("slow") < table.index("fast")

    def test_title_can_be_suppressed(self):
        profiling.merge_snapshot({"s": (0.1, 1)})
        assert not profiling.format_table(title=None).startswith("stage profile")
