"""Prediction-off byte-identity goldens for the continuous monitor.

The dead-reckoning contract (docs/architecture.md, "Prediction"): with
``prediction=None`` -- the default -- :class:`ContinuousIsoMap` must
produce byte-for-byte the epoch streams it produced before the
predictor existed.  This suite pins that against committed fixtures
captured from the pre-prediction code:

- the **serving stream**: per-epoch SHA-256 of the wire delta payload a
  :class:`~repro.serving.session.SessionCompute` emits, across all four
  deterministic scenarios (steady / tide / storm / pulse);
- the **faulted stream**: a direct monitor run under moderate faults
  (a sensing-failure wave at epoch 3, a crash wave with tree rebuild at
  epoch 5), hashing the codec-encoded delivered reports, the retraction
  sources and the sink value of every epoch.

Both are exercised twice: with the default constructor (no ``prediction``
argument at all) and with an explicit ``prediction=None``, so the knob's
off position is pinned to the same bytes as its absence.

Regenerate the fixture (only when the *pre-prediction* protocol itself
changes, never to absorb a prediction regression) with::

    PYTHONPATH=src python tests/core/test_prediction_off_golden.py --regen
"""

import hashlib
import json
import os
import random
import struct
import sys

import pytest

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "continuous_streams.json"
)

SCENARIOS = ("steady", "tide", "storm", "pulse")
EPOCHS = 8


def _monitor_kwargs(explicit_off: bool):
    # explicit_off exercises `prediction=None` spelled out; otherwise the
    # argument is omitted entirely (the pre-prediction call shape).
    return {"prediction": None} if explicit_off else {}


def serving_stream(scenario: str, explicit_off: bool = False):
    """Per-epoch digests of the session wire stream for one scenario."""
    from repro.core.continuous import ContinuousIsoMap
    from repro.serving.session import SessionCompute, SessionConfig

    config = SessionConfig(query_id=f"golden-{scenario}", scenario=scenario)
    compute = SessionCompute(config)
    if explicit_off:
        compute.monitor = ContinuousIsoMap(
            compute.query,
            angle_delta_deg=config.angle_delta_deg,
            **_monitor_kwargs(True),
        )
    rows = []
    for epoch in range(1, EPOCHS + 1):
        out = compute.epoch(epoch)
        rows.append(
            {
                "epoch": epoch,
                "delta_sha256": hashlib.sha256(out["delta"]).hexdigest(),
                "crc": out["crc"],
                "records": len(out["records"]),
                "delivered": out["delivered"],
                "retracted": out["retracted"],
                "suppressed": out["suppressed"],
            }
        )
    return rows


def faulted_stream(explicit_off: bool = False):
    """Per-epoch digests of a direct monitor run under moderate faults."""
    from repro.core.codec import ReportCodec
    from repro.core.continuous import ContinuousIsoMap
    from repro.network import SensorNetwork
    from repro.serving.session import SessionConfig, base_field, field_for_epoch

    config = SessionConfig(query_id="golden-faults", scenario="tide")
    query = config.query()
    network = SensorNetwork.random_deploy(
        base_field(config),
        config.n_nodes,
        radio_range=config.radio_range,
        seed=config.seed,
    )
    monitor = ContinuousIsoMap(
        query,
        angle_delta_deg=config.angle_delta_deg,
        **_monitor_kwargs(explicit_off),
    )
    codec = ReportCodec.for_query(query, network.bounds)
    rows = []
    for epoch in range(1, EPOCHS + 1):
        if epoch == 3:
            # A sensing-failure wave: nodes stop reporting but keep routing.
            network.fail_random(0.08, random.Random(1234), mode="sensing")
        if epoch == 5:
            # A crash wave: nodes drop out and the tree is rebuilt.
            network.fail_random(0.05, random.Random(99), mode="crash")
        network.resense(field_for_epoch(config, epoch))
        result = monitor.epoch(network)
        h = hashlib.sha256()
        for report in result.delivered_reports:
            h.update(codec.encode(report))
        for source in sorted(result.retractions):
            h.update(struct.pack("<I", source))
        sink = (
            b"none"
            if result.sink_value is None
            else struct.pack("<H", codec.quantize_value(result.sink_value))
        )
        h.update(sink)
        rows.append(
            {
                "epoch": epoch,
                "digest": h.hexdigest(),
                "delivered": len(result.delivered_reports),
                "retracted": len(result.retractions),
                "suppressed": result.suppressed,
                "cached": result.cached_reports,
            }
        )
    return rows


def _collect():
    return {
        "epochs": EPOCHS,
        "serving": {s: serving_stream(s) for s in SCENARIOS},
        "faulted": faulted_stream(),
    }


def _load_golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as f:
        return json.load(f)


@pytest.mark.parametrize("explicit_off", [False, True])
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_serving_stream_matches_golden(scenario, explicit_off):
    golden = _load_golden()
    assert serving_stream(scenario, explicit_off) == golden["serving"][scenario]


@pytest.mark.parametrize("explicit_off", [False, True])
def test_faulted_stream_matches_golden(explicit_off):
    golden = _load_golden()
    assert faulted_stream(explicit_off) == golden["faulted"]


if __name__ == "__main__":
    if "--regen" not in sys.argv:
        sys.exit("usage: test_prediction_off_golden.py --regen")
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as f:
        json.dump(_collect(), f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {GOLDEN_PATH}")
