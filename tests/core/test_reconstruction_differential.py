"""Differential tests: fast reconstruction kernels vs their references.

The sink pipeline swaps three inner kernels (all-pairs dedupe -> spatial
hash, sorted Voronoi -> prefiltered Voronoi, rescanning boundary
extraction -> edge-indexed extraction) while claiming bit-identical
output.  These tests pin each swap and then the whole composition:
``build_level_region`` against ``build_level_region_reference`` must
agree on every float of every cell, loop and statistic.
"""

import math
import random

import pytest

from repro.core.reconstruction import (
    DEDUPE_TOL,
    _dedupe_reports,
    _dedupe_reports_reference,
    build_level_region,
    build_level_region_reference,
)
from repro.core.reports import IsolineReport
from repro.geometry import BoundingBox

BOX = BoundingBox(0, 0, 50, 50)


def ring_reports(n, seed=0, level=8.0):
    rng = random.Random(seed)
    out = []
    for k in range(n):
        ang = 2 * math.pi * k / n + rng.uniform(-0.4, 0.4) * math.pi / n
        r = 15 + 4 * math.sin(3 * ang) + rng.uniform(-0.4, 0.4)
        pos = (25 + r * math.cos(ang), 25 + r * math.sin(ang))
        out.append(IsolineReport(level, pos, (math.cos(ang), math.sin(ang)), k))
    return out


def noisy_reports(n, seed, dup_fraction=0.4):
    """Random reports, a ``dup_fraction`` of them near-clones of earlier
    ones -- half inside the dedupe tolerance, half just outside it."""
    rng = random.Random(seed)
    base = ring_reports(max(2, int(n * (1 - dup_fraction))), seed=seed)
    out = list(base)
    while len(out) < n:
        src = rng.choice(base)
        eps = (
            rng.uniform(0.05, 0.95) * DEDUPE_TOL
            if rng.random() < 0.5
            else rng.uniform(1.5, 4.0) * DEDUPE_TOL
        )
        ang = rng.uniform(0, 2 * math.pi)
        pos = (src.position[0] + eps * math.cos(ang),
               src.position[1] + eps * math.sin(ang))
        out.append(IsolineReport(src.isolevel, pos, src.direction, len(out)))
    rng.shuffle(out)
    return out


class TestDedupeDifferential:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_all_pairs_reference(self, seed):
        reports = noisy_reports(120, seed)
        assert _dedupe_reports(reports) == _dedupe_reports_reference(reports)

    def test_exact_duplicates_first_wins(self):
        reports = ring_reports(10)
        doubled = reports + [
            IsolineReport(r.isolevel, r.position, r.direction, 99) for r in reports
        ]
        got = _dedupe_reports(doubled)
        assert got == reports  # originals kept, clones dropped
        assert got == _dedupe_reports_reference(doubled)

    def test_survivors_are_pairwise_separated(self):
        got = _dedupe_reports(noisy_reports(150, seed=42))
        for i, a in enumerate(got):
            for b in got[i + 1 :]:
                dx = a.position[0] - b.position[0]
                dy = a.position[1] - b.position[1]
                assert dx * dx + dy * dy > DEDUPE_TOL**2

    def test_bucket_boundary_pairs(self):
        # Duplicates straddling a hash-bucket boundary must still be found
        # (the 3x3 neighbourhood scan).
        k = 1.0  # exact bucket edge at multiples of DEDUPE_TOL
        a = IsolineReport(8.0, (k * DEDUPE_TOL - 0.2 * DEDUPE_TOL, 5.0), (1.0, 0.0), 0)
        b = IsolineReport(8.0, (k * DEDUPE_TOL + 0.2 * DEDUPE_TOL, 5.0), (1.0, 0.0), 1)
        far = IsolineReport(8.0, (10.0, 10.0), (0.0, 1.0), 2)
        reports = [a, b, far]
        assert _dedupe_reports(reports) == _dedupe_reports_reference(reports) == [a, far]


class TestRegionDifferential:
    def assert_regions_identical(self, got, want):
        assert got.reports == want.reports
        assert len(got.cells) == len(want.cells)
        for cg, cw in zip(got.cells, want.cells):
            assert cg.polygon.vertices == cw.polygon.vertices
            assert cg.polygon.labels == cw.polygon.labels
            assert cg.neighbors == cw.neighbors
        assert [p.vertices for p in got.inner_polys] == [
            p.vertices for p in want.inner_polys
        ]
        assert got.loops == want.loops
        assert got.regulated_loops == want.regulated_loops
        assert got.regulation_stats == want.regulation_stats

    @pytest.mark.parametrize("n,seed", [(60, 1), (90, 2), (130, 3)])
    def test_ring_regions_identical(self, n, seed):
        reports = ring_reports(n, seed=seed)
        self.assert_regions_identical(
            build_level_region(8.0, reports, BOX),
            build_level_region_reference(8.0, reports, BOX),
        )

    def test_noisy_region_identical(self):
        reports = noisy_reports(100, seed=7)
        self.assert_regions_identical(
            build_level_region(8.0, reports, BOX),
            build_level_region_reference(8.0, reports, BOX),
        )

    def test_unregulated_region_identical(self):
        reports = ring_reports(70, seed=11)
        self.assert_regions_identical(
            build_level_region(8.0, reports, BOX, regulate=False),
            build_level_region_reference(8.0, reports, BOX, regulate=False),
        )

    def test_small_report_set_identical(self):
        # Below the Voronoi batch threshold both paths share the scalar
        # clipper; the dedupe/boundary swaps must still agree.
        reports = ring_reports(12, seed=13)
        self.assert_regions_identical(
            build_level_region(8.0, reports, BOX),
            build_level_region_reference(8.0, reports, BOX),
        )
