"""Integration tests: the model-predictive suppressor inside
:class:`~repro.core.continuous.ContinuousIsoMap`.

Covers the PR's committed behaviour at the monitor level:

- prediction mode delivers (substantially) fewer reports than the
  dead-reckoning-off baseline on a steadily drifting field;
- sink staleness never exceeds the heartbeat cap;
- the sink cache mirrors the bank (``cache_updates``/``cache_removed``
  fold reproduces the cache exactly);
- the batched ``_forward`` charges per-node costs exactly equal to the
  scalar ``_forward_reference`` hop walk, including across a routing
  tree rebuild (path-cache invalidation).
"""

import random

import numpy as np
import pytest

from repro.core import ContourQuery
from repro.core.continuous import ContinuousIsoMap
from repro.core.prediction import PredictionConfig
from repro.field import RadialField
from repro.geometry import BoundingBox
from repro.network import SensorNetwork
from repro.network.accounting import CostAccountant

BOX = BoundingBox(0, 0, 20, 20)


def drifting_field(epoch):
    """The serving layer's "front" scenario: rigid translation at 2.5%
    of span per epoch."""
    frac = 0.30 + min(0.025 * epoch, 0.40)
    return RadialField(BOX, center=(BOX.xmin + frac * 20.0, 10.0), peak=20, slope=1)


def make_net(seed=7, n=600):
    return SensorNetwork.random_deploy(
        drifting_field(0), n, radio_range=2.2, seed=seed
    )


def make_monitor(prediction=None):
    return ContinuousIsoMap(
        ContourQuery(14.0, 16.0, 2.0, epsilon_fraction=0.2),
        angle_delta_deg=10.0,
        prediction=prediction,
    )


def run_timeline(monitor, net, epochs=12):
    results = []
    for e in range(epochs):
        net.resense(drifting_field(e))
        results.append(monitor.epoch(net))
    return results


class TestPredictionSuppression:
    def test_fewer_deliveries_than_baseline_on_steady_drift(self):
        base_net, pred_net = make_net(), make_net()
        base = make_monitor()
        pred = make_monitor(PredictionConfig(position_tolerance=1.1))
        base_r = run_timeline(base, base_net)
        pred_r = run_timeline(pred, pred_net)
        # Skip the cold start and the LMS warm-up epochs.
        b = sum(len(r.delivered_reports) for r in base_r[3:])
        p = sum(len(r.delivered_reports) for r in pred_r[3:])
        assert p < b * 0.7
        assert sum(r.predicted for r in pred_r) > 0

    def test_prediction_reduces_report_traffic(self):
        base_net, pred_net = make_net(), make_net()
        base = make_monitor()
        pred = make_monitor(PredictionConfig(position_tolerance=1.1))
        base_r = run_timeline(base, base_net)
        pred_r = run_timeline(pred, pred_net)
        b = sum(r.costs.total_traffic_bytes() for r in base_r[3:])
        p = sum(r.costs.total_traffic_bytes() for r in pred_r[3:])
        assert p < b

    def test_staleness_bounded_by_heartbeat(self):
        cfg = PredictionConfig(position_tolerance=1.1, heartbeat=4)
        pred = make_monitor(cfg)
        net = make_net()
        for r in run_timeline(pred, net):
            assert r.staleness <= cfg.heartbeat
            assert r.tracks == r.cached_reports

    def test_off_mode_has_empty_prediction_metadata(self):
        base = make_monitor()
        net = make_net()
        for r in run_timeline(base, net, epochs=4):
            assert r.predicted == 0
            assert r.heartbeats == 0
            assert r.staleness == 0
            assert r.tracks == 0

    def test_cache_delta_fold_reproduces_sink_cache(self):
        """Folding cache_updates/cache_removed epoch by epoch rebuilds
        exactly the monitor's sink cache (the serving layer's delta
        contract)."""
        pred = make_monitor(PredictionConfig(position_tolerance=1.1))
        net = make_net()
        folded = {}
        for e in range(10):
            net.resense(drifting_field(e))
            r = pred.epoch(net)
            for src in r.cache_removed:
                folded.pop(src, None)
            for rep in r.cache_updates:
                folded[rep.source] = rep
            mirror = {rep.source: rep for rep in pred.sink_reports}
            assert folded == mirror

    def test_zero_heartbeat_disables_suppression(self):
        pred = make_monitor(
            PredictionConfig(position_tolerance=1.1, heartbeat=0)
        )
        net = make_net()
        for r in run_timeline(pred, net, epochs=5):
            assert r.predicted == 0


class TestPredictionProfiling:
    def test_prediction_stages_recorded(self):
        from repro import profiling

        profiling.reset()
        profiling.enable()
        try:
            pred = make_monitor(PredictionConfig(position_tolerance=1.1))
            net = make_net(n=200)
            for e in range(3):
                net.resense(drifting_field(e))
                pred.epoch(net)
            snap = profiling.snapshot()
        finally:
            profiling.disable()
            profiling.reset()
        for stage in (
            "prediction.predict",
            "prediction.decide",
            "prediction.update",
            "prediction.extrapolate",
        ):
            assert stage in snap, f"missing profiling stage {stage}"

    def test_prediction_stages_merged_from_sweep_workers(self):
        """The sweep runner ships worker stage snapshots back to the
        parent; prediction.* must ride along like reconstruction.*."""
        from repro import profiling
        from repro.experiments.fig_predict import predict_point
        from repro.experiments.runner import grid_points, run_sweep

        profiling.reset()
        profiling.enable()
        try:
            run_sweep(
                grid_points(
                    predict_point,
                    [{"scenario": "front", "tolerance": 1.1,
                      "n": 150, "epochs": 3}],
                    [7],
                ),
                jobs=2,
                cache_dir=None,
            )
            snap = profiling.snapshot()
        finally:
            profiling.disable()
            profiling.reset()
        assert any(k.startswith("prediction.") for k in snap), (
            f"no prediction.* stage merged from workers: {sorted(snap)}"
        )


class TestForwardDifferential:
    def _run_pair(self, fault=None):
        """Run the same epoch stream through _forward and
        _forward_reference, comparing per-node cost vectors exactly."""
        net_a, net_b = make_net(), make_net()
        mon = make_monitor()
        for e in range(6):
            for net in (net_a, net_b):
                net.resense(drifting_field(e))
            if fault is not None and e == 3:
                for net in (net_a, net_b):
                    fault(net)
            # Recompute the same epoch's deltas on both networks; charge
            # one through each twin.
            costs_a = CostAccountant(net_a.n_nodes)
            costs_b = CostAccountant(net_b.n_nodes)
            r = mon.epoch(net_a)  # drives node state forward once
            reports = r.delivered_reports
            retractions = r.retractions
            delivered_fast = mon._forward(net_a, reports, retractions, costs_a)
            delivered_ref = mon._forward_reference(
                net_b, reports, retractions, costs_b
            )
            assert [x.source for x in delivered_fast[0]] == [
                x.source for x in delivered_ref[0]
            ]
            assert delivered_fast[1] == delivered_ref[1]
            np.testing.assert_array_equal(costs_a.tx_bytes, costs_b.tx_bytes)
            np.testing.assert_array_equal(costs_a.rx_bytes, costs_b.rx_bytes)

    def test_costs_equal_on_steady_drift(self):
        self._run_pair()

    def test_costs_equal_across_tree_rebuild(self):
        def crash(net):
            net.fail_random(0.05, random.Random(99), mode="crash")

        self._run_pair(fault=crash)

    def test_path_cache_invalidated_on_new_tree(self):
        net = make_net()
        mon = make_monitor()
        mon.epoch(net)
        old_tree = net.tree
        assert mon._path_tree is old_tree
        assert mon._path_cache
        net.fail_random(0.05, random.Random(5), mode="crash")
        assert net.tree is not old_tree
        net.resense(drifting_field(1))
        mon.epoch(net)
        assert mon._path_tree is net.tree

    def test_path_suffix_sharing(self):
        net = make_net()
        mon = make_monitor()
        tree = net.tree
        # Find a source with a path of length >= 3 and check its suffixes
        # land in the cache.
        for source in range(net.n_nodes):
            if tree.level[source] is None:
                continue
            raw = tree.path_to_sink(source)
            if len(raw) >= 3:
                break
        path = mon._path(tree, source)
        assert path.tolist() == raw
        for i in range(1, len(raw)):
            assert mon._path_cache[raw[i]].tolist() == raw[i:]
