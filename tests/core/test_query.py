"""Unit tests for the contour query."""

import pytest

from repro.core import ContourQuery


class TestConstruction:
    def test_defaults_match_paper(self):
        q = ContourQuery(6.0, 12.0, 2.0)
        assert q.epsilon_fraction == 0.05  # "epsilon is selected as 0.05 T"
        assert q.k_hop == 1

    def test_epsilon(self):
        q = ContourQuery(0.0, 10.0, 2.0, epsilon_fraction=0.1)
        assert q.epsilon == pytest.approx(0.2)

    def test_isolevels(self):
        q = ContourQuery(6.0, 12.0, 2.0)
        assert q.isolevels == [6.0, 8.0, 10.0, 12.0]

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            ContourQuery(0, 10, 0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            ContourQuery(10, 0, 1)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            ContourQuery(0, 10, 2, epsilon_fraction=0.5)
        with pytest.raises(ValueError):
            ContourQuery(0, 10, 2, epsilon_fraction=0.0)

    def test_invalid_k_hop(self):
        with pytest.raises(ValueError):
            ContourQuery(0, 10, 2, k_hop=0)


class TestMatchingIsolevel:
    def test_inside_border_region(self):
        q = ContourQuery(0.0, 10.0, 2.0)  # eps = 0.1
        assert q.matching_isolevel(4.05) == 4.0
        assert q.matching_isolevel(3.95) == 4.0

    def test_exactly_at_isolevel(self):
        q = ContourQuery(0.0, 10.0, 2.0)
        assert q.matching_isolevel(6.0) == 6.0

    def test_outside_border_region(self):
        q = ContourQuery(0.0, 10.0, 2.0)
        assert q.matching_isolevel(4.5) is None
        assert q.matching_isolevel(-5.0) is None

    def test_boundary_of_border_region(self):
        q = ContourQuery(0.0, 10.0, 2.0)
        assert q.matching_isolevel(4.1) == 4.0  # exactly eps away (closed)

    def test_at_most_one_match(self):
        # Border regions are disjoint because eps < T/2.
        q = ContourQuery(0.0, 10.0, 1.0, epsilon_fraction=0.49)
        for v in [0.0, 0.49, 0.51, 1.0, 1.49]:
            match = q.matching_isolevel(v)
            if match is not None:
                assert abs(v - match) <= q.epsilon + 1e-12
