"""Integration-grade unit tests for the end-to-end Iso-Map protocol."""

import pytest

from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.core.wire import ISOLINE_REPORT_BYTES
from repro.field import PlaneField, RadialField, make_harbor_field
from repro.geometry import BoundingBox
from repro.network import SensorNetwork

BOX = BoundingBox(0, 0, 20, 20)


def radial_net(n=400, seed=0):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.random_deploy(field, n, radio_range=2.0, seed=seed)


class TestRun:
    def test_produces_reports_and_map(self):
        net = radial_net()
        q = ContourQuery(14.0, 16.0, 2.0, epsilon_fraction=0.2)
        res = IsoMapProtocol(q).run(net)
        assert res.generated_reports
        assert res.delivered_reports
        assert res.contour_map.regions

    def test_reports_near_true_isolines(self):
        import math

        net = radial_net(seed=1)
        q = ContourQuery(15.0, 15.0, 2.0, epsilon_fraction=0.2)
        res = IsoMapProtocol(q).run(net)
        for r in res.delivered_reports:
            # True isoline of level 15 is the circle of radius 5.
            rad = math.dist(r.position, (10, 10))
            assert abs(rad - 5.0) < 0.5

    def test_gradient_directions_point_outward(self):
        import math

        net = radial_net(seed=2)
        q = ContourQuery(15.0, 15.0, 2.0, epsilon_fraction=0.2)
        res = IsoMapProtocol(q).run(net)
        for r in res.delivered_reports:
            outward = (
                (r.position[0] - 10) * r.direction[0]
                + (r.position[1] - 10) * r.direction[1]
            )
            assert outward > 0, "descent must point away from the peak"

    def test_classification_recovers_disc(self):
        net = radial_net(seed=3)
        q = ContourQuery(15.0, 15.0, 2.0, epsilon_fraction=0.2)
        res = IsoMapProtocol(q).run(net)
        cmap = res.contour_map
        assert cmap.band_at((10, 10)) == 1
        assert cmap.band_at((1, 1)) == 0

    def test_filtering_reduces_delivery(self):
        net = radial_net(n=800, seed=4)
        q = ContourQuery(15.0, 15.0, 2.0, epsilon_fraction=0.2)
        unfiltered = IsoMapProtocol(q, FilterConfig.disabled()).run(net)
        filtered = IsoMapProtocol(q, FilterConfig(30, 4)).run(net)
        assert len(filtered.delivered_reports) < len(unfiltered.delivered_reports)
        assert filtered.costs.total_traffic_bytes() < unfiltered.costs.total_traffic_bytes()
        # Without filtering nothing is dropped in transit.
        assert unfiltered.dropped_by_filter == 0

    def test_cost_counters_consistent(self):
        net = radial_net(seed=5)
        q = ContourQuery(15.0, 15.0, 2.0, epsilon_fraction=0.2)
        res = IsoMapProtocol(q).run(net)
        assert res.costs.reports_generated == len(res.generated_reports)
        assert res.costs.reports_delivered == len(res.delivered_reports)
        # Every delivered report travelled at least one hop.
        assert (
            res.costs.total_traffic_bytes()
            >= len(res.delivered_reports) * ISOLINE_REPORT_BYTES
        )

    def test_no_isoline_nodes_when_levels_unreachable(self):
        net = radial_net(seed=6)
        q = ContourQuery(100.0, 100.0, 2.0)
        res = IsoMapProtocol(q).run(net)
        assert res.generated_reports == []
        # The sink's own value decides: everything is below level 100.
        assert res.contour_map.band_at((10, 10)) == 0

    def test_whole_field_above_level(self):
        field = PlaneField(BOX, c0=50.0, cx=0.001, cy=0)  # ~50 everywhere
        net = SensorNetwork.random_deploy(field, 200, radio_range=2.5, seed=7)
        q = ContourQuery(10.0, 10.0, 2.0)
        res = IsoMapProtocol(q).run(net)
        assert res.generated_reports == []
        assert res.contour_map.band_at((10, 10)) == 1  # inferred full

    def test_sensing_failures_reduce_reports(self):
        net = radial_net(n=800, seed=8)
        q = ContourQuery(15.0, 15.0, 2.0, epsilon_fraction=0.2)
        before = IsoMapProtocol(q, FilterConfig.disabled()).run(net)
        net.fail_random(0.4, mode="sensing")
        after = IsoMapProtocol(q, FilterConfig.disabled()).run(net)
        assert len(after.generated_reports) < len(before.generated_reports)

    def test_harbor_run_matches_paper_regime(self):
        net = SensorNetwork.random_deploy(make_harbor_field(), 2500, seed=1)
        q = ContourQuery(6.0, 12.0, 2.0)
        res = IsoMapProtocol(q, FilterConfig(30, 4)).run(net)
        # Paper (Fig. 10e): 89 reports received at density 1 with these
        # thresholds.  Field shape differs, so assert the regime only.
        assert 30 <= len(res.delivered_reports) <= 200
        # Theorem 4.1 regime: isoline nodes are a small fraction of n.
        assert len(res.detection.isoline_nodes) < 0.2 * net.n_nodes

    def test_query_dissemination_charges_every_internal_node(self):
        net = radial_net(seed=9)
        q = ContourQuery(100.0, 100.0, 2.0)  # no isoline nodes: isolates
        res = IsoMapProtocol(q).run(net)
        # Traffic comes from dissemination only; every node with children
        # transmitted once.
        internal = sum(
            1
            for node in net.nodes
            if node.level is not None
            and any(net.nodes[c].level is not None for c in node.children)
        )
        from repro.core.wire import QUERY_BYTES

        assert res.costs.tx_bytes.sum() == internal * QUERY_BYTES
