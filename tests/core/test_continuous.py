"""Unit tests for the continuous-monitoring (epoch-delta) extension."""

import pytest

from repro.core import ContourQuery
from repro.core.continuous import ContinuousIsoMap
from repro.field import CompositeField, GaussianBumpField, RadialField
from repro.geometry import BoundingBox
from repro.network import SensorNetwork

BOX = BoundingBox(0, 0, 20, 20)


def radial_net(n=600, seed=1):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.random_deploy(field, n, radio_range=2.2, seed=seed)


def monitor(eps=0.2):
    return ContinuousIsoMap(
        ContourQuery(14.0, 16.0, 2.0, epsilon_fraction=eps), angle_delta_deg=10.0
    )


class TestColdStart:
    def test_first_epoch_reports_everything(self):
        net = radial_net()
        mon = monitor()
        r = mon.epoch(net)
        assert r.new_reports
        assert r.suppressed == 0
        assert r.retractions == []
        assert r.cached_reports == len(r.new_reports)

    def test_first_epoch_map_usable(self):
        net = radial_net()
        r = monitor().epoch(net)
        assert r.contour_map.band_at((10, 10)) >= 1
        assert r.contour_map.band_at((1, 1)) == 0


class TestSteadyState:
    def test_unchanged_field_suppresses_all_reports(self):
        net = radial_net()
        mon = monitor()
        first = mon.epoch(net)
        second = mon.epoch(net)
        assert second.new_reports == []
        assert second.suppressed == len(first.new_reports)
        assert second.retractions == []
        # Steady-state report traffic is zero; only the local probes of
        # the detection phase remain.
        assert (
            second.costs.total_traffic_bytes() < first.costs.total_traffic_bytes()
        )

    def test_cache_survives_quiet_epochs(self):
        net = radial_net()
        mon = monitor()
        mon.epoch(net)
        size = mon.cache_size
        mon.epoch(net)
        assert mon.cache_size == size


class TestFieldChange:
    def test_local_event_reports_only_the_change(self):
        net = radial_net(n=800, seed=2)
        mon = monitor()
        first = mon.epoch(net)

        # Flatten one side of the cone: isolines shift there only.
        bump = GaussianBumpField(BOX, base=0.0, bumps=[(-2.0, (14, 10), 2.0)])
        net.resense(CompositeField(BOX, [net.field, bump]))
        second = mon.epoch(net)

        assert second.new_reports, "the event must trigger re-reports"
        assert len(second.new_reports) < len(first.new_reports)
        # Changed reports cluster near the event site.
        import math

        near = sum(
            1
            for r in second.new_reports
            if math.dist(r.position, (14, 10)) < 6.0
        )
        assert near > len(second.new_reports) / 2

    def test_retractions_evict_cache(self):
        net = radial_net(n=800, seed=3)
        mon = monitor()
        mon.epoch(net)
        before = mon.cache_size
        # Collapse the cone: no node sits on the queried isolevels any more.
        flat = RadialField(BOX, center=(10, 10), peak=5, slope=0.1)
        net.resense(flat)
        r = mon.epoch(net)
        assert r.retractions
        assert mon.cache_size < before
        assert r.cached_reports == mon.cache_size


class TestMapConsistency:
    def test_delta_map_equals_snapshot_map(self):
        """After any sequence of epochs, the cache-built map must match a
        from-scratch run on the current field (same reports, since delta
        suppression only skips unchanged ones and filtering is off)."""
        from repro.core import FilterConfig, IsoMapProtocol

        net = radial_net(n=700, seed=4)
        mon = monitor()
        mon.epoch(net)
        bump = GaussianBumpField(BOX, base=0.0, bumps=[(1.5, (7, 12), 2.0)])
        net.resense(CompositeField(BOX, [net.field, bump]))
        delta = mon.epoch(net)

        snapshot = IsoMapProtocol(
            mon.query, FilterConfig.disabled(), regulate=True
        ).run(net)
        # Same sources end up in both maps (delta cache == fresh reports),
        # except sources whose direction drifted less than angle_delta
        # (cache keeps the slightly stale direction) -- so compare the
        # classification, which is robust to sub-threshold drift.
        a = delta.contour_map.classify_raster(40, 40)
        b = snapshot.contour_map.classify_raster(40, 40)
        agreement = (a == b).mean()
        assert agreement > 0.97

    def test_invalid_angle_delta(self):
        with pytest.raises(ValueError):
            ContinuousIsoMap(ContourQuery(0, 10, 2), angle_delta_deg=-1)


class TestRetractionEdgeCases:
    def test_retraction_of_disconnected_source_is_not_charged(self):
        """A cached source whose node crash-fails (falling off the routing
        tree) still retracts cleanly: the sink evicts it, and no hop
        traffic is charged for the unroutable retraction."""
        net = radial_net()
        mon = monitor()
        first = mon.epoch(net)
        victim = first.new_reports[0].source
        assert victim in (r.source for r in mon.sink_reports)
        net.nodes[victim].alive = False
        net.nodes[victim].sensing_ok = False
        net.rebuild_tree()
        assert net.tree.level[victim] is None  # precondition: unroutable
        r = mon.epoch(net)
        assert victim in r.retractions
        assert all(rep.source != victim for rep in mon.sink_reports)
        assert r.costs.tx_bytes[victim] == 0

    def test_retraction_of_never_cached_source(self):
        """The module docstring warns a dropped delta desynchronises the
        sink cache; a later retraction of that never-cached source must
        still be a clean no-op eviction, not an error."""
        net = radial_net()
        mon = monitor()
        first = mon.epoch(net)
        victim = first.new_reports[0].source
        # Simulate the lost delivery: the node believes it reported, the
        # sink never received it.
        del mon._sink_cache[victim]
        flat = RadialField(BOX, center=(10, 10), peak=5, slope=0.1)
        net.resense(flat)
        r = mon.epoch(net)
        assert victim in r.retractions
        assert all(rep.source != victim for rep in mon.sink_reports)
        assert r.cached_reports == mon.cache_size


class TestZeroIsolineEpochs:
    def test_epoch_with_no_isoline_nodes(self):
        """A field entirely below every queried level yields an epoch with
        zero isoline nodes and an empty (not full) map."""
        flat = RadialField(BOX, center=(10, 10), peak=5, slope=0.1)
        net = SensorNetwork.random_deploy(flat, 600, radio_range=2.2, seed=1)
        mon = monitor()
        r = mon.epoch(net)
        assert r.new_reports == []
        assert r.cached_reports == 0
        assert r.contour_map.regions == {}
        assert r.contour_map.full_levels == []
        assert r.contour_map.band_at((10, 10)) == 0

    def test_all_retract_then_recover(self):
        """Populated -> empty -> repopulated: the incremental sink must
        reset on the empty epoch and rebuild from scratch after it,
        matching the non-incremental monitor bit for bit."""
        net_inc = radial_net(seed=3)
        net_full = radial_net(seed=3)
        mon_inc = monitor()
        mon_full = ContinuousIsoMap(
            ContourQuery(14.0, 16.0, 2.0, epsilon_fraction=0.2),
            angle_delta_deg=10.0,
            incremental=False,
        )
        fields = [
            net_inc.field,
            RadialField(BOX, center=(10, 10), peak=5, slope=0.1),  # empty
            RadialField(BOX, center=(10, 10), peak=20, slope=1),  # recover
        ]
        for f in fields:
            net_inc.resense(f)
            net_full.resense(f)
            r_inc = mon_inc.epoch(net_inc)
            r_full = mon_full.epoch(net_full)
            assert sorted(r_inc.retractions) == sorted(r_full.retractions)
            import numpy as np

            assert np.array_equal(
                r_inc.contour_map.classify_raster(30, 30),
                r_full.contour_map.classify_raster(30, 30),
            )
        # The empty epoch reset the per-level caches; the recovery epoch
        # was therefore a full rebuild, not a splice against stale cells.
        assert mon_inc.reconstructor is not None
        assert mon_inc.reconstructor.last_full_rebuilds >= 1
        assert mon_inc.cache_size > 0


class TestAngleThreshold:
    """The re-report predicate is ``angle <= angle_delta``: a rotation of
    *exactly* the configured threshold is still suppressed."""

    def _mon(self, deg):
        return ContinuousIsoMap(
            ContourQuery(14.0, 16.0, 2.0, epsilon_fraction=0.2),
            angle_delta_deg=deg,
        )

    def _report(self, direction):
        from repro.core.reports import IsolineReport

        return IsolineReport(14.0, (1.0, 2.0), direction, source=0)

    def test_rotation_exactly_at_threshold_is_suppressed(self):
        import math

        mon = self._mon(90.0)
        prev = self._report((1.0, 0.0))
        new = self._report((0.0, 1.0))  # exactly 90 degrees
        assert math.acos(0.0) == math.radians(90.0)  # exact in floats
        assert mon._unchanged(prev, new)

    def test_rotation_just_past_threshold_reports(self):
        mon = self._mon(90.0)
        prev = self._report((1.0, 0.0))
        new = self._report((-1e-9, 1.0))  # a hair past 90 degrees
        assert not mon._unchanged(prev, new)

    def test_zero_threshold_suppresses_only_identical_direction(self):
        mon = self._mon(0.0)
        prev = self._report((1.0, 0.0))
        assert mon._unchanged(prev, self._report((1.0, 0.0)))
        assert not mon._unchanged(prev, self._report((1.0, 1e-7)))

    def test_level_change_always_reports(self):
        from repro.core.reports import IsolineReport

        mon = self._mon(90.0)
        prev = self._report((1.0, 0.0))
        new = IsolineReport(16.0, (1.0, 2.0), (1.0, 0.0), source=0)
        assert not mon._unchanged(prev, new)
