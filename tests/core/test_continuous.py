"""Unit tests for the continuous-monitoring (epoch-delta) extension."""

import pytest

from repro.core import ContourQuery
from repro.core.continuous import ContinuousIsoMap
from repro.field import CompositeField, GaussianBumpField, RadialField
from repro.geometry import BoundingBox
from repro.network import SensorNetwork

BOX = BoundingBox(0, 0, 20, 20)


def radial_net(n=600, seed=1):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.random_deploy(field, n, radio_range=2.2, seed=seed)


def monitor(eps=0.2):
    return ContinuousIsoMap(
        ContourQuery(14.0, 16.0, 2.0, epsilon_fraction=eps), angle_delta_deg=10.0
    )


class TestColdStart:
    def test_first_epoch_reports_everything(self):
        net = radial_net()
        mon = monitor()
        r = mon.epoch(net)
        assert r.new_reports
        assert r.suppressed == 0
        assert r.retractions == []
        assert r.cached_reports == len(r.new_reports)

    def test_first_epoch_map_usable(self):
        net = radial_net()
        r = monitor().epoch(net)
        assert r.contour_map.band_at((10, 10)) >= 1
        assert r.contour_map.band_at((1, 1)) == 0


class TestSteadyState:
    def test_unchanged_field_suppresses_all_reports(self):
        net = radial_net()
        mon = monitor()
        first = mon.epoch(net)
        second = mon.epoch(net)
        assert second.new_reports == []
        assert second.suppressed == len(first.new_reports)
        assert second.retractions == []
        # Steady-state report traffic is zero; only the local probes of
        # the detection phase remain.
        assert (
            second.costs.total_traffic_bytes() < first.costs.total_traffic_bytes()
        )

    def test_cache_survives_quiet_epochs(self):
        net = radial_net()
        mon = monitor()
        mon.epoch(net)
        size = mon.cache_size
        mon.epoch(net)
        assert mon.cache_size == size


class TestFieldChange:
    def test_local_event_reports_only_the_change(self):
        net = radial_net(n=800, seed=2)
        mon = monitor()
        first = mon.epoch(net)

        # Flatten one side of the cone: isolines shift there only.
        bump = GaussianBumpField(BOX, base=0.0, bumps=[(-2.0, (14, 10), 2.0)])
        net.resense(CompositeField(BOX, [net.field, bump]))
        second = mon.epoch(net)

        assert second.new_reports, "the event must trigger re-reports"
        assert len(second.new_reports) < len(first.new_reports)
        # Changed reports cluster near the event site.
        import math

        near = sum(
            1
            for r in second.new_reports
            if math.dist(r.position, (14, 10)) < 6.0
        )
        assert near > len(second.new_reports) / 2

    def test_retractions_evict_cache(self):
        net = radial_net(n=800, seed=3)
        mon = monitor()
        mon.epoch(net)
        before = mon.cache_size
        # Collapse the cone: no node sits on the queried isolevels any more.
        flat = RadialField(BOX, center=(10, 10), peak=5, slope=0.1)
        net.resense(flat)
        r = mon.epoch(net)
        assert r.retractions
        assert mon.cache_size < before
        assert r.cached_reports == mon.cache_size


class TestMapConsistency:
    def test_delta_map_equals_snapshot_map(self):
        """After any sequence of epochs, the cache-built map must match a
        from-scratch run on the current field (same reports, since delta
        suppression only skips unchanged ones and filtering is off)."""
        from repro.core import FilterConfig, IsoMapProtocol

        net = radial_net(n=700, seed=4)
        mon = monitor()
        mon.epoch(net)
        bump = GaussianBumpField(BOX, base=0.0, bumps=[(1.5, (7, 12), 2.0)])
        net.resense(CompositeField(BOX, [net.field, bump]))
        delta = mon.epoch(net)

        snapshot = IsoMapProtocol(
            mon.query, FilterConfig.disabled(), regulate=True
        ).run(net)
        # Same sources end up in both maps (delta cache == fresh reports),
        # except sources whose direction drifted less than angle_delta
        # (cache keeps the slightly stale direction) -- so compare the
        # classification, which is robust to sub-threshold drift.
        a = delta.contour_map.classify_raster(40, 40)
        b = snapshot.contour_map.classify_raster(40, 40)
        agreement = (a == b).mean()
        assert agreement > 0.97

    def test_invalid_angle_delta(self):
        with pytest.raises(ValueError):
            ContinuousIsoMap(ContourQuery(0, 10, 2), angle_delta_deg=-1)
