"""Unit tests for the multi-level contour map."""

import math

import numpy as np
import pytest

from repro.core.contour_map import ContourMap, build_contour_map
from repro.core.reports import IsolineReport
from repro.geometry import BoundingBox

BOX = BoundingBox(0, 0, 10, 10)


def ring(level, radius, n=10, center=(5, 5)):
    """Reports on a circle with outward descent (nested disc regions)."""
    out = []
    for k in range(n):
        t = 2 * math.pi * k / n
        p = (center[0] + radius * math.cos(t), center[1] + radius * math.sin(t))
        out.append(IsolineReport(level, p, (math.cos(t), math.sin(t)), k))
    return out


class TestBandClassification:
    def test_nested_rings(self):
        # Level 5 at r=4, level 7 at r=2: bands 0/1/2 moving inward.
        reports = ring(5.0, 4.0) + ring(7.0, 2.0)
        cmap = build_contour_map(reports, [5.0, 7.0], BOX)
        assert cmap.band_at((5, 5)) == 2
        assert cmap.band_at((5, 8)) == 1  # r = 3: inside 5-ring only
        assert cmap.band_at((0.5, 0.5)) == 0

    def test_recursion_stops_at_first_missing_level(self):
        # A level-7 region NOT nested inside level 5 must be clipped:
        # band_at only counts consecutive containment from the bottom.
        reports = ring(5.0, 2.0) + ring(7.0, 4.0)
        cmap = build_contour_map(reports, [5.0, 7.0], BOX)
        # r = 3: outside the 5-region but inside the 7-region reports;
        # the recursion gives band 0 (clipped by the level-5 boundary).
        p = (5, 8)
        assert cmap.band_at(p) == 0

    def test_classify_points_matches_band_at(self):
        reports = ring(5.0, 4.0) + ring(7.0, 2.0)
        cmap = build_contour_map(reports, [5.0, 7.0], BOX)
        rng_pts = [(x * 0.7 + 0.3, (x * 13 % 10)) for x in range(30)]
        vec = cmap.classify_points(rng_pts)
        for p, b in zip(rng_pts, vec):
            assert cmap.band_at(p) == b

    def test_classify_raster_shape(self):
        cmap = build_contour_map(ring(5.0, 3.0), [5.0], BOX)
        raster = cmap.classify_raster(8, 6)
        assert raster.shape == (6, 8)
        assert raster.max() <= 1


class TestEmptyLevelInference:
    def test_higher_evidence_makes_level_full(self):
        # Reports only at level 7; level 5 has none -> inferred full.
        cmap = build_contour_map(ring(7.0, 2.0), [5.0, 7.0], BOX)
        assert 5.0 in cmap.full_levels
        assert cmap.band_at((5, 5)) == 2  # inside the 7-ring: both levels
        assert cmap.band_at((1, 1)) == 1  # outside: still above level 5

    def test_sink_value_disambiguates_all_empty(self):
        cmap_high = build_contour_map([], [5.0], BOX, sink_value=8.0)
        assert 5.0 in cmap_high.full_levels
        assert cmap_high.band_at((3, 3)) == 1

        cmap_low = build_contour_map([], [5.0], BOX, sink_value=2.0)
        assert 5.0 not in cmap_low.full_levels
        assert cmap_low.band_at((3, 3)) == 0

    def test_no_information_means_empty(self):
        cmap = build_contour_map([], [5.0], BOX, sink_value=None)
        assert cmap.band_at((5, 5)) == 0

    def test_middle_empty_level(self):
        # Levels 5 and 9 have reports, 7 has none: 7 is full wherever
        # consistent (higher evidence exists).
        reports = ring(5.0, 4.5) + ring(9.0, 1.5)
        cmap = build_contour_map(reports, [5.0, 7.0, 9.0], BOX)
        assert 7.0 in cmap.full_levels
        assert cmap.band_at((5, 5)) == 3
        # Between the rings (r = 3): inside 5, (7 full), outside 9 -> 2.
        assert cmap.band_at((5, 8)) == 2


class TestAccessors:
    def test_isolines_accessor(self):
        cmap = build_contour_map(ring(5.0, 3.0), [5.0], BOX)
        lines = cmap.isolines(5.0)
        assert lines
        assert cmap.isolines(99.0) == []

    def test_report_count(self):
        cmap = build_contour_map(ring(5.0, 3.0, n=10), [5.0], BOX)
        assert cmap.report_count() == 10

    def test_levels_sorted(self):
        cmap = build_contour_map(ring(5.0, 3.0), [7.0, 5.0], BOX)
        assert cmap.levels == [5.0, 7.0]

    def test_reports_at_unqueried_levels_ignored(self):
        reports = ring(5.0, 3.0) + ring(99.0, 1.0)
        cmap = build_contour_map(reports, [5.0], BOX)
        assert cmap.report_count() == 10


class TestFullLevelIsolines:
    def test_full_level_has_no_isolines(self):
        # A level inferred full (no reports) has no reconstructed region,
        # hence no isoline geometry -- only classification.
        cmap = build_contour_map(ring(7.0, 2.0), [5.0, 7.0], BOX)
        assert 5.0 in cmap.full_levels
        assert cmap.isolines(5.0) == []
        assert cmap.isolines(7.0)

    def test_level_contains_full_level_everywhere(self):
        cmap = build_contour_map(ring(7.0, 2.0), [5.0, 7.0], BOX)
        for p in [(0.1, 0.1), (5, 5), (9.9, 9.9)]:
            assert cmap.level_contains(5.0, p)
