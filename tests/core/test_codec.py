"""Unit and property tests for the wire codec."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ContourQuery
from repro.core.codec import ReportCodec, decode_query, encode_query
from repro.core.reports import IsolineReport
from repro.core.wire import ISOLINE_REPORT_BYTES, QUERY_BYTES
from repro.geometry import BoundingBox, angle_between, dist

BOX = BoundingBox(0, 0, 50, 50)
QUERY = ContourQuery(6.0, 12.0, 2.0)
CODEC = ReportCodec.for_query(QUERY, BOX)


def report(x=25.0, y=25.0, theta=1.0, level=8.0):
    return IsolineReport(level, (x, y), (math.cos(theta), math.sin(theta)), 0)


class TestReportCodec:
    def test_payload_size(self):
        assert len(CODEC.encode(report())) == ISOLINE_REPORT_BYTES

    def test_roundtrip_error_bounds(self):
        r = report(x=13.37, y=42.01, theta=2.2, level=8.0)
        rt = CODEC.roundtrip(r)
        assert dist(rt.position, r.position) <= 2 * CODEC.position_resolution
        assert abs(rt.isolevel - r.isolevel) <= CODEC.value_resolution
        assert math.degrees(
            angle_between(rt.direction, r.direction)
        ) <= 2 * CODEC.angle_resolution_deg

    def test_resolutions_small(self):
        # 400 m field / 65535 steps ~ 6 mm in paper metres (0.0008 units).
        assert CODEC.position_resolution < 0.001
        assert CODEC.value_resolution < 0.001
        assert CODEC.angle_resolution_deg < 0.01

    def test_decode_wrong_size_raises(self):
        with pytest.raises(ValueError):
            CODEC.decode(b"\x00" * 5)

    def test_out_of_range_values_clamped(self):
        r = report(level=7.9)
        # A value outside the codec range clamps rather than wrapping.
        far = ReportCodec(BOX, 0.0, 1.0)
        rt = far.decode(far.encode(r))
        assert rt.isolevel == pytest.approx(1.0)

    def test_source_not_on_wire(self):
        r = IsolineReport(8.0, (10, 10), (1, 0), source=77)
        decoded = CODEC.decode(CODEC.encode(r))
        assert decoded.source == -1
        assert CODEC.decode(CODEC.encode(r), source=77).source == 77

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            ReportCodec(BOX, 5.0, 5.0)

    def test_for_query_pads_border(self):
        codec = ReportCodec.for_query(QUERY, BOX)
        assert codec.value_lo == 4.0
        assert codec.value_hi == 14.0


class TestQueryCodec:
    def test_roundtrip(self):
        payload = encode_query(QUERY)
        assert len(payload) == QUERY_BYTES
        q = decode_query(payload)
        assert q.value_lo == pytest.approx(QUERY.value_lo, abs=1 / 32)
        assert q.value_hi == pytest.approx(QUERY.value_hi, abs=1 / 32)
        assert q.granularity == pytest.approx(QUERY.granularity, abs=1 / 32)
        assert q.isolevels == QUERY.isolevels

    def test_wrong_size(self):
        with pytest.raises(ValueError):
            decode_query(b"\x00\x01")

    def test_out_of_universe(self):
        with pytest.raises(ValueError):
            encode_query(ContourQuery(-2000.0, 0.0, 1.0))


@given(
    x=st.floats(min_value=0, max_value=50),
    y=st.floats(min_value=0, max_value=50),
    theta=st.floats(min_value=0, max_value=2 * math.pi - 1e-9),
    level=st.sampled_from([6.0, 8.0, 10.0, 12.0]),
)
@settings(max_examples=300)
def test_roundtrip_property(x, y, theta, level):
    r = IsolineReport(level, (x, y), (math.cos(theta), math.sin(theta)), 0)
    rt = CODEC.roundtrip(r)
    assert dist(rt.position, r.position) <= 2 * CODEC.position_resolution
    assert abs(rt.isolevel - level) <= CODEC.value_resolution
    assert math.degrees(angle_between(rt.direction, r.direction)) <= 0.02


def test_quantization_is_map_neutral():
    """Round-tripping every delivered report through the codec leaves the
    contour map effectively unchanged -- the paper's 2-byte format costs
    nothing in fidelity."""
    from repro.core.contour_map import build_contour_map
    from repro.experiments.common import harbor_network, run_isomap
    from repro.field import make_harbor_field
    from repro.metrics import mapping_accuracy

    field = make_harbor_field()
    net = harbor_network(2500, "random", seed=1, field=field)
    iso = run_isomap(net)
    codec = ReportCodec.for_query(QUERY, net.bounds)
    quantized = [codec.roundtrip(r) for r in iso.delivered_reports]
    cmap = build_contour_map(
        quantized, QUERY.isolevels, net.bounds,
        sink_value=net.nodes[net.sink_index].value,
    )
    acc_q = mapping_accuracy(field, cmap, QUERY.isolevels, 60, 60)
    acc = mapping_accuracy(field, iso.contour_map, QUERY.isolevels, 60, 60)
    assert abs(acc - acc_q) < 0.01
