"""Unit tests for the model-predictive suppressor.

Three layers:

1. **Kernel pairs** -- the scalar ``*_reference`` twins and their
   vectorized NumPy twins must agree *bit-identically* (same IEEE
   elementwise expressions), pinned on random inputs via hypothesis.
2. **Bank behaviour** -- LMS convergence on constant drift, the
   heartbeat staleness bound, coverage-lease ghost retraction, ghost
   eviction, adoption re-keying, and the velocity clamp.
3. **Mode equivalence** -- a ``batched=True`` bank and a
   ``batched=False`` bank fed the same epoch stream make identical
   decisions and hold identical state.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prediction import (
    PredictionConfig,
    PredictorBank,
    Track,
    advance_tracks_batch,
    advance_tracks_reference,
    join_accept_batch,
    join_accept_reference,
    report_angle,
    track_accept_batch,
    track_accept_reference,
    wrap_angle,
    wrap_angle_batch,
)
from repro.core.reports import IsolineReport
from repro.geometry import BoundingBox

BOUNDS = BoundingBox(0.0, 0.0, 20.0, 20.0)

finite = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
angles = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
levels = st.sampled_from([12.0, 14.0, 16.0])
ages = st.integers(min_value=0, max_value=12)


def report(source, x, y, theta=0.0, level=14.0):
    return IsolineReport(
        isolevel=level,
        position=(x, y),
        direction=(math.cos(theta), math.sin(theta)),
        source=source,
    )


# ----------------------------------------------------------------------
# 1. kernel pairs, bit-identical
# ----------------------------------------------------------------------


@given(st.lists(angles, min_size=1, max_size=32))
@settings(max_examples=200, deadline=None)
def test_wrap_angle_pair_bit_identical(vals):
    ref = [wrap_angle(a) for a in vals]
    batch = wrap_angle_batch(np.asarray(vals, dtype=float))
    assert ref == batch.tolist()


@given(
    st.lists(
        st.tuples(finite, finite, finite, finite, angles, angles),
        min_size=1,
        max_size=32,
    )
)
@settings(max_examples=200, deadline=None)
def test_advance_pair_bit_identical(rows):
    x, y, vx, vy, th, om = (list(c) for c in zip(*rows))
    ref = advance_tracks_reference(x, y, vx, vy, th, om)
    batch = advance_tracks_batch(
        *(np.asarray(a, dtype=float) for a in (x, y, vx, vy, th, om))
    )
    for r, b in zip(ref, batch):
        assert r == b.tolist()


@given(
    st.lists(
        st.tuples(finite, finite, angles, levels, finite, finite, angles, levels, ages),
        min_size=1,
        max_size=24,
    )
)
@settings(max_examples=200, deadline=None)
def test_track_accept_pair_bit_identical(rows):
    ox, oy, oth, olv, px, py, pth, plv, age = (list(c) for c in zip(*rows))
    ref_a, ref_w = track_accept_reference(
        ox, oy, oth, olv, px, py, pth, plv, age, 1.44, 0.6, 8
    )
    bat_a, bat_w = track_accept_batch(
        *(np.asarray(a, dtype=float) for a in (ox, oy, oth, olv, px, py, pth, plv)),
        np.asarray(age, dtype=np.int64),
        1.44,
        0.6,
        8,
    )
    assert ref_a == bat_a.tolist()
    assert ref_w == bat_w.tolist()


@given(
    st.lists(st.tuples(finite, finite, angles, levels), min_size=0, max_size=16),
    st.lists(
        st.tuples(finite, finite, angles, levels, ages), min_size=0, max_size=16
    ),
)
@settings(max_examples=200, deadline=None)
def test_join_accept_pair_bit_identical(joins, tracks):
    jx = [j[0] for j in joins]
    jy = [j[1] for j in joins]
    jth = [j[2] for j in joins]
    jlv = [j[3] for j in joins]
    tx = [t[0] for t in tracks]
    ty = [t[1] for t in tracks]
    tth = [t[2] for t in tracks]
    tlv = [t[3] for t in tracks]
    tag = [t[4] for t in tracks]
    ref_a, ref_c = join_accept_reference(
        jx, jy, jth, jlv, tx, ty, tth, tlv, tag, 2.25, 0.7, 8
    )
    bat_a, bat_c = join_accept_batch(
        *(np.asarray(a, dtype=float) for a in (jx, jy, jth, jlv, tx, ty, tth, tlv)),
        np.asarray(tag, dtype=np.int64),
        2.25,
        0.7,
        8,
    )
    assert ref_a == bat_a.tolist()
    assert ref_c == bat_c.tolist()


# ----------------------------------------------------------------------
# 2. bank behaviour
# ----------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError):
        PredictionConfig(position_tolerance=0.0)
    with pytest.raises(ValueError):
        PredictionConfig(angle_tolerance_deg=-1.0)
    with pytest.raises(ValueError):
        PredictionConfig(learning_rate=1.5)
    with pytest.raises(ValueError):
        PredictionConfig(heartbeat=-1)
    with pytest.raises(ValueError):
        PredictionConfig(lease=0)
    with pytest.raises(ValueError):
        PredictionConfig(velocity_clamp=0.0)
    cfg = PredictionConfig(position_tolerance=2.0)
    assert cfg.effective_match_radius == 4.0
    assert PredictionConfig(match_radius=1.5).effective_match_radius == 1.5


def test_config_round_trips_through_dict():
    cfg = PredictionConfig(position_tolerance=1.3, heartbeat=5, lease=2)
    assert PredictionConfig.from_dict(cfg.to_dict()) == cfg


def test_lms_converges_on_constant_drift():
    """A track fed a constant-velocity observation stream learns the
    drift: within a few epochs the prediction error falls under the
    tolerance and stays there."""
    cfg = PredictionConfig(position_tolerance=0.5, learning_rate=0.5)
    bank = PredictorBank(cfg)
    drift = 0.3
    bank.apply([report(1, 0.0, 10.0)], [])
    errors = []
    for k in range(1, 12):
        bank.advance()
        t = bank.tracks[1]
        obs_x = drift * k
        errors.append(abs(t.x - obs_x))
        # Deliver the moving observation (simulating adoption handoff
        # key-stability: same source for a clean unit test).
        bank.apply([report(1, obs_x, 10.0)], [])
    assert errors[-1] < 0.05
    assert max(errors[6:]) < cfg.position_tolerance


def test_heartbeat_bounds_staleness_and_evicts_ghosts():
    cfg = PredictionConfig(heartbeat=3)
    bank = PredictorBank(cfg)
    bank.apply([report(7, 5.0, 5.0)], [])
    for _ in range(3):
        bank.advance()
        bank.apply([], [])
        assert 7 in bank.tracks
    assert bank.max_age == 3
    bank.advance()  # age 4 > heartbeat
    bank.apply([], [])
    assert 7 not in bank.tracks
    assert bank.max_age == 0


def test_heartbeat_forces_report_past_cap():
    cfg = PredictionConfig(position_tolerance=5.0, heartbeat=2)
    bank = PredictorBank(cfg)
    bank.apply([report(3, 5.0, 5.0)], [])
    heartbeats = 0
    for _ in range(3):
        bank.advance()
        to_send, predicted, hb = bank.decide({3: report(3, 5.0, 5.0)})
        heartbeats += hb
        bank.apply(to_send, [])
    # Ages 1 and 2 suppress; age 3 > cap forces the heartbeat delivery.
    assert heartbeats == 1


def test_decide_suppresses_within_tolerance_and_sends_outside():
    cfg = PredictionConfig(position_tolerance=1.0, angle_tolerance_deg=180.0)
    bank = PredictorBank(cfg)
    bank.apply([report(1, 5.0, 5.0), report(2, 10.0, 10.0)], [])
    bank.advance()
    near = report(1, 5.4, 5.0)
    far = report(2, 12.5, 10.0)
    to_send, predicted, _ = bank.decide({1: near, 2: far})
    assert predicted == 1
    assert [r.source for r in to_send] == [2]


def test_join_suppressed_by_covering_track():
    cfg = PredictionConfig(position_tolerance=1.0, angle_tolerance_deg=180.0)
    bank = PredictorBank(cfg)
    bank.apply([report(1, 5.0, 5.0)], [])
    bank.advance()
    # Source 99 has no track, but source 1's track covers its position.
    to_send, predicted, _ = bank.decide({99: report(99, 5.5, 5.0)})
    assert predicted == 1
    assert to_send == []
    # A join at a different isolevel is NOT covered.
    to_send, predicted, _ = bank.decide({98: report(98, 5.5, 5.0, level=16.0)})
    assert [r.source for r in to_send] == [98]


def test_adoption_rekeys_nearest_track_and_learns_drift():
    cfg = PredictionConfig(position_tolerance=0.5, learning_rate=0.5)
    bank = PredictorBank(cfg)
    bank.apply([report(1, 5.0, 5.0)], [])
    bank.advance()
    # Source 1 left; source 2 joined 0.8 away (inside match radius 1.0).
    bank.apply([report(2, 5.8, 5.0)], [])
    assert 1 not in bank.tracks and 2 in bank.tracks
    t = bank.tracks[2]
    assert t.x == 5.8
    assert t.vx == pytest.approx(0.4)  # mu * offset


def test_velocity_clamp_caps_learned_speed():
    cfg = PredictionConfig(
        position_tolerance=0.5,
        learning_rate=1.0,
        match_radius=10.0,
        velocity_clamp=1.0,
    )
    bank = PredictorBank(cfg)
    bank.apply([report(1, 0.0, 0.0)], [])
    bank.advance()
    bank.apply([report(2, 8.0, 0.0)], [])  # raw LMS step would be v=8
    t = bank.tracks[2]
    assert math.hypot(t.vx, t.vy) <= cfg.velocity_clamp * cfg.position_tolerance + 1e-12


def test_died_in_place_retraction_vs_covered_track():
    cfg = PredictionConfig(position_tolerance=1.0)
    bank = PredictorBank(cfg)
    bank.apply([report(1, 5.0, 5.0)], [])
    bank.advance()
    # Nobody nearby any more: the track died in place -> retract.
    out = bank.decide_retractions([(1, (5.0, 5.0))], {})
    assert out == [1]
    # A current member still covered by the track suppresses it.
    out = bank.decide_retractions(
        [(1, (5.0, 5.0))], {9: report(9, 5.3, 5.0)}
    )
    assert out == []


def test_coverage_lease_retracts_ghost_tracks():
    cfg = PredictionConfig(position_tolerance=1.0, lease=2, heartbeat=10)
    bank = PredictorBank(cfg)
    bank.apply([report(1, 5.0, 5.0)], [])
    # Two consecutive epochs in which the track covers nothing.
    for expected in ([], []):
        bank.advance()
        to_send, _, _ = bank.decide({})
        assert to_send == expected
    out = bank.decide_retractions([], {})
    assert out == [1]
    bank.apply([], out)
    assert 1 not in bank.tracks


def test_coverage_lease_reset_by_suppressed_join():
    cfg = PredictionConfig(position_tolerance=1.0, lease=1, heartbeat=10)
    bank = PredictorBank(cfg)
    bank.apply([report(1, 5.0, 5.0)], [])
    for _ in range(4):
        bank.advance()
        # A suppressed join keeps refreshing the lease...
        to_send, predicted, _ = bank.decide({50: report(50, 5.2, 5.0)})
        assert predicted == 1
        assert bank.decide_retractions([], {50: report(50, 5.2, 5.0)}) == []
        bank.apply([], [])
    assert 1 in bank.tracks


def test_extrapolated_clamps_into_bounds_and_is_key_sorted():
    cfg = PredictionConfig()
    bank = PredictorBank(cfg)
    bank.tracks[5] = Track(key=5, isolevel=14.0, x=-3.0, y=25.0, theta=0.25)
    bank.tracks[2] = Track(key=2, isolevel=14.0, x=4.0, y=4.0, theta=-1.0)
    cache = bank.extrapolated(BOUNDS)
    assert list(cache) == [2, 5]
    r5 = cache[5]
    assert r5.position == (0.0, 20.0)
    assert r5.direction == (math.cos(0.25), math.sin(0.25))
    assert abs(math.hypot(*r5.direction) - 1.0) < 1e-9


def test_report_angle_matches_direction():
    r = report(1, 0.0, 0.0, theta=1.1)
    assert report_angle(r) == pytest.approx(1.1)


# ----------------------------------------------------------------------
# 3. batched == reference, end to end
# ----------------------------------------------------------------------


def _epoch_stream(rng, epochs=10, n_sources=30):
    """A churning observation stream: sources drift in/out, positions
    creep right at a constant rate plus jitter."""
    stream = []
    for e in range(epochs):
        current = {}
        for s in range(n_sources):
            if (s + e) % 5 == 0:
                continue  # churn: this source is off the line this epoch
            x = (s % 6) * 3.0 + 0.4 * e + 0.01 * ((s * 7 + e * 13) % 10)
            y = (s // 6) * 3.0
            theta = 0.1 * ((s + e) % 7)
            current[s] = report(s, x, y, theta=theta)
        stream.append(current)
    return stream


def test_batched_and_reference_banks_agree():
    stream = _epoch_stream(None)
    banks = {
        mode: PredictorBank(
            PredictionConfig(position_tolerance=1.0, batched=mode)
        )
        for mode in (True, False)
    }
    members = {True: {}, False: {}}
    for current in stream:
        outs = {}
        for mode, bank in banks.items():
            bank.advance()
            to_send, predicted, hb = bank.decide(current)
            leaving = [
                (s, pos)
                for s, pos in members[mode].items()
                if s not in current
            ]
            retractions = bank.decide_retractions(leaving, current)
            members[mode] = {s: r.position for s, r in current.items()}
            bank.apply(to_send, retractions)
            outs[mode] = (
                [r.source for r in to_send],
                predicted,
                hb,
                sorted(retractions),
            )
        assert outs[True] == outs[False]
        tb, tr = banks[True].tracks, banks[False].tracks
        assert sorted(tb) == sorted(tr)
        for k in tb:
            assert (tb[k].x, tb[k].y, tb[k].theta) == (
                tr[k].x,
                tr[k].y,
                tr[k].theta,
            )
            assert (tb[k].vx, tb[k].vy, tb[k].omega) == (
                tr[k].vx,
                tr[k].vy,
                tr[k].omega,
            )
            assert tb[k].age == tr[k].age
