"""Unit tests for in-network report filtering."""

import math

import pytest

from repro.core import FilterConfig, InNetworkFilter
from repro.core.filtering import OPS_PER_COMPARISON
from repro.core.reports import IsolineReport
from repro.network import CostAccountant


def report(x, y, angle_deg, level=10.0, source=0):
    a = math.radians(angle_deg)
    return IsolineReport(level, (x, y), (math.cos(a), math.sin(a)), source)


class TestFilterConfig:
    def test_paper_defaults(self):
        cfg = FilterConfig()
        assert cfg.angular_separation_deg == 30.0
        assert cfg.distance_separation == 4.0

    def test_radians(self):
        assert FilterConfig(90, 1).angular_separation_rad == pytest.approx(
            math.pi / 2
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            FilterConfig(-1, 1)
        with pytest.raises(ValueError):
            FilterConfig(1, -1)

    def test_disabled(self):
        assert not FilterConfig.disabled().enabled


class TestInNetworkFilter:
    def test_first_report_always_kept(self):
        f = InNetworkFilter(FilterConfig(30, 4))
        costs = CostAccountant(1)
        assert f.offer(report(0, 0, 0), 0, costs)

    def test_redundant_report_dropped(self):
        f = InNetworkFilter(FilterConfig(30, 4))
        costs = CostAccountant(1)
        f.offer(report(0, 0, 0, source=0), 0, costs)
        # Close in space AND in angle -> dropped.
        assert not f.offer(report(1, 0, 10, source=1), 0, costs)

    def test_far_report_kept(self):
        f = InNetworkFilter(FilterConfig(30, 4))
        costs = CostAccountant(1)
        f.offer(report(0, 0, 0), 0, costs)
        assert f.offer(report(10, 0, 10, source=1), 0, costs)

    def test_different_angle_kept(self):
        f = InNetworkFilter(FilterConfig(30, 4))
        costs = CostAccountant(1)
        f.offer(report(0, 0, 0), 0, costs)
        # Near in space but the gradient turned 90 degrees: keep (this is
        # what preserves high-curvature isoline stretches).
        assert f.offer(report(1, 0, 90, source=1), 0, costs)

    def test_different_isolevels_never_compared(self):
        f = InNetworkFilter(FilterConfig(180, 100))
        costs = CostAccountant(1)
        f.offer(report(0, 0, 0, level=10.0), 0, costs)
        assert f.offer(report(0.1, 0, 0, level=12.0, source=1), 0, costs)

    def test_threshold_boundaries_inclusive(self):
        f = InNetworkFilter(FilterConfig(30, 4))
        costs = CostAccountant(1)
        f.offer(report(0, 0, 0), 0, costs)
        # Exactly at both thresholds -> still redundant (closed comparison).
        assert not f.offer(report(4.0, 0, 30.0, source=1), 0, costs)

    def test_disabled_filter_keeps_everything(self):
        f = InNetworkFilter(FilterConfig.disabled())
        costs = CostAccountant(1)
        for k in range(10):
            assert f.offer(report(0.01 * k, 0, 0, source=k), 0, costs)
        assert len(f.kept_reports) == 10
        assert costs.total_ops() == 0  # no comparisons when disabled

    def test_ops_charged_per_comparison(self):
        f = InNetworkFilter(FilterConfig(30, 4))
        costs = CostAccountant(1)
        f.offer(report(0, 0, 0, source=0), 0, costs)
        f.offer(report(10, 0, 0, source=1), 0, costs)  # 1 comparison
        f.offer(report(20, 0, 0, source=2), 0, costs)  # 2 comparisons
        assert costs.total_ops() == 3 * OPS_PER_COMPARISON

    def test_offer_all(self):
        f = InNetworkFilter(FilterConfig(30, 4))
        costs = CostAccountant(1)
        batch = [report(0, 0, 0, source=0), report(0.5, 0, 1, source=1),
                 report(9, 0, 0, source=2)]
        survivors, dropped = f.offer_all(batch, 0, costs)
        assert len(survivors) == 2
        assert dropped == 1

    def test_tighter_thresholds_drop_more(self):
        reports = [report(0.8 * k, 0, 3 * k, source=k) for k in range(20)]
        kept_counts = []
        for sd in (0.5, 2.0, 8.0):
            f = InNetworkFilter(FilterConfig(45, sd))
            costs = CostAccountant(1)
            survivors, _ = f.offer_all(list(reports), 0, costs)
            kept_counts.append(len(survivors))
        assert kept_counts[0] >= kept_counts[1] >= kept_counts[2]
        assert kept_counts[0] > kept_counts[2]
