"""Unit tests for boundary regulation (Rules 1 and 2)."""

import math
import random

import pytest

from repro.core.reconstruction import build_level_region
from repro.core.regulation import regulate_loops
from repro.core.reports import IsolineReport
from repro.geometry import BoundingBox, polygon_area
from repro.geometry.polyline import TYPE2, loop_is_closed, loop_points

BOX = BoundingBox(0, 0, 10, 10)


def jittered_ring(n=12, jitter=0.2, seed=5, radius=3.0):
    rng = random.Random(seed)
    reports = []
    for k in range(n):
        t = 2 * math.pi * k / n + rng.uniform(-jitter, jitter)
        r = radius + rng.uniform(-jitter, jitter)
        p = (5 + r * math.cos(t), 5 + r * math.sin(t))
        a = t + rng.uniform(-jitter, jitter)
        reports.append(IsolineReport(7.0, p, (math.cos(a), math.sin(a)), k))
    return reports


class TestRegulation:
    def test_rules_fire_on_jittered_ring(self):
        region = build_level_region(7.0, jittered_ring(), BOX)
        total = sum(region.regulation_stats.values())
        assert total > 0, "a jittered ring must contain regulable junctions"

    def test_regulated_loops_remain_closed(self):
        region = build_level_region(7.0, jittered_ring(seed=9), BOX)
        assert region.regulated_loops
        for lp in region.regulated_loops:
            assert loop_is_closed(lp, tol=1e-5)

    def test_regulation_removes_type2_jogs(self):
        region = build_level_region(7.0, jittered_ring(seed=11), BOX)
        raw_type2 = sum(
            1 for lp in region.loops for s in lp if s.kind == TYPE2
        )
        reg_type2 = sum(
            1 for lp in region.regulated_loops for s in lp if s.kind == TYPE2
        )
        applied = sum(region.regulation_stats.values())
        assert reg_type2 == raw_type2 - applied

    def test_segment_count_shrinks_by_one_per_application(self):
        region = build_level_region(7.0, jittered_ring(seed=13), BOX)
        raw = sum(len(lp) for lp in region.loops)
        reg = sum(len(lp) for lp in region.regulated_loops)
        applied = sum(region.regulation_stats.values())
        assert reg == raw - applied  # each rewrite: 3 segments -> 2

    def test_regulation_changes_area_moderately(self):
        # Cutting pinnacles and filling notches must not blow the area up
        # or shrink it drastically -- it is a smoothing.
        region = build_level_region(7.0, jittered_ring(seed=17), BOX)
        if sum(region.regulation_stats.values()) == 0:
            pytest.skip("no regulable junctions in this draw")
        raw_area = sum(
            polygon_area(loop_points(lp)) for lp in region.loops if len(lp) >= 3
        )
        reg_area = sum(
            polygon_area(loop_points(lp))
            for lp in region.regulated_loops
            if len(lp) >= 3
        )
        assert reg_area == pytest.approx(raw_area, rel=0.25)

    def test_no_rules_on_symmetric_ring(self):
        # A perfectly symmetric ring has no jogs at all.
        reports = jittered_ring(jitter=0.0, seed=0)
        region = build_level_region(7.0, reports, BOX)
        assert sum(region.regulation_stats.values()) == 0

    def test_regulate_loops_empty_input(self):
        loops, stats = regulate_loops([], [])
        assert loops == []
        assert stats == {"rule1": 0, "rule2": 0}

    def test_short_loops_untouched(self):
        region = build_level_region(
            7.0, [IsolineReport(7.0, (5, 5), (1, 0), 0)], BOX
        )
        # Single report: loop of type-1 chord + border segments; regulation
        # finds no [1,2,1] triple and leaves it alone.
        assert region.regulated_loops == region.loops


class TestRuleClassification:
    def test_rule1_fires_on_jittered_rings(self):
        # Convex regions outlined by circumscribed chords produce jogs that
        # jut outward: pinnacles, i.e. Rule 1 territory.
        rule1 = 0
        for seed in range(20):
            region = build_level_region(
                7.0, jittered_ring(seed=seed, jitter=0.25), BOX
            )
            rule1 += region.regulation_stats["rule1"]
        assert rule1 > 0, "pinnacle cuts must occur"

    def test_rule2_fires_on_concave_configuration(self):
        # A fixed three-report configuration (found by search, then frozen)
        # whose jog bends into the region with internal angle in (90, 180):
        # the concave notch Rule 2 fills.
        reports = [
            IsolineReport(5.0, (7.5385, 5.2436), (-0.775678, 0.631128), 0),
            IsolineReport(5.0, (6.2317, 3.6538), (0.377620, -0.925961), 1),
            IsolineReport(5.0, (7.0969, 7.3702), (-0.844997, -0.534772), 2),
        ]
        region = build_level_region(5.0, reports, BOX)
        assert region.regulation_stats["rule2"] >= 1

    def test_steep_jogs_left_alone(self):
        # An axis-aligned notch whose internal angle falls below 90 degrees
        # is outside both rules' windows and must not be rewritten.
        def mk(x, y, ang_deg, k):
            a = math.radians(ang_deg)
            return IsolineReport(5.0, (x, y), (math.sin(a), math.cos(a)), k)

        reports = [mk(2.0, 5.0, -20, 0), mk(5.0, 4.2, 0, 1), mk(8.0, 5.0, 20, 2)]
        region = build_level_region(5.0, reports, BOX)
        assert region.regulation_stats == {"rule1": 0, "rule2": 0}
