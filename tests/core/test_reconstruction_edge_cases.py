"""Adversarial edge cases for the sink-side reconstruction.

The property tests in test_reconstruction.py cover random inputs; these
target the configurations most likely to break clipping, interval
subtraction, or loop stitching: reports on the field border, antipodal
and parallel directions, collinear sites, and maximally thin regions.
"""

import math

import pytest

from repro.core.contour_map import build_contour_map
from repro.core.reconstruction import build_level_region
from repro.core.reports import IsolineReport
from repro.geometry import BoundingBox
from repro.geometry.polyline import loop_is_closed

BOX = BoundingBox(0, 0, 10, 10)


def r(x, y, dx, dy, k=0, level=5.0):
    n = math.hypot(dx, dy)
    return IsolineReport(level, (x, y), (dx / n, dy / n), k)


class TestBorderReports:
    def test_report_on_field_corner_outward(self):
        # Descent pointing INTO the field from the corner: the inner half
        # touches the box at the corner point only -- an empty region.
        region = build_level_region(5.0, [r(0.0, 0.0, 1, 1)], BOX)
        assert region.area() == pytest.approx(0.0, abs=1e-9)
        assert not region.contains((5, 5))

    def test_report_on_field_corner_inward(self):
        # Descent pointing OUT of the field: the whole box is inner.
        region = build_level_region(5.0, [r(0.0, 0.0, -1, -1)], BOX)
        assert region.area() == pytest.approx(BOX.area, rel=1e-9)
        assert region.contains((5, 5))
        for lp in region.loops:
            assert loop_is_closed(lp, tol=1e-5)

    def test_reports_on_opposite_borders(self):
        reports = [r(0.0, 5.0, -1, 0, 0), r(10.0, 5.0, 1, 0, 1)]
        region = build_level_region(5.0, reports, BOX)
        # Both inner parts face inward: the middle belongs to the region.
        assert region.contains((5, 5))
        assert region.area() == pytest.approx(BOX.area, rel=1e-6)

    def test_direction_parallel_to_border(self):
        region = build_level_region(5.0, [r(5.0, 0.0, 1, 0)], BOX)
        assert region.contains((2, 5))
        assert not region.contains((8, 5))


class TestAntipodalAndParallel:
    def test_two_reports_facing_each_other(self):
        # Descent directions pointing AT each other: inner parts overlap
        # nothing (each cell's inner half faces away from the bisector).
        reports = [r(3.0, 5.0, 1, 0, 0), r(7.0, 5.0, -1, 0, 1)]
        region = build_level_region(5.0, reports, BOX)
        assert not region.contains((5, 5))
        assert region.contains((0.5, 5))
        assert region.contains((9.5, 5))

    def test_two_reports_back_to_back(self):
        # Descent directions pointing AWAY from each other: everything
        # between them is inner.
        reports = [r(3.0, 5.0, -1, 0, 0), r(7.0, 5.0, 1, 0, 1)]
        region = build_level_region(5.0, reports, BOX)
        assert region.contains((5, 5))
        assert not region.contains((0.5, 5))
        assert not region.contains((9.5, 5))

    def test_identical_parallel_directions(self):
        # A picket line of reports all descending +x: region is the left
        # slab bounded by the leftmost... no -- each cell's own cut line.
        reports = [r(2.0 + 2 * k, 5.0, 1, 0, k) for k in range(4)]
        region = build_level_region(5.0, reports, BOX)
        for lp in region.loops:
            assert loop_is_closed(lp, tol=1e-5)
        # Point left of every cut within its cell: inside.
        assert region.contains((1.0, 5.0))
        # Point right of its cell's cut: outside.
        assert not region.contains((9.5, 5.0))


class TestDegenerateGeometry:
    def test_collinear_sites(self):
        reports = [r(2.0, 5.0, 0, 1, 0), r(5.0, 5.0, 0, 1, 1), r(8.0, 5.0, 0, 1, 2)]
        region = build_level_region(5.0, reports, BOX)
        assert region.contains((5, 2))
        assert not region.contains((5, 8))
        assert region.area() == pytest.approx(50.0, rel=1e-6)

    def test_nearly_coincident_sites_dedupe(self):
        reports = [r(5.0, 5.0, 1, 0, 0), r(5.0 + 1e-9, 5.0, -1, 0, 1)]
        region = build_level_region(5.0, reports, BOX)
        assert len(region.reports) == 1

    def test_cluster_of_close_sites(self):
        # Sites 1e-3 apart are distinct but produce sliver cells.
        reports = [
            r(5.0, 5.0, 1, 0, 0),
            r(5.001, 5.0, 1, 0.01, 1),
            r(5.0, 5.001, 1, -0.01, 2),
        ]
        region = build_level_region(5.0, reports, BOX)
        assert 0 <= region.area() <= BOX.area
        for lp in region.loops:
            assert loop_is_closed(lp, tol=1e-4)

    def test_thin_sliver_region(self):
        # Opposing cuts 0.1 apart: the region is a thin vertical slab.
        reports = [r(4.95, 5.0, -1, 0, 0), r(5.05, 5.0, 1, 0, 1)]
        region = build_level_region(5.0, reports, BOX)
        assert region.contains((5.0, 5.0))
        assert not region.contains((4.0, 5.0))
        assert not region.contains((6.0, 5.0))
        assert region.area() == pytest.approx(1.0, rel=1e-3)


class TestMultiLevelEdgeCases:
    def test_inverted_nesting_is_clipped(self):
        # Higher level's region NOT inside the lower level's: nested
        # classification clips it to nothing.
        lower = [r(5.0, 5.0, -1, 0, 0, level=4.0)]   # region: x > 5
        higher = [r(3.0, 5.0, 1, 0, 1, level=6.0)]   # region: x < 3 (disjoint!)
        cmap = build_contour_map(lower + higher, [4.0, 6.0], BOX)
        assert cmap.band_at((2.0, 5.0)) == 0   # outside level-4 region
        assert cmap.band_at((7.0, 5.0)) == 1   # in level 4 only

    def test_many_levels_single_report_each(self):
        reports = [
            r(2.0 + k, 5.0, -1, 0, k, level=float(k)) for k in range(6)
        ]
        cmap = build_contour_map(reports, [float(k) for k in range(6)], BOX)
        # Bands increase monotonically to the right.
        bands = [cmap.band_at((x, 5.0)) for x in (1.0, 3.5, 8.5)]
        assert bands[0] <= bands[1] <= bands[2]
        assert bands[2] == 6
