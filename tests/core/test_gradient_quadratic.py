"""Unit tests for the quadratic gradient estimator."""

import math
import random

import pytest

from repro.core.gradient import estimate_gradient
from repro.core.gradient_quadratic import (
    OPS_PER_SAMPLE,
    OPS_SOLVE,
    _solve_dense,
    estimate_gradient_quadratic,
)


def quad(x, y):
    """A genuinely quadratic surface: v = 1 + 2x - y + 0.5x^2 - xy + y^2."""
    return 1 + 2 * x - y + 0.5 * x * x - x * y + y * y


def quad_grad(x, y):
    return (2 + x - y, -1 - x + 2 * y)


def ring_samples(center, radius=1.0, n=10):
    cx, cy = center
    return [
        (
            (cx + radius * math.cos(2 * math.pi * k / n),
             cy + radius * math.sin(2 * math.pi * k / n)),
            quad(
                cx + radius * math.cos(2 * math.pi * k / n),
                cy + radius * math.sin(2 * math.pi * k / n),
            ),
        )
        for k in range(n)
    ]


class TestQuadraticEstimator:
    def test_recovers_quadratic_surface_exactly(self):
        center = (1.5, -0.5)
        est = estimate_gradient_quadratic(center, quad(*center), ring_samples(center))
        assert est is not None
        gx, gy = quad_grad(*center)
        g = math.hypot(gx, gy)
        assert est.direction[0] == pytest.approx(-gx / g, abs=1e-6)
        assert est.direction[1] == pytest.approx(-gy / g, abs=1e-6)

    def test_linear_estimator_biased_on_curved_surface(self):
        # On an asymmetric neighbourhood of a curved surface the linear
        # fit is biased; the quadratic fit is exact.  This is the whole
        # point of offering the richer model.
        center = (1.0, 1.0)
        rng = random.Random(3)
        samples = [
            ((center[0] + rng.uniform(0, 1.5), center[1] + rng.uniform(-0.3, 1.5)),)
            for _ in range(12)
        ]
        samples = [(p[0], quad(*p[0])) for p in samples]
        lin = estimate_gradient(center, quad(*center), samples)
        qd = estimate_gradient_quadratic(center, quad(*center), samples)
        assert lin is not None and qd is not None
        gx, gy = quad_grad(*center)
        g = math.hypot(gx, gy)
        true_d = (-gx / g, -gy / g)

        def err(est):
            return math.acos(
                max(-1, min(1, est.direction[0] * true_d[0] + est.direction[1] * true_d[1]))
            )

        assert err(qd) < err(lin)
        assert err(qd) < 1e-6

    def test_needs_six_points(self):
        center = (0, 0)
        assert (
            estimate_gradient_quadratic(center, quad(0, 0), ring_samples(center, n=4))
            is None
        )

    def test_collinear_degenerate(self):
        samples = [((float(k), 0.0), quad(k, 0)) for k in range(1, 8)]
        assert estimate_gradient_quadratic((0, 0), quad(0, 0), samples) is None

    def test_flat_surface_degenerate(self):
        samples = [(p, 5.0) for p, _ in ring_samples((0, 0))]
        assert estimate_gradient_quadratic((0, 0), 5.0, samples) is None

    def test_ops_accounting(self):
        center = (0, 0)
        samples = ring_samples(center, n=9)
        est = estimate_gradient_quadratic(center, quad(0, 0), samples)
        assert est is not None
        assert est.ops == OPS_PER_SAMPLE * 10 + OPS_SOLVE
        # Quadratic costs several times the linear model, as documented.
        lin = estimate_gradient(center, quad(0, 0), samples)
        assert est.ops > 3 * lin.ops


class TestSolveDense:
    def test_identity(self):
        a = [[1 if i == j else 0 for j in range(4)] for i in range(4)]
        assert _solve_dense(a, [1, 2, 3, 4]) == pytest.approx([1, 2, 3, 4])

    def test_singular(self):
        a = [[1.0, 2.0], [2.0, 4.0]]
        assert _solve_dense(a, [1.0, 2.0]) is None

    def test_zero(self):
        assert _solve_dense([[0.0]], [0.0]) is None


class TestProtocolIntegration:
    def test_quadratic_protocol_runs(self):
        from repro.core import ContourQuery, IsoMapProtocol
        from repro.field import RadialField
        from repro.geometry import BoundingBox
        from repro.network import SensorNetwork

        box = BoundingBox(0, 0, 20, 20)
        field = RadialField(box, center=(10, 10), peak=20, slope=1)
        net = SensorNetwork.random_deploy(field, 500, radio_range=2.2, seed=1)
        q = ContourQuery(14.0, 16.0, 2.0, epsilon_fraction=0.2)
        res = IsoMapProtocol(q, regression="quadratic").run(net)
        assert res.delivered_reports

    def test_unknown_regression_rejected(self):
        from repro.core import ContourQuery, IsoMapProtocol

        with pytest.raises(ValueError):
            IsoMapProtocol(ContourQuery(0, 10, 2), regression="cubic")
