"""Unit and property tests for the sink-side level reconstruction."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reconstruction import build_level_region
from repro.core.reports import IsolineReport
from repro.geometry import BoundingBox, dist, point_in_convex
from repro.geometry.polyline import BORDER, TYPE1, TYPE2, loop_is_closed

BOX = BoundingBox(0, 0, 10, 10)


def ring_reports(n=8, radius=3.0, center=(5, 5), jitter=0.0, seed=0, level=7.0):
    """Reports around a circle with outward descent (region = the disc)."""
    rng = random.Random(seed)
    out = []
    for k in range(n):
        t = 2 * math.pi * k / n + rng.uniform(-jitter, jitter)
        r = radius + rng.uniform(-jitter, jitter)
        p = (center[0] + r * math.cos(t), center[1] + r * math.sin(t))
        a = t + rng.uniform(-jitter, jitter)
        out.append(IsolineReport(level, p, (math.cos(a), math.sin(a)), k))
    return out


class TestSingleReport:
    def test_half_plane_region(self):
        # One report at the centre, descent +x: region is the left half.
        r = IsolineReport(5.0, (5, 5), (1, 0), 0)
        region = build_level_region(5.0, [r], BOX)
        assert region.contains((2, 5))
        assert not region.contains((8, 5))
        assert region.area() == pytest.approx(50.0)

    def test_boundary_segments_kinds(self):
        r = IsolineReport(5.0, (5, 5), (1, 0), 0)
        region = build_level_region(5.0, [r], BOX)
        assert len(region.loops) == 1
        kinds = {s.kind for s in region.loops[0]}
        assert kinds == {TYPE1, BORDER}
        assert loop_is_closed(region.loops[0])

    def test_isoline_excludes_border(self):
        r = IsolineReport(5.0, (5, 5), (1, 0), 0)
        region = build_level_region(5.0, [r], BOX)
        lines = region.isoline_polylines()
        assert len(lines) == 1
        # The isoline is the vertical cut x = 5.
        for p in lines[0]:
            assert p[0] == pytest.approx(5.0)


class TestRingRegion:
    def test_symmetric_ring_closed_loop(self):
        region = build_level_region(7.0, ring_reports(), BOX)
        assert len(region.loops) == 1
        assert loop_is_closed(region.loops[0])

    def test_contains_center_not_outside(self):
        region = build_level_region(7.0, ring_reports(), BOX)
        assert region.contains((5, 5))
        assert not region.contains((0.2, 0.2))
        assert not region.contains((9.8, 5))

    def test_area_close_to_circumscribed_polygon(self):
        n = 8
        region = build_level_region(7.0, ring_reports(n=n), BOX)
        r = 3.0
        expected = n * r * r * math.tan(math.pi / n)  # tangential polygon
        assert region.area() == pytest.approx(expected, rel=1e-6)

    def test_jittered_ring_still_closed(self):
        region = build_level_region(7.0, ring_reports(n=12, jitter=0.15, seed=3), BOX)
        for lp in region.loops:
            assert loop_is_closed(lp), "merged boundary must form closed loops"

    def test_type2_segments_appear_under_jitter(self):
        region = build_level_region(7.0, ring_reports(n=10, jitter=0.2, seed=5), BOX)
        kinds = {s.kind for lp in region.loops for s in lp}
        assert TYPE2 in kinds

    def test_inner_polys_inside_their_cells(self):
        region = build_level_region(7.0, ring_reports(n=10, jitter=0.2, seed=7), BOX)
        for cell, inner in zip(region.cells, region.inner_polys):
            for v in inner.vertices:
                assert point_in_convex(cell.polygon.vertices, v, tol=1e-6)


class TestDedupe:
    def test_coincident_positions_deduped(self):
        r1 = IsolineReport(5.0, (5, 5), (1, 0), 0)
        r2 = IsolineReport(5.0, (5, 5), (0, 1), 1)  # same position
        region = build_level_region(5.0, [r1, r2], BOX)
        assert len(region.reports) == 1
        assert region.reports[0].source == 0  # first wins

    def test_no_reports_raises(self):
        with pytest.raises(ValueError):
            build_level_region(5.0, [], BOX)


class TestImplicitVsPolygonEquivalence:
    """The closed-form membership rule must match the polygon pipeline."""

    def _check(self, reports, n_probes=300, seed=0):
        region = build_level_region(7.0, reports, BOX)
        rng = random.Random(seed)
        mismatches = 0
        for _ in range(n_probes):
            p = (rng.uniform(0, 10), rng.uniform(0, 10))
            implicit = region.contains(p)
            polygon = any(
                not poly.is_empty and poly.contains(p, tol=0)
                for poly in region.inner_polys
            )
            # Points near a boundary may flip either way; only count
            # mismatches away from every boundary.
            near_boundary = any(
                abs((p[0] - r.position[0]) * r.direction[0]
                    + (p[1] - r.position[1]) * r.direction[1]) < 0.05
                for r in region.reports
            )
            if not near_boundary and implicit != polygon:
                mismatches += 1
        assert mismatches == 0

    def test_ring(self):
        self._check(ring_reports(n=10, jitter=0.2, seed=11))

    def test_random_reports(self):
        rng = random.Random(13)
        reports = []
        for k in range(15):
            p = (rng.uniform(1, 9), rng.uniform(1, 9))
            a = rng.uniform(0, 2 * math.pi)
            reports.append(IsolineReport(7.0, p, (math.cos(a), math.sin(a)), k))
        self._check(reports)


class TestContainsMany:
    def test_matches_scalar_contains(self):
        import numpy as np

        region = build_level_region(7.0, ring_reports(n=10, jitter=0.1, seed=2), BOX)
        rng = random.Random(3)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(200)]
        vec = region.contains_many(np.array(pts))
        for p, v in zip(pts, vec):
            assert region.contains(p) == bool(v)


@given(
    n=st.integers(min_value=1, max_value=15),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=40, deadline=None)
def test_reconstruction_never_crashes_and_loops_close(n, seed):
    """Random report sets always produce closed boundary loops."""
    rng = random.Random(seed)
    reports = []
    for k in range(n):
        p = (rng.uniform(0.5, 9.5), rng.uniform(0.5, 9.5))
        if any(dist(p, q.position) < 1e-3 for q in reports):
            continue
        a = rng.uniform(0, 2 * math.pi)
        reports.append(IsolineReport(7.0, p, (math.cos(a), math.sin(a)), k))
    if not reports:
        return
    region = build_level_region(7.0, reports, BOX)
    for lp in region.loops:
        assert loop_is_closed(lp, tol=1e-4)
    # Area is sane: within the field.
    assert 0.0 <= region.area() <= BOX.area + 1e-6
