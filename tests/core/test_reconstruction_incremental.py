"""Differential tests: incremental reconstruction vs from-scratch rebuild.

``ReconstructionCache.update`` claims its spliced region is *bit
identical* to ``build_level_region`` on the same reports -- every float
of every cell polygon, label list, neighbor list, inner polygon, loop
and regulation statistic.  These tests pin that contract across seeded
multi-epoch workloads:

- *drift*: a contiguous arc of the isoline retracts behind and extends
  ahead each epoch, with occasional direction rotations and small
  position moves (the steady-state tide shape);
- *storm*: one epoch replaces a whole localized cluster at once (high
  dirty fraction, exercising the full-rebuild fallback).

They also pin the retention machinery itself: untouched cells must be
the *same objects* (no silent recompute), and the fallback threshold
must behave as documented.
"""

import math
import random

import pytest

from repro.core.contour_map import SinkReconstructor, build_contour_map
from repro.core.reconstruction import ReconstructionCache, build_level_region
from repro.core.reports import IsolineReport
from repro.geometry import BoundingBox

BOX = BoundingBox(0, 0, 100, 100)
LEVEL = 8.0


# ----------------------------------------------------------------------
# Workload generators
# ----------------------------------------------------------------------


def make_pool(n_pool, seed):
    """Fixed sensor positions along a noisy 5-lobed ring.

    Reports come from *fixed* deployed sensors; epoch churn activates
    and retracts pool members, it does not teleport them.
    """
    rng = random.Random(seed)
    pool = []
    for k in range(n_pool):
        th = 2 * math.pi * k / n_pool
        r = 30.0 + 5.0 * math.sin(5 * th) + rng.uniform(-2.5, 2.5)
        pos = (50.0 + r * math.cos(th), 50.0 + r * math.sin(th))
        pool.append((pos, (math.cos(th), math.sin(th))))
    return pool


def reports_from(pool, active, overrides=None):
    overrides = overrides or {}
    out = []
    for k in sorted(active):
        pos, direction = overrides.get(k, pool[k])
        out.append(IsolineReport(LEVEL, pos, direction, source=k))
    return out


def drift_epochs(n_pool, seed, epochs, churn, rotate=0, move=0):
    """Yield successive report lists for a drifting-arc workload."""
    pool = make_pool(n_pool, seed)
    rng = random.Random(seed + 1)
    active = set(range(0, n_pool, 2))
    overrides = {}
    arc = rng.randrange(n_pool)
    yield reports_from(pool, active, overrides)
    for _ in range(epochs):
        changed = 0
        while changed < churn:
            k = arc % n_pool
            if k in active:
                active.discard(k)
                overrides.pop(k, None)
                active.add((k + 1) % n_pool)
                changed += 1
            arc += 1
        for k in rng.sample(sorted(active), min(rotate, len(active))):
            ang = rng.uniform(0, 2 * math.pi)
            overrides[k] = (overrides.get(k, pool[k])[0],
                            (math.cos(ang), math.sin(ang)))
        for k in rng.sample(sorted(active), min(move, len(active))):
            pos, direction = overrides.get(k, pool[k])
            overrides[k] = ((pos[0] + rng.uniform(-0.3, 0.3),
                             pos[1] + rng.uniform(-0.3, 0.3)), direction)
        yield reports_from(pool, active, overrides)


def storm_epochs(n_pool, seed, epochs):
    """Yield report lists where one epoch replaces a whole cluster."""
    pool = make_pool(n_pool, seed)
    rng = random.Random(seed + 1)
    active = set(range(0, n_pool, 2))
    yield reports_from(pool, active)
    for ep in range(epochs):
        if ep == epochs // 2:
            start = rng.randrange(n_pool)
            width = n_pool // 3
            cluster = {(start + j) % n_pool for j in range(width)}
            active = (active - cluster) | {
                k for k in cluster if (k + 1) % 2 == 0
            } | {(k + 1) % n_pool for k in cluster if k % 2 == 0}
        else:
            for _ in range(max(1, n_pool // 50)):
                k = rng.randrange(n_pool)
                if k in active:
                    active.discard(k)
                else:
                    active.add(k)
        yield reports_from(pool, active)


# ----------------------------------------------------------------------
# Exact-equality helper
# ----------------------------------------------------------------------


def assert_regions_identical(got, want):
    """Every float, label and index must match exactly (no tolerance)."""
    assert got.isolevel == want.isolevel
    assert got.reports == want.reports
    assert len(got.cells) == len(want.cells)
    for ca, cb in zip(got.cells, want.cells):
        assert ca.site_index == cb.site_index
        assert ca.site == cb.site
        assert ca.polygon.vertices == cb.polygon.vertices
        assert ca.polygon.labels == cb.polygon.labels
        assert ca.neighbors == cb.neighbors
    assert len(got.inner_polys) == len(want.inner_polys)
    for pa, pb in zip(got.inner_polys, want.inner_polys):
        assert pa.vertices == pb.vertices
        assert pa.labels == pb.labels
    assert got.loops == want.loops
    assert got.regulated_loops == want.regulated_loops
    assert got.regulation_stats == want.regulation_stats


def run_differential(epoch_iter, **cache_kwargs):
    cache = ReconstructionCache(LEVEL, BOX, **cache_kwargs)
    saw_incremental = False
    for reports in epoch_iter:
        got = cache.update(reports)
        want = build_level_region(LEVEL, reports, BOX)
        assert_regions_identical(got, want)
        saw_incremental |= not cache.stats.last_full_rebuild
    return cache, saw_incremental


# ----------------------------------------------------------------------
# The 20+ seeded sequences
# ----------------------------------------------------------------------


class TestDriftDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_pure_churn_drift(self, seed):
        _, inc = run_differential(
            drift_epochs(400, seed, epochs=4, churn=6)
        )
        assert inc  # the workload must actually exercise the delta path

    @pytest.mark.parametrize("seed", range(4))
    def test_drift_with_rotations_and_moves(self, seed):
        run_differential(
            drift_epochs(400, 100 + seed, epochs=4, churn=5, rotate=3, move=2)
        )


class TestStormDifferential:
    @pytest.mark.parametrize("seed", range(6))
    def test_localized_storm(self, seed):
        cache, _ = run_differential(storm_epochs(360, 200 + seed, epochs=5))
        # The cluster-replacement epoch must have tripped the fallback.
        assert cache.stats.full_rebuilds >= 2  # cold start + storm


class TestSmallInputDifferential:
    """Below the batching cutoff the Voronoi reference path is used; the
    incremental splice must stay bit-identical there too."""

    @pytest.mark.parametrize("seed", range(4))
    def test_small_m_drift(self, seed):
        run_differential(drift_epochs(60, 300 + seed, epochs=4, churn=2))


# ----------------------------------------------------------------------
# Retention and fallback machinery
# ----------------------------------------------------------------------


class TestRetention:
    def test_untouched_cells_are_same_objects(self):
        pool = make_pool(400, 7)
        active = set(range(0, 400, 2))
        cache = ReconstructionCache(LEVEL, BOX)
        cache.update(reports_from(pool, active))
        before = {c.site: c for c in cache.region.cells}
        # Retract one source and activate its pool neighbor: a localized
        # delta far from most of the ring.
        active.discard(0)
        active.add(1)
        cache.update(reports_from(pool, active))
        assert not cache.stats.last_full_rebuild
        retained = 0
        for cell in cache.region.cells:
            old = before.get(cell.site)
            if old is not None and old.polygon is cell.polygon:
                retained += 1
        assert retained == cache.stats.last_cells_total - \
            cache.stats.last_cells_recomputed
        assert retained > cache.stats.last_cells_total // 2

    def test_threshold_zero_always_rebuilds(self):
        it = drift_epochs(200, 11, epochs=3, churn=4)
        cache, saw_incremental = run_differential(
            it, full_rebuild_threshold=0.0
        )
        assert not saw_incremental
        assert cache.stats.full_rebuilds == cache.stats.epochs

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ReconstructionCache(LEVEL, BOX, full_rebuild_threshold=1.5)
        with pytest.raises(ValueError):
            ReconstructionCache(LEVEL, BOX, full_rebuild_threshold=-0.1)

    def test_empty_reports_rejected(self):
        cache = ReconstructionCache(LEVEL, BOX)
        with pytest.raises(ValueError):
            cache.update([])

    def test_reset_forces_full_rebuild(self):
        it = drift_epochs(200, 13, epochs=1, churn=3)
        cache = ReconstructionCache(LEVEL, BOX)
        first = next(it)
        cache.update(first)
        cache.reset()
        assert cache.region is None
        cache.update(first)
        assert cache.stats.last_full_rebuild

    def test_unregulated_cache_matches_unregulated_build(self):
        it = drift_epochs(300, 17, epochs=3, churn=4)
        cache = ReconstructionCache(LEVEL, BOX, regulate=False)
        for reports in it:
            got = cache.update(reports)
            want = build_level_region(LEVEL, reports, BOX, regulate=False)
            assert_regions_identical(got, want)
        assert got.regulation_stats == {"rule1": 0, "rule2": 0}


# ----------------------------------------------------------------------
# SinkReconstructor: multi-level assembly and level-crossing eviction
# ----------------------------------------------------------------------


def two_level_reports(pool, active_by_level, overrides=None):
    overrides = overrides or {}
    out = []
    for level, active in sorted(active_by_level.items()):
        for k in sorted(active):
            pos, direction = pool[k]
            level_here = overrides.get(k, level)
            out.append(IsolineReport(level_here, pos, direction, source=k))
    return out


class TestSinkReconstructor:
    def assert_maps_identical(self, got, want):
        assert got.levels == want.levels
        assert got.full_levels == want.full_levels
        assert set(got.regions) == set(want.regions)
        for v in got.regions:
            assert_regions_identical(got.regions[v], want.regions[v])

    @pytest.mark.parametrize("seed", range(3))
    def test_multi_level_drift_matches_full_build(self, seed):
        pool = make_pool(300, seed)
        levels = [6.0, 8.0]
        recon = SinkReconstructor(levels, BOX)
        rng = random.Random(seed)
        low = set(range(0, 300, 4))
        high = set(range(2, 300, 4))
        for _ in range(4):
            reports = []
            for level, active in ((6.0, low), (8.0, high)):
                for k in sorted(active):
                    pos, direction = pool[k]
                    reports.append(IsolineReport(level, pos, direction, k))
            got = recon.reconstruct(reports, sink_value=9.0)
            want = build_contour_map(reports, levels, BOX, sink_value=9.0)
            self.assert_maps_identical(got, want)
            for active in (low, high):
                k = rng.choice(sorted(active))
                active.discard(k)

    def test_level_crossing_evicts_old_level_cell(self):
        """A source whose value crosses to a different isolevel (same
        position) must disappear from the old level's retained region --
        the cache-consistency regression this suite pins."""
        pool = make_pool(200, 3)
        levels = [6.0, 8.0]
        recon = SinkReconstructor(levels, BOX)
        low = set(range(0, 200, 4))
        high = set(range(2, 200, 4))
        crosser = sorted(low)[3]

        def build(low_set, high_set):
            reports = []
            for level, active in ((6.0, low_set), (8.0, high_set)):
                for k in sorted(active):
                    pos, direction = pool[k]
                    reports.append(IsolineReport(level, pos, direction, k))
            return reports

        first = build(low, high)
        recon.reconstruct(first)
        assert any(
            r.source == crosser for r in recon.cache(6.0).region.reports
        )
        # The field rose at ``crosser``: same position, new isolevel.
        second = build(low - {crosser}, high | {crosser})
        got = recon.reconstruct(second)
        want = build_contour_map(second, levels, BOX)
        self.assert_maps_identical(got, want)
        low_region = recon.cache(6.0).region
        assert all(r.source != crosser for r in low_region.reports)
        assert any(
            r.source == crosser for r in recon.cache(8.0).region.reports
        )
        assert all(
            c.site != pool[crosser][0] for c in low_region.cells
        )

    def test_level_emptying_resets_cache(self):
        pool = make_pool(100, 5)
        levels = [6.0, 8.0]
        recon = SinkReconstructor(levels, BOX)
        low = set(range(0, 100, 2))
        high = set(range(1, 100, 2))
        recon.reconstruct(two_level_reports(pool, {6.0: low, 8.0: high}))
        assert recon.cache(8.0).region is not None
        # Every high-level source drops out; evidence from the low level
        # no longer exists for 8.0, so the level is simply absent.
        got = recon.reconstruct(two_level_reports(pool, {6.0: low}))
        assert recon.cache(8.0).region is None
        assert 8.0 not in got.regions
        want = build_contour_map(
            two_level_reports(pool, {6.0: low}), levels, BOX
        )
        self.assert_maps_identical(got, want)

    def test_stats_rollup(self):
        pool = make_pool(200, 9)
        recon = SinkReconstructor([8.0], BOX)
        active = set(range(0, 200, 2))
        recon.reconstruct(reports_from(pool, active))
        assert recon.last_full_rebuilds == 1
        assert recon.last_dirty_fraction() == 1.0
        active.discard(0)
        active.add(1)
        recon.reconstruct(reports_from(pool, active))
        assert recon.last_full_rebuilds == 0
        assert 0.0 < recon.last_dirty_fraction() < 1.0
        assert recon.last_seconds > 0.0
