"""Unit tests for distributed isoline-node detection (Definition 3.1)."""

import pytest

from repro.core import ContourQuery
from repro.core.detection import detect_isoline_nodes
from repro.field import PlaneField, RadialField
from repro.geometry import BoundingBox
from repro.network import CostAccountant, SensorNetwork

BOX = BoundingBox(0, 0, 20, 20)


def plane_net(n=300, seed=0):
    # value = x: isolines are vertical lines x = v_i.
    field = PlaneField(BOX, c0=0, cx=1, cy=0)
    return SensorNetwork.random_deploy(field, n, radio_range=2.5, seed=seed)


class TestDetection:
    def test_isoline_nodes_near_isolines(self):
        net = plane_net()
        q = ContourQuery(5.0, 15.0, 5.0)  # levels 5, 10, 15; eps = 0.25
        costs = CostAccountant(net.n_nodes)
        res = detect_isoline_nodes(net, q, costs)
        assert res.isoline_nodes, "a 300-node net must have isoline nodes"
        for node_id, level in res.isoline_nodes.items():
            x = net.nodes[node_id].position[0]
            assert abs(x - level) <= q.epsilon + 1e-9

    def test_condition_two_requires_straddling_neighbor(self):
        # A lone candidate with no neighbour across the isolevel must not
        # self-appoint.  Line of nodes all below the level 10:
        field = PlaneField(BOX, c0=0, cx=1, cy=0)
        positions = [(9.8, 10.0), (9.6, 10.5), (9.7, 9.5)]  # all < 10
        net = SensorNetwork(field, positions, radio_range=2.0)
        q = ContourQuery(10.0, 10.0, 1.0, epsilon_fraction=0.3)
        costs = CostAccountant(net.n_nodes)
        res = detect_isoline_nodes(net, q, costs)
        assert 0 in res.candidates  # 9.8 is within eps = 0.3 of 10
        assert res.isoline_nodes == {}  # but nobody straddles

    def test_straddling_neighbor_appoints(self):
        field = PlaneField(BOX, c0=0, cx=1, cy=0)
        positions = [(9.8, 10.0), (10.4, 10.0)]  # values 9.8 and 10.4
        net = SensorNetwork(field, positions, radio_range=2.0)
        q = ContourQuery(10.0, 10.0, 1.0, epsilon_fraction=0.3)
        costs = CostAccountant(net.n_nodes)
        res = detect_isoline_nodes(net, q, costs)
        assert res.isoline_nodes.get(0) == 10.0
        # Node 1 (value 10.4) is outside the border region -> not a node.
        assert 1 not in res.isoline_nodes

    def test_sensing_failed_nodes_do_not_participate(self):
        net = plane_net(seed=2)
        q = ContourQuery(5.0, 15.0, 5.0)
        costs = CostAccountant(net.n_nodes)
        baseline = detect_isoline_nodes(net, q, costs)
        victim = next(iter(baseline.isoline_nodes))
        net.nodes[victim].sensing_ok = False
        costs2 = CostAccountant(net.n_nodes)
        res = detect_isoline_nodes(net, q, costs2)
        assert victim not in res.isoline_nodes
        assert victim not in res.candidates

    def test_neighborhood_data_collected_for_candidates(self):
        net = plane_net(seed=3)
        q = ContourQuery(5.0, 15.0, 5.0)
        costs = CostAccountant(net.n_nodes)
        res = detect_isoline_nodes(net, q, costs)
        for node_id in res.isoline_nodes:
            data = res.neighborhood_data[node_id]
            assert len(data) >= 1
            # Data entries are (position, value) with value = x.
            for (pos, val) in data:
                assert val == pytest.approx(pos[0])

    def test_traffic_charged_only_at_candidates(self):
        net = plane_net(seed=4)
        q = ContourQuery(5.0, 15.0, 5.0)
        costs = CostAccountant(net.n_nodes)
        res = detect_isoline_nodes(net, q, costs)
        for node in net.nodes:
            i = node.node_id
            if i in res.candidates:
                assert costs.tx_bytes[i] > 0  # probe broadcast
            else:
                # Non-candidates transmit only reply bytes to candidates.
                # Nodes far from any candidate transmit nothing.
                pass
        # Ops are charged at every sensing node (condition-1 checks).
        assert (costs.ops[: net.n_nodes] > 0).sum() >= net.alive_count() - 1

    def test_detection_count_scales_with_isoline_length(self):
        # A radial field: one circular isoline; the number of isoline
        # nodes ~ density * eps-stripe area around the circle.
        field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
        net = SensorNetwork.random_deploy(field, 1600, radio_range=1.5, seed=5)
        q = ContourQuery(15.0, 15.0, 2.0, epsilon_fraction=0.25)
        costs = CostAccountant(net.n_nodes)
        res = detect_isoline_nodes(net, q, costs)
        # Circle radius 5; all isoline nodes within eps=0.5 of the circle.
        import math

        for node_id in res.isoline_nodes:
            r = math.dist(net.nodes[node_id].position, (10, 10))
            assert abs(r - 5.0) <= 0.5 + 1e-9
        assert len(res.isoline_nodes) > 5

    def test_k_hop_2_collects_more_data(self):
        net = plane_net(seed=6)
        q1 = ContourQuery(5.0, 15.0, 5.0, k_hop=1)
        q2 = ContourQuery(5.0, 15.0, 5.0, k_hop=2)
        res1 = detect_isoline_nodes(net, q1, CostAccountant(net.n_nodes))
        res2 = detect_isoline_nodes(net, q2, CostAccountant(net.n_nodes))
        common = set(res1.neighborhood_data) & set(res2.neighborhood_data)
        assert common
        assert all(
            len(res2.neighborhood_data[i]) >= len(res1.neighborhood_data[i])
            for i in common
        )
