"""Unit and property tests for the regression gradient estimator."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import estimate_gradient
from repro.core.gradient import OPS_PER_SAMPLE, OPS_SOLVE, fallback_direction, _solve3


def plane(x, y, c0=2.0, cx=1.0, cy=-0.5):
    return c0 + cx * x + cy * y


class TestEstimateGradient:
    def test_recovers_plane_gradient_exactly(self):
        center = (1.0, 1.0)
        nbrs = [((p), plane(*p)) for p in [(0, 0), (2, 0), (0, 2), (2, 2), (1, 0)]]
        est = estimate_gradient(center, plane(*center), nbrs)
        assert est is not None
        # d = -(cx, cy)/|.| = -(1, -0.5) normalised.
        expect = (-1.0, 0.5)
        n = math.hypot(*expect)
        assert est.direction[0] == pytest.approx(expect[0] / n, abs=1e-9)
        assert est.direction[1] == pytest.approx(expect[1] / n, abs=1e-9)
        assert est.coefficients[0] == pytest.approx(2.0, abs=1e-9)

    def test_direction_is_unit(self):
        rng = random.Random(1)
        nbrs = [
            ((rng.uniform(-1, 1), rng.uniform(-1, 1)),)
            for _ in range(6)
        ]
        nbrs = [(p[0], plane(*p[0])) for p in nbrs]
        est = estimate_gradient((0, 0), plane(0, 0), nbrs)
        assert est is not None
        assert math.hypot(*est.direction) == pytest.approx(1.0)

    def test_ops_accounting(self):
        nbrs = [((1, 0), 1.0), ((0, 1), 2.0), ((1, 1), 3.0)]
        est = estimate_gradient((0, 0), 0.0, nbrs)
        assert est is not None
        assert est.ops == OPS_PER_SAMPLE * 4 + OPS_SOLVE
        assert est.sample_count == 4

    def test_too_few_neighbors(self):
        assert estimate_gradient((0, 0), 1.0, []) is None
        assert estimate_gradient((0, 0), 1.0, [((1, 0), 2.0)]) is None

    def test_collinear_positions_degenerate(self):
        nbrs = [((1, 0), 1.0), ((2, 0), 2.0), ((3, 0), 3.0)]
        assert estimate_gradient((0, 0), 0.0, nbrs) is None

    def test_flat_field_degenerate(self):
        nbrs = [((1, 0), 5.0), ((0, 1), 5.0), ((1, 1), 5.0)]
        assert estimate_gradient((0, 0), 5.0, nbrs) is None

    def test_noise_robustness(self):
        # With many samples the fit direction converges despite noise.
        rng = random.Random(7)
        nbrs = []
        for _ in range(30):
            p = (rng.uniform(-2, 2), rng.uniform(-2, 2))
            nbrs.append((p, plane(*p) + rng.gauss(0, 0.05)))
        est = estimate_gradient((0, 0), plane(0, 0), nbrs)
        assert est is not None
        expect = (-1.0, 0.5)
        n = math.hypot(*expect)
        angle = math.acos(
            max(
                -1.0,
                min(
                    1.0,
                    est.direction[0] * expect[0] / n
                    + est.direction[1] * expect[1] / n,
                ),
            )
        )
        assert math.degrees(angle) < 10


class TestFallbackDirection:
    def test_points_downhill(self):
        d = fallback_direction((0, 0), 5.0, (1, 0), 3.0)
        assert d == pytest.approx((1.0, 0.0))

    def test_points_away_from_higher(self):
        d = fallback_direction((0, 0), 5.0, (1, 0), 8.0)
        assert d == pytest.approx((-1.0, 0.0))

    def test_degenerate(self):
        assert fallback_direction((0, 0), 5.0, (0, 0), 3.0) is None
        assert fallback_direction((0, 0), 5.0, (1, 0), 5.0) is None


class TestSolve3:
    def test_identity(self):
        a = [[1, 0, 0], [0, 1, 0], [0, 0, 1]]
        assert _solve3(a, [3, 4, 5]) == pytest.approx((3, 4, 5))

    def test_requires_pivoting(self):
        a = [[0, 1, 0], [1, 0, 0], [0, 0, 1]]
        assert _solve3(a, [4, 3, 5]) == pytest.approx((3, 4, 5))

    def test_singular_returns_none(self):
        a = [[1, 2, 3], [2, 4, 6], [1, 1, 1]]
        assert _solve3(a, [1, 2, 3]) is None

    def test_zero_matrix(self):
        a = [[0, 0, 0], [0, 0, 0], [0, 0, 0]]
        assert _solve3(a, [0, 0, 0]) is None

    def test_general_system(self):
        a = [[2, 1, -1], [-3, -1, 2], [-2, 1, 2]]
        x = _solve3(a, [8, -11, -3])
        assert x == pytest.approx((2, 3, -1))


@given(
    cx=st.floats(min_value=-5, max_value=5),
    cy=st.floats(min_value=-5, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=100)
def test_plane_recovery_property(cx, cy, seed):
    """The estimator recovers any non-flat plane's descent direction."""
    if math.hypot(cx, cy) < 0.1:
        return  # near-flat planes legitimately return None
    rng = random.Random(seed)
    nbrs = []
    for _ in range(8):
        p = (rng.uniform(-1, 1), rng.uniform(-1, 1))
        nbrs.append((p, 1.0 + cx * p[0] + cy * p[1]))
    est = estimate_gradient((0.3, -0.2), 1.0 + 0.3 * cx - 0.2 * cy, nbrs)
    if est is None:
        return  # degenerate sample placement (collinear by chance)
    g = math.hypot(cx, cy)
    assert est.direction[0] == pytest.approx(-cx / g, abs=1e-6)
    assert est.direction[1] == pytest.approx(-cy / g, abs=1e-6)
