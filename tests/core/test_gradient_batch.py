"""Property tests: batched gradient regression vs the per-node reference.

:func:`estimate_gradients_batch` promises to return exactly
``[estimate_gradient(*t) for t in tasks]`` -- the same direction and
coefficient floats bit-for-bit, the same ``ops`` charge, the same
``None`` for degenerate neighbourhoods.  These tests pin that promise on
random neighbourhoods, on the degenerate paths (too few samples,
collinear positions, flat planes), and on mixed batches that interleave
good and degenerate tasks (where a mis-aligned mask would scramble
results across rows).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gradient import (
    estimate_gradient,
    estimate_gradients_batch,
    fallback_direction,
)


def _random_task(rng, degree, span=1.5):
    cx, cy = rng.uniform(0, 50), rng.uniform(0, 50)
    cv = rng.uniform(0, 30)
    nbrs = [
        ((cx + rng.uniform(-span, span), cy + rng.uniform(-span, span)),
         rng.uniform(0, 30))
        for _ in range(degree)
    ]
    return ((cx, cy), cv, nbrs)


def assert_batch_matches_scalar(tasks):
    batch = estimate_gradients_batch(tasks)
    assert len(batch) == len(tasks)
    for got, task in zip(batch, tasks):
        want = estimate_gradient(*task)
        if want is None:
            assert got is None
        else:
            # Dataclass equality compares every field; the floats must be
            # identical bits, not merely close.
            assert got == want
            assert got.ops == want.ops
            assert math.isfinite(got.direction[0])


def test_empty_batch():
    assert estimate_gradients_batch([]) == []


def test_random_neighbourhoods_bitwise_equal():
    rng = random.Random(42)
    tasks = [_random_task(rng, rng.randint(2, 12)) for _ in range(300)]
    assert_batch_matches_scalar(tasks)


def test_large_coordinates_and_tiny_gradients():
    rng = random.Random(7)
    tasks = [_random_task(rng, 6, span=1e-4) for _ in range(50)]
    tasks += [
        (((x0 := rng.uniform(1e5, 1e6)), rng.uniform(1e5, 1e6)), 10.0,
         [((x0 + rng.uniform(-1, 1), rng.uniform(1e5, 1e6)), rng.uniform(0, 30))
          for _ in range(5)])
        for _ in range(20)
    ]
    assert_batch_matches_scalar(tasks)


def test_too_few_samples_is_none():
    tasks = [
        ((0.0, 0.0), 1.0, []),
        ((0.0, 0.0), 1.0, [((1.0, 0.0), 2.0)]),
    ]
    assert estimate_gradients_batch(tasks) == [None, None]


def test_collinear_positions_are_none_and_fallback_covers_them():
    # All samples on one line: V^T V is rank deficient, the regression
    # cannot define a plane, and the protocol falls back to the two-point
    # direction instead.
    center, cv = (2.0, 3.0), 9.0
    nbrs = [((2.0 + t, 3.0 + 2.0 * t), 9.0 - t) for t in (0.5, 1.0, 1.5, 2.0)]
    task = (center, cv, nbrs)
    assert estimate_gradient(*task) is None
    assert estimate_gradients_batch([task]) == [None]

    d = fallback_direction(center, cv, nbrs[0][0], nbrs[0][1])
    assert d is not None
    assert math.hypot(d[0], d[1]) == pytest.approx(1.0)
    # Descent: points from the higher value (centre) towards the lower.
    assert d[0] > 0 and d[1] > 0


def test_flat_plane_is_none():
    rng = random.Random(1)
    center = (5.0, 5.0)
    nbrs = [((5 + rng.uniform(-1, 1), 5 + rng.uniform(-1, 1)), 7.0) for _ in range(6)]
    task = (center, 7.0, nbrs)
    assert estimate_gradient(*task) is None
    assert estimate_gradients_batch([task]) == [None]


def test_mixed_batch_keeps_rows_aligned():
    rng = random.Random(13)
    tasks = []
    for k in range(120):
        if k % 4 == 0:
            tasks.append(((1.0, 1.0), 5.0, []))  # m < 3
        elif k % 4 == 1:
            tasks.append(
                ((0.0, 0.0), 3.0, [((t, t), 3.0 - t) for t in (1.0, 2.0, 3.0)])
            )  # collinear
        else:
            tasks.append(_random_task(rng, rng.randint(3, 9)))
    assert_batch_matches_scalar(tasks)
    batch = estimate_gradients_batch(tasks)
    assert batch[0] is None and batch[1] is None and batch[2] is not None


def test_ops_charge_matches_sample_count():
    rng = random.Random(99)
    tasks = [_random_task(rng, d) for d in (2, 5, 11)]
    for got, task in zip(estimate_gradients_batch(tasks), tasks):
        want = estimate_gradient(*task)
        assert (got is None) == (want is None)
        if want is not None:
            assert got.sample_count == len(task[2]) + 1
            assert got.ops == want.ops


finite = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.tuples(finite, finite),
            finite,
            st.lists(st.tuples(st.tuples(finite, finite), finite), max_size=8),
        ),
        max_size=12,
    )
)
def test_property_batch_equals_scalar(tasks):
    batch = estimate_gradients_batch(tasks)
    for got, task in zip(batch, tasks):
        want = estimate_gradient(*task)
        if want is None:
            assert got is None
        else:
            assert got.ops == want.ops
            assert got.sample_count == want.sample_count
            for g, w in zip(got.direction, want.direction):
                assert g == pytest.approx(w, abs=1e-9)
            for g, w in zip(got.coefficients, want.coefficients):
                assert g == w
