"""Unit tests for the straddle-based (adaptive) detection extension."""

import pytest

from repro.core import ContourQuery
from repro.core.detection import detect_isoline_nodes
from repro.field import PlaneField
from repro.geometry import BoundingBox
from repro.network import CostAccountant, SensorNetwork

BOX = BoundingBox(0, 0, 20, 20)


def plane_net(positions, radio_range=2.0):
    field = PlaneField(BOX, c0=0, cx=1, cy=0)  # value = x
    return SensorNetwork(field, positions, radio_range=radio_range)


def straddle_query(level=10.0):
    return ContourQuery(level, level, 1.0, detection_mode="straddle")


class TestStraddleDetection:
    def test_closer_endpoint_appointed(self):
        # Values 9.2 and 10.5 straddle 10; 10.5 is closer (|gap| 0.5 < 0.8).
        net = plane_net([(9.2, 10.0), (10.5, 10.0)])
        res = detect_isoline_nodes(net, straddle_query(), CostAccountant(2))
        assert res.isoline_nodes == {1: 10.0}

    def test_appointment_despite_wide_value_gap(self):
        # Border mode (eps = 0.05) would reject both nodes: neither value
        # is within 0.05 of the level.  Straddle mode appoints the closer.
        net = plane_net([(9.0, 10.0), (10.8, 10.0)])
        border = ContourQuery(10.0, 10.0, 1.0, detection_mode="border")
        res_border = detect_isoline_nodes(net, border, CostAccountant(2))
        assert res_border.isoline_nodes == {}
        res = detect_isoline_nodes(net, straddle_query(), CostAccountant(2))
        assert 1 in res.isoline_nodes

    def test_tie_breaks_to_lower_id(self):
        # Symmetric straddle: values 9.5 and 10.5 around 10.
        net = plane_net([(9.5, 10.0), (10.5, 10.0)])
        res = detect_isoline_nodes(net, straddle_query(), CostAccountant(2))
        assert res.isoline_nodes == {0: 10.0}

    def test_no_straddle_no_appointment(self):
        net = plane_net([(8.0, 10.0), (9.0, 10.0)])  # both below 10
        res = detect_isoline_nodes(net, straddle_query(), CostAccountant(2))
        assert res.isoline_nodes == {}

    def test_nearest_level_chosen(self):
        # A steep edge straddling levels 10 and 12; the node's value 9.9
        # is nearest to level 10.
        field = PlaneField(BOX, c0=0, cx=1, cy=0)
        net = SensorNetwork(field, [(9.9, 10.0), (12.4, 10.0)], radio_range=3.0)
        q = ContourQuery(10.0, 12.0, 2.0, detection_mode="straddle")
        res = detect_isoline_nodes(net, q, CostAccountant(2))
        assert res.isoline_nodes.get(0) == 10.0

    def test_neighborhood_data_collected_for_appointed(self):
        net = plane_net([(9.5, 10.0), (10.5, 10.0), (9.8, 11.0)])
        res = detect_isoline_nodes(net, straddle_query(), CostAccountant(3))
        for node_id in res.isoline_nodes:
            assert res.neighborhood_data[node_id]

    def test_every_routed_node_broadcasts_value(self):
        net = plane_net([(9.5, 10.0), (10.5, 10.0), (11.5, 10.0)])
        costs = CostAccountant(3)
        detect_isoline_nodes(net, straddle_query(), costs)
        # All three routed sensing nodes transmitted at least their value.
        assert all(costs.tx_bytes[i] >= 2 for i in range(3))

    def test_unrouted_nodes_do_not_broadcast(self):
        net = plane_net([(9.5, 10.0), (10.5, 10.0), (3.0, 10.0)])  # node 2 isolated
        costs = CostAccountant(3)
        detect_isoline_nodes(net, straddle_query(), costs)
        assert costs.tx_bytes[2] == 0

    def test_sensing_failed_nodes_excluded(self):
        net = plane_net([(9.5, 10.0), (10.5, 10.0)])
        net.nodes[0].sensing_ok = False
        res = detect_isoline_nodes(net, straddle_query(), CostAccountant(2))
        # Node 1 has no sensing neighbour left to straddle with.
        assert res.isoline_nodes == {}

    def test_invalid_mode_rejected_at_query(self):
        with pytest.raises(ValueError):
            ContourQuery(0, 10, 2, detection_mode="psychic")
