"""Unit tests for the ASCII map renderer."""

import numpy as np
import pytest

from repro.viz import render_band_map, render_raster, side_by_side


class TestRenderRaster:
    def test_basic_ramp(self):
        r = np.array([[0, 1], [2, 3]])
        out = render_raster(r, ramp=" .:-")
        lines = out.splitlines()
        # Row 0 is the bottom of the field -> printed last.
        assert lines[0] == ":-"
        assert lines[1] == " ."

    def test_ramp_wraps(self):
        r = np.array([[5]])
        out = render_raster(r, ramp="ab")
        assert out == "b"  # 5 % 2 == 1

    def test_errors(self):
        with pytest.raises(ValueError):
            render_raster(np.zeros(3))
        with pytest.raises(ValueError):
            render_raster(np.zeros((2, 2)), ramp="")


class TestRenderBandMap:
    def test_uses_classify_raster(self):
        class Fake:
            def classify_raster(self, nx, ny):
                return np.ones((ny, nx), dtype=int)

        out = render_band_map(Fake(), nx=4, ny=2, ramp=" X")
        assert out == "XXXX\nXXXX"


class TestSideBySide:
    def test_alignment(self):
        out = side_by_side("aa\nbb", "cc\ndd", gap=2)
        assert out.splitlines() == ["aa  cc", "bb  dd"]

    def test_titles(self):
        out = side_by_side("a", "b", gap=3, titles=("L", "R"))
        assert out.splitlines()[0] == "L   R"

    def test_uneven_heights(self):
        out = side_by_side("a\nb\nc", "x", gap=1)
        assert len(out.splitlines()) == 3
