"""Unit tests for isolevel helpers, band classification and marching squares."""

import math

import numpy as np
import pytest

from repro.field import (
    PlaneField,
    RadialField,
    band_of,
    classify_raster,
    extract_isolines,
    isolevels_for,
)
from repro.field.contours import chain_segments, total_isoline_length
from repro.geometry import BoundingBox, dist, polyline_length

BOX = BoundingBox(0, 0, 10, 10)


class TestIsolevels:
    def test_basic(self):
        assert isolevels_for(6, 12, 2) == [6, 8, 10, 12]

    def test_non_multiple_range(self):
        assert isolevels_for(0, 5, 2) == [0, 2, 4]

    def test_single_level(self):
        assert isolevels_for(3, 3, 1) == [3]

    def test_invalid(self):
        with pytest.raises(ValueError):
            isolevels_for(0, 10, 0)
        with pytest.raises(ValueError):
            isolevels_for(10, 0, 1)


class TestBandOf:
    def test_below_all(self):
        assert band_of(1.0, [2, 4, 6]) == 0

    def test_between(self):
        assert band_of(5.0, [2, 4, 6]) == 2

    def test_at_level_counts_as_reached(self):
        assert band_of(4.0, [2, 4, 6]) == 2

    def test_above_all(self):
        assert band_of(100.0, [2, 4, 6]) == 3

    def test_no_levels(self):
        assert band_of(5.0, []) == 0


class TestClassifyRaster:
    def test_plane_bands_are_stripes(self):
        f = PlaneField(BOX, c0=0, cx=1, cy=0)  # value = x in [0, 10]
        r = classify_raster(f, [2.5, 5.0, 7.5], nx=20, ny=4)
        assert r.shape == (4, 20)
        # Rows are identical; columns increase in band.
        assert (r[0] == r[-1]).all()
        assert r[0, 0] == 0
        assert r[0, -1] == 3
        assert (np.diff(r[0]) >= 0).all()

    def test_radial_bands_are_rings(self):
        f = RadialField(BOX, center=(5, 5), peak=10, slope=1)
        r = classify_raster(f, [7.0], nx=50, ny=50)
        # Band 1 inside radius 3, band 0 outside.
        assert r[25, 25] == 1
        assert r[0, 0] == 0
        inside_area_cells = int((r == 1).sum())
        expected = math.pi * 9 / 100 * 2500  # pi r^2 / field area * cells
        assert inside_area_cells == pytest.approx(expected, rel=0.1)


class TestMarchingSquares:
    def test_plane_isoline_is_vertical_line(self):
        f = PlaneField(BOX, c0=0, cx=1, cy=0)
        lines = extract_isolines(f, 5.0, nx=40, ny=40)
        assert len(lines) == 1
        for p in lines[0]:
            assert p[0] == pytest.approx(5.0, abs=0.15)
        # Spans the full field height (up to half a cell at each end).
        ys = [p[1] for p in lines[0]]
        assert max(ys) - min(ys) > 9.0

    def test_radial_isoline_is_circle(self):
        f = RadialField(BOX, center=(5, 5), peak=10, slope=1)
        lines = extract_isolines(f, 7.0, nx=80, ny=80)
        assert len(lines) == 1
        ring = lines[0]
        # Closed: endpoints coincide.
        assert dist(ring[0], ring[-1]) < 1e-9
        radii = [dist(p, (5, 5)) for p in ring]
        assert min(radii) == pytest.approx(3.0, abs=0.1)
        assert max(radii) == pytest.approx(3.0, abs=0.1)
        # Length approximates the circumference.
        assert polyline_length(ring) == pytest.approx(2 * math.pi * 3, rel=0.03)

    def test_no_crossing_returns_empty(self):
        f = PlaneField(BOX, c0=0, cx=1, cy=0)
        assert extract_isolines(f, 100.0) == []

    def test_two_disjoint_isolines(self):
        # Two radial peaks produce two rings at a level only they reach.
        from repro.field import GaussianBumpField

        f = GaussianBumpField(
            BOX, base=0.0, bumps=[(5.0, (3, 3), 1.0), (5.0, (7, 7), 1.0)]
        )
        lines = extract_isolines(f, 3.0, nx=100, ny=100)
        assert len(lines) == 2
        for ring in lines:
            assert dist(ring[0], ring[-1]) < 1e-9

    def test_total_isoline_length(self):
        f = RadialField(BOX, center=(5, 5), peak=10, slope=1)
        total = total_isoline_length(f, [7.0, 8.0], nx=100, ny=100)
        expected = 2 * math.pi * (3 + 2)
        assert total == pytest.approx(expected, rel=0.05)


class TestChainSegments:
    def test_simple_chain(self):
        segs = [((0, 0), (1, 0)), ((1, 0), (2, 0)), ((2, 0), (3, 0))]
        chains = chain_segments(segs)
        assert len(chains) == 1
        assert len(chains[0]) == 4

    def test_chain_with_reversed_segments(self):
        segs = [((0, 0), (1, 0)), ((2, 0), (1, 0))]
        chains = chain_segments(segs)
        assert len(chains) == 1
        assert len(chains[0]) == 3

    def test_closed_ring(self):
        segs = [((0, 0), (1, 0)), ((1, 0), (1, 1)), ((1, 1), (0, 0))]
        chains = chain_segments(segs)
        assert len(chains) == 1
        assert chains[0][0] == chains[0][-1]

    def test_empty(self):
        assert chain_segments([]) == []
