"""Unit tests for the synthetic scalar fields."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import (
    CompositeField,
    GaussianBumpField,
    PlaneField,
    RadialField,
    RidgeField,
    ValueNoiseField,
)
from repro.geometry import BoundingBox

BOX = BoundingBox(0, 0, 10, 10)


class TestPlaneField:
    def test_value(self):
        f = PlaneField(BOX, c0=1.0, cx=2.0, cy=-1.0)
        assert f.value(3, 4) == pytest.approx(1 + 6 - 4)

    def test_gradient_is_constant(self):
        f = PlaneField(BOX, c0=0, cx=2.0, cy=3.0)
        assert f.gradient(1, 1) == (2.0, 3.0)
        assert f.gradient(9, 0.5) == (2.0, 3.0)

    def test_descent_direction_negates_gradient(self):
        f = PlaneField(BOX, c0=0, cx=2.0, cy=3.0)
        assert f.descent_direction(5, 5) == (-2.0, -3.0)

    def test_numeric_gradient_matches_analytic(self):
        f = PlaneField(BOX, c0=1, cx=0.5, cy=-2.5)
        gx, gy = super(PlaneField, f).gradient(4, 4)
        assert gx == pytest.approx(0.5, abs=1e-6)
        assert gy == pytest.approx(-2.5, abs=1e-6)


class TestRadialField:
    def test_isolines_are_circles(self):
        f = RadialField(BOX, center=(5, 5), peak=10, slope=1)
        # All points at distance 3 have the same value.
        vals = [
            f.value(5 + 3 * math.cos(t), 5 + 3 * math.sin(t))
            for t in [0, 1, 2, 3, 4, 5]
        ]
        assert max(vals) - min(vals) < 1e-12
        assert vals[0] == pytest.approx(7.0)

    def test_gradient_points_inward(self):
        f = RadialField(BOX, center=(5, 5))
        gx, gy = f.gradient(8, 5)
        assert gx == pytest.approx(-1.0)
        assert gy == pytest.approx(0.0, abs=1e-12)

    def test_gradient_at_centre_is_zero(self):
        f = RadialField(BOX, center=(5, 5))
        assert f.gradient(5, 5) == (0.0, 0.0)


class TestGaussianBumpField:
    def test_peak_value(self):
        f = GaussianBumpField(BOX, base=2.0, bumps=[(3.0, (5, 5), 1.0)])
        assert f.value(5, 5) == pytest.approx(5.0)

    def test_far_field_approaches_base(self):
        f = GaussianBumpField(BOX, base=2.0, bumps=[(3.0, (5, 5), 0.5)])
        assert f.value(0, 0) == pytest.approx(2.0, abs=1e-6)

    def test_analytic_gradient_matches_numeric(self):
        f = GaussianBumpField(
            BOX, base=1.0, bumps=[(2.0, (3, 3), 1.5), (-1.0, (7, 6), 2.0)]
        )
        for p in [(2, 2), (5, 5), (7.5, 6.5)]:
            ana = f.gradient(*p)
            num = ScalarFieldNumeric(f).gradient(*p)
            assert ana[0] == pytest.approx(num[0], abs=1e-5)
            assert ana[1] == pytest.approx(num[1], abs=1e-5)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            GaussianBumpField(BOX, base=0, bumps=[(1.0, (0, 0), 0.0)])


class TestRidgeField:
    def test_max_on_centerline(self):
        f = RidgeField(BOX, a=(0, 5), b=(10, 5), amplitude=4.0, width=1.0)
        assert f.value(3, 5) == pytest.approx(4.0)
        assert f.value(3, 7) < f.value(3, 6) < f.value(3, 5)

    def test_symmetric_about_centerline(self):
        f = RidgeField(BOX, a=(0, 5), b=(10, 5), amplitude=4.0, width=1.5)
        assert f.value(2, 3) == pytest.approx(f.value(2, 7))

    def test_analytic_gradient_matches_numeric(self):
        f = RidgeField(BOX, a=(0, 0), b=(10, 10), amplitude=3.0, width=2.0)
        for p in [(2, 5), (5, 2), (8, 8.5)]:
            ana = f.gradient(*p)
            num = ScalarFieldNumeric(f).gradient(*p)
            assert ana[0] == pytest.approx(num[0], abs=1e-5)
            assert ana[1] == pytest.approx(num[1], abs=1e-5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RidgeField(BOX, a=(0, 0), b=(1, 1), amplitude=1, width=0)
        with pytest.raises(ValueError):
            RidgeField(BOX, a=(1, 1), b=(1, 1), amplitude=1, width=1)


class TestValueNoiseField:
    def test_deterministic_under_seed(self):
        f1 = ValueNoiseField(BOX, seed=42)
        f2 = ValueNoiseField(BOX, seed=42)
        assert f1.value(3.3, 7.7) == f2.value(3.3, 7.7)

    def test_different_seeds_differ(self):
        f1 = ValueNoiseField(BOX, seed=1)
        f2 = ValueNoiseField(BOX, seed=2)
        samples = [(1, 1), (5, 5), (9, 3)]
        assert any(f1.value(*p) != f2.value(*p) for p in samples)

    def test_amplitude_bounds(self):
        f = ValueNoiseField(BOX, seed=0, octaves=3, amplitude=1.0)
        # Sum of octave amplitudes is 1 + 0.5 + 0.25 = 1.75.
        for p in BOX.sample_grid(15, 15):
            assert abs(f.value(*p)) <= 1.75 + 1e-9

    def test_continuity(self):
        f = ValueNoiseField(BOX, seed=5)
        v0 = f.value(4.0, 4.0)
        v1 = f.value(4.0 + 1e-5, 4.0)
        assert abs(v1 - v0) < 1e-3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ValueNoiseField(BOX, octaves=0)
        with pytest.raises(ValueError):
            ValueNoiseField(BOX, base_period=0)


class TestCompositeField:
    def test_sum_of_parts(self):
        f = CompositeField(
            BOX, [PlaneField(BOX, 1, 0, 0), PlaneField(BOX, 0, 2, 0)]
        )
        assert f.value(3, 0) == pytest.approx(7.0)

    def test_gradient_sums(self):
        f = CompositeField(
            BOX, [PlaneField(BOX, 0, 1, 2), PlaneField(BOX, 0, 3, -1)]
        )
        assert f.gradient(0, 0) == (4.0, 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            CompositeField(BOX, [])


class ScalarFieldNumeric:
    """Adapter forcing the default finite-difference gradient."""

    def __init__(self, field):
        self._f = field

    def gradient(self, x, y, h=1e-5):
        fx = (self._f.value(x + h, y) - self._f.value(x - h, y)) / (2 * h)
        fy = (self._f.value(x, y + h) - self._f.value(x, y - h)) / (2 * h)
        return (fx, fy)


@given(
    x=st.floats(min_value=0.5, max_value=9.5),
    y=st.floats(min_value=0.5, max_value=9.5),
)
@settings(max_examples=50)
def test_gaussian_gradient_property(x, y):
    f = GaussianBumpField(BOX, base=0.0, bumps=[(2.5, (5, 5), 2.0)])
    ana = f.gradient(x, y)
    num = ScalarFieldNumeric(f).gradient(x, y)
    assert ana[0] == pytest.approx(num[0], abs=1e-4)
    assert ana[1] == pytest.approx(num[1], abs=1e-4)
