"""Unit tests for grid-backed fields and the harbor stand-in."""

import numpy as np
import pytest

from repro.field import (
    HuanghuaHarborField,
    PlaneField,
    SampledGridField,
    make_harbor_field,
)
from repro.field.harbor import DEFAULT_ISOLEVELS, FIELD_SIDE
from repro.geometry import BoundingBox

BOX = BoundingBox(0, 0, 10, 10)


class TestSampledGridField:
    def test_exact_at_sample_centres(self):
        grid = np.array([[1.0, 2.0], [3.0, 4.0]])
        f = SampledGridField(BOX, grid)
        # Sample centres of a 2x2 grid over a 10x10 box.
        assert f.value(2.5, 2.5) == pytest.approx(1.0)
        assert f.value(7.5, 2.5) == pytest.approx(2.0)
        assert f.value(2.5, 7.5) == pytest.approx(3.0)
        assert f.value(7.5, 7.5) == pytest.approx(4.0)

    def test_bilinear_midpoint(self):
        grid = np.array([[0.0, 2.0], [4.0, 6.0]])
        f = SampledGridField(BOX, grid)
        assert f.value(5.0, 5.0) == pytest.approx(3.0)

    def test_clamping_outside_sample_centres(self):
        grid = np.array([[1.0, 2.0], [3.0, 4.0]])
        f = SampledGridField(BOX, grid)
        assert f.value(0.0, 0.0) == pytest.approx(1.0)
        assert f.value(10.0, 10.0) == pytest.approx(4.0)

    def test_from_field_reproduces_plane(self):
        plane = PlaneField(BOX, c0=1.0, cx=0.5, cy=0.2)
        f = SampledGridField.from_field(plane, nx=20, ny=20)
        for p in [(3.3, 4.4), (7.7, 1.2), (5.0, 5.0)]:
            assert f.value(*p) == pytest.approx(plane.value(*p), abs=1e-6)

    def test_gradient_of_sampled_plane(self):
        plane = PlaneField(BOX, c0=0.0, cx=2.0, cy=-1.0)
        f = SampledGridField.from_field(plane, nx=40, ny=40)
        gx, gy = f.gradient(5.0, 5.0)
        assert gx == pytest.approx(2.0, abs=1e-6)
        assert gy == pytest.approx(-1.0, abs=1e-6)

    def test_invalid_grids(self):
        with pytest.raises(ValueError):
            SampledGridField(BOX, np.array([1.0, 2.0]))  # 1-D
        with pytest.raises(ValueError):
            SampledGridField(BOX, np.array([[1.0]]))  # too small
        with pytest.raises(ValueError):
            SampledGridField(BOX, np.array([[1.0, np.nan], [0.0, 1.0]]))


class TestHarborField:
    def test_bounds(self):
        f = make_harbor_field()
        assert f.bounds.width == FIELD_SIDE
        assert f.bounds.height == FIELD_SIDE

    def test_deterministic(self):
        f1 = make_harbor_field(seed=7)
        f2 = make_harbor_field(seed=7)
        assert f1.value(13.3, 27.1) == f2.value(13.3, 27.1)

    def test_depth_range_plausible(self):
        f = make_harbor_field()
        lo, hi = f.value_range(samples=60)
        # Paper reports channel depths 5.7-13.5 m; our stand-in spans that.
        assert 4.0 < lo < 7.0
        assert 12.0 < hi < 16.0

    def test_default_isolevels_inside_range(self):
        f = make_harbor_field()
        lo, hi = f.value_range(samples=60)
        for v in DEFAULT_ISOLEVELS:
            assert lo < v < hi

    def test_channel_deeper_than_shelf(self):
        f = HuanghuaHarborField(noise_amplitude=0.0)
        # Point on the channel axis vs a far-off shelf point at same y.
        on_channel = f.value(25.0, 25.0)
        off_channel = f.value(25.0, 48.0)
        assert on_channel > off_channel

    def test_noise_free_variant(self):
        f = HuanghuaHarborField(noise_amplitude=0.0)
        assert len(f.parts) == 3

    def test_every_default_level_has_isolines(self):
        from repro.field import extract_isolines

        f = make_harbor_field()
        for v in DEFAULT_ISOLEVELS:
            assert extract_isolines(f, v, nx=80, ny=80), f"no isoline at {v}"


class TestScatteredField:
    def _field(self, **kw):
        from repro.field import ScatteredField

        positions = [(2, 2), (8, 2), (2, 8), (8, 8)]
        values = [1.0, 2.0, 3.0, 4.0]
        return ScatteredField(BOX, positions, values, **kw)

    def test_exact_at_samples(self):
        f = self._field()
        assert f.value(2, 2) == 1.0
        assert f.value(8, 8) == 4.0

    def test_interpolates_between(self):
        f = self._field()
        v = f.value(5, 5)
        assert 1.0 < v < 4.0

    def test_weights_favor_nearest(self):
        f = self._field()
        assert f.value(2.5, 2.5) < f.value(7.5, 7.5)

    def test_k_limits_support(self):
        from repro.field import ScatteredField

        positions = [(1, 1), (9, 9)]
        f = ScatteredField(BOX, positions, [0.0, 100.0], k=1)
        # With k = 1 only the nearest sample contributes.
        assert f.value(2, 2) == 0.0
        assert f.value(8, 8) == 100.0

    def test_validation(self):
        from repro.field import ScatteredField
        import numpy as np

        with pytest.raises(ValueError):
            ScatteredField(BOX, [(0, 0)], [1.0, 2.0])
        with pytest.raises(ValueError):
            ScatteredField(BOX, [], [])
        with pytest.raises(ValueError):
            ScatteredField(BOX, [(0, 0)], [np.nan])
        with pytest.raises(ValueError):
            ScatteredField(BOX, [(0, 0)], [1.0], k=0)
        with pytest.raises(ValueError):
            ScatteredField(BOX, [(0, 0)], [1.0], power=0)

    def test_bounded_by_sample_range(self):
        f = self._field()
        for p in BOX.sample_grid(12, 12):
            assert 1.0 - 1e-9 <= f.value(*p) <= 4.0 + 1e-9
