"""Differential tests: vectorized marching squares vs the scalar loop.

``extract_isolines`` classifies all grid squares in one array pass;
``extract_isolines_reference`` walks them one by one through
``_square_segments``.  The vectorized interpolation reuses the exact
rounded corner differences the scalar path computes, so the outputs must
be *identical* -- same segments, same chaining, same floats -- including
on saddle squares and exact level-touch corners.  Random grids around
the threshold exercise all 16 marching-squares cases densely.
"""

import random

import numpy as np
import pytest

from repro.field import make_harbor_field
from repro.field.contours import extract_isolines, extract_isolines_reference
from repro.field.grid_field import SampledGridField
from repro.field.synthetic import PlaneField, RadialField
from repro.geometry import BoundingBox

BOX = BoundingBox(0, 0, 50, 50)


def fresh(field_fn):
    """Two independent field instances (the fast path memoises on the
    instance; comparing against a fresh one keeps the test honest)."""
    return field_fn(), field_fn()


def assert_same_isolines(field_fn, level, nx, ny):
    f_fast, f_ref = fresh(field_fn)
    fast = extract_isolines(f_fast, level, nx, ny)
    ref = extract_isolines_reference(f_ref, level, nx, ny)
    assert fast == ref


@pytest.mark.parametrize("level", [5.0, 8.0, 10.0, 12.0])
def test_harbor_field_levels_identical(level):
    assert_same_isolines(make_harbor_field, level, 120, 120)


def test_non_square_grid_identical():
    assert_same_isolines(make_harbor_field, 8.0, 90, 140)


@pytest.mark.parametrize("seed", range(4))
def test_random_grid_fields_identical(seed):
    # Values tightly straddling the level produce a dense mix of all 16
    # square cases, saddles included.
    rng = np.random.default_rng(seed)
    grid = rng.uniform(-1.0, 1.0, size=(40, 40))
    field_fn = lambda: SampledGridField(BOX, grid)
    assert_same_isolines(field_fn, 0.0, 64, 64)


def test_exact_level_touches_identical():
    # Corners exactly at the level (ties in the >= threshold test).
    vals = np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
    grid = np.tile(vals, (6, 6))
    field_fn = lambda: SampledGridField(BOX, grid)
    for level in (0.0, 0.5, 1.0):
        assert_same_isolines(field_fn, level, 36, 36)


def test_closed_ring_identical():
    field_fn = lambda: RadialField(BOX, center=(25.0, 25.0))
    assert_same_isolines(field_fn, 4.0, 100, 100)


def test_open_chain_identical():
    field_fn = lambda: PlaneField(BOX, c0=0.0, cx=1.0, cy=0.25)
    assert_same_isolines(field_fn, 20.0, 75, 75)


def test_no_crossing_identical():
    field_fn = lambda: PlaneField(BOX, c0=0.0, cx=1.0, cy=0.0)
    f_fast, f_ref = fresh(field_fn)
    assert extract_isolines(f_fast, 1e6, 50, 50) == []
    assert extract_isolines_reference(f_ref, 1e6, 50, 50) == []


def test_memoisation_returns_identical_object_and_values():
    field = make_harbor_field()
    first = extract_isolines(field, 8.0, 80, 80)
    again = extract_isolines(field, 8.0, 80, 80)
    assert again is first  # cache hit
    # A different level or resolution is a distinct cache entry.
    other = extract_isolines(field, 10.0, 80, 80)
    assert other is not first
    assert extract_isolines(field, 8.0, 64, 64) is not first


def test_random_sampled_grids_many_seeds():
    # Cheap fuzz over small grids: equality must hold for any data.
    for seed in range(10):
        rng = random.Random(seed)
        data = [[rng.uniform(-1, 1) for _ in range(12)] for _ in range(12)]
        grid = np.asarray(data)
        field_fn = lambda: SampledGridField(BOX, grid)
        assert_same_isolines(field_fn, 0.0, 24, 24)
