"""Differential tests: vectorized adjacency/k-hop vs brute force.

The vectorized kernels (:func:`build_csr_adjacency` and
:meth:`CsrAdjacency.k_hop_neighbors`) must agree *exactly* -- same sets,
not approximately the same -- with both a quadratic brute-force oracle
and the original per-node spatial-hash implementation
(:func:`build_adjacency_reference`).  The hard cases are pairs exactly at
``radio_range`` (boundary inclusion) and nodes sitting on spatial-hash
bucket borders (coordinates that are exact multiples of the cell size,
including negative ones), where an off-by-one in the cell offsets drops
edges silently.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    build_adjacency,
    build_adjacency_reference,
    build_csr_adjacency,
)
from repro.network.topology import k_hop_neighbors


def brute_force_adjacency(positions, radio_range):
    """O(n^2) oracle using the same IEEE-754 distance expression."""
    n = len(positions)
    r2 = radio_range * radio_range
    adj = [set() for _ in range(n)]
    for i in range(n):
        xi, yi = positions[i]
        for j in range(i + 1, n):
            dx = positions[j][0] - xi
            dy = positions[j][1] - yi
            if dx * dx + dy * dy <= r2:
                adj[i].add(j)
                adj[j].add(i)
    return adj


def assert_all_agree(positions, radio_range):
    oracle = brute_force_adjacency(positions, radio_range)
    assert build_adjacency(positions, radio_range) == oracle
    assert build_adjacency_reference(positions, radio_range) == oracle
    csr = build_csr_adjacency(positions, radio_range)
    assert csr.to_sets() == oracle
    # Array input must take the same code path as list-of-tuples input.
    assert build_csr_adjacency(np.asarray(positions), radio_range).to_sets() == oracle


def test_random_clouds_match_brute_force():
    rng = random.Random(11)
    for n, r in [(1, 1.0), (2, 1.0), (50, 1.5), (200, 1.5), (200, 0.3), (300, 8.0)]:
        pts = [(rng.uniform(0, 20), rng.uniform(0, 20)) for _ in range(n)]
        assert_all_agree(pts, r)


def test_pair_exactly_at_radio_range_is_connected():
    # d^2 == r^2 exactly: the <= boundary must be inclusive in every impl.
    pts = [(0.0, 0.0), (1.5, 0.0), (0.0, -1.5), (10.0, 10.0)]
    assert_all_agree(pts, 1.5)
    adj = build_adjacency(pts, 1.5)
    assert adj[0] == {1, 2}
    # 3-4-5 triangle scaled so the hypotenuse is exactly the range.
    pts = [(0.0, 0.0), (0.9, 1.2)]
    assert build_adjacency(pts, 1.5)[0] == {1}


def test_pair_just_beyond_radio_range_is_not_connected():
    r = 1.5
    pts = [(0.0, 0.0), (math.nextafter(r, math.inf), 0.0)]
    assert_all_agree(pts, r)
    assert build_adjacency(pts, r)[0] == set()


def test_nodes_on_bucket_borders():
    # Coordinates that are exact multiples of the cell size (= radio_range)
    # land on spatial-hash bucket borders; neighbours then live in
    # different cells in every one of the five offset directions.
    r = 1.5
    pts = [
        (0.0, 0.0), (1.5, 0.0), (0.0, 1.5), (1.5, 1.5),
        (3.0, 0.0), (0.0, 3.0), (3.0, 3.0), (1.5, -1.5), (-1.5, 1.5),
    ]
    assert_all_agree(pts, r)


def test_negative_and_mixed_sign_coordinates():
    rng = random.Random(5)
    pts = [(rng.uniform(-10, 10), rng.uniform(-10, 10)) for _ in range(150)]
    pts += [(-1.5, -1.5), (-3.0, 0.0), (0.0, 0.0), (-1.5, 1.5)]
    assert_all_agree(pts, 1.5)


def test_duplicate_positions():
    pts = [(2.0, 2.0)] * 4 + [(2.0, 3.0), (9.0, 9.0)]
    assert_all_agree(pts, 1.5)
    adj = build_adjacency(pts, 1.5)
    assert adj[0] == {1, 2, 3, 4}  # co-located nodes see each other, not self


def test_single_row_and_single_column_layouts():
    # Degenerate extents: the y (or x) cell span collapses to one stripe.
    line_x = [(0.7 * k, 5.0) for k in range(30)]
    line_y = [(5.0, 0.7 * k) for k in range(30)]
    assert_all_agree(line_x, 1.5)
    assert_all_agree(line_y, 1.5)


def test_empty_and_invalid_inputs():
    assert build_adjacency([], 1.5) == []
    assert build_csr_adjacency([], 1.5).n_nodes == 0
    with pytest.raises(ValueError):
        build_adjacency([(0.0, 0.0)], 0.0)
    with pytest.raises(ValueError):
        build_csr_adjacency([(0.0, 0.0)], -1.0)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(-25, 25, allow_nan=False).map(lambda v: round(v, 3)),
            st.floats(-25, 25, allow_nan=False).map(lambda v: round(v, 3)),
        ),
        min_size=0,
        max_size=60,
    ),
    st.sampled_from([0.5, 1.5, 4.0]),
)
def test_property_adjacency_matches_oracle(pts, r):
    assert_all_agree(pts, r)


def test_k_hop_csr_matches_set_based():
    rng = random.Random(3)
    pts = [(rng.uniform(0, 15), rng.uniform(0, 15)) for _ in range(200)]
    csr = build_csr_adjacency(pts, 1.5)
    sets = csr.to_sets()
    for start in (0, 17, 199):
        for k in (0, 1, 2, 3, 10):
            want = sorted(k_hop_neighbors(sets, start, k))
            got = csr.k_hop_neighbors(start, k)
            assert got.tolist() == want


def test_k_hop_respects_alive_mask():
    rng = random.Random(9)
    pts = [(rng.uniform(0, 15), rng.uniform(0, 15)) for _ in range(150)]
    csr = build_csr_adjacency(pts, 1.5)
    sets = csr.to_sets()
    alive = [rng.random() > 0.3 for _ in pts]
    for start in (0, 60, 149):
        for k in (1, 2, 4):
            want = sorted(k_hop_neighbors(sets, start, k, alive=alive))
            assert csr.k_hop_neighbors(start, k, alive=alive).tolist() == want


def test_k_hop_rejects_negative_k():
    csr = build_csr_adjacency([(0.0, 0.0), (1.0, 0.0)], 1.5)
    with pytest.raises(ValueError):
        csr.k_hop_neighbors(0, -1)
    with pytest.raises(ValueError):
        k_hop_neighbors(csr.to_sets(), 0, -1)
