"""Differential test: LossyLinkModel closed forms vs Monte-Carlo.

``expected_attempts`` and ``end_to_end_delivery`` are closed-form
expressions over the truncated-geometric retry process; ``charge_lossy_hop``
*samples* that process and charges the accountant per attempt.  This test
pins the two to each other: a seeded Monte-Carlo of the sampling path must
reproduce the closed forms within law-of-large-numbers tolerance, so
neither side can drift without the other noticing.
"""

import math
import random

import pytest

from repro.network import CostAccountant
from repro.network.links import LossyLinkModel, charge_lossy_hop

N_TRIALS = 20_000
NBYTES = 6


def simulate(model, seed, trials=N_TRIALS, hops=1):
    """Monte-Carlo ``trials`` reports over ``hops`` consecutive hops."""
    rng = random.Random(seed)
    costs = CostAccountant(2)
    survived = 0
    for _ in range(trials):
        ok = True
        for _ in range(hops):
            if not charge_lossy_hop(model, 0, 1, NBYTES, costs, rng):
                ok = False
                break
        survived += ok
    attempts = costs.tx_bytes[0] / NBYTES
    return survived / trials, attempts


@pytest.mark.parametrize(
    "p,retries",
    [(0.9, 3), (0.7, 3), (0.5, 1), (0.95, 0), (0.6, 5)],
)
def test_single_hop_closed_forms(p, retries):
    model = LossyLinkModel(delivery_probability=p, max_retries=retries)
    delivery, attempts = simulate(model, seed=hash((p, retries)) % 2**31)

    want_delivery = model.end_to_end_delivery(1)
    # 4-sigma binomial tolerance on the delivery estimate.
    tol = 4.0 * math.sqrt(want_delivery * (1 - want_delivery) / N_TRIALS) + 1e-9
    assert delivery == pytest.approx(want_delivery, abs=tol)

    # Attempts per hop are bounded by retries+1, so 4-sigma is at most
    # 4 * (retries+1) / sqrt(N) -- a loose but sufficient envelope.
    want_attempts = model.expected_attempts()
    assert attempts / N_TRIALS == pytest.approx(
        want_attempts, abs=4.0 * (retries + 1) / math.sqrt(N_TRIALS)
    )


def test_multi_hop_end_to_end():
    model = LossyLinkModel(delivery_probability=0.8, max_retries=2)
    for hops in (2, 5):
        delivery, _ = simulate(model, seed=hops, hops=hops)
        want = model.end_to_end_delivery(hops)
        tol = 4.0 * math.sqrt(want * (1 - want) / N_TRIALS)
        assert delivery == pytest.approx(want, abs=tol)


def test_charges_follow_attempts_exactly():
    # Accounting identity, not statistics: tx at the sender and rx at the
    # receiver must both equal NBYTES * attempts-on-air.
    model = LossyLinkModel(delivery_probability=0.5, max_retries=2)
    rng = random.Random(7)
    costs = CostAccountant(2)
    for _ in range(500):
        charge_lossy_hop(model, 0, 1, NBYTES, costs, rng)
    assert costs.tx_bytes[0] == costs.rx_bytes[1]
    assert costs.tx_bytes[0] % NBYTES == 0
    max_total = 500 * (model.max_retries + 1) * NBYTES
    assert 500 * NBYTES <= costs.tx_bytes[0] <= max_total
