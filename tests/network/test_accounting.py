"""Unit tests for the per-node cost accountant."""

import pytest

from repro.network import CostAccountant


class TestCharging:
    def test_tx_rx_ops(self):
        acc = CostAccountant(3)
        acc.charge_tx(0, 10)
        acc.charge_rx(1, 10)
        acc.charge_ops(2, 100)
        assert acc.tx_bytes[0] == 10
        assert acc.rx_bytes[1] == 10
        assert acc.ops[2] == 100

    def test_charge_hop(self):
        acc = CostAccountant(2)
        acc.charge_hop(0, 1, 8)
        assert acc.tx_bytes[0] == 8
        assert acc.rx_bytes[1] == 8
        assert acc.tx_bytes[1] == 0

    def test_local_broadcast(self):
        acc = CostAccountant(4)
        acc.charge_local_broadcast(0, [1, 2, 3], 6)
        assert acc.tx_bytes[0] == 6  # a single transmission
        assert all(acc.rx_bytes[i] == 6 for i in (1, 2, 3))

    def test_accumulation(self):
        acc = CostAccountant(1)
        acc.charge_tx(0, 5)
        acc.charge_tx(0, 7)
        assert acc.tx_bytes[0] == 12

    def test_bounds_checks(self):
        acc = CostAccountant(2)
        with pytest.raises(IndexError):
            acc.charge_tx(5, 1)
        with pytest.raises(ValueError):
            acc.charge_rx(0, -1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CostAccountant(0)


class TestAggregates:
    def test_totals(self):
        acc = CostAccountant(3)
        acc.charge_hop(0, 1, 100)
        acc.charge_hop(1, 2, 100)
        assert acc.total_traffic_bytes() == 200
        assert acc.total_traffic_kb() == pytest.approx(200 / 1024)

    def test_per_node_ops(self):
        acc = CostAccountant(4)
        acc.charge_ops(0, 10)
        acc.charge_ops(1, 30)
        assert acc.per_node_ops_mean() == pytest.approx(10.0)
        assert acc.per_node_ops_max() == 30
        assert acc.total_ops() == 40

    def test_summary_keys(self):
        acc = CostAccountant(2)
        acc.reports_generated = 5
        acc.reports_delivered = 3
        s = acc.summary()
        assert s["reports_generated"] == 5
        assert s["reports_delivered"] == 3
        for key in ("traffic_kb", "total_ops", "per_node_ops_mean"):
            assert key in s
