"""Unit tests for the seeded fault-injection engine."""

import random

import pytest

from repro.field import RadialField
from repro.geometry import BoundingBox
from repro.network import SensorNetwork
from repro.network.faults import (
    CRASH,
    RECOVER,
    BernoulliLink,
    FaultEngine,
    FaultEvent,
    FaultPlan,
    GilbertElliottLink,
    bernoulli_from_lossy,
)
from repro.network.links import LossyLinkModel

BOX = BoundingBox(0, 0, 20, 20)


def dense_net(n=400, seed=0):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.random_deploy(field, n, radio_range=2.0, seed=seed)


class TestFaultPlan:
    def test_ratio_validation(self):
        for kw in ("crash_ratio", "recover_ratio", "corruption", "duplication"):
            with pytest.raises(ValueError):
                FaultPlan(**{kw: 1.5})
            with pytest.raises(ValueError):
                FaultPlan(**{kw: -0.1})

    def test_null_plan(self):
        assert FaultPlan.none().is_null
        assert FaultPlan(seed=7).is_null
        assert not FaultPlan(crash_ratio=0.1).is_null
        assert not FaultPlan(link=BernoulliLink(0.9)).is_null
        assert not FaultPlan(events=(FaultEvent(1, 3, CRASH),)).is_null

    def test_intensity_family(self):
        with pytest.raises(ValueError):
            FaultPlan.at_intensity(1.5)
        assert FaultPlan.at_intensity(0.0, seed=3).is_null
        half = FaultPlan.at_intensity(0.5, seed=3)
        assert half.crash_ratio == pytest.approx(0.05)
        assert half.corruption == pytest.approx(0.005)
        assert half.link.deliver_bad == pytest.approx(0.85)
        full = FaultPlan.moderate(seed=3)
        assert full.crash_ratio == pytest.approx(0.10)
        assert full.link.deliver_bad == pytest.approx(0.70)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(1, 3, "explode")
        with pytest.raises(ValueError):
            FaultEvent(-1, 3, CRASH)


class TestLinkModels:
    def test_bernoulli_validation_and_average(self):
        with pytest.raises(ValueError):
            BernoulliLink(1.2)
        assert BernoulliLink(0.8).average_delivery() == pytest.approx(0.8)

    def test_bernoulli_from_lossy(self):
        link = bernoulli_from_lossy(LossyLinkModel(delivery_probability=0.75))
        assert link.delivery_probability == pytest.approx(0.75)

    def test_ge_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLink(p_enter_bad=1.5)
        with pytest.raises(ValueError):
            GilbertElliottLink(p_enter_bad=0.0, p_exit_bad=0.0)

    def test_ge_closed_forms(self):
        ge = GilbertElliottLink(0.15, 0.4, 1.0, 0.7)
        sb = 0.15 / (0.15 + 0.4)
        assert ge.steady_state_bad() == pytest.approx(sb)
        assert ge.average_delivery() == pytest.approx((1 - sb) * 1.0 + sb * 0.7)

    def test_ge_chain_matches_stationary_distribution(self):
        # Differential check: long-run simulated frequencies against the
        # closed forms (law of large numbers, seeded).
        ge = GilbertElliottLink(0.15, 0.4, 0.95, 0.6)
        rng = random.Random(42)
        state = ge.initial_state(rng)
        n, bad, delivered = 40_000, 0, 0
        for _ in range(n):
            state = ge.step(state, rng)
            bad += state
            delivered += ge.delivers(state, rng)
        assert bad / n == pytest.approx(ge.steady_state_bad(), abs=0.02)
        assert delivered / n == pytest.approx(ge.average_delivery(), abs=0.02)


class TestFaultEngine:
    def test_schedule_is_deterministic(self):
        net = dense_net(seed=1)
        plan = FaultPlan.moderate(seed=9)
        a, b = FaultEngine(plan, net), FaultEngine(plan, net)
        a.finish_epoch()
        b.finish_epoch()
        assert a.crashed_nodes == b.crashed_nodes
        assert a.recovered_nodes == b.recovered_nodes
        assert len(a.crashed_nodes) > 0

    def test_crash_count_uses_round_half_up_over_candidates(self):
        net = dense_net(seed=2)
        candidates = sum(
            1
            for i in range(net.n_nodes)
            if i != net.sink_index
            and net.nodes[i].alive
            and net.tree.level[i] is not None
        )
        engine = FaultEngine(FaultPlan(seed=0, crash_ratio=0.1), net)
        engine.finish_epoch()
        assert len(engine.crashed_nodes) == int(0.1 * candidates + 0.5)

    def test_never_mutates_network(self):
        net = dense_net(seed=3)
        before = [node.alive for node in net.nodes]
        engine = FaultEngine(FaultPlan.moderate(seed=1), net)
        engine.finish_epoch()
        assert engine.crashed_nodes  # something did crash in the engine...
        assert [node.alive for node in net.nodes] == before  # ...not the net

    def test_sink_is_never_scheduled(self):
        net = dense_net(seed=4)
        engine = FaultEngine(FaultPlan(seed=0, crash_ratio=1.0), net)
        engine.finish_epoch()
        assert net.sink_index not in engine.crashed_nodes
        with pytest.raises(ValueError):
            FaultEngine(
                FaultPlan(events=(FaultEvent(1, net.sink_index, CRASH),)), net
            )

    def test_explicit_events_fire_at_slot_boundaries(self):
        net = dense_net(seed=5)
        victim = next(
            i for i in range(net.n_nodes)
            if i != net.sink_index and net.tree.level[i] is not None
        )
        plan = FaultPlan(
            events=(FaultEvent(5, victim, CRASH), FaultEvent(2, victim, RECOVER))
        )
        engine = FaultEngine(plan, net)
        assert engine.alive(victim)
        engine.advance_to_slot(6)
        assert engine.alive(victim)  # slot 5 has not been reached yet
        engine.advance_to_slot(5)
        assert not engine.alive(victim)
        engine.advance_to_slot(2)
        assert engine.alive(victim)
        assert engine.crashed_nodes == (victim,)
        assert engine.recovered_nodes == (victim,)

    def test_recoveries_are_a_subset_of_crashers(self):
        net = dense_net(seed=6)
        plan = FaultPlan(seed=11, crash_ratio=0.2, recover_ratio=0.5)
        engine = FaultEngine(plan, net)
        engine.finish_epoch()
        assert set(engine.recovered_nodes) <= set(engine.crashed_nodes)
        expected = int(0.5 * len(engine.crashed_nodes) + 0.5)
        # Crashers scheduled at slot 1 have no earlier slot to recover in.
        assert len(engine.recovered_nodes) <= expected

    def test_corrupt_payload_flips_one_to_three_bits(self):
        net = dense_net(seed=7)
        engine = FaultEngine(FaultPlan(seed=0, corruption=0.5), net)
        payload = bytes(range(16))
        for _ in range(50):
            damaged = engine.corrupt_payload(payload)
            assert len(damaged) == len(payload)
            flipped = sum(
                bin(a ^ b).count("1") for a, b in zip(payload, damaged)
            )
            assert 1 <= flipped <= 3
        assert engine.corrupt_payload(b"") == b""

    def test_link_streams_are_per_directed_link(self):
        net = dense_net(seed=8)
        plan = FaultPlan(seed=0, link=BernoulliLink(0.5))
        a, b = FaultEngine(plan, net), FaultEngine(plan, net)
        # Same link, same stream -- regardless of draws on other links.
        seq_a = [a.link_attempt(1, 2) for _ in range(20)]
        for _ in range(100):
            b.link_attempt(3, 4)
        seq_b = [b.link_attempt(1, 2) for _ in range(20)]
        assert seq_a == seq_b
