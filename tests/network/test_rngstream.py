"""Counter-based RNG stream tests: the scalar/NumPy twins must agree bitwise.

The whole batched-transport bit-identity contract rests on
:mod:`repro.network.rngstream`: the vectorized draws the level kernel
makes must be the *same floats* the scalar walk draws one at a time.
"""

import numpy as np
import pytest

from repro.network.rngstream import (
    derive_key,
    derive_keys_array,
    mix64,
    uniform_at,
    uniforms_at,
    uniforms_at_many,
)


class TestScalarStream:
    def test_uniform_range_and_determinism(self):
        key = derive_key(1, 2, 3)
        draws = [uniform_at(key, c) for c in range(1000)]
        assert all(0.0 <= u < 1.0 for u in draws)
        assert draws == [uniform_at(key, c) for c in range(1000)]
        # 53-bit mantissa draws from distinct counters essentially never
        # collide; equality would mean the counter is being ignored.
        assert len(set(draws)) == 1000

    def test_key_separation(self):
        # Different derivation paths must give unrelated streams.
        a = derive_key(7, 1)
        b = derive_key(7, 2)
        c = derive_key(1, 7)
        assert len({a, b, c}) == 3
        assert uniform_at(a, 0) != uniform_at(b, 0)

    def test_mix64_is_a_bijection_sample(self):
        xs = list(range(5000))
        assert len({mix64(x) for x in xs}) == len(xs)


class TestNumpyTwin:
    @pytest.mark.parametrize("start", [0, 1, 2**31, 2**63 - 5, 2**64 - 300])
    def test_uniforms_at_bitwise_equal(self, start):
        key = derive_key(3, 9, 2026)
        counters = (np.arange(257, dtype=np.uint64) + np.uint64(start % 2**64))
        vec = uniforms_at(key, counters)
        ref = np.array([uniform_at(key, int(c)) for c in counters])
        assert vec.dtype == np.float64
        assert np.array_equal(vec, ref)  # bitwise: no tolerance

    def test_uniforms_at_many_bitwise_equal(self):
        base = derive_key(5)
        keys = derive_keys_array(base, range(64))
        counters = np.arange(64, dtype=np.uint64) * np.uint64(7)
        vec = uniforms_at_many(keys, counters)
        ref = np.array(
            [uniform_at(int(k), int(c)) for k, c in zip(keys, counters)]
        )
        assert np.array_equal(vec, ref)

    def test_uniforms_at_many_broadcasts(self):
        base = derive_key(8)
        keys = derive_keys_array(base, range(5))[:, None]
        counters = np.arange(9, dtype=np.uint64)[None, :]
        vec = uniforms_at_many(keys, counters)
        assert vec.shape == (5, 9)
        for i in range(5):
            for j in range(9):
                assert vec[i, j] == uniform_at(int(keys[i, 0]), j)

    def test_derive_keys_array_matches_scalar_fold(self):
        base = derive_key(11, 4)
        parts = range(513)
        vec = derive_keys_array(base, parts)
        ref = np.array(
            [derive_key(11, 4, p) for p in parts], dtype=np.uint64
        )
        assert vec.dtype == np.uint64
        assert np.array_equal(vec, ref)
