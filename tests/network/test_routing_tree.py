"""Unit tests for the BFS routing tree."""

import random

import pytest

from repro.network import build_adjacency, build_routing_tree
from repro.network.routing_tree import level_histogram


def line_network(n, r=1.0):
    pts = [(float(i), 0.0) for i in range(n)]
    return pts, build_adjacency(pts, r)


class TestBuildRoutingTree:
    def test_levels_on_a_line(self):
        pts, adj = line_network(5)
        tree = build_routing_tree(pts, adj, sink=0)
        assert tree.level == [0, 1, 2, 3, 4]
        assert tree.parent == [None, 0, 1, 2, 3]
        assert tree.depth == 4

    def test_sink_in_middle(self):
        pts, adj = line_network(5)
        tree = build_routing_tree(pts, adj, sink=2)
        assert tree.level == [2, 1, 0, 1, 2]
        assert tree.depth == 2

    def test_children_inverse_of_parent(self):
        rng = random.Random(6)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(100)]
        adj = build_adjacency(pts, 2.0)
        tree = build_routing_tree(pts, adj, sink=0)
        for i, p in enumerate(tree.parent):
            if p is not None:
                assert i in tree.children[p]
        for p, kids in enumerate(tree.children):
            for c in kids:
                assert tree.parent[c] == p

    def test_parent_is_one_level_lower(self):
        rng = random.Random(8)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(120)]
        adj = build_adjacency(pts, 2.0)
        tree = build_routing_tree(pts, adj, sink=3)
        for i, p in enumerate(tree.parent):
            if p is not None:
                assert tree.level[i] == tree.level[p] + 1

    def test_unreachable_nodes(self):
        pts = [(0, 0), (1, 0), (5, 0)]
        adj = build_adjacency(pts, 1.0)
        tree = build_routing_tree(pts, adj, sink=0)
        assert tree.level[2] is None
        assert tree.parent[2] is None
        assert tree.reachable_count() == 2

    def test_dead_nodes_excluded(self):
        pts, adj = line_network(5)
        tree = build_routing_tree(pts, adj, sink=0, alive=[True, True, False, True, True])
        assert tree.level[2] is None
        # Nodes beyond the dead one are cut off.
        assert tree.level[3] is None
        assert tree.level[4] is None

    def test_dead_sink_raises(self):
        pts, adj = line_network(3)
        with pytest.raises(ValueError):
            build_routing_tree(pts, adj, sink=0, alive=[False, True, True])

    def test_bad_sink_index_raises(self):
        pts, adj = line_network(3)
        with pytest.raises(ValueError):
            build_routing_tree(pts, adj, sink=7)

    def test_path_to_sink(self):
        pts, adj = line_network(6)
        tree = build_routing_tree(pts, adj, sink=0)
        assert tree.path_to_sink(4) == [4, 3, 2, 1, 0]
        assert tree.path_to_sink(0) == [0]

    def test_path_to_sink_unreachable_raises(self):
        pts = [(0, 0), (5, 0)]
        adj = build_adjacency(pts, 1.0)
        tree = build_routing_tree(pts, adj, sink=0)
        with pytest.raises(ValueError):
            tree.path_to_sink(1)

    def test_hops_to_sink(self):
        pts, adj = line_network(4)
        tree = build_routing_tree(pts, adj, sink=0)
        assert tree.hops_to_sink(3) == 3

    def test_bottom_up_order(self):
        rng = random.Random(10)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(60)]
        adj = build_adjacency(pts, 2.5)
        tree = build_routing_tree(pts, adj, sink=0)
        order = tree.subtree_order_bottom_up()
        pos = {node: k for k, node in enumerate(order)}
        for i, p in enumerate(tree.parent):
            if p is not None:
                assert pos[i] < pos[p], "children must precede parents"

    def test_level_histogram(self):
        pts, adj = line_network(5)
        tree = build_routing_tree(pts, adj, sink=2)
        assert level_histogram(tree) == {0: 1, 1: 2, 2: 2}
