"""Unit tests for the disk-radio topology."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import BoundingBox, dist
from repro.network import average_degree, build_adjacency, is_connected
from repro.network.topology import k_hop_neighbors

BOX = BoundingBox(0, 0, 10, 10)


class TestBuildAdjacency:
    def test_pairwise_within_range(self):
        pts = [(0, 0), (1, 0), (3, 0)]
        adj = build_adjacency(pts, radio_range=1.5)
        assert adj[0] == {1}
        assert adj[1] == {0}
        assert adj[2] == set()

    def test_symmetric(self):
        rng = random.Random(4)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(100)]
        adj = build_adjacency(pts, radio_range=2.0)
        for i, nbrs in enumerate(adj):
            for j in nbrs:
                assert i in adj[j]

    def test_no_self_loops(self):
        pts = [(1, 1), (1.1, 1.0)]
        adj = build_adjacency(pts, radio_range=5)
        assert 0 not in adj[0]
        assert 1 not in adj[1]

    def test_matches_brute_force(self):
        rng = random.Random(9)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(80)]
        r = 1.7
        adj = build_adjacency(pts, r)
        for i in range(len(pts)):
            expected = {
                j for j in range(len(pts)) if j != i and dist(pts[i], pts[j]) <= r
            }
            assert adj[i] == expected

    def test_boundary_distance_included(self):
        adj = build_adjacency([(0, 0), (2, 0)], radio_range=2.0)
        assert adj[0] == {1}

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            build_adjacency([(0, 0)], radio_range=0)


class TestDegreeAndConnectivity:
    def test_average_degree(self):
        pts = [(0, 0), (1, 0), (2, 0)]
        adj = build_adjacency(pts, radio_range=1.0)
        assert average_degree(adj) == pytest.approx(4 / 3)

    def test_average_degree_alive_filter(self):
        pts = [(0, 0), (1, 0), (2, 0)]
        adj = build_adjacency(pts, radio_range=1.0)
        # Kill the middle node: survivors have no alive neighbours.
        assert average_degree(adj, alive=[True, False, True]) == 0.0

    def test_empty(self):
        assert average_degree([]) == 0.0

    def test_connected_line(self):
        pts = [(i, 0) for i in range(5)]
        adj = build_adjacency(pts, radio_range=1.0)
        assert is_connected(adj)

    def test_disconnected(self):
        pts = [(0, 0), (1, 0), (5, 0), (6, 0)]
        adj = build_adjacency(pts, radio_range=1.0)
        assert not is_connected(adj)

    def test_connectivity_with_dead_bridge(self):
        pts = [(0, 0), (1, 0), (2, 0)]
        adj = build_adjacency(pts, radio_range=1.0)
        assert is_connected(adj)
        assert not is_connected(adj, alive=[True, False, True])

    def test_paper_degree_regime(self):
        # Section 5: density 1 and radio range 1.5 give average degree ~7.
        rng = random.Random(0)
        pts = [(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(2500)]
        adj = build_adjacency(pts, radio_range=1.5)
        assert 6.0 < average_degree(adj) < 8.0


class TestKHop:
    def test_one_hop_equals_adjacency(self):
        pts = [(i, 0) for i in range(5)]
        adj = build_adjacency(pts, radio_range=1.0)
        assert k_hop_neighbors(adj, 2, 1) == adj[2]

    def test_two_hops_on_a_line(self):
        pts = [(i, 0) for i in range(7)]
        adj = build_adjacency(pts, radio_range=1.0)
        assert k_hop_neighbors(adj, 3, 2) == {1, 2, 4, 5}

    def test_zero_hops(self):
        pts = [(0, 0), (1, 0)]
        adj = build_adjacency(pts, radio_range=1.0)
        assert k_hop_neighbors(adj, 0, 0) == set()

    def test_respects_alive_mask(self):
        pts = [(i, 0) for i in range(5)]
        adj = build_adjacency(pts, radio_range=1.0)
        # Node 1 is dead: nothing beyond it is reachable from node 0.
        assert k_hop_neighbors(adj, 0, 4, alive=[True, False, True, True, True]) == set()

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            k_hop_neighbors([set()], 0, -1)


@given(
    n=st.integers(min_value=2, max_value=60),
    r=st.floats(min_value=0.5, max_value=5.0),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=40, deadline=None)
def test_adjacency_matches_brute_force_property(n, r, seed):
    rng = random.Random(seed)
    pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(n)]
    adj = build_adjacency(pts, r)
    for i in range(n):
        expected = {j for j in range(n) if j != i and dist(pts[i], pts[j]) <= r}
        assert adj[i] == expected
