"""Unit and protocol-level tests for the fault-tolerant transport."""

import hashlib

import pytest

from repro.baselines import (
    DataSuppressionProtocol,
    EScanProtocol,
    INLRProtocol,
    TinyDBProtocol,
)
from repro.baselines.isoline_agg import IsolineAggregationProtocol
from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.core.codec import ReportCodec
from repro.core.wire import check_crc, frame_with_crc
from repro.field import RadialField
from repro.geometry import BoundingBox
from repro.network import CostAccountant, SensorNetwork
from repro.network.faults import FaultEngine, FaultPlan
from repro.network.transport import (
    DegradationReport,
    EpochTransport,
    STRAND_CRASHED,
    TransportConfig,
)

BOX = BoundingBox(0, 0, 20, 20)
LEVELS = [14.0, 16.0]
QUERY = ContourQuery(14.0, 16.0, 2.0, epsilon_fraction=0.2)


def radial_net(n=400, seed=0):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.random_deploy(field, n, radio_range=2.0, seed=seed)


def radial_grid_net(n=400, seed=0):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.grid_deploy(field, n, radio_range=2.0, seed=seed)


def run_all_protocols(plan, config, seed=1):
    """One run of all six protocols under one plan; yields (name, run)."""
    rnet = radial_net(seed=seed)
    gnet = radial_grid_net(seed=seed)
    iso = IsoMapProtocol(
        QUERY, FilterConfig(30, 4), fault_plan=plan, transport_config=config
    ).run(rnet)
    yield "iso-map", iso.degradation
    for proto, net in (
        (IsolineAggregationProtocol(QUERY, fault_plan=plan, transport_config=config), rnet),
        (TinyDBProtocol(LEVELS, fault_plan=plan, transport_config=config), gnet),
        (INLRProtocol(LEVELS, fault_plan=plan, transport_config=config), gnet),
        (EScanProtocol(LEVELS, fault_plan=plan, transport_config=config), rnet),
        (DataSuppressionProtocol(LEVELS, fault_plan=plan, transport_config=config), gnet),
    ):
        yield proto.name, proto.run(net).degradation


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransportConfig(max_retries=-1)
        with pytest.raises(ValueError):
            TransportConfig(backoff_cap=-1)

    def test_vanilla_disables_everything(self):
        v = TransportConfig.vanilla()
        assert not (v.arq or v.crc or v.dedup or v.reparent)
        assert TransportConfig.hardened() == TransportConfig()


class TestDegradationReport:
    def test_conservation_law(self):
        r = DegradationReport(generated=10, delivered=6, lost=3, dropped_by_filter=1)
        assert r.is_conserved
        r.lost = 2
        assert not r.is_conserved

    def test_rates(self):
        r = DegradationReport(generated=10, delivered=4)
        assert r.delivery_rate() == pytest.approx(0.4)
        assert DegradationReport().delivery_rate() == 1.0
        r.per_group = {14.0: [5, 2], 16.0: [0, 0]}
        rates = r.group_delivery_rates()
        assert rates[14.0] == pytest.approx(0.4)
        assert rates[16.0] == 1.0


class TestZeroFaultPath:
    def test_walk_matches_legacy_order(self):
        net = radial_net()
        transport = EpochTransport(net, CostAccountant(net.n_nodes))
        hops = list(transport.walk())
        tree = net.tree
        expected = [
            (u, tree.parent[u])
            for u in tree.subtree_order_bottom_up()
            if u != tree.sink and tree.parent[u] is not None
        ]
        assert [(h.node, h.parent) for h in hops] == expected
        assert all(h.reason is None for h in hops)

    def test_send_charges_exactly_one_hop(self):
        net = radial_net()
        costs = CostAccountant(net.n_nodes)
        transport = EpochTransport(net, costs)
        rid = transport.register()
        outcome = transport.send(1, 2, 6, rids=(rid,), payload="r")
        assert outcome.delivered and outcome.arrivals == [("r", False)]
        assert costs.tx_bytes[1] == 6 and costs.rx_bytes[2] == 6
        assert costs.tx_bytes.sum() == 6 and costs.rx_bytes.sum() == 6
        assert costs.ops.sum() == 0

    def test_explicit_null_plan_matches_no_plan(self):
        def digests(plan):
            net = radial_net(seed=3)
            res = IsoMapProtocol(QUERY, FilterConfig(30, 4), fault_plan=plan).run(net)
            reports = tuple(
                (r.source, r.isolevel, r.position, r.direction)
                for r in res.delivered_reports
            )
            return (
                hashlib.sha256(res.costs.tx_bytes.tobytes()).hexdigest(),
                hashlib.sha256(res.costs.rx_bytes.tobytes()).hexdigest(),
                hashlib.sha256(res.costs.ops.tobytes()).hexdigest(),
                reports,
            )

        assert digests(None) == digests(FaultPlan.none())


class TestConservation:
    @pytest.mark.parametrize("defenses", ["hardened", "vanilla"])
    def test_every_protocol_conserves_instances(self, defenses):
        config = getattr(TransportConfig, defenses)()
        plan = FaultPlan.moderate(seed=2)
        for name, deg in run_all_protocols(plan, config):
            assert deg is not None, name
            assert deg.is_conserved, f"{name}: {deg.summary()}"
            assert deg.generated > 0, name
            assert deg.crashed_nodes > 0, name

    def test_defenses_help_delivery(self):
        plan = FaultPlan.moderate(seed=4)
        hard = dict(run_all_protocols(plan, TransportConfig.hardened()))
        soft = dict(run_all_protocols(plan, TransportConfig.vanilla()))
        better = sum(
            hard[name].delivery_rate() >= soft[name].delivery_rate()
            for name in hard
        )
        assert better >= 5  # defenses should not hurt (allow one tie-break)
        assert sum(h.retransmissions for h in hard.values()) > 0
        assert sum(h.repaired_orphans for h in hard.values()) > 0
        assert all(s.retransmissions == 0 for s in soft.values())


class TestCrcModel:
    def test_real_crc_catches_injected_damage(self):
        # The transport models CRC detection as certain; tie that to the
        # real CRC-16 catching every 1-3 bit damage corrupt_payload
        # injects into a codec-encoded report frame.
        net = radial_net()
        engine = FaultEngine(FaultPlan(seed=5, corruption=1.0), net)
        codec = ReportCodec.for_query(QUERY, net.bounds)
        res = IsoMapProtocol(QUERY, FilterConfig.disabled()).run(radial_net(seed=1))
        reports = res.delivered_reports[:20]
        assert reports
        for report in reports:
            frame = frame_with_crc(codec.encode(report))
            assert check_crc(frame)
            for _ in range(25):
                damaged = engine.corrupt_payload(frame)
                assert not check_crc(damaged)


class TestStranding:
    def test_crashed_holder_strands_its_buffer(self):
        net = radial_net()
        transport = EpochTransport(net, CostAccountant(net.n_nodes))
        rids = [transport.register() for _ in range(3)]
        transport.strand(rids, STRAND_CRASHED)
        deg = transport.finalize()
        assert deg.lost == 3 and deg.stranded_crashed == 3
        assert deg.is_conserved

    def test_open_instances_swept_to_lost_at_finalize(self):
        net = radial_net()
        transport = EpochTransport(net, CostAccountant(net.n_nodes))
        transport.register()
        deg = transport.finalize()
        assert deg.lost == 1 and deg.is_conserved


class TestPercolation:
    def test_crash_heavy_network_still_reconstructs(self):
        # Near the percolation threshold the alive graph is disconnected;
        # the run must complete, return a map, and account for the damage.
        net = radial_net(n=600, seed=2)
        net.fail_random(0.6, mode="crash")
        plan = FaultPlan(seed=6, crash_ratio=0.5)
        res = IsoMapProtocol(
            QUERY, FilterConfig.disabled(), fault_plan=plan
        ).run(net)
        deg = res.degradation
        assert res.contour_map is not None
        assert deg is not None and deg.is_conserved
        assert deg.is_degraded
        assert deg.crashed_nodes > 0
        assert deg.disconnected_regions > 0
