"""Unit tests for the slotted collection schedule / latency model."""

import pytest

from repro.energy import Mica2Model
from repro.field import PlaneField
from repro.geometry import BoundingBox
from repro.network import CostAccountant, SensorNetwork
from repro.network.schedule import epoch_latency

BOX = BoundingBox(0, 0, 30, 10)


def line_net(n=8, spacing=1.0):
    field = PlaneField(BOX, 0, 1, 0)
    positions = [(0.5 + i * spacing, 5.0) for i in range(n)]
    return SensorNetwork(field, positions, radio_range=1.2, sink_index=0)


class TestEpochLatency:
    def test_empty_costs_zero_latency(self):
        net = line_net()
        costs = CostAccountant(net.n_nodes)
        sched = epoch_latency(net, costs)
        assert sched.epoch_seconds == 0.0

    def test_single_transmitter_airtime(self):
        net = line_net()
        costs = CostAccountant(net.n_nodes)
        costs.charge_tx(3, 4800)  # 4800 bytes at 38400 bps = 1 second
        sched = epoch_latency(net, costs)
        assert sched.epoch_seconds == pytest.approx(1.0)
        assert sched.busiest_level == 3
        assert sched.slot_seconds[3] == pytest.approx(1.0)

    def test_interfering_nodes_serialise(self):
        # Two transmitters at the same level within interference range
        # must take turns: the slot is the SUM of their airtimes.
        field = PlaneField(BOX, 0, 1, 0)
        # Star: sink centre, two nodes at the same level, close together.
        positions = [(5.0, 5.0), (6.0, 5.0), (6.2, 5.4)]
        net = SensorNetwork(field, positions, radio_range=1.5, sink_index=0)
        assert net.nodes[1].level == 1 and net.nodes[2].level == 1
        costs = CostAccountant(3)
        costs.charge_tx(1, 4800)
        costs.charge_tx(2, 4800)
        sched = epoch_latency(net, costs)
        assert sched.slot_seconds[1] == pytest.approx(2.0)

    def test_far_nodes_transmit_concurrently(self):
        field = PlaneField(BOX, 0, 1, 0)
        # Sink in the middle; two level-1 nodes on opposite sides, far
        # beyond the interference range of each other.
        positions = [(15.0, 5.0), (14.0, 5.0), (16.0, 5.0)]
        net = SensorNetwork(field, positions, radio_range=1.2, sink_index=0)
        costs = CostAccountant(3)
        costs.charge_tx(1, 4800)
        costs.charge_tx(2, 4800)
        # With a tiny interference factor they reuse the slot spatially.
        sched = epoch_latency(net, costs, interference_factor=0.5)
        assert sched.slot_seconds[1] == pytest.approx(1.0)

    def test_slots_sum_to_epoch(self):
        net = line_net()
        costs = CostAccountant(net.n_nodes)
        for i in range(1, net.n_nodes):
            costs.charge_tx(i, 1000 * i)
        sched = epoch_latency(net, costs)
        assert sched.epoch_seconds == pytest.approx(sum(sched.slot_seconds))

    def test_sink_never_scheduled(self):
        net = line_net()
        costs = CostAccountant(net.n_nodes)
        costs.charge_tx(net.sink_index, 9999)  # e.g. query dissemination
        sched = epoch_latency(net, costs)
        assert sched.slot_seconds[0] == 0.0

    def test_faster_radio_lower_latency(self):
        net = line_net()
        costs = CostAccountant(net.n_nodes)
        costs.charge_tx(2, 4800)
        slow = epoch_latency(net, costs, radio=Mica2Model())
        fast = epoch_latency(net, costs, radio=Mica2Model(data_rate_bps=250_000))
        assert fast.epoch_seconds < slow.epoch_seconds
