"""Unit tests for the lossy-link extension."""

import random

import pytest

from repro.network import CostAccountant
from repro.network.links import LossyLinkModel, charge_lossy_hop


class TestLossyLinkModel:
    def test_perfect_link_one_attempt(self):
        m = LossyLinkModel(delivery_probability=1.0, max_retries=3)
        assert m.attempts_until_success(random.Random(0)) == 1
        assert m.expected_attempts() == pytest.approx(1.0)
        assert m.end_to_end_delivery(100) == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LossyLinkModel(delivery_probability=0.0)
        with pytest.raises(ValueError):
            LossyLinkModel(delivery_probability=1.5)
        with pytest.raises(ValueError):
            LossyLinkModel(max_retries=-1)

    def test_attempts_bounded_by_budget(self):
        m = LossyLinkModel(delivery_probability=0.01, max_retries=2)
        rng = random.Random(1)
        for _ in range(200):
            a = m.attempts_until_success(rng)
            assert a is None or 1 <= a <= 3

    def test_expected_attempts_matches_simulation(self):
        m = LossyLinkModel(delivery_probability=0.7, max_retries=3)
        rng = random.Random(2)
        total = 0
        trials = 20000
        for _ in range(trials):
            a = m.attempts_until_success(rng)
            total += a if a is not None else m.max_retries + 1
        assert total / trials == pytest.approx(m.expected_attempts(), rel=0.03)

    def test_end_to_end_delivery_decreases_with_hops(self):
        m = LossyLinkModel(delivery_probability=0.8, max_retries=1)
        assert m.end_to_end_delivery(1) > m.end_to_end_delivery(10)

    def test_retries_raise_delivery(self):
        lo = LossyLinkModel(delivery_probability=0.7, max_retries=0)
        hi = LossyLinkModel(delivery_probability=0.7, max_retries=4)
        assert hi.end_to_end_delivery(20) > lo.end_to_end_delivery(20)


class TestChargeLossyHop:
    def test_success_charges_attempts(self):
        m = LossyLinkModel(delivery_probability=1.0)
        costs = CostAccountant(2)
        ok = charge_lossy_hop(m, 0, 1, 10, costs, random.Random(0))
        assert ok
        assert costs.tx_bytes[0] == 10
        assert costs.rx_bytes[1] == 10

    def test_failure_charges_full_budget(self):
        # Force failure with an astronomically unlucky RNG: p tiny.
        m = LossyLinkModel(delivery_probability=1e-12, max_retries=2)
        costs = CostAccountant(2)
        ok = charge_lossy_hop(m, 0, 1, 10, costs, random.Random(0))
        assert not ok
        assert costs.tx_bytes[0] == 30  # 3 attempts x 10 bytes
        assert costs.rx_bytes[1] == 30

    def test_protocol_with_lossy_links(self):
        from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
        from repro.field import RadialField
        from repro.geometry import BoundingBox
        from repro.network import SensorNetwork

        box = BoundingBox(0, 0, 20, 20)
        field = RadialField(box, center=(10, 10), peak=20, slope=1)
        net = SensorNetwork.random_deploy(field, 600, radio_range=2.2, seed=2)
        q = ContourQuery(14.0, 16.0, 2.0, epsilon_fraction=0.2)
        perfect = IsoMapProtocol(q, FilterConfig.disabled()).run(net)
        lossy = IsoMapProtocol(
            q,
            FilterConfig.disabled(),
            link_model=LossyLinkModel(0.8, max_retries=0),
        ).run(net)
        # Without retries at 20% loss, multi-hop reports die in transit.
        assert len(lossy.delivered_reports) < len(perfect.delivered_reports)
        reliable = IsoMapProtocol(
            q,
            FilterConfig.disabled(),
            link_model=LossyLinkModel(0.8, max_retries=5),
        ).run(net)
        # Retries restore delivery but cost extra transmissions.
        assert len(reliable.delivered_reports) > len(lossy.delivered_reports)
        assert (
            reliable.costs.total_traffic_bytes()
            > perfect.costs.total_traffic_bytes()
        )
