"""Unit tests for the DV-hop + refinement localization substrate."""

import random
import statistics

import pytest

from repro.field import PlaneField
from repro.geometry import BoundingBox, dist
from repro.network import SensorNetwork
from repro.network.localization import (
    LocalizationResult,
    _gauss_newton_step,
    _multilaterate,
    clear_localization,
    localize,
)

BOX = BoundingBox(0, 0, 20, 20)


def dense_net(n=400, seed=0, r=2.5):
    field = PlaneField(BOX, 0, 1, 0)
    return SensorNetwork.random_deploy(field, n, radio_range=r, seed=seed)


class TestMultilaterate:
    def test_exact_distances(self):
        anchors = [((0, 0), None), ((10, 0), None), ((0, 10), None)]
        target = (3.0, 4.0)
        obs = [(p, dist(p, target)) for (p, _) in anchors]
        est = _multilaterate(obs)
        assert est == pytest.approx(target, abs=1e-9)

    def test_collinear_anchors_degenerate(self):
        obs = [((0, 0), 5.0), ((5, 0), 5.0), ((10, 0), 5.0)]
        # Collinear anchors leave a reflection ambiguity: the linearised
        # system is rank deficient.
        assert _multilaterate(obs) is None

    def test_noisy_distances_stay_close(self):
        rng = random.Random(1)
        anchors = [(0, 0), (10, 0), (0, 10), (10, 10)]
        target = (6.0, 3.0)
        obs = [
            (a, dist(a, target) * (1 + rng.gauss(0, 0.02))) for a in anchors
        ]
        est = _multilaterate(obs)
        assert est is not None
        assert dist(est, target) < 0.5


class TestGaussNewton:
    def test_converges_to_true_position(self):
        neighbors = [(0, 0), (4, 0), (0, 4), (4, 4)]
        target = (1.0, 2.5)
        obs = [(q, dist(q, target)) for q in neighbors]
        p = (2.0, 2.0)
        for _ in range(20):
            p = _gauss_newton_step(p, obs, damping=1.0)
        assert dist(p, target) < 1e-6

    def test_degenerate_observations_no_move(self):
        p = (1.0, 1.0)
        assert _gauss_newton_step(p, [((1.0, 1.0), 0.5)]) == p


class TestLocalize:
    def test_errors_below_radio_range(self):
        net = dense_net()
        res = localize(net, anchor_fraction=0.15, range_noise=0.05,
                       rng=random.Random(3), apply=False)
        assert res.coverage > 0.9
        assert statistics.median(res.errors) < net.radio_range

    def test_more_anchors_less_error(self):
        net = dense_net(seed=2)
        few = localize(net, anchor_fraction=0.05, rng=random.Random(1), apply=False)
        many = localize(net, anchor_fraction=0.4, rng=random.Random(1), apply=False)
        assert statistics.median(many.errors) < statistics.median(few.errors)

    def test_apply_sets_estimates(self):
        net = dense_net(seed=3)
        res = localize(net, anchor_fraction=0.2, rng=random.Random(2))
        localized = [
            n for n in net.nodes if n.estimated_position is not None
        ]
        assert localized
        for node in localized:
            assert node.app_position == node.estimated_position
        # Anchors keep ground truth.
        for a in res.anchor_ids:
            assert net.nodes[a].estimated_position is None
            assert net.nodes[a].app_position == net.nodes[a].position

    def test_clear_localization(self):
        net = dense_net(seed=4)
        localize(net, anchor_fraction=0.2, rng=random.Random(2))
        clear_localization(net)
        assert all(n.estimated_position is None for n in net.nodes)

    def test_too_few_anchors_raises(self):
        net = dense_net(n=50)
        with pytest.raises(ValueError):
            localize(net, anchor_fraction=0.01)

    def test_result_stats(self):
        res = LocalizationResult(estimated=[], anchor_ids=[], errors=[1.0, 3.0])
        assert res.mean_error == 2.0
        assert res.max_error == 3.0
        assert res.coverage == 1.0
        empty = LocalizationResult(estimated=[], anchor_ids=[])
        assert empty.mean_error == 0.0

    def test_zero_noise_high_anchor_budget_is_tight(self):
        net = dense_net(seed=5)
        res = localize(
            net,
            anchor_fraction=0.5,
            range_noise=1e-9,
            refine_iters=40,
            rng=random.Random(7),
            apply=False,
        )
        assert statistics.median(res.errors) < 0.1

    def test_estimates_inside_bounds(self):
        net = dense_net(seed=6)
        res = localize(net, anchor_fraction=0.1, rng=random.Random(8), apply=False)
        for pos in res.estimated:
            if pos is not None:
                assert net.bounds.contains(pos, tol=1e-6)
