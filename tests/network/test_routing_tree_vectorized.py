"""Differential tests: CSR frontier-BFS tree builder vs the scalar reference.

``build_routing_tree`` dispatches on the adjacency type: a
:class:`CsrAdjacency` takes the vectorized frontier-array path, per-node
lists take the scalar FIFO-BFS reference.  Both must produce the
*identical* tree -- levels, parents (including distance tie-breaks) and
children in the identical order -- on any graph and any liveness mask.
"""

import random

import pytest

from repro.field import RadialField
from repro.geometry import BoundingBox
from repro.network import SensorNetwork
from repro.network.routing_tree import (
    build_routing_tree,
    build_routing_tree_reference,
)
from repro.network.topology import build_csr_adjacency

BOX = BoundingBox(0, 0, 20, 20)


def _random_instance(seed, n=300, radio_range=2.0):
    rng = random.Random(seed)
    positions = [
        (rng.uniform(0, 20), rng.uniform(0, 20)) for _ in range(n)
    ]
    csr = build_csr_adjacency(positions, radio_range)
    neighbor_lists = [
        sorted(csr.neighbors(i)) for i in range(n)
    ]
    return positions, csr, neighbor_lists


def _assert_trees_equal(fast, ref):
    assert fast.sink == ref.sink
    assert fast.level == ref.level
    assert fast.parent == ref.parent
    assert fast.children == ref.children
    assert fast.subtree_order_bottom_up() == ref.subtree_order_bottom_up()


class TestVectorizedTreeBuilder:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        positions, csr, lists = _random_instance(seed)
        fast = build_routing_tree(positions, csr, sink=0)
        ref = build_routing_tree_reference(positions, lists, sink=0)
        _assert_trees_equal(fast, ref)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_alive_masks(self, seed):
        positions, csr, lists = _random_instance(seed, n=250)
        rng = random.Random(100 + seed)
        alive = [True] + [rng.random() > 0.3 for _ in positions[1:]]
        fast = build_routing_tree(positions, csr, sink=0, alive=alive)
        ref = build_routing_tree_reference(positions, lists, sink=0, alive=alive)
        _assert_trees_equal(fast, ref)

    def test_duplicate_positions_tie_break(self):
        # Coincident candidates force the (distance, id) tie-break: the
        # segmented argmin must pick the same parent the scalar scan does.
        positions = [(0.0, 0.0)] + [(1.0, 0.0)] * 4 + [(2.0, 0.0)] * 4
        csr = build_csr_adjacency(positions, 1.5)
        lists = [sorted(csr.neighbors(i)) for i in range(len(positions))]
        fast = build_routing_tree(positions, csr, sink=0)
        ref = build_routing_tree_reference(positions, lists, sink=0)
        _assert_trees_equal(fast, ref)

    def test_disconnected_components_stay_unrouted(self):
        positions = [(0.0, 0.0), (1.0, 0.0), (10.0, 10.0), (11.0, 10.0)]
        csr = build_csr_adjacency(positions, 1.5)
        lists = [sorted(csr.neighbors(i)) for i in range(len(positions))]
        fast = build_routing_tree(positions, csr, sink=0)
        ref = build_routing_tree_reference(positions, lists, sink=0)
        _assert_trees_equal(fast, ref)
        assert fast.level[2] is None and fast.level[3] is None

    def test_network_rebuild_after_failures(self):
        # The network's own rebuild path (CSR) must agree with the scalar
        # reference on the post-crash topology.
        field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
        net = SensorNetwork.random_deploy(field, 400, radio_range=2.0, seed=3)
        net.fail_random(0.3, mode="crash")
        positions = [node.position for node in net.nodes]
        alive = [node.alive for node in net.nodes]
        fast = build_routing_tree(positions, net.csr, net.sink_index, alive=alive)
        ref = build_routing_tree_reference(
            positions, net.neighbor_lists, net.sink_index, alive=alive
        )
        _assert_trees_equal(fast, ref)
