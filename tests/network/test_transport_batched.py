"""Differential tests: slot-batched transport vs the retained scalar walk.

The batched driver (``TransportConfig.batched=True``, the default) must be
*bit-identical* to the per-frame scalar reference (``batched=False``, which
loops ``walk_reference`` + ``send``) under the same seed: byte-identical
per-node tx/rx/ops accounting and an identical :class:`DegradationReport`,
for every protocol, every defense-toggle combination and several fault
intensities.  These tests pin that contract; they are what licenses every
other test in the suite to run on the fast path.
"""

import dataclasses
import hashlib
import random

import numpy as np
import pytest

from repro.baselines import (
    DataSuppressionProtocol,
    EScanProtocol,
    INLRProtocol,
    TinyDBProtocol,
)
from repro.baselines.base import forward_reports_to_sink
from repro.baselines.isoline_agg import IsolineAggregationProtocol
from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.core.wire import VALUE_REPORT_BYTES
from repro.field import RadialField
from repro.geometry import BoundingBox
from repro.network import CostAccountant, SensorNetwork
from repro.network.faults import (
    BernoulliLink,
    FaultPlan,
    GilbertElliottLink,
)
from repro.network.transport import EpochTransport, TransportConfig

BOX = BoundingBox(0, 0, 20, 20)
LEVELS = [14.0, 16.0]
QUERY = ContourQuery(14.0, 16.0, 2.0, epsilon_fraction=0.2)


def radial_net(n=400, seed=0):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.random_deploy(field, n, radio_range=2.0, seed=seed)


def radial_grid_net(n=400, seed=0):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.grid_deploy(field, n, radio_range=2.0, seed=seed)


#: Every defense-toggle combination the differential sweep covers: both
#: presets plus each defense switched off alone.
CONFIGS = {
    "hardened": TransportConfig.hardened(),
    "vanilla": TransportConfig.vanilla(),
    "no-arq": dataclasses.replace(
        TransportConfig.hardened(), arq=False, max_retries=0
    ),
    "no-crc": dataclasses.replace(TransportConfig.hardened(), crc=False),
    "no-dedup": dataclasses.replace(TransportConfig.hardened(), dedup=False),
    "no-reparent": dataclasses.replace(TransportConfig.hardened(), reparent=False),
}

PROTOCOLS = (
    "iso-map",
    "isoline-agg",
    "tinydb",
    "inlr",
    "escan",
    "suppression",
)


def _evidence(run):
    """The bit-identity evidence: cost-array digests + the full report."""
    costs = run.costs
    deg = run.degradation
    return (
        hashlib.sha256(costs.tx_bytes.tobytes()).hexdigest(),
        hashlib.sha256(costs.rx_bytes.tobytes()).hexdigest(),
        hashlib.sha256(costs.ops.tobytes()).hexdigest(),
        dataclasses.asdict(deg) if deg is not None else None,
    )


def _run_protocol(name, plan, config, seed=1):
    if name == "iso-map":
        return IsoMapProtocol(
            QUERY, FilterConfig(30, 4), fault_plan=plan, transport_config=config
        ).run(radial_net(seed=seed))
    net = radial_grid_net(seed=seed) if name in ("tinydb", "inlr", "suppression") \
        else radial_net(seed=seed)
    proto = {
        "isoline-agg": lambda: IsolineAggregationProtocol(
            QUERY, fault_plan=plan, transport_config=config
        ),
        "tinydb": lambda: TinyDBProtocol(
            LEVELS, fault_plan=plan, transport_config=config
        ),
        "inlr": lambda: INLRProtocol(
            LEVELS, fault_plan=plan, transport_config=config
        ),
        "escan": lambda: EScanProtocol(
            LEVELS, fault_plan=plan, transport_config=config
        ),
        "suppression": lambda: DataSuppressionProtocol(
            LEVELS, fault_plan=plan, transport_config=config
        ),
    }[name]()
    return proto.run(net)


def _differential(name, plan, config):
    fast = _run_protocol(name, plan, dataclasses.replace(config, batched=True))
    ref = _run_protocol(name, plan, dataclasses.replace(config, batched=False))
    assert _evidence(fast) == _evidence(ref), f"{name} diverged from the scalar walk"
    if fast.degradation is not None:
        assert fast.degradation.is_conserved


class TestBatchedMatchesScalar:
    @pytest.mark.parametrize("name", PROTOCOLS)
    def test_every_protocol_moderate_faults(self, name):
        _differential(name, FaultPlan.moderate(seed=5), TransportConfig.hardened())

    @pytest.mark.parametrize("name", PROTOCOLS)
    def test_every_protocol_heavy_faults_vanilla(self, name):
        _differential(name, FaultPlan.at_intensity(0.8, seed=9), TransportConfig.vanilla())

    @pytest.mark.parametrize("cfg", sorted(CONFIGS))
    def test_every_config_toggle(self, cfg):
        _differential("tinydb", FaultPlan.moderate(seed=7), CONFIGS[cfg])
        _differential("iso-map", FaultPlan.at_intensity(0.5, seed=11), CONFIGS[cfg])

    @pytest.mark.parametrize(
        "link", [BernoulliLink(0.7), GilbertElliottLink(0.3, 0.25, 1.0, 0.3)]
    )
    def test_link_models_alone(self, link):
        plan = FaultPlan(seed=13, link=link)
        _differential("tinydb", plan, TransportConfig.hardened())

    def test_zero_fault_batched_identical(self):
        # No engine at all: the batched flag must not change a single byte
        # (this is what keeps the golden snapshots valid on the fast path).
        _differential("iso-map", None, TransportConfig.hardened())
        _differential("tinydb", None, TransportConfig.hardened())


class TestZeroFaultAnalytic:
    def test_analytic_forwarding_matches_per_frame_walk(self):
        # forward_reports_to_sink collapses the zero-fault epoch to
        # closed-form subtree counts when batched; the per-frame walk
        # (batched=False) must charge the identical integers.
        def run(batched):
            net = radial_grid_net(seed=2)
            costs = CostAccountant(net.n_nodes)
            transport = EpochTransport(
                net,
                costs,
                config=dataclasses.replace(
                    TransportConfig.hardened(), batched=batched
                ),
            )
            sources = [
                node.node_id
                for node in net.nodes
                if node.can_sense and node.level is not None
            ]
            delivered = forward_reports_to_sink(
                net, sources, VALUE_REPORT_BYTES, costs,
                ops_per_forward=3, transport=transport,
            )
            deg = transport.finalize()
            return (
                delivered,
                costs.tx_bytes.tobytes(),
                costs.rx_bytes.tobytes(),
                costs.ops.tobytes(),
                dataclasses.asdict(deg),
            )

        assert run(True) == run(False)


class TestRepairTraffic:
    def test_reparenting_charges_identically_and_is_exercised(self):
        # Crash-heavy plan with recovery: orphans must be adopted, the
        # probe/reply/join traffic charged, and the batched adoption
        # (including same-level adopters) byte-identical to the scalar's.
        plan = FaultPlan(seed=17, crash_ratio=0.25, recover_ratio=0.3)
        config = TransportConfig.hardened()
        fast = _run_protocol("tinydb", plan, dataclasses.replace(config, batched=True))
        ref = _run_protocol("tinydb", plan, dataclasses.replace(config, batched=False))
        assert _evidence(fast) == _evidence(ref)
        assert fast.degradation.repaired_orphans > 0
        # Repair traffic is real charged traffic: the crash-only epoch
        # must cost strictly more than its reparent-disabled twin on the
        # surviving topology (probes, replies and joins are not free).
        off = _run_protocol(
            "tinydb", plan,
            dataclasses.replace(config, reparent=False, batched=True),
        )
        assert fast.costs.tx_bytes.sum() > off.costs.tx_bytes.sum()


class TestDisconnectedCount:
    @pytest.mark.parametrize("seed", [0, 3, 8])
    def test_vectorized_matches_reference(self, seed):
        net = radial_net(seed=seed)
        rng = random.Random(seed)
        for node in net.nodes:
            if node.node_id != net.sink_index and rng.random() < 0.3:
                node.alive = False
        transport = EpochTransport(net, CostAccountant(net.n_nodes))
        assert transport._count_disconnected() == transport._count_disconnected_reference()

    def test_no_failures_means_zero(self):
        net = radial_net(seed=1)
        transport = EpochTransport(net, CostAccountant(net.n_nodes))
        assert transport._count_disconnected() == 0
        assert transport._count_disconnected_reference() == 0


class TestConservationProperty:
    @pytest.mark.parametrize("case_seed", range(8))
    def test_is_conserved_under_randomized_combined_faults(self, case_seed):
        # Property: whatever combination of crash/recover, burst loss,
        # corruption and duplication an epoch throws at any protocol, the
        # instance conservation law holds exactly on the batched path.
        rng = random.Random(1000 + case_seed)
        link = rng.choice(
            [
                None,
                BernoulliLink(rng.uniform(0.5, 1.0)),
                GilbertElliottLink(
                    p_enter_bad=rng.uniform(0.05, 0.5),
                    p_exit_bad=rng.uniform(0.2, 0.9),
                    deliver_good=1.0,
                    deliver_bad=rng.uniform(0.1, 0.9),
                ),
            ]
        )
        plan = FaultPlan(
            seed=rng.randrange(2**16),
            crash_ratio=rng.uniform(0.0, 0.4),
            recover_ratio=rng.uniform(0.0, 1.0),
            link=link,
            corruption=rng.uniform(0.0, 0.2),
            duplication=rng.uniform(0.0, 0.2),
        )
        name = PROTOCOLS[case_seed % len(PROTOCOLS)]
        run = _run_protocol(name, plan, TransportConfig.hardened())
        deg = run.degradation
        assert deg is not None and deg.generated > 0
        assert deg.is_conserved, f"{name} seed={case_seed}: {deg.summary()}"
        total_charged = int(run.costs.tx_bytes.sum())
        assert total_charged >= 0
        assert np.all(run.costs.tx_bytes >= 0)
