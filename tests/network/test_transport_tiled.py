"""Differential tests: tile-sharded epoch resolution vs the global batch.

Fault draws are keyed by ``(edge, frame, attempt)`` and each directed
edge is owned by exactly one sender tile, so resolving a level's frames
per tile and merging at the deterministic barrier must be *bit-identical*
to the single global batch: byte-identical per-node tx/rx/ops accounting
and an identical :class:`DegradationReport` at **any** tile size, any
tile-worker count, and every defense-toggle combination.  The n=2500
pins below are the acceptance gate for the million-node scaling path --
whatever tiling does for memory, it must not move a single byte.
"""

import dataclasses
import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import forward_reports_to_sink
from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.core.wire import VALUE_REPORT_BYTES
from repro.field import RadialField
from repro.geometry import BoundingBox
from repro.network import CostAccountant, SensorNetwork
from repro.network.faults import FaultPlan
from repro.network.tiling import TilePartition
from repro.network.transport import EpochTransport, TransportConfig

BOX = BoundingBox(0, 0, 20, 20)
QUERY = ContourQuery(14.0, 16.0, 2.0, epsilon_fraction=0.2)

CONFIGS = {
    "hardened": TransportConfig.hardened(),
    "vanilla": TransportConfig.vanilla(),
    "no-arq": dataclasses.replace(
        TransportConfig.hardened(), arq=False, max_retries=0
    ),
    "no-crc": dataclasses.replace(TransportConfig.hardened(), crc=False),
    "no-dedup": dataclasses.replace(TransportConfig.hardened(), dedup=False),
    "no-reparent": dataclasses.replace(TransportConfig.hardened(), reparent=False),
}


def radial_net(n=400, seed=0):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.random_deploy(field, n, radio_range=2.0, seed=seed)


def _evidence(run):
    costs = run.costs
    deg = run.degradation
    return (
        hashlib.sha256(costs.tx_bytes.tobytes()).hexdigest(),
        hashlib.sha256(costs.rx_bytes.tobytes()).hexdigest(),
        hashlib.sha256(costs.ops.tobytes()).hexdigest(),
        dataclasses.asdict(deg) if deg is not None else None,
    )


def _run(plan, config=None, n=400, seed=3, tile_size=None, tile_jobs=1):
    cfg = config if config is not None else TransportConfig.hardened()
    return IsoMapProtocol(
        QUERY,
        FilterConfig(30, 4),
        fault_plan=plan,
        transport_config=cfg,
        tile_size=tile_size,
        tile_jobs=tile_jobs,
    ).run(radial_net(n=n, seed=seed))


class TestAcceptancePin2500:
    """ISSUE acceptance: n=2500, moderate faults, >= 2 tile layouts."""

    @pytest.fixture(scope="class")
    def untiled(self):
        run = _run(FaultPlan.moderate(seed=5), n=2500, seed=1)
        assert run.degradation.is_conserved
        return _evidence(run)

    @pytest.mark.parametrize("tile_size", [10.0, 18.0])
    def test_tiled_bit_identical(self, untiled, tile_size):
        run = _run(
            FaultPlan.moderate(seed=5), n=2500, seed=1, tile_size=tile_size
        )
        assert run.degradation.is_conserved
        assert _evidence(run) == untiled, (
            f"tile_size={tile_size} diverged from the untiled epoch"
        )


class TestTiledMatchesGlobal:
    @pytest.mark.parametrize("cfg", sorted(CONFIGS))
    def test_every_config_toggle(self, cfg):
        plan = FaultPlan.at_intensity(0.5, seed=11)
        base = _evidence(_run(plan, CONFIGS[cfg]))
        tiled = _evidence(_run(plan, CONFIGS[cfg], tile_size=6.0))
        assert tiled == base, f"{cfg} diverged under tiling"

    def test_no_crc_mangler_order(self):
        # Without a CRC, corrupted-but-delivered frames feed the shared
        # Mersenne mangler stream; its draws must happen in global slot
        # order at the merge barrier, not per tile.  A heavy-corruption
        # plan makes any reordering visible immediately.
        plan = FaultPlan(seed=23, corruption=0.4, link=None)
        base = _evidence(_run(plan, CONFIGS["no-crc"]))
        for ts in (3.0, 8.0):
            assert _evidence(_run(plan, CONFIGS["no-crc"], tile_size=ts)) == base

    def test_crash_recovery_with_tiling(self):
        plan = FaultPlan(seed=17, crash_ratio=0.25, recover_ratio=0.3)
        base = _run(plan)
        tiled = _run(plan, tile_size=5.0)
        assert _evidence(tiled) == _evidence(base)
        assert tiled.degradation.repaired_orphans > 0

    def test_single_tile_degenerates_to_global(self):
        plan = FaultPlan.moderate(seed=5)
        base = _evidence(_run(plan))
        assert _evidence(_run(plan, tile_size=100.0)) == base

    @settings(deadline=None, max_examples=10)
    @given(
        tile_size=st.floats(min_value=1.5, max_value=30.0),
        seed=st.integers(min_value=0, max_value=40),
    )
    def test_randomized_layouts_and_seeds(self, tile_size, seed):
        plan = FaultPlan.at_intensity(0.6, seed=seed)
        base = _evidence(_run(plan, seed=seed))
        tiled = _evidence(_run(plan, seed=seed, tile_size=tile_size))
        assert tiled == base

    def test_worker_pool_matches_inline(self):
        # tile_jobs=2 ships detached draw jobs (cursor-restored rng
        # streams) to a process pool; results and stream write-back must
        # match the inline per-tile path byte for byte.
        plan = FaultPlan.at_intensity(0.5, seed=7)
        inline = _evidence(_run(plan, tile_size=5.0, tile_jobs=1))
        pooled = _evidence(_run(plan, tile_size=5.0, tile_jobs=2))
        assert pooled == inline


class TestTransportLevelTiling:
    def test_forward_reports_with_explicit_partition(self):
        # Below the protocol layer: hand the transport a TilePartition
        # directly and drive the plain store-and-forward walk.
        plan = FaultPlan.moderate(seed=9)

        def run(tiling):
            net = radial_net(seed=6)
            costs = CostAccountant(net.n_nodes)
            transport = EpochTransport(
                net, costs, plan=plan, tiling=tiling, tile_jobs=1
            )
            sources = [
                node.node_id
                for node in net.nodes
                if node.can_sense and node.level is not None
            ]
            delivered = forward_reports_to_sink(
                net, sources, VALUE_REPORT_BYTES, costs,
                ops_per_forward=3, transport=transport,
            )
            deg = transport.finalize()
            return (
                delivered,
                costs.tx_bytes.tobytes(),
                costs.rx_bytes.tobytes(),
                costs.ops.tobytes(),
                dataclasses.asdict(deg),
            )

        net = radial_net(seed=6)
        part = TilePartition.build(net.positions_array, net.bounds, 4.0)
        assert run(part) == run(None)

    def test_zero_fault_ignores_tiling(self):
        # Null plan -> no engine -> tiling must be inert (the analytic
        # and scalar zero-fault paths stay byte-identical).
        base = _evidence(_run(None))
        assert _evidence(_run(None, tile_size=4.0)) == base
