"""Unit tests for the SensorNetwork facade and failure injection."""

import random

import pytest

from repro.field import PlaneField, make_harbor_field
from repro.geometry import BoundingBox
from repro.network import SensorNetwork

BOX = BoundingBox(0, 0, 20, 20)


def small_net(n=200, seed=0):
    field = PlaneField(BOX, c0=0, cx=1, cy=0)
    return SensorNetwork.random_deploy(field, n, radio_range=2.5, seed=seed)


class TestConstruction:
    def test_nodes_sense_the_field(self):
        net = small_net()
        for node in net.nodes:
            assert node.value == pytest.approx(node.position[0])

    def test_sensing_noise(self):
        field = PlaneField(BOX, c0=5, cx=0, cy=0)
        net = SensorNetwork.random_deploy(field, 300, seed=1, sensing_noise=0.5)
        residuals = [node.value - 5.0 for node in net.nodes]
        assert any(abs(r) > 1e-6 for r in residuals)
        assert abs(sum(residuals) / len(residuals)) < 0.2

    def test_default_sink_near_centre(self):
        net = small_net()
        sink = net.nodes[net.sink_index]
        cx, cy = BOX.center
        assert abs(sink.position[0] - cx) < 5
        assert abs(sink.position[1] - cy) < 5
        assert sink.level == 0

    def test_explicit_sink(self):
        field = PlaneField(BOX, 0, 1, 0)
        net = SensorNetwork.random_deploy(field, 100, radio_range=3.0, seed=2)
        net2 = SensorNetwork(
            field, [n.position for n in net.nodes], radio_range=3.0, sink_index=7
        )
        assert net2.sink_index == 7
        assert net2.nodes[7].level == 0

    def test_grid_deploy(self):
        field = PlaneField(BOX, 0, 1, 0)
        net = SensorNetwork.grid_deploy(field, 100, radio_range=3.0)
        assert net.n_nodes == 100
        assert net.is_connected()

    def test_empty_deployment_raises(self):
        field = PlaneField(BOX, 0, 1, 0)
        with pytest.raises(ValueError):
            SensorNetwork(field, [])

    def test_node_outside_field_raises(self):
        field = PlaneField(BOX, 0, 1, 0)
        with pytest.raises(ValueError):
            SensorNetwork(field, [(25.0, 5.0)])

    def test_density(self):
        net = small_net(n=400)
        assert net.density == pytest.approx(1.0)

    def test_tree_mirrors_into_nodes(self):
        net = small_net()
        for i, node in enumerate(net.nodes):
            assert node.level == net.tree.level[i]
            assert node.parent == net.tree.parent[i]


class TestNeighbourhoods:
    def test_alive_neighbors(self):
        net = small_net()
        i = net.sink_index
        nbrs = net.alive_neighbors(i)
        assert set(nbrs) == set(net.adjacency[i])

    def test_sensing_neighbors_excludes_failed(self):
        net = small_net(seed=3)
        i = net.sink_index
        all_nbrs = net.alive_neighbors(i)
        assert all_nbrs, "sink should have neighbours"
        victim = all_nbrs[0]
        net.nodes[victim].sensing_ok = False
        assert victim not in net.sensing_neighbors(i)
        assert victim in net.alive_neighbors(i)

    def test_k_hop_sensing_neighbors(self):
        net = small_net(seed=4)
        one = set(net.k_hop_sensing_neighbors(net.sink_index, 1))
        two = set(net.k_hop_sensing_neighbors(net.sink_index, 2))
        assert one <= two
        assert len(two) > len(one)


def expected_failures(ratio, n_nodes):
    """The documented edge semantics: the sink never fails, and the count
    is round-half-up of ratio over the n_nodes - 1 non-sink candidates."""
    return min(int(ratio * (n_nodes - 1) + 0.5), n_nodes - 1)


class TestFailures:
    def test_sensing_mode_keeps_routing(self):
        net = small_net(n=300, seed=5)
        before = net.tree.reachable_count()
        failed = net.fail_random(0.3, mode="sensing")
        assert len(failed) == expected_failures(0.3, 300) == 90
        assert net.tree.reachable_count() == before
        assert all(not net.nodes[i].sensing_ok for i in failed)
        assert all(net.nodes[i].alive for i in failed)

    def test_crash_mode_rebuilds_tree(self):
        net = small_net(n=300, seed=6)
        net.fail_random(0.2, mode="crash")
        assert net.alive_count() == 300 - expected_failures(0.2, 300)
        assert net.alive_count() == 300 - 60
        for i, node in enumerate(net.nodes):
            if not node.alive:
                assert node.level is None

    def test_sink_never_fails(self):
        net = small_net(n=100, seed=7)
        failed = net.fail_random(1.0, mode="crash")
        assert net.nodes[net.sink_index].alive
        assert len(failed) == 99  # every non-sink node, not round(1.0 * 100)

    def test_half_counts_round_up(self):
        # ratio * candidates = 12.5 exactly: round-half-up gives 13 where
        # Python's banker's round() would give 12.
        net = small_net(n=101, seed=10)
        failed = net.fail_random(0.125, mode="sensing")
        assert len(failed) == expected_failures(0.125, 101) == 13

    def test_zero_ratio_fails_nobody(self):
        net = small_net(n=120, seed=11)
        assert net.fail_random(0.0, mode="crash") == []
        assert net.alive_count() == 120

    def test_invalid_ratio(self):
        net = small_net(n=50)
        with pytest.raises(ValueError):
            net.fail_random(1.5)

    def test_invalid_mode(self):
        net = small_net(n=50)
        with pytest.raises(ValueError):
            net.fail_random(0.1, mode="explode")

    def test_revive_all(self):
        net = small_net(n=200, seed=8)
        net.fail_random(0.4, mode="crash")
        net.revive_all()
        assert net.alive_count() == 200
        assert net.tree.reachable_count() == 200 or net.is_connected() is False

    def test_failures_deterministic_with_rng(self):
        net1 = small_net(n=150, seed=9)
        net2 = small_net(n=150, seed=9)
        f1 = net1.fail_random(0.25, rng=random.Random(42))
        f2 = net2.fail_random(0.25, rng=random.Random(42))
        assert f1 == f2


class TestPaperRegime:
    def test_2500_nodes_density_1(self):
        net = SensorNetwork.random_deploy(make_harbor_field(), 2500, seed=1)
        assert net.density == pytest.approx(1.0)
        assert 6.0 < net.average_degree() < 8.0
        # Almost every node routes to the sink.
        assert net.tree.reachable_count() > 0.98 * net.n_nodes
