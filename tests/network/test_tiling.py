"""Spatial tiling layer: grid geometry, tiled adjacency, streaming edges.

The contract under test (``repro/network/tiling.py``): partitioning the
deployment into grid tiles and building topology per tile must be an
*implementation detail* -- every derived array (CSR adjacency, degree,
connectivity) is bit-identical to the monolithic path at any tile size
not below the radio range.  Boundary ownership follows
``floor((x - xmin) / tile_size)`` with nodes exactly on an interior
line owned by the higher tile and the far field edge clamped inward.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import RadialField
from repro.geometry import BoundingBox
from repro.network import SensorNetwork
from repro.network.tiling import (
    TileGrid,
    TilePartition,
    build_csr_adjacency_tiled,
    tile_skeleton,
)
from repro.network.topology import (
    CsrAdjacency,
    _disk_edges,
    average_degree,
    is_connected,
)

BOX = BoundingBox(0, 0, 20, 20)


def radial_net(n=400, seed=0):
    field = RadialField(BOX, center=(10, 10), peak=20, slope=1)
    return SensorNetwork.random_deploy(field, n, radio_range=2.0, seed=seed)


# ----------------------------------------------------------------------
# Grid geometry
# ----------------------------------------------------------------------


class TestTileGrid:
    def test_dimensions_cover_bounds(self):
        grid = TileGrid.for_bounds(BoundingBox(0, 0, 10, 10), 2.5)
        assert (grid.nx, grid.ny) == (4, 4)
        assert grid.n_tiles == 16

    def test_ragged_last_column(self):
        grid = TileGrid.for_bounds(BoundingBox(0, 0, 10, 10), 3.0)
        assert (grid.nx, grid.ny) == (4, 4)

    def test_oversized_tile_is_one_tile(self):
        grid = TileGrid.for_bounds(BoundingBox(0, 0, 10, 10), 50.0)
        assert grid.n_tiles == 1

    def test_nonpositive_tile_size_rejected(self):
        with pytest.raises(ValueError):
            TileGrid.for_bounds(BOX, 0.0)
        with pytest.raises(ValueError):
            TileGrid.for_bounds(BOX, -1.0)

    def test_interior_boundary_goes_to_higher_tile(self):
        grid = TileGrid.for_bounds(BoundingBox(0, 0, 10, 10), 2.5)
        pts = np.array([[2.5, 0.0], [2.4999999, 0.0], [0.0, 2.5]])
        tx_ty = grid.tile_coords(pts)
        assert tx_ty[0].tolist() == [1, 0, 0]  # x = 2.5 owned by column 1
        assert tx_ty[1].tolist() == [0, 0, 1]  # y = 2.5 owned by row 1

    def test_far_edge_clamps_into_last_tile(self):
        grid = TileGrid.for_bounds(BoundingBox(0, 0, 10, 10), 2.5)
        pts = np.array([[10.0, 10.0]])
        tx, ty = grid.tile_coords(pts)
        assert (tx[0], ty[0]) == (3, 3)

    def test_adjacent_tiles_corner_and_interior(self):
        grid = TileGrid.for_bounds(BoundingBox(0, 0, 10, 10), 2.5)
        # corner tile 0 has 3 neighbours; interior tile 5 has 8
        assert grid.adjacent_tiles(0) == [1, 4, 5]
        assert grid.adjacent_tiles(5) == [0, 1, 2, 4, 6, 8, 9, 10]


class TestTilePartition:
    def test_members_partition_all_nodes(self):
        net = radial_net(n=300, seed=2)
        part = TilePartition.build(net.positions_array, net.bounds, 5.0)
        seen = np.concatenate(
            [part.members(t) for t in range(part.grid.n_tiles)]
        )
        assert sorted(seen.tolist()) == list(range(300))

    def test_members_agree_with_tile_of(self):
        net = radial_net(n=300, seed=2)
        pts = net.positions_array
        part = TilePartition.build(pts, net.bounds, 5.0)
        expect = part.grid.tile_of(pts)
        for t in part.occupied_tiles():
            assert (expect[part.members(t)] == t).all()

    def test_halo_contains_exactly_in_range_outsiders(self):
        net = radial_net(n=400, seed=3)
        pts = net.positions_array
        part = TilePartition.build(pts, net.bounds, 5.0)
        r = 2.0
        for t in part.occupied_tiles().tolist():
            halo = set(part.halo(pts, t, r).tolist())
            members = part.members(t)
            # Brute force: any outside node within r of some member must
            # be in the halo (halo may be a superset -- box distance).
            d = np.sqrt(
                ((pts[:, None, :] - pts[members][None, :, :]) ** 2).sum(-1)
            )
            near = set(np.flatnonzero((d <= r).any(axis=1)).tolist())
            near -= set(members.tolist())
            assert near <= halo
            assert not (halo & set(members.tolist()))


# ----------------------------------------------------------------------
# Tiled CSR adjacency: bit-identical to the monolithic build
# ----------------------------------------------------------------------


class TestTiledAdjacency:
    @pytest.mark.parametrize("tile_size", [2.0, 3.3, 7.0, 20.0, 50.0])
    def test_matches_untiled(self, tile_size):
        net = radial_net(n=600, seed=5)
        pts = net.positions_array
        part = TilePartition.build(pts, net.bounds, tile_size)
        csr = build_csr_adjacency_tiled(pts, 2.0, part)
        assert np.array_equal(csr.indptr, net.csr.indptr)
        assert np.array_equal(csr.indices, net.csr.indices)

    def test_tile_below_radio_range_rejected(self):
        net = radial_net(n=50, seed=1)
        part = TilePartition.build(net.positions_array, net.bounds, 1.0)
        with pytest.raises(ValueError):
            build_csr_adjacency_tiled(net.positions_array, 2.0, part)

    def test_node_exactly_on_tile_line(self):
        # Force nodes onto the interior tile boundary x = 5.0 and make
        # sure the cross-boundary edges come out identically.
        net = radial_net(n=200, seed=7)
        pts = net.positions_array.copy()
        pts[:20, 0] = 5.0
        li, lj = _disk_edges(pts, 2.0)
        mono = CsrAdjacency.from_edges(len(pts), li, lj)
        part = TilePartition.build(pts, net.bounds, 5.0)
        csr = build_csr_adjacency_tiled(pts, 2.0, part)
        assert np.array_equal(csr.indptr, mono.indptr)
        assert np.array_equal(csr.indices, mono.indices)

    @settings(deadline=None, max_examples=12)
    @given(
        tile_size=st.floats(min_value=2.0, max_value=40.0),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_matches_untiled_randomized(self, tile_size, seed):
        net = radial_net(n=150, seed=seed)
        pts = net.positions_array
        part = TilePartition.build(pts, net.bounds, tile_size)
        csr = build_csr_adjacency_tiled(pts, 2.0, part)
        assert np.array_equal(csr.indptr, net.csr.indptr)
        assert np.array_equal(csr.indices, net.csr.indices)

    def test_tile_skeleton_member_rows_match_global(self):
        net = radial_net(n=400, seed=9)
        pts = net.positions_array
        part = TilePartition.build(pts, net.bounds, 6.0)
        for t in part.occupied_tiles().tolist():
            sk = tile_skeleton(pts, 2.0, part, t)
            back = {int(g): k for k, g in enumerate(sk.nodes)}
            for k in range(sk.n_members):
                g = int(sk.nodes[k])
                local = sk.csr.indices[sk.csr.indptr[k] : sk.csr.indptr[k + 1]]
                got = sorted(int(sk.nodes[x]) for x in local)
                want = sorted(
                    int(x)
                    for x in net.csr.indices[
                        net.csr.indptr[g] : net.csr.indptr[g + 1]
                    ]
                )
                assert got == want, (t, g)
                assert all(int(x) in back for x in want)


# ----------------------------------------------------------------------
# Streaming (chunked) candidate gather in _disk_edges
# ----------------------------------------------------------------------


class TestChunkedDiskEdges:
    @pytest.mark.parametrize("budget", [1, 7, 64, 1000])
    def test_chunked_identical_to_monolithic(self, budget):
        net = radial_net(n=500, seed=11)
        pts = net.positions_array
        i0, j0 = _disk_edges(pts, 2.0)
        i1, j1 = _disk_edges(pts, 2.0, max_candidates=budget)
        assert np.array_equal(i0, i1)
        assert np.array_equal(j0, j1)

    def test_chunked_empty_graph(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        i1, j1 = _disk_edges(pts, 0.5, max_candidates=1)
        assert i1.size == 0 and j1.size == 0


# ----------------------------------------------------------------------
# CSR-native degree / connectivity (no to_sets round trip)
# ----------------------------------------------------------------------


class TestCsrDegreeConnectivity:
    def test_average_degree_matches_sets(self):
        net = radial_net(n=300, seed=4)
        sets = net.csr.to_sets()
        assert average_degree(net.csr) == average_degree(sets)

    def test_average_degree_with_alive_mask(self):
        net = radial_net(n=300, seed=4)
        sets = net.csr.to_sets()
        rng = np.random.default_rng(0)
        for _ in range(5):
            alive = rng.random(300) > 0.3
            assert average_degree(net.csr, alive) == average_degree(
                sets, alive.tolist()
            )

    def test_average_degree_degenerate(self):
        empty = CsrAdjacency.from_edges(0, np.empty(0), np.empty(0))
        assert average_degree(empty) == 0.0
        lone = CsrAdjacency.from_edges(3, np.empty(0), np.empty(0))
        assert average_degree(lone) == 0.0
        assert average_degree(lone, np.zeros(3, dtype=bool)) == 0.0

    def test_is_connected_matches_sets(self):
        net = radial_net(n=300, seed=4)
        sets = net.csr.to_sets()
        rng = np.random.default_rng(1)
        assert is_connected(net.csr) == is_connected(sets)
        for _ in range(5):
            alive = rng.random(300) > 0.4
            assert is_connected(net.csr, alive) == is_connected(
                sets, alive.tolist()
            )

    def test_is_connected_two_clusters(self):
        # Two 3-cliques with no bridge: disconnected; vacuously
        # connected once one cluster is dead.
        ii = np.array([0, 0, 1, 3, 3, 4])
        jj = np.array([1, 2, 2, 4, 5, 5])
        csr = CsrAdjacency.from_edges(6, ii, jj)
        sets = csr.to_sets()
        assert is_connected(csr) is False
        assert is_connected(csr) == is_connected(sets)
        alive = np.array([True, True, True, False, False, False])
        assert is_connected(csr, alive) is True
        assert is_connected(csr, alive) == is_connected(sets, alive.tolist())
        assert is_connected(csr, np.zeros(6, dtype=bool)) is True
