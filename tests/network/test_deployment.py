"""Unit tests for deployment strategies."""

import random

import pytest

from repro.geometry import BoundingBox
from repro.network import grid_deployment, uniform_random_deployment
from repro.network.deployment import jittered_grid_deployment

BOX = BoundingBox(0, 0, 10, 10)


class TestUniformRandom:
    def test_count_and_bounds(self):
        pts = uniform_random_deployment(100, BOX, random.Random(1))
        assert len(pts) == 100
        assert all(BOX.contains(p) for p in pts)

    def test_deterministic_with_seed(self):
        a = uniform_random_deployment(10, BOX, random.Random(5))
        b = uniform_random_deployment(10, BOX, random.Random(5))
        assert a == b

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            uniform_random_deployment(0, BOX)

    def test_spread_covers_field(self):
        pts = uniform_random_deployment(400, BOX, random.Random(2))
        # All four quadrants are populated.
        quads = set()
        for (x, y) in pts:
            quads.add((x > 5, y > 5))
        assert len(quads) == 4


class TestGrid:
    def test_exact_square_count(self):
        pts = grid_deployment(100, BOX)
        assert len(pts) == 100

    def test_at_least_n(self):
        pts = grid_deployment(97, BOX)
        assert len(pts) >= 97

    def test_inside_bounds(self):
        pts = grid_deployment(50, BOX)
        assert all(BOX.contains(p) for p in pts)

    def test_regular_spacing(self):
        pts = grid_deployment(25, BOX)
        xs = sorted({round(p[0], 9) for p in pts})
        diffs = {round(xs[i + 1] - xs[i], 9) for i in range(len(xs) - 1)}
        assert len(diffs) == 1  # uniform column spacing

    def test_rectangular_box_aspect(self):
        box = BoundingBox(0, 0, 20, 5)
        pts = grid_deployment(80, box)
        xs = {round(p[0], 6) for p in pts}
        ys = {round(p[1], 6) for p in pts}
        assert len(xs) > len(ys)  # more columns than rows on a wide box

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            grid_deployment(-1, BOX)


class TestJitteredGrid:
    def test_stays_inside(self):
        pts = jittered_grid_deployment(100, BOX, jitter=0.4, rng=random.Random(3))
        assert all(BOX.contains(p) for p in pts)

    def test_zero_jitter_equals_grid(self):
        assert jittered_grid_deployment(49, BOX, jitter=0.0) == grid_deployment(49, BOX)

    def test_invalid_jitter(self):
        with pytest.raises(ValueError):
            jittered_grid_deployment(10, BOX, jitter=0.9)
