"""Unit tests for the serving wire formats and the delta replayer."""

import math
import random

import pytest

from repro.core.codec import ReportCodec
from repro.core.query import ContourQuery
from repro.core.reports import IsolineReport
from repro.geometry import BoundingBox
from repro.serving.errors import ReplayGapError, WireFormatError
from repro.serving.wire import (
    DELTA,
    SNAPSHOT,
    DeltaFrame,
    DeltaReplayer,
    ServedMessage,
    decode_delta,
    decode_snapshot,
    encode_delta,
    encode_snapshot,
    record_position_key,
)

BOX = BoundingBox(0, 0, 20, 20)
CODEC = ReportCodec.for_query(ContourQuery(14.0, 16.0, 2.0), BOX)


def record(x, y, level=14.0, angle=0.3, source=0) -> bytes:
    return CODEC.encode(
        IsolineReport(level, (x, y), (math.cos(angle), math.sin(angle)), source)
    )


class TestRoundtrips:
    def test_delta_roundtrip(self):
        recs = [record(3, 4), record(5, 6, level=16.0)]
        rets = [(17, 99), (0, 0xFFFF)]
        payload = encode_delta(7, recs, rets, sink=1234)
        frame = decode_delta(payload)
        assert frame == DeltaFrame(7, tuple(recs), tuple(rets), 1234)

    def test_delta_roundtrip_empty(self):
        frame = decode_delta(encode_delta(3, [], [], sink=None))
        assert frame.epoch == 3
        assert frame.records == ()
        assert frame.retractions == ()
        assert frame.sink is None

    def test_snapshot_roundtrip_is_sorted(self):
        recs = [record(9, 1), record(1, 9), record(5, 5)]
        frame = decode_snapshot(encode_snapshot(2, recs, sink=None))
        assert frame.epoch == 2
        assert list(frame.records) == sorted(recs)

    def test_sink_value_is_preserved(self):
        frame = decode_snapshot(encode_snapshot(1, [], sink=0xFFFF))
        assert frame.sink == 0xFFFF
        frame = decode_snapshot(encode_snapshot(1, [], sink=0))
        assert frame.sink == 0  # flag distinguishes 0 from absent

    def test_position_key_matches_codec(self):
        rep = IsolineReport(14.0, (3.25, 17.5), (1.0, 0.0), 4)
        assert record_position_key(CODEC.encode(rep)) == CODEC.quantize_position(
            rep.position
        )


class TestValidation:
    def test_short_payloads_rejected(self):
        for decode in (decode_delta, decode_snapshot):
            with pytest.raises(WireFormatError):
                decode(b"\x01\x02")

    def test_truncated_body_rejected(self):
        payload = encode_delta(1, [record(1, 1)], [], None)
        with pytest.raises(WireFormatError):
            decode_delta(payload[:-3])
        snap = encode_snapshot(1, [record(1, 1)], None)
        with pytest.raises(WireFormatError):
            decode_snapshot(snap + b"\x00")

    def test_bad_record_size_rejected(self):
        with pytest.raises(WireFormatError):
            encode_delta(1, [b"short"], [], None)

    def test_bad_sink_rejected(self):
        with pytest.raises(WireFormatError):
            encode_snapshot(1, [], sink=0x10000)

    def test_fuzzed_truncations_never_crash_unhelpfully(self):
        rng = random.Random(5)
        payload = encode_delta(
            9, [record(i, i) for i in range(5)], [(1, 2), (3, 4)], sink=77
        )
        for _ in range(200):
            cut = rng.randrange(len(payload))
            with pytest.raises(WireFormatError):
                decode_delta(payload[:cut])


class TestReplayer:
    def test_fold_upserts_and_retractions(self):
        rep = DeltaReplayer()
        r1, r2 = record(2, 2), record(8, 8)
        rep.apply(ServedMessage(DELTA, 1, encode_delta(1, [r1, r2], [], 5)))
        assert rep.record_count == 2
        # Retract r1 by position, re-deliver r2 with a rotated direction.
        r2b = record(8, 8, angle=1.0)
        rep.apply(
            ServedMessage(
                DELTA, 2, encode_delta(2, [r2b], [record_position_key(r1)], 5)
            )
        )
        assert rep.record_count == 1
        assert rep.render() == encode_snapshot(2, [r2b], 5)

    def test_gap_raises(self):
        rep = DeltaReplayer()
        rep.apply(ServedMessage(DELTA, 1, encode_delta(1, [], [], None)))
        with pytest.raises(ReplayGapError):
            rep.apply(ServedMessage(DELTA, 3, encode_delta(3, [], [], None)))

    def test_snapshot_resync_resets_epoch(self):
        rep = DeltaReplayer()
        rep.apply(ServedMessage(SNAPSHOT, 10, encode_snapshot(10, [record(1, 1)], 3)))
        assert rep.epoch == 10
        assert rep.record_count == 1
        # Live deltas continue from 11.
        rep.apply(ServedMessage(DELTA, 11, encode_delta(11, [], [], 3)))
        assert rep.epoch == 11

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireFormatError):
            DeltaReplayer().apply(ServedMessage("gossip", 1, b""))

    def test_initial_render_is_canonical_empty_snapshot(self):
        assert DeltaReplayer().render() == encode_snapshot(0, [], None)

    def test_decoded_reports_and_map(self):
        rep = DeltaReplayer()
        recs = [record(5, 5), record(12, 5, level=16.0, angle=2.0)]
        rep.apply(ServedMessage(DELTA, 1, encode_delta(1, recs, [], None)))
        reports = rep.reports(CODEC)
        assert len(reports) == 2
        assert {round(r.isolevel) for r in reports} == {14, 16}
        cmap = rep.contour_map(CODEC, [14.0, 16.0], BOX)
        assert cmap.levels == [14.0, 16.0]
