"""The simulated-client load harness (and the big slow load run)."""

import asyncio

import pytest

from repro.serving.clients import LoadReport, percentile, run_load
from repro.serving.router import MapService
from repro.serving.session import SessionConfig


def test_percentile_nearest_rank():
    assert percentile([], 0.99) == 0.0
    assert percentile([5.0], 0.5) == 5.0
    values = [float(i) for i in range(1, 101)]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 1.0) == 100.0
    assert percentile(values, 0.5) == 51.0


def test_load_harness_small_run():
    config = SessionConfig(query_id="load", n_nodes=200, scenario="tide")

    async def main():
        service = MapService([config], queue_depth=32)
        return await run_load(
            service, "load", epochs=3, n_snapshot_clients=4, n_subscribers=20
        )

    report = asyncio.run(main())
    assert report.epochs == 3
    assert report.subscribers == 20
    # Graceful drain: every subscriber that survived received every delta.
    survivors = report.subscribers - report.subscribers_evicted
    assert report.deltas_delivered == survivors * 3
    assert report.snapshot_requests > 0
    assert report.snapshot_bytes > 0
    assert report.elapsed_s > 0
    d = report.to_dict()
    assert set(d) == {
        "query_id", "epochs", "elapsed_s", "snapshot", "delta_stream",
        "resilience",
    }
    assert d["snapshot"]["rps"] > 0
    assert d["delta_stream"]["deliveries"] == report.deltas_delivered
    # Zero-chaos runs never degrade and never serve stale answers.
    assert d["resilience"] == {
        "epochs_failed": 0, "stale_snapshots": 0, "degraded_s": 0.0,
    }
    table = report.to_table()
    assert "serving load" in table and "subscribers" in table
    assert "resilience" not in table  # only shown when something failed


def test_load_report_schema_is_json_stable():
    d = LoadReport(query_id="x").to_dict()
    assert set(d["snapshot"]) == {
        "clients", "requests", "rps", "p50_ms", "p99_ms", "bytes",
    }
    assert set(d["delta_stream"]) == {
        "subscribers", "deliveries", "deliveries_per_s",
        "p50_ms", "p99_ms", "bytes", "evicted",
    }
    assert set(d["resilience"]) == {
        "epochs_failed", "stale_snapshots", "degraded_s",
    }


@pytest.mark.slow
def test_load_thousand_subscribers():
    """The ISSUE acceptance load: >= 1000 concurrent subscribers."""
    config = SessionConfig(query_id="big", n_nodes=400, scenario="tide")

    async def main():
        service = MapService([config], queue_depth=8)
        return await run_load(
            service, "big", epochs=4, n_snapshot_clients=32, n_subscribers=1000
        )

    report = asyncio.run(main())
    assert report.subscribers == 1000
    survivors = report.subscribers - report.subscribers_evicted
    assert survivors > 0
    assert report.deltas_delivered == survivors * 4
    assert report.snapshot_requests > 0
