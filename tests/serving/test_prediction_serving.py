"""Serving-layer contracts for prediction-enabled sessions.

The mirrored-predictor contract at the wire level: a subscriber folding
the ``DELTA_PREDICTED`` stream from epoch 0 renders, at every epoch, a
snapshot byte-identical to what the service serves -- i.e. the sink
mirror of the predictor bank round-trips losslessly through the delta
encoding, including epochs where records are dead-reckoned
extrapolations and epochs where a track's key re-occupies a retracted
position.

Also pins the tagging itself (predicted sessions emit DELTA_PREDICTED,
plain sessions emit DELTA -- live and replayed), the metadata surfaced
per epoch, and a ``run_load`` smoke with prediction on.
"""

import asyncio

import pytest

from repro.serving.clients import run_load
from repro.serving.router import MapService
from repro.serving.session import SessionCompute, SessionConfig
from repro.serving.wire import DELTA, DELTA_PREDICTED, DeltaReplayer

CONFIG_KW = dict(n_nodes=400, seed=3, radio_range=2.2)
EPOCHS = 8


def predicted_config(query_id="pred", scenario="front", tolerance=1.1):
    return SessionConfig(
        query_id=query_id,
        scenario=scenario,
        prediction_tolerance=tolerance,
        **CONFIG_KW,
    )


@pytest.mark.parametrize("scenario", ["front", "tide", "pulse"])
def test_predicted_delta_fold_matches_snapshot(scenario):
    """Replay == snapshot at every epoch, per scenario (incl. the pulse
    mass-retraction epochs and the drifting front)."""
    config = predicted_config(scenario=scenario)

    async def main():
        async with MapService([config]) as service:
            session = service.session("pred")
            replayer = DeltaReplayer()
            sub = service.subscribe("pred", since_epoch=0)
            for e in range(1, EPOCHS + 1):
                await session.advance()
                message = await sub.__anext__()
                assert message.kind == DELTA_PREDICTED
                assert message.predicted
                assert message.epoch == e
                replayer.apply(message)
                assert replayer.render() == service.snapshot("pred").payload
            sub.close()

    asyncio.run(main())


def test_plain_sessions_still_emit_delta():
    config = SessionConfig(query_id="plain", scenario="tide", **CONFIG_KW)

    async def main():
        async with MapService([config]) as service:
            session = service.session("plain")
            sub = service.subscribe("plain", since_epoch=0)
            await session.advance()
            message = await sub.__anext__()
            assert message.kind == DELTA
            assert not message.predicted
            sub.close()

    asyncio.run(main())


def test_replayed_deltas_keep_predicted_kind():
    """A late subscriber's replayed backlog carries DELTA_PREDICTED too."""
    config = predicted_config()

    async def main():
        async with MapService([config], retention=EPOCHS) as service:
            session = service.session("pred")
            for _ in range(4):
                await session.advance()
            sub = service.subscribe("pred", since_epoch=0)
            replayer = DeltaReplayer()
            for e in range(1, 5):
                message = await sub.__anext__()
                assert message.kind == DELTA_PREDICTED
                assert message.epoch == e
                replayer.apply(message)
            assert replayer.render() == service.snapshot("pred").payload
            sub.close()

    asyncio.run(main())


def test_epoch_stats_surface_prediction_metadata():
    compute = SessionCompute(predicted_config())
    saw_predicted = False
    for e in range(1, EPOCHS + 1):
        out = compute.epoch(e)
        assert set(
            ("predicted", "heartbeats", "staleness", "tracks")
        ) <= set(out)
        assert out["staleness"] <= compute.config.prediction_heartbeat
        if out["predicted"] > 0:
            saw_predicted = True
    assert saw_predicted


def test_prediction_suppresses_deliveries_on_front():
    base = SessionCompute(
        SessionConfig(query_id="b", scenario="front", **CONFIG_KW)
    )
    pred = SessionCompute(predicted_config(query_id="p"))
    b = p = 0
    for e in range(1, 13):
        rb = base.epoch(e)
        rp = pred.epoch(e)
        if e >= 4:
            b += rb["delivered"]
            p += rp["delivered"]
    assert p < b


def test_run_load_smoke_with_prediction():
    config = predicted_config()

    async def main():
        async with MapService([config]) as service:
            report = await run_load(
                service,
                "pred",
                epochs=4,
                n_snapshot_clients=4,
                n_subscribers=8,
            )
            assert report.deltas_delivered > 0
            assert report.epochs == 4

    asyncio.run(main())
