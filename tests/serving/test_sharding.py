"""Multi-worker sharding determinism.

The same configs must produce byte-identical payload streams whether
epochs run inline, in one worker process, or spread over several --
the shard layout is an operational knob, never a semantic one.
"""

import asyncio

import pytest

from repro.serving import worker
from repro.serving.errors import UnknownQueryError
from repro.serving.router import MapService, ShardPool
from repro.serving.session import SessionCompute, SessionConfig

CONFIGS = [
    SessionConfig(query_id="alpha", n_nodes=300, seed=1, scenario="storm"),
    SessionConfig(query_id="beta", n_nodes=300, seed=2, scenario="tide"),
]
EPOCHS = 3


def stream(n_shards: int):
    """(query_id, epoch) -> (delta, records, sink) under a shard layout."""

    async def main():
        out = {}
        async with MapService(CONFIGS, n_shards=n_shards) as service:
            for _ in range(EPOCHS):
                results = await service.advance_all()
                for qid, r in results.items():
                    out[(qid, r["epoch"])] = (r["delta"], r["records"], r["sink"])
        return out

    return asyncio.run(main())


@pytest.mark.parametrize("n_shards", [1, 2])
def test_sharded_streams_match_inline(n_shards):
    assert stream(n_shards) == stream(0)


def test_shard_pinning_is_stable():
    pool = ShardPool(n_shards=3)
    try:
        for qid in ("alpha", "beta", "gamma", "delta"):
            assert pool.shard_of(qid) == pool.shard_of(qid)
            assert 0 <= pool.shard_of(qid) < 3
    finally:
        pool.close()


def test_worker_rebuild_fast_forwards_deterministically():
    """A cold worker asked for epoch k rebuilds the session and fast
    forwards 1..k-1, landing on the same payload as an uninterrupted
    run (what makes worker restarts invisible to clients)."""
    worker.reset()
    config = CONFIGS[0]
    continuous = SessionCompute(config)
    expected = [continuous.epoch(e) for e in range(1, 4)]

    worker.reset()
    warm = [worker.compute_epoch(config.to_dict(), e) for e in range(1, 3)]
    worker.reset()  # simulate a worker restart before epoch 3
    cold = worker.compute_epoch(config.to_dict(), 3)
    for got, want in zip(warm + [cold], expected):
        assert got["delta"] == want["delta"]
        assert got["records"] == want["records"]
        assert got["sink"] == want["sink"]
    worker.reset()


def test_worker_detects_config_change():
    worker.reset()
    a = worker.compute_epoch(SessionConfig(query_id="q", n_nodes=200).to_dict(), 1)
    b = worker.compute_epoch(
        SessionConfig(query_id="q", n_nodes=200, seed=9).to_dict(), 1
    )
    # Same query id, new config: the worker rebuilt rather than reusing
    # the stale session (different seed ==> different deployment).
    assert a["delta"] != b["delta"]
    worker.reset()


def test_unknown_query_is_rejected():
    async def main():
        async with MapService(CONFIGS[:1]) as service:
            with pytest.raises(UnknownQueryError):
                service.snapshot("nope")
            with pytest.raises(ValueError):
                MapService([CONFIGS[0], CONFIGS[0]])

    asyncio.run(main())
