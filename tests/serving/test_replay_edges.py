"""Epoch-replay edge cases: retention misses, live-only joins, and the
all-retract (zero-isoline) epoch of the pulse scenario."""

import asyncio

from repro.serving.router import MapService
from repro.serving.session import SessionConfig
from repro.serving.wire import DELTA, SNAPSHOT, DeltaReplayer, decode_delta

CONFIG_KW = dict(n_nodes=300, seed=7, radio_range=2.2)


def run(coro):
    return asyncio.run(coro)


def test_since_epoch_predating_retention_resyncs_with_snapshot():
    config = SessionConfig(query_id="old", scenario="tide", **CONFIG_KW)

    async def main():
        async with MapService([config], retention=2) as service:
            session = service.session("old")
            for _ in range(5):
                await session.advance()
            # Epochs 1..3 are evicted; asking to resume from 0 cannot be
            # served as deltas, so the stream opens with a snapshot.
            sub = service.subscribe("old", since_epoch=0)
            first = await sub.__anext__()
            assert first.kind == SNAPSHOT and first.epoch == 5
            replayer = DeltaReplayer()
            replayer.apply(first)
            assert replayer.render() == service.snapshot("old").payload
            # ... and continues live with contiguous deltas.
            await session.advance()
            live = await sub.__anext__()
            assert live.kind == DELTA and live.epoch == 6
            replayer.apply(live)
            assert replayer.render() == service.snapshot("old").payload
            sub.close()

    run(main())


def test_since_epoch_at_current_is_live_only():
    config = SessionConfig(query_id="cur", scenario="tide", **CONFIG_KW)

    async def main():
        async with MapService([config]) as service:
            session = service.session("cur")
            for _ in range(3):
                await session.advance()
            sub = service.subscribe("cur", since_epoch=3)
            await session.advance()
            first = await sub.__anext__()
            assert (first.kind, first.epoch) == (DELTA, 4)
            sub.close()

    run(main())


def test_since_epoch_in_future_is_clamped_to_live():
    config = SessionConfig(query_id="fut", scenario="steady", **CONFIG_KW)

    async def main():
        async with MapService([config]) as service:
            session = service.session("fut")
            await session.advance()
            sub = service.subscribe("fut", since_epoch=99)
            await session.advance()
            assert (await sub.__anext__()).epoch == 2
            sub.close()

    run(main())


def test_subscribe_before_any_epoch_sees_the_whole_stream():
    config = SessionConfig(query_id="fresh", scenario="tide", **CONFIG_KW)

    async def main():
        async with MapService([config]) as service:
            session = service.session("fresh")
            sub = service.subscribe("fresh", since_epoch=0)
            replayer = DeltaReplayer()
            # Nothing published yet: snapshot is the canonical empty map
            # and already matches the fresh replayer.
            assert replayer.render() == service.snapshot("fresh").payload
            for e in range(1, 4):
                await session.advance()
                replayer.apply(await sub.__anext__())
                assert replayer.render() == service.snapshot("fresh").payload
            sub.close()

    run(main())


def test_pulse_all_retract_epoch_replays_byte_identically():
    config = SessionConfig(query_id="pulse", scenario="pulse", **CONFIG_KW)

    async def main():
        async with MapService([config]) as service:
            session = service.session("pulse")
            sub = service.subscribe("pulse", since_epoch=0)
            replayer = DeltaReplayer()
            retract_frames = []
            for e in range(1, 9):  # epochs 3 and 7 collapse the field
                await session.advance()
                message = await sub.__anext__()
                replayer.apply(message)
                assert replayer.render() == service.snapshot("pulse").payload
                frame = decode_delta(message.payload)
                if e % 4 == 3:
                    retract_frames.append(frame)
                    # The collapsed field crosses no level anywhere: the
                    # delta is pure retraction and the map empties.
                    assert frame.records == ()
                    assert replayer.record_count == 0
            assert len(retract_frames) == 2
            assert all(f.retractions for f in retract_frames)
            sub.close()

    run(main())


def test_reconnect_across_the_all_retract_epoch():
    """A client that drops off at epoch 2 and resumes with
    ``since_epoch=2`` replays exactly the collapse epoch and converges
    (regression guard for pure-retraction replay)."""
    config = SessionConfig(query_id="pulse2", scenario="pulse", **CONFIG_KW)

    async def main():
        async with MapService([config], retention=8) as service:
            session = service.session("pulse2")
            replayer = DeltaReplayer()
            first = service.subscribe("pulse2", since_epoch=0)
            for _ in range(2):
                await session.advance()
                replayer.apply(await first.__anext__())
            first.close()  # client disconnects holding epoch-2 state
            await session.advance()  # epoch 3: the collapse
            resumed = service.subscribe("pulse2", since_epoch=replayer.epoch)
            message = await resumed.__anext__()
            assert (message.kind, message.epoch) == (DELTA, 3)
            replayer.apply(message)
            assert replayer.record_count == 0
            assert replayer.render() == service.snapshot("pulse2").payload
            resumed.close()

    run(main())
