"""The SIMPLIFIED stream (wire version 2): negotiation, identity, fold.

Contracts pinned here:

- **negotiation**: first servable offered encoding wins; unknown names
  and unservable offers raise ``EncodingUnavailable`` (no silent
  downgrade); plain-only sessions serve plain subscribers untouched;
- **tolerance-0 byte identity**: with ``simplify_tolerance=0.0`` the
  simplified delta stream and snapshots are byte-identical to the PR-6
  plain encoding, on every scenario -- the differential that proves the
  simplified pipeline is a pure extension;
- **fold == rendered snapshot**: a ``DeltaReplayer`` folding only the
  simplified deltas renders, at every epoch, exactly the snapshot the
  store serves for the SIMPLIFIED encoding (the stream is
  self-consistent, not just a filtered view);
- **plain stream untouched**: enabling the simplified pipeline changes
  nothing about the plain bytes;
- **guarantee on served maps**: the measured deviation of the selection
  never exceeds the tolerance;
- **mixed subscribers**: plain and simplified subscribers on one live
  session each receive their own consistent stream, and resync works
  per encoding.
"""

import asyncio

import pytest

from repro.serving.errors import EncodingUnavailable
from repro.serving.router import MapService
from repro.serving.session import MapSession, SessionCompute, SessionConfig
from repro.serving.store import MapStore
from repro.serving.wire import (
    DELTA,
    ENCODING_PLAIN,
    ENCODING_SIMPLIFIED,
    DeltaReplayer,
    ServedMessage,
    decode_delta,
    decode_snapshot,
    encode_snapshot,
    negotiate_encoding,
    select_simplified_records,
    simplified_selection_stats,
)

SCENARIOS = ("steady", "tide", "storm", "pulse")
CONFIG_KW = dict(n_nodes=400, seed=3, radio_range=2.2)
EPOCHS = 6


def config_with(tolerance, scenario="tide", **kw):
    base = dict(CONFIG_KW)
    base.update(kw)
    return SessionConfig(
        query_id="simp", scenario=scenario, simplify_tolerance=tolerance, **base
    )


class TestNegotiation:
    def test_first_servable_offer_wins(self):
        assert negotiate_encoding((ENCODING_PLAIN,), False) == ENCODING_PLAIN
        assert (
            negotiate_encoding((ENCODING_SIMPLIFIED, ENCODING_PLAIN), True)
            == ENCODING_SIMPLIFIED
        )
        assert (
            negotiate_encoding((ENCODING_PLAIN, ENCODING_SIMPLIFIED), True)
            == ENCODING_PLAIN
        )

    def test_unknown_encoding_is_a_hard_error(self):
        with pytest.raises(EncodingUnavailable):
            negotiate_encoding(("gzip",), True)
        with pytest.raises(EncodingUnavailable):
            negotiate_encoding((ENCODING_PLAIN, "gzip"), True)

    def test_unservable_offer_raises_not_downgrades(self):
        with pytest.raises(EncodingUnavailable):
            negotiate_encoding((ENCODING_SIMPLIFIED,), False)
        with pytest.raises(EncodingUnavailable):
            negotiate_encoding((), True)

    def test_session_without_tolerance_rejects_simplified(self):
        compute = SessionCompute(config_with(None))
        out = compute.epoch(1)
        assert "s_delta" not in out


class TestToleranceZeroByteIdentity:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_simplified_stream_is_byte_identical(self, scenario):
        passthrough = SessionCompute(config_with(0.0, scenario))
        for epoch in range(1, EPOCHS + 1):
            out = passthrough.epoch(epoch)
            assert out["s_delta"] == out["delta"]
            assert out["s_records"] == out["records"]

    def test_plain_bytes_unchanged_by_enabling_simplified(self):
        plain = SessionCompute(config_with(None))
        simplified = SessionCompute(config_with(0.8))
        for epoch in range(1, EPOCHS + 1):
            a = plain.epoch(epoch)
            b = simplified.epoch(epoch)
            assert a["delta"] == b["delta"]
            assert a["records"] == b["records"]


class TestSimplifiedFold:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_replayed_simplified_deltas_render_served_snapshots(self, scenario):
        compute = SessionCompute(config_with(0.8, scenario))
        replayer = DeltaReplayer()
        for epoch in range(1, EPOCHS + 1):
            out = compute.epoch(epoch)
            replayer.apply(ServedMessage(DELTA, epoch, out["s_delta"]))
            rendered = encode_snapshot(epoch, out["s_records"], out["sink"])
            assert replayer.render() == rendered

    def test_selection_deviation_bounded_on_served_maps(self):
        tolerance = 0.8
        compute = SessionCompute(config_with(tolerance))
        for epoch in range(1, EPOCHS + 1):
            out = compute.epoch(epoch)
        stats = simplified_selection_stats(
            out["records"], compute.codec.dequantize_position, tolerance
        )
        assert stats["max_deviation"] <= tolerance
        assert stats["records_kept"] <= stats["records_full"]

    def test_selection_is_pure_function_of_state(self):
        compute = SessionCompute(config_with(0.8))
        for epoch in range(1, 4):
            out = compute.epoch(epoch)
        dequantize = compute.codec.dequantize_position
        a = select_simplified_records(out["records"], dequantize, 0.8)
        b = select_simplified_records(tuple(out["records"]), dequantize, 0.8)
        assert a == b
        assert set(a) <= set(out["records"])


class TestStoreSimplified:
    def test_store_serves_both_encodings(self):
        compute = SessionCompute(config_with(0.8))
        store = MapStore("simp")
        for epoch in range(1, 4):
            out = compute.epoch(epoch)
            store.put_epoch(
                epoch,
                out["delta"],
                out["records"],
                out["sink"],
                s_delta=out["s_delta"],
                s_records=out["s_records"],
            )
        assert store.delta(2) == store.delta(2, simplified=False)
        assert store.delta(2, simplified=True) != store.delta(2)
        plain_snap = decode_snapshot(store.snapshot(3))
        simp_snap = decode_snapshot(store.snapshot(3, simplified=True))
        assert len(simp_snap.records) < len(plain_snap.records)
        assert set(simp_snap.records) <= set(plain_snap.records)

    def test_store_without_simplified_rejects_requests(self):
        compute = SessionCompute(config_with(None))
        store = MapStore("simp")
        out = compute.epoch(1)
        store.put_epoch(1, out["delta"], out["records"], out["sink"])
        with pytest.raises(ValueError):
            store.delta(1, simplified=True)
        with pytest.raises(ValueError):
            store.snapshot(1, simplified=True)


async def next_message(subscription):
    return await asyncio.wait_for(subscription.__anext__(), timeout=5.0)


async def drain(subscription, n):
    return [await next_message(subscription) for _ in range(n)]


class TestLiveSession:
    def test_mixed_subscribers_each_get_their_stream(self):
        async def run():
            service = MapService([config_with(0.8)])
            try:
                session = service.session("simp")
                plain_sub = service.subscribe("simp")
                simp_sub = service.subscribe(
                    "simp", encodings=(ENCODING_SIMPLIFIED, ENCODING_PLAIN)
                )
                assert plain_sub.encoding == ENCODING_PLAIN
                assert simp_sub.encoding == ENCODING_SIMPLIFIED
                plain_replay, simp_replay = DeltaReplayer(), DeltaReplayer()
                for _ in range(4):
                    await session.advance()
                for msg in await drain(plain_sub, 4):
                    plain_replay.apply(msg)
                for msg in await drain(simp_sub, 4):
                    simp_replay.apply(msg)
                assert plain_replay.epoch == simp_replay.epoch == 4
                assert plain_replay.render() == service.snapshot("simp").payload
                assert simp_replay.render() == service.snapshot(
                    "simp", encoding=ENCODING_SIMPLIFIED
                ).payload
                assert simp_replay.record_count <= plain_replay.record_count
            finally:
                await service.stop()

        asyncio.run(run())

    def test_simplified_snapshot_resync_after_eviction(self):
        async def run():
            config = config_with(0.8)
            service = MapService([config], retention=2)
            try:
                session = service.session("simp")
                for _ in range(5):
                    await session.advance()
                # Epoch 1 has been evicted: a simplified subscriber from
                # epoch 0 must be resynced with a simplified snapshot.
                sub = service.subscribe(
                    "simp", since_epoch=0, encodings=(ENCODING_SIMPLIFIED,)
                )
                msg = await next_message(sub)
                frame = decode_snapshot(msg.payload)
                assert frame.epoch == 5
                assert msg.payload == service.snapshot(
                    "simp", encoding=ENCODING_SIMPLIFIED
                ).payload
            finally:
                await service.stop()

        asyncio.run(run())

    def test_plain_only_session_rejects_simplified_subscriber(self):
        async def run():
            service = MapService([SessionConfig(query_id="p", **CONFIG_KW)])
            try:
                with pytest.raises(EncodingUnavailable):
                    service.subscribe("p", encodings=(ENCODING_SIMPLIFIED,))
                with pytest.raises(EncodingUnavailable):
                    service.snapshot("p", encoding=ENCODING_SIMPLIFIED)
            finally:
                await service.stop()

        asyncio.run(run())
