"""Per-test deadlines for the serving suite.

The serving tests exercise hangs, worker kills and shutdown paths -- the
one part of the repo where a regression plausibly manifests as a test
that never returns.  pytest-timeout is not a dependency, so this is the
stdlib equivalent: a SIGALRM-based deadline around every test in this
directory (default :data:`DEFAULT_DEADLINE_S`), tightenable per test
with ``@pytest.mark.deadline(seconds)``.

The alarm only works on the main thread of a POSIX process; anywhere
else the hook degrades to a no-op (the CI runners are Linux, so the
guard matters for exotic local runs, not for the gate).
"""

import signal
import threading

import pytest

DEFAULT_DEADLINE_S = 90.0


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "deadline(seconds): per-test wall-clock deadline for serving tests "
        "(SIGALRM-based; default %gs)" % DEFAULT_DEADLINE_S,
    )


def _deadline_for(item) -> float:
    marker = item.get_closest_marker("deadline")
    if marker and marker.args:
        return float(marker.args[0])
    return DEFAULT_DEADLINE_S


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    deadline = _deadline_for(item)
    usable = (
        deadline > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} blew its {deadline:g}s deadline "
            f"(serving suite per-test watchdog)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, deadline)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
