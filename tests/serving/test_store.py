"""MapStore retention, eviction safety and cache transparency."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.errors import EpochEvicted
from repro.serving.store import MapStore
from repro.serving.wire import decode_snapshot, encode_snapshot


def _record(seed: int) -> bytes:
    return random.Random(seed).randbytes(8)


def _fill(store: MapStore, epochs: int) -> None:
    for e in range(1, epochs + 1):
        records = tuple(sorted(_record(100 * e + i) for i in range(e % 4)))
        store.put_epoch(e, delta=b"d%d" % e, records=records, sink=e)


class TestRetention:
    def test_epochs_must_arrive_in_order(self):
        store = MapStore("q")
        store.put_epoch(1, b"", (), None)
        with pytest.raises(ValueError):
            store.put_epoch(3, b"", (), None)
        with pytest.raises(ValueError):
            store.put_epoch(1, b"", (), None)

    def test_eviction_window(self):
        store = MapStore("q", retention=3)
        _fill(store, 5)
        assert store.oldest_retained() == 3
        assert store.latest_epoch == 5
        assert store.delta(2) is None
        assert store.delta(3) == b"d3"

    def test_evicted_snapshot_raises_not_stale(self):
        store = MapStore("q", retention=2, snapshot_cache_size=8)
        _fill(store, 2)
        # Render and cache epoch 1, then push it out of retention.
        cached = store.snapshot(1)
        assert decode_snapshot(cached).epoch == 1
        store.put_epoch(3, b"d3", (_record(1),), 3)
        with pytest.raises(EpochEvicted):
            store.snapshot(1)

    def test_empty_store_serves_canonical_empty_snapshot(self):
        assert MapStore("q").snapshot() == encode_snapshot(0, (), None)

    def test_never_published_epoch_raises(self):
        store = MapStore("q")
        _fill(store, 2)
        with pytest.raises(EpochEvicted):
            store.snapshot(9)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            MapStore("q", retention=0)
        with pytest.raises(ValueError):
            MapStore("q", snapshot_cache_size=0)


class TestCache:
    def test_hit_and_miss_counters(self):
        store = MapStore("q", snapshot_cache_size=2)
        _fill(store, 3)
        store.snapshot(3)
        store.snapshot(3)
        assert (store.cache_hits, store.cache_misses) == (1, 1)
        # Touch two other epochs: LRU capacity 2 evicts epoch 3's render.
        store.snapshot(1)
        store.snapshot(2)
        store.snapshot(3)
        assert store.cache_misses == 4

    def test_disabled_cache_never_counts_hits(self):
        store = MapStore("q", cache_enabled=False)
        _fill(store, 2)
        store.snapshot(2)
        store.snapshot(2)
        assert store.cache_hits == 0
        assert store.cache_misses == 2

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        retention=st.integers(1, 6),
        cache_size=st.integers(1, 4),
        n_ops=st.integers(1, 60),
    )
    def test_cache_is_transparent(self, seed, retention, cache_size, n_ops):
        """Enabled vs disabled caches serve identical bytes under any
        interleaving of publishes and (possibly repeated) reads."""
        rng = random.Random(seed)
        cached = MapStore("q", retention, cache_size, cache_enabled=True)
        plain = MapStore("q", retention, cache_size, cache_enabled=False)
        epoch = 0
        for _ in range(n_ops):
            if epoch == 0 or rng.random() < 0.4:
                epoch += 1
                records = tuple(
                    sorted(_record(rng.randrange(50)) for _ in range(rng.randrange(4)))
                )
                sink = rng.choice([None, rng.randrange(0xFFFF)])
                for store in (cached, plain):
                    store.put_epoch(epoch, b"d%d" % epoch, records, sink)
            else:
                probe = rng.randrange(max(1, epoch - retention - 1), epoch + 2)
                outcomes = []
                for store in (cached, plain):
                    try:
                        outcomes.append(store.snapshot(probe))
                    except EpochEvicted:
                        outcomes.append("evicted")
                assert outcomes[0] == outcomes[1]
