"""The PR's acceptance bar: chaos changes *nothing* about the bytes.

Under seeded moderate chaos -- worker kills, hangs, dropped results and
corrupted payloads injected between the supervisor and the workers --
every subscriber's replayed delta stream and every post-recovery
snapshot must be byte-identical to the fault-free run at the same
epoch, across scenarios and shard layouts.  Recovery is allowed to
cost retries and wall-time; it is never allowed to cost bytes.
"""

import asyncio

import pytest

from repro.serving.chaos import ChaosPlan
from repro.serving.errors import EpochComputeFailed, ShardUnavailableError
from repro.serving.router import MapService
from repro.serving.session import SessionCompute, SessionConfig
from repro.serving.supervisor import SupervisorConfig
from repro.serving.wire import DELTA, DeltaReplayer, encode_snapshot

CONFIG_KW = dict(n_nodes=300, seed=3, radio_range=2.2)
EPOCHS = 6

#: Chaos-test supervision: a deadline a few times the ~15 ms epoch
#: compute (injected hangs each burn one deadline), fast retries.
CHAOS_SUPERVISION = SupervisorConfig(
    compute_timeout=0.3,
    probe_timeout=0.5,
    backoff_base=0.002,
    backoff_cap=0.01,
)


def truth_snapshots(config: SessionConfig, epochs: int):
    """Fault-free ground truth, straight from the compute core."""
    compute = SessionCompute(config)
    results = [compute.epoch(e) for e in range(1, epochs + 1)]
    return [
        encode_snapshot(e, r["records"], r["sink"])
        for e, r in enumerate(results, 1)
    ]


async def drive_through_chaos(session, epochs: int) -> int:
    """Advance to ``epochs`` published epochs, riding out failures.

    Returns how many advance attempts failed along the way (breaker
    fast-fails included)."""
    failed = 0
    rounds = 0
    while session.latest_epoch < epochs:
        rounds += 1
        assert rounds <= 60 * epochs, "chaos run is not converging"
        try:
            await session.advance()
        except (EpochComputeFailed, ShardUnavailableError):
            failed += 1
            await asyncio.sleep(0.002)
    return failed


@pytest.mark.deadline(120)
@pytest.mark.parametrize("scenario", ["tide", "storm"])
@pytest.mark.parametrize("n_shards", [0, 2])
def test_chaos_run_is_byte_identical_to_fault_free(scenario, n_shards):
    config = SessionConfig(query_id="chaos", scenario=scenario, **CONFIG_KW)
    truth = truth_snapshots(config, EPOCHS)

    async def main():
        service = MapService(
            [config],
            n_shards=n_shards,
            supervision=CHAOS_SUPERVISION,
            chaos=ChaosPlan.moderate(seed=6),
            retention=EPOCHS,
        )
        session = service.session("chaos")
        replayer = DeltaReplayer()
        sub = service.subscribe("chaos", since_epoch=0)
        await drive_through_chaos(session, EPOCHS)

        # The delta stream replays to the exact fault-free bytes at
        # every epoch (failed attempts published nothing).
        for e in range(1, EPOCHS + 1):
            message = await sub.__anext__()
            assert message.kind == DELTA and message.epoch == e
            replayer.apply(message)
            assert replayer.render() == truth[e - 1]
        sub.close()

        # Every retained post-recovery snapshot is fault-free-identical.
        for e in range(1, EPOCHS + 1):
            served = service.snapshot("chaos", epoch=e)
            assert served.payload == truth[e - 1]
            assert not served.stale  # fully recovered: live answers

        # The seeded plan really did inject (else this test is vacuous).
        injected = sum(service.pool.chaos.stats.to_dict().values())
        assert injected > 0
        await service.stop()
        return injected

    asyncio.run(main())


@pytest.mark.deadline(120)
def test_chaos_injection_counts_are_reproducible():
    """Same plan, same layout -> the same injected-failure counts (the
    breaker cools down in calls, not seconds, so a slow machine sees
    the exact run a fast one does)."""
    config = SessionConfig(query_id="chaos", scenario="tide", **CONFIG_KW)

    async def run_once():
        service = MapService(
            [config],
            supervision=CHAOS_SUPERVISION,
            chaos=ChaosPlan.moderate(seed=6),
        )
        session = service.session("chaos")
        failed = await drive_through_chaos(session, EPOCHS)
        stats = dict(service.pool.chaos.stats.to_dict())
        status = service.pool.status()[0]
        await service.stop()
        return failed, stats, status

    failed_a, stats_a, status_a = asyncio.run(run_once())
    failed_b, stats_b, status_b = asyncio.run(run_once())
    assert stats_a == stats_b
    assert failed_a == failed_b
    for key in ("retries", "crashes", "hangs", "drops", "corruptions",
                "failures", "breaker_fast_fails"):
        assert status_a[key] == status_b[key], key


@pytest.mark.deadline(120)
def test_two_sessions_one_chaotic_shard_layout():
    """Two standing queries through the same supervised pool: chaos on
    the pool leaves *both* delta streams byte-identical to their own
    fault-free runs."""
    configs = [
        SessionConfig(query_id="qa", scenario="tide", **CONFIG_KW),
        SessionConfig(query_id="qb", scenario="storm", **CONFIG_KW),
    ]
    truths = {c.query_id: truth_snapshots(c, 4) for c in configs}

    async def main():
        service = MapService(
            configs,
            n_shards=2,
            supervision=CHAOS_SUPERVISION,
            chaos=ChaosPlan.moderate(seed=9),
            retention=4,
        )
        replayers = {qid: DeltaReplayer() for qid in truths}
        subs = {qid: service.subscribe(qid, since_epoch=0) for qid in truths}
        for qid in truths:
            await drive_through_chaos(service.session(qid), 4)
        for qid, truth in truths.items():
            for e in range(1, 5):
                message = await subs[qid].__anext__()
                assert message.epoch == e
                replayers[qid].apply(message)
                assert replayers[qid].render() == truth[e - 1]
            subs[qid].close()
        await service.stop()

    asyncio.run(main())
