"""The headline serving guarantees, checked differentially.

A subscriber that folds the delta stream from epoch 0 must render, at
*every* epoch, a snapshot byte-identical to both

1. what ``MapService.snapshot`` serves for that epoch, and
2. the canonical encoding of the sink cache of a direct
   :class:`~repro.core.continuous.ContinuousIsoMap` run under the same
   seed and scenario -- the serving layer must add nothing and lose
   nothing relative to the simulator it wraps.

Plus the concurrency contracts: backpressure eviction, mid-stream
join/leave, and graceful shutdown draining.
"""

import asyncio

import pytest

from repro.core.codec import ReportCodec
from repro.core.continuous import ContinuousIsoMap
from repro.network import SensorNetwork
from repro.serving.errors import SlowConsumerEvicted
from repro.serving.router import MapService
from repro.serving.session import SessionConfig, base_field, field_for_epoch
from repro.serving.wire import DELTA, DeltaReplayer, encode_snapshot

CONFIG_KW = dict(n_nodes=400, seed=3, radio_range=2.2)
EPOCHS = 6


def direct_run_snapshots(config: SessionConfig, epochs: int):
    """Ground truth: canonical per-epoch snapshot payloads from a direct
    ContinuousIsoMap run (no serving machinery at all)."""
    query = config.query()
    network = SensorNetwork.random_deploy(
        base_field(config),
        config.n_nodes,
        radio_range=config.radio_range,
        seed=config.seed,
    )
    monitor = ContinuousIsoMap(query, angle_delta_deg=config.angle_delta_deg)
    codec = ReportCodec.for_query(query, network.bounds)
    payloads = []
    for e in range(1, epochs + 1):
        network.resense(field_for_epoch(config, e))
        result = monitor.epoch(network)
        records = [codec.encode(r) for r in monitor.sink_reports]
        sink = (
            None
            if result.sink_value is None
            else codec.quantize_value(result.sink_value)
        )
        payloads.append(encode_snapshot(e, records, sink))
    return payloads


@pytest.mark.parametrize("scenario", ["tide", "storm"])
def test_replay_matches_snapshot_and_direct_run(scenario):
    config = SessionConfig(query_id="diff", scenario=scenario, **CONFIG_KW)
    truth = direct_run_snapshots(config, EPOCHS)

    async def main():
        async with MapService([config]) as service:
            session = service.session("diff")
            replayer = DeltaReplayer()
            sub = service.subscribe("diff", since_epoch=0)
            for e in range(1, EPOCHS + 1):
                await session.advance()
                message = await sub.__anext__()
                assert message.kind == DELTA and message.epoch == e
                replayer.apply(message)
                served = service.snapshot("diff").payload
                assert replayer.render() == served
                assert served == truth[e - 1]
            sub.close()

    asyncio.run(main())


def test_historical_snapshots_stay_identical():
    """Retained epochs re-render the exact payload they had when live."""
    config = SessionConfig(query_id="hist", scenario="tide", **CONFIG_KW)
    truth = direct_run_snapshots(config, EPOCHS)

    async def main():
        async with MapService([config], retention=EPOCHS) as service:
            session = service.session("hist")
            for _ in range(EPOCHS):
                await session.advance()
            for e in range(1, EPOCHS + 1):
                assert service.snapshot("hist", epoch=e).payload == truth[e - 1]

    asyncio.run(main())


def test_slow_consumer_is_evicted_others_unaffected():
    config = SessionConfig(query_id="slow", scenario="tide", **CONFIG_KW)

    async def main():
        async with MapService([config], queue_depth=2) as service:
            session = service.session("slow")
            lazy = service.subscribe("slow")  # never drained
            diligent = service.subscribe("slow")
            replayer = DeltaReplayer()
            for e in range(1, 5):
                await session.advance()
                message = await diligent.__anext__()
                replayer.apply(message)
            # queue_depth 2 < 4 published epochs: the lazy one is gone.
            with pytest.raises(SlowConsumerEvicted):
                await lazy.__anext__()
            assert session.stats.subscribers_evicted == 1
            assert replayer.render() == service.snapshot("slow").payload
            assert session.subscriber_count == 1  # diligent still attached

    asyncio.run(main())


def test_mid_stream_join_and_leave():
    config = SessionConfig(query_id="join", scenario="tide", **CONFIG_KW)

    async def main():
        async with MapService([config]) as service:
            session = service.session("join")
            for _ in range(3):
                await session.advance()
            # Joining at since_epoch=1 replays 2..3, then goes live.
            sub = service.subscribe("join", since_epoch=1)
            assert [(await sub.__anext__()).epoch for _ in range(2)] == [2, 3]
            await session.advance()
            assert (await sub.__anext__()).epoch == 4
            sub.close()
            # A closed subscriber receives nothing further.
            await session.advance()
            assert session.subscriber_count == 0

    asyncio.run(main())


def test_shutdown_drains_backlog_then_ends_stream():
    config = SessionConfig(query_id="drain", scenario="tide", **CONFIG_KW)

    async def main():
        service = MapService([config], queue_depth=16)
        session = service.session("drain")
        sub = service.subscribe("drain")
        for _ in range(3):
            await session.advance()

        async def consume():
            return [message.epoch async for message in sub]

        consumer = asyncio.ensure_future(consume())
        await asyncio.sleep(0)  # let the consumer start
        await service.stop(drain=True)
        # All three queued deltas arrive before the stream ends.
        assert await consumer == [1, 2, 3]

    asyncio.run(main())


def test_session_clock_runs_and_stops():
    config = SessionConfig(query_id="clock", scenario="steady", **CONFIG_KW)

    async def main():
        async with MapService([config], max_epochs=3) as service:
            session = service.session("clock")
            sub = service.subscribe("clock")
            service.start_all()
            assert [(await sub.__anext__()).epoch for _ in range(3)] == [1, 2, 3]
            assert session.latest_epoch == 3

    asyncio.run(main())
