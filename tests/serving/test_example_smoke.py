"""examples/serving_demo.py and the ``repro serve`` CLI stay runnable."""

import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import build_parser, main

_REPO = pathlib.Path(__file__).resolve().parents[2]


def test_serving_demo_runs():
    proc = subprocess.run(
        [
            sys.executable,
            str(_REPO / "examples" / "serving_demo.py"),
            "--nodes", "200", "--epochs", "4",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": str(_REPO / "src")},
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout
    assert "MISMATCH" not in proc.stdout
    assert "identical map" in proc.stdout


def test_serving_demo_runs_with_prediction():
    proc = subprocess.run(
        [
            sys.executable,
            str(_REPO / "examples" / "serving_demo.py"),
            "--nodes", "200", "--epochs", "4",
            "--scenario", "front", "--prediction-tolerance", "1.1",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": str(_REPO / "src")},
    )
    assert proc.returncode == 0, proc.stderr
    assert "PDELTA" in proc.stdout
    assert "MISMATCH" not in proc.stdout
    assert "identical map" in proc.stdout


def test_cli_serve_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.subscribers == 200
    assert args.shards == 0
    assert args.scenario == "tide"
    assert args.prediction_tolerance is None
    assert args.prediction_heartbeat == 8


def test_cli_serve_runs(capsys):
    rc = main(
        [
            "serve", "--nodes", "200", "--epochs", "3",
            "--clients", "2", "--subscribers", "10",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "serving load" in out
    assert "10 subscribers" in out


def test_cli_serve_rejects_unknown_scenario(capsys):
    rc = main(["serve", "--scenario", "tsunami"])
    assert rc == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_serve_rejects_bad_prediction_tolerance(capsys):
    rc = main(["serve", "--prediction-tolerance", "0"])
    assert rc == 2
    assert "--prediction-tolerance" in capsys.readouterr().err


def test_cli_serve_runs_with_prediction(capsys):
    rc = main(
        [
            "serve", "--nodes", "200", "--epochs", "3",
            "--clients", "2", "--subscribers", "5",
            "--scenario", "front", "--prediction-tolerance", "1.1",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "serving load" in out


def test_cli_serve_rejects_bad_chaos_intensity(capsys):
    rc = main(["serve", "--chaos", "1.5"])
    assert rc == 2
    assert "--chaos" in capsys.readouterr().err


def test_cli_serve_runs_under_chaos(capsys):
    """A seeded chaos run finishes, publishes every epoch, and reports
    what the recovery machinery absorbed."""
    rc = main(
        [
            "serve", "--nodes", "200", "--epochs", "4",
            "--clients", "2", "--subscribers", "5",
            "--chaos", "1.0", "--chaos-seed", "6",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "serving load" in out
    assert "4 epochs" in out


@pytest.mark.deadline(120)
def test_cli_serve_sigint_stops_cleanly():
    """``repro serve`` must install signal handlers and shut down via
    ``MapService.stop(drain=True)`` -- exit code 0 and an explicit
    clean-stop line, not a KeyboardInterrupt traceback."""
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve",
            "--nodes", "200", "--epochs", "1000000",
            "--clients", "2", "--subscribers", "5",
            "--interval", "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": str(_REPO / "src")},
    )
    try:
        time.sleep(3.0)  # let the service start and publish a few epochs
        assert proc.poll() is None, "serve exited before the signal"
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, stderr
    assert "service stopped cleanly" in stdout
    assert "Traceback" not in stderr
