"""examples/serving_demo.py and the ``repro serve`` CLI stay runnable."""

import pathlib
import subprocess
import sys

from repro.cli import build_parser, main

_REPO = pathlib.Path(__file__).resolve().parents[2]


def test_serving_demo_runs():
    proc = subprocess.run(
        [
            sys.executable,
            str(_REPO / "examples" / "serving_demo.py"),
            "--nodes", "200", "--epochs", "4",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": str(_REPO / "src")},
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout
    assert "MISMATCH" not in proc.stdout
    assert "identical map" in proc.stdout


def test_cli_serve_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.subscribers == 200
    assert args.shards == 0
    assert args.scenario == "tide"


def test_cli_serve_runs(capsys):
    rc = main(
        [
            "serve", "--nodes", "200", "--epochs", "3",
            "--clients", "2", "--subscribers", "10",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "serving load" in out
    assert "10 subscribers" in out


def test_cli_serve_rejects_unknown_scenario(capsys):
    rc = main(["serve", "--scenario", "tsunami"])
    assert rc == 2
    assert "unknown scenario" in capsys.readouterr().err
