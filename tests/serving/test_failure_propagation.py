"""Session-task crashes must surface, never silently stall a queue.

An exception inside a session's epoch loop (an *application* error --
bad config, a bug in the compute -- as opposed to the infrastructure
failures the supervisor retries) must reach every subscriber as a typed
:class:`SessionFailedError` carrying the original exception as its
cause, and must leave every *other* session streaming byte-identically
to a run where the doomed session never existed.
"""

import asyncio

import pytest

from repro.serving.errors import SessionFailedError
from repro.serving.router import MapService
from repro.serving.session import SessionCompute, SessionConfig
from repro.serving.wire import DELTA, DeltaReplayer, encode_snapshot

CONFIG_KW = dict(n_nodes=200, seed=3, radio_range=2.2)


def _good(query_id="ok", scenario="tide"):
    return SessionConfig(query_id=query_id, scenario=scenario, **CONFIG_KW)


def _bad(query_id="bad"):
    # Constructs fine; the compute's first epoch raises ValueError.
    return SessionConfig(query_id=query_id, scenario="bogus", **CONFIG_KW)


def _truth(config, epochs):
    compute = SessionCompute(config)
    results = [compute.epoch(e) for e in range(1, epochs + 1)]
    return [
        encode_snapshot(e, r["records"], r["sink"])
        for e, r in enumerate(results, 1)
    ]


def test_epoch_crash_surfaces_as_typed_error_to_subscribers():
    async def main():
        service = MapService([_bad()])
        session = service.session("bad")
        sub = service.subscribe("bad", since_epoch=0)

        with pytest.raises(SessionFailedError) as exc_info:
            await session.advance()
        assert isinstance(exc_info.value.__cause__, ValueError)
        assert session.failure is exc_info.value.__cause__

        # The subscriber is woken with the typed error -- not left
        # waiting on a queue nothing will ever feed again.
        with pytest.raises(SessionFailedError):
            await asyncio.wait_for(sub.__anext__(), timeout=5.0)

        # Late joiners are refused up front, same type.
        with pytest.raises(SessionFailedError):
            service.subscribe("bad")

        # A failed session stays failed (no zombie advances)...
        with pytest.raises(SessionFailedError):
            await session.advance()
        # ...and degrades reads explicitly: the snapshot is the last
        # retained state, tagged stale.
        assert service.snapshot("bad").stale

        health = service.health()
        assert health["sessions"]["bad"]["failed"] is True
        await service.stop()

    asyncio.run(main())


def test_sibling_sessions_stream_byte_identically_after_a_crash():
    """One session dying must not perturb the bytes of the survivors."""
    good = _good()
    truth = _truth(good, 4)

    async def main():
        service = MapService([good, _bad()])
        ok_session = service.session("ok")
        sub = service.subscribe("ok", since_epoch=0)
        replayer = DeltaReplayer()

        with pytest.raises(SessionFailedError):
            await service.session("bad").advance()

        for e in range(1, 5):
            await ok_session.advance()
            message = await sub.__anext__()
            assert message.kind == DELTA and message.epoch == e
            replayer.apply(message)
            assert replayer.render() == truth[e - 1]
            assert service.snapshot("ok").payload == truth[e - 1]
            assert not service.snapshot("ok").stale
        sub.close()
        await service.stop()

    asyncio.run(main())


@pytest.mark.deadline(60)
def test_clock_driven_crash_terminates_loop_and_notifies():
    """Under ``start_all`` the epoch loop hits the crash on its own:
    the loop must terminate (not spin on a dead session) and the
    subscribers must still get the typed error; the sibling keeps
    publishing on its clock, byte-identically."""
    good = _good()
    truth = _truth(good, 3)

    async def main():
        service = MapService(
            [good, _bad()], epoch_interval=0.005, max_epochs=3
        )
        bad_sub = service.subscribe("bad", since_epoch=0)
        ok_sub = service.subscribe("ok", since_epoch=0)
        service.start_all()

        with pytest.raises(SessionFailedError):
            await asyncio.wait_for(bad_sub.__anext__(), timeout=10.0)

        replayer = DeltaReplayer()
        for e in range(1, 4):
            message = await asyncio.wait_for(ok_sub.__anext__(), timeout=10.0)
            assert message.epoch == e
            replayer.apply(message)
            assert replayer.render() == truth[e - 1]
        ok_sub.close()

        assert service.session("bad").failure is not None
        assert service.session("ok").failure is None
        await service.stop()

    asyncio.run(main())
