"""Shard supervision: deadlines, recovery, breakers, clean shutdown.

Covers the self-healing machinery in isolation: the circuit breaker
state machine, the chaos engine's determinism, each injected failure
mode recovering to byte-identical payloads, genuine (non-injected)
hang detection via the per-request deadline, worker heartbeat probes,
and the close-paths that must never hang even with a wedged worker.
"""

import asyncio
import time

import pytest

from repro.serving.chaos import (
    CORRUPT,
    DROP,
    HANG,
    KILL,
    ChaosEngine,
    ChaosEvent,
    ChaosPlan,
)
from repro.serving.errors import (
    EpochComputeFailed,
    ShardUnavailableError,
)
from repro.serving.router import MapService, ShardPool
from repro.serving.session import SessionConfig
from repro.serving.supervisor import (
    CircuitBreaker,
    SupervisedShardPool,
    SupervisorConfig,
)
from repro.serving.worker import ping, wedge

CONFIG_KW = dict(n_nodes=200, seed=3, radio_range=2.2)

#: Fast supervision for tests: short deadline (epochs at n=200 take
#: ~10 ms), tiny backoff, default breaker.
FAST = SupervisorConfig(
    compute_timeout=0.5,
    probe_timeout=0.5,
    backoff_base=0.002,
    backoff_cap=0.01,
)


def _config(query_id="sup"):
    return SessionConfig(query_id=query_id, scenario="tide", **CONFIG_KW)


async def _truth(config, epochs):
    pool = SupervisedShardPool(0)
    return [await pool.compute(config, e) for e in range(1, epochs + 1)]


# ----------------------------------------------------------------------
# Chaos plan / engine
# ----------------------------------------------------------------------


def test_chaos_plan_validation():
    with pytest.raises(ValueError):
        ChaosPlan(kill=0.6, hang=0.5)  # sum > 1
    with pytest.raises(ValueError):
        ChaosPlan(drop=-0.1)
    with pytest.raises(ValueError):
        ChaosEvent(epoch=0, attempt=1, kind=KILL)
    with pytest.raises(ValueError):
        ChaosEvent(epoch=1, attempt=1, kind="explode")
    assert ChaosPlan.none().is_null
    assert ChaosPlan.at_intensity(0.0).is_null
    assert not ChaosPlan.moderate().is_null


def test_chaos_engine_is_deterministic():
    plan = ChaosPlan.moderate(seed=11)
    a, b = ChaosEngine(plan), ChaosEngine(plan)
    addresses = [
        (shard, qid, epoch, attempt)
        for shard in (0, 1)
        for qid in ("q0", "q1")
        for epoch in range(1, 30)
        for attempt in (1, 2)
    ]
    actions_a = [a.action(*addr) for addr in addresses]
    actions_b = [b.action(*addr) for addr in addresses]
    assert actions_a == actions_b
    assert a.stats.to_dict() == b.stats.to_dict()
    # Moderate intensity injects *something* over 480 attempts...
    assert any(act is not None for act in actions_a)
    # ...and every mode has non-zero probability mass.
    assert sum(a.stats.to_dict().values()) == sum(
        1 for act in actions_a if act is not None
    )


def test_chaos_attempt_cursor_is_monotone_across_calls():
    engine = ChaosEngine(ChaosPlan.moderate())
    assert engine.next_attempt("q", 1) == 1
    assert engine.next_attempt("q", 1) == 2
    assert engine.next_attempt("q", 2) == 1  # per-epoch cursor
    assert engine.next_attempt("q", 1) == 3  # survives interleaving


def test_corrupt_payload_flips_bits_deterministically():
    engine = ChaosEngine(ChaosPlan(seed=5, corrupt=1.0))
    payload = bytes(range(64))
    damaged = engine.corrupt_payload(payload, 0, "q", 1, 1)
    assert damaged != payload
    assert len(damaged) == len(payload)
    assert damaged == engine.corrupt_payload(payload, 0, "q", 1, 1)
    # A different attempt damages different bits (new draw address).
    assert damaged != engine.corrupt_payload(payload, 0, "q", 1, 2)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


def test_circuit_breaker_state_machine():
    b = CircuitBreaker(threshold=3, cooldown=2)
    assert b.state == "closed" and b.allows()
    b.on_failure(); b.on_failure()
    assert b.state == "closed"
    b.on_failure()  # threshold reached
    assert b.state == "open" and b.opens == 1
    assert not b.allows()  # cooldown call 1
    assert not b.allows()  # cooldown call 2
    assert b.state == "half_open"
    assert b.allows()  # the trial call
    b.on_failure()  # trial fails -> re-open
    assert b.state == "open" and b.opens == 2
    assert not b.allows(); assert not b.allows()
    assert b.allows()
    b.on_success()  # trial succeeds -> closed
    assert b.state == "closed" and b.consecutive_failures == 0


def test_breaker_fail_fast_then_half_open_recovery():
    config = _config("breaker")
    # Kill the first three attempts at epoch 1: the breaker (threshold
    # 3) opens mid-call, the next two calls fail fast, the half-open
    # trial succeeds and closes it.
    plan = ChaosPlan(events=tuple(
        ChaosEvent(epoch=1, attempt=k, kind=KILL) for k in (1, 2, 3)
    ))

    async def main():
        truth = (await _truth(config, 1))[0]
        pool = SupervisedShardPool(0, supervision=FAST, chaos=plan)
        with pytest.raises(EpochComputeFailed) as exc_info:
            await pool.compute(config, 1)
        assert exc_info.value.attempts == 3  # breaker cut the 4th attempt
        for _ in range(2):
            with pytest.raises(ShardUnavailableError):
                await pool.compute(config, 1)
        result = await pool.compute(config, 1)  # half-open trial
        assert result["delta"] == truth["delta"]
        status = pool.status()[0]
        assert status["breaker"] == "closed"
        assert status["breaker_opens"] == 1
        assert status["breaker_fast_fails"] == 2
        assert status["crashes"] == 3
        pool.close()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Injected failures recover byte-identically
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", [KILL, DROP, CORRUPT])
def test_injected_failure_recovers_byte_identically(kind):
    config = _config(f"inj-{kind}")
    plan = ChaosPlan(events=(ChaosEvent(epoch=2, attempt=1, kind=kind),))

    async def main():
        truth = await _truth(config, 3)
        pool = SupervisedShardPool(0, supervision=FAST, chaos=plan)
        for e in range(1, 4):
            result = await pool.compute(config, e)
            assert result["delta"] == truth[e - 1]["delta"]
            assert result["records"] == truth[e - 1]["records"]
            assert result["sink"] == truth[e - 1]["sink"]
        status = pool.status()[0]
        assert status["retries"] == 1
        assert status["recoveries"] == 1
        pool.close()

    asyncio.run(main())


@pytest.mark.deadline(60)
def test_injected_hang_blows_deadline_then_recovers():
    config = _config("inj-hang")
    plan = ChaosPlan(events=(ChaosEvent(epoch=1, attempt=1, kind=HANG),))

    async def main():
        truth = (await _truth(config, 1))[0]
        pool = SupervisedShardPool(1, supervision=FAST, chaos=plan)
        result = await pool.compute(config, 1)
        assert result["delta"] == truth["delta"]
        status = pool.status()[0]
        assert status["hangs"] == 1 and status["restarts"] == 1
        pool.close()

    asyncio.run(main())


@pytest.mark.deadline(60)
def test_worker_kill_mid_run_recovers_byte_identically():
    """A real SIGKILL of a live shard process: the supervisor detects
    the broken pool, respawns, and the rebuilt worker fast-forwards to
    the exact pre-failure state."""
    config = _config("warmkill")
    plan = ChaosPlan(events=(ChaosEvent(epoch=3, attempt=1, kind=KILL),))

    async def main():
        truth = await _truth(config, 4)
        pool = SupervisedShardPool(1, supervision=FAST, chaos=plan)
        for e in range(1, 5):
            result = await pool.compute(config, e)
            assert result["delta"] == truth[e - 1]["delta"]
        status = pool.status()[0]
        assert status["crashes"] == 1
        assert status["restarts"] == 1
        assert status["recoveries"] == 1
        pool.close()

    asyncio.run(main())


@pytest.mark.deadline(60)
def test_genuine_hang_detected_by_deadline():
    """A non-injected hang: the single worker is genuinely busy, the
    request blows the compute deadline, and supervision recovers."""
    config = _config("realhang")

    async def main():
        pool = SupervisedShardPool(1, supervision=FAST)
        sup = pool.supervisors[0]
        truth = (await _truth(config, 1))[0]
        # Wedge the worker: the next compute waits behind a 5 s sleep
        # on a 0.5 s deadline.
        sup.executor().submit(wedge, 5.0)
        result = await pool.compute(config, 1)
        assert result["delta"] == truth["delta"]
        assert sup.health.hangs >= 1
        assert sup.health.restarts >= 1
        pool.close()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Heartbeat probes
# ----------------------------------------------------------------------


def test_ping_answers_with_pid():
    assert isinstance(ping(), int) and ping() > 0


@pytest.mark.deadline(60)
def test_probe_detects_wedged_worker_and_ensure_healthy_heals():
    async def main():
        pool = SupervisedShardPool(1, supervision=FAST)
        sup = pool.supervisors[0]
        assert await sup.probe()  # fresh shard answers
        sup.executor().submit(wedge, 5.0)
        assert not await sup.probe()  # stuck behind the wedge
        assert await sup.ensure_healthy()  # kill + respawn + re-probe
        assert sup.health.restarts >= 1
        assert (await pool.probe_all()) == [True]
        pool.close()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Shutdown can never hang (the PR's close-regression satellite)
# ----------------------------------------------------------------------


@pytest.mark.deadline(30)
def test_shard_pool_close_kills_wedged_worker():
    """Regression: ``close()`` used to ``shutdown(wait=True)``, hanging
    forever behind a wedged worker.  Now stragglers are killed."""
    pool = ShardPool(n_shards=1)
    pool._pools[0].submit(wedge, 60.0)
    time.sleep(0.2)  # let the worker pick the task up
    t0 = time.monotonic()
    pool.close(timeout=1.0)
    assert time.monotonic() - t0 < 10.0
    pool.close(timeout=1.0)  # idempotent


@pytest.mark.deadline(30)
def test_supervised_pool_close_kills_wedged_worker():
    pool = SupervisedShardPool(1, supervision=FAST)
    pool.supervisors[0].executor().submit(wedge, 60.0)
    time.sleep(0.2)
    t0 = time.monotonic()
    pool.close(timeout=1.0)
    assert time.monotonic() - t0 < 10.0
    pool.close(timeout=1.0)


@pytest.mark.deadline(30)
def test_service_stop_never_hangs_on_wedged_shard():
    config = _config("stopwedge")

    async def main():
        service = MapService([config], n_shards=1, supervision=FAST)
        await service.session("stopwedge").advance()
        service.pool.supervisors[0].executor().submit(wedge, 60.0)
        await asyncio.sleep(0.2)
        t0 = time.monotonic()
        await service.stop(drain=True)
        assert time.monotonic() - t0 < 10.0

    asyncio.run(main())


# ----------------------------------------------------------------------
# Service-level degradation: stale snapshots, health report
# ----------------------------------------------------------------------


def test_snapshot_goes_stale_while_degraded_then_live_again():
    config = _config("stale")
    # Every attempt at epoch 2 drops (max_attempts 4 < 5 events): the
    # advance fails, the session degrades, and snapshot() serves the
    # retained epoch-1 payload tagged stale.
    plan = ChaosPlan(events=tuple(
        ChaosEvent(epoch=2, attempt=k, kind=DROP) for k in range(1, 5)
    ))
    scfg = SupervisorConfig(
        compute_timeout=0.5, backoff_base=0.002, backoff_cap=0.01,
        breaker_threshold=10,  # keep the breaker out of this test
    )

    async def main():
        service = MapService([config], supervision=scfg, chaos=plan)
        session = service.session("stale")
        await session.advance()
        live = service.snapshot("stale")
        assert live.kind == "snapshot" and not live.stale

        with pytest.raises(EpochComputeFailed):
            await session.advance()
        assert session.degraded
        degraded = service.snapshot("stale")
        assert degraded.kind == "snapshot_stale" and degraded.stale
        assert degraded.epoch == 1
        assert degraded.payload == live.payload  # last retained epoch

        health = service.health()
        assert health["sessions"]["stale"]["degraded"]
        assert health["sessions"]["stale"]["epochs_failed"] == 1
        assert health["sessions"]["stale"]["stale_snapshots"] == 1
        assert health["chaos"]["drops"] == 4

        # The cursor moved past the events: the retry succeeds and the
        # session serves live answers again.
        await session.advance()
        assert not session.degraded
        recovered = service.snapshot("stale")
        assert recovered.kind == "snapshot" and recovered.epoch == 2
        assert session.stats.degraded_s > 0
        await service.stop()

    asyncio.run(main())


def test_health_report_shape():
    config = _config("health")

    async def main():
        service = MapService([config])
        await service.session("health").advance()
        health = service.health()
        assert [s["shard"] for s in health["shards"]] == [0]
        assert health["shards"][0]["computes"] == 1
        entry = health["sessions"]["health"]
        assert entry == {
            "latest_epoch": 1,
            "degraded": False,
            "failed": False,
            "epochs_failed": 0,
            "stale_snapshots": 0,
            "subscribers": 0,
        }
        assert "chaos" not in health  # no plan plugged in
        await service.stop()

    asyncio.run(main())


def test_supervisor_config_validation():
    with pytest.raises(ValueError):
        SupervisorConfig(compute_timeout=0)
    with pytest.raises(ValueError):
        SupervisorConfig(max_attempts=0)
    with pytest.raises(ValueError):
        SupervisorConfig(breaker_threshold=0)
    with pytest.raises(ValueError):
        SupervisedShardPool(-1)
