"""Legacy setup shim.

The evaluation environment has no network access and no ``wheel`` package,
so PEP 517/660 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the classic
``setup.py develop`` code path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
