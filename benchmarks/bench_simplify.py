"""Benchmark of the SIMPLIFIED serving stream -> ``BENCH_simplify.json``.

Two sections:

- ``kernels``: the simplifier pair (scalar reference vs vectorized
  Douglas-Peucker, open polyline and closed ring) -- asserted
  **bit-identical** before anything is timed, the PR-1/PR-3 pairing
  convention;
- ``serving``: the steady harbor session run end to end with the
  SIMPLIFIED stream enabled -- cumulative delta bytes a plain vs a
  simplified subscriber receives, final snapshot sizes, the record
  selection wall-clock, and the **measured** Hausdorff deviation (max
  record distance to the retained span of its chain, in field units and
  50-raster grid cells).

The committed full section is the PR's acceptance record: on the steady
scenario at tolerance 1.0 the byte ratio clears **5x** with the
deviation inside **one grid cell**.

Usage::

    python benchmarks/bench_simplify.py               # full + quick, writes BENCH_simplify.json
    python benchmarks/bench_simplify.py --quick       # CI smoke sizes only, no write
    python benchmarks/bench_simplify.py --quick --check BENCH_simplify.json
                                                      # regression gate (CI)

``--check`` fails (exit 1) when a kernel runs at less than half its
committed speedup, when the byte ratio falls below 90% of the committed
ratio, when the measured deviation exceeds the tolerance (the hard
guarantee), or when the committed *full* section no longer meets the
acceptance bar (ratio >= 5x at <= 1 grid cell).
"""

from __future__ import annotations

import argparse
import math
import pathlib
import random
import sys
from typing import Any, Dict, List, Optional

_HERE = pathlib.Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(_SRC))
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

import record

from repro.geometry.simplify import (
    simplify_polyline,
    simplify_polyline_reference,
    simplify_ring,
    simplify_ring_reference,
)
from repro.serving.session import SessionCompute, SessionConfig
from repro.serving.wire import (
    encode_snapshot,
    select_simplified_records,
    simplified_selection_stats,
)

BENCH_JSON = _HERE.parent / "BENCH_simplify.json"

#: Serving density of the committed acceptance numbers (record reduction
#: grows with node density; 5000 nodes on the 50x50 harbor clears 5x).
FULL_NODES = 5000
QUICK_NODES = 2500  # the paper's density-1 deployment; CI-sized epochs

TOLERANCE = 1.0  # field units; one 50-raster grid cell on the harbor
RASTER = 50


# ----------------------------------------------------------------------
# Kernel workloads (deterministic)
# ----------------------------------------------------------------------


def _wiggly_polyline(n: int, seed: int = 5) -> List:
    rng = random.Random(seed)
    pts = []
    for k in range(n):
        x = 100.0 * k / n
        pts.append((x, 10.0 * math.sin(0.3 * x) + rng.uniform(-0.4, 0.4)))
    return pts


def _noisy_ring(n: int, seed: int = 7) -> List:
    """A 4-lobed ring with sub-tolerance noise: realistic dense isoline
    sampling where DP actually drops vertices (spans long enough for the
    vectorized distance pass to pay off)."""
    rng = random.Random(seed)
    pts = []
    for k in range(n):
        th = 2.0 * math.pi * k / n
        r = 30.0 + 6.0 * math.sin(4.0 * th) + rng.uniform(-0.2, 0.2)
        pts.append((50.0 + r * math.cos(th), 50.0 + r * math.sin(th)))
    return pts


def measure_kernels(quick: bool) -> Dict[str, Dict]:
    line_n = 2000 if quick else 20000
    ring_n = 4000 if quick else 10000
    reps = 3 if quick else 5

    kernels: Dict[str, Dict] = {}

    line = _wiggly_polyline(line_n)
    assert simplify_polyline(line, 0.5) == simplify_polyline_reference(line, 0.5)
    kernels["simplify_polyline"] = record.kernel_entry(
        "simplify_polyline_reference (scalar per-vertex distance loop)",
        "simplify_polyline (per-span NumPy distance pass)",
        record.best_of(lambda: simplify_polyline_reference(line, 0.5), reps),
        record.best_of(lambda: simplify_polyline(line, 0.5), reps + 2),
    )

    ring = _noisy_ring(ring_n)
    assert simplify_ring(ring, 0.5) == simplify_ring_reference(ring, 0.5)
    kernels["simplify_ring"] = record.kernel_entry(
        "simplify_ring_reference (scalar arcs at the ring anchors)",
        "simplify_ring (vectorized arcs, same split)",
        record.best_of(lambda: simplify_ring_reference(ring, 0.5), reps),
        record.best_of(lambda: simplify_ring(ring, 0.5), reps + 2),
    )
    return kernels


# ----------------------------------------------------------------------
# Serving section
# ----------------------------------------------------------------------


def measure_serving(n_nodes: int, epochs: int, quick: bool) -> Dict[str, Any]:
    """Run the steady harbor session with both streams and measure."""
    config = SessionConfig(
        query_id="bench-simplify",
        n_nodes=n_nodes,
        seed=1,
        field="harbor",
        scenario="steady",
        value_lo=6.0,
        value_hi=12.0,
        granularity=2.0,
        epsilon_fraction=0.05,
        radio_range=1.5,
        simplify_tolerance=TOLERANCE,
    )
    compute = SessionCompute(config)
    bytes_plain = bytes_simplified = 0
    out: Dict[str, Any] = {}
    for epoch in range(1, epochs + 1):
        out = compute.epoch(epoch)
        bytes_plain += len(out["delta"])
        bytes_simplified += len(out["s_delta"])
    state = out["records"]
    dequantize = compute.codec.dequantize_position
    stats = simplified_selection_stats(state, dequantize, TOLERANCE)
    kept = select_simplified_records(state, dequantize, TOLERANCE)
    assert stats["max_deviation"] <= TOLERANCE, (
        "tolerance guarantee violated: "
        f"{stats['max_deviation']} > {TOLERANCE}"
    )
    select_ms = record.best_of(
        lambda: select_simplified_records(state, dequantize, TOLERANCE),
        3 if quick else 5,
    )
    cell = 50.0 / RASTER  # harbor field is 50x50
    return {
        "scenario": "steady",
        "n_nodes": n_nodes,
        "epochs": epochs,
        "tolerance": TOLERANCE,
        "records_full": stats["records_full"],
        "records_kept": len(kept),
        "delta_bytes_plain": bytes_plain,
        "delta_bytes_simplified": bytes_simplified,
        "bytes_ratio": round(bytes_plain / bytes_simplified, 2),
        "snapshot_bytes_plain": len(
            encode_snapshot(epochs, out["records"], out["sink"])
        ),
        "snapshot_bytes_simplified": len(
            encode_snapshot(epochs, out["s_records"], out["sink"])
        ),
        "hausdorff_dev": round(stats["max_deviation"], 4),
        "hausdorff_cells": round(stats["max_deviation"] / cell, 4),
        "select_ms": round(select_ms, 3),
    }


def format_serving(s: Dict[str, Any]) -> str:
    return (
        f"serving (steady harbor, n={s['n_nodes']}, {s['epochs']} epochs, "
        f"tol={s['tolerance']}):\n"
        f"  records            : {s['records_full']} -> {s['records_kept']}\n"
        f"  delta bytes/sub    : {s['delta_bytes_plain']} -> "
        f"{s['delta_bytes_simplified']}  ({s['bytes_ratio']}x)\n"
        f"  snapshot bytes     : {s['snapshot_bytes_plain']} -> "
        f"{s['snapshot_bytes_simplified']}\n"
        f"  hausdorff deviation: {s['hausdorff_dev']} units "
        f"({s['hausdorff_cells']} grid cells, guarantee <= {s['tolerance']})\n"
        f"  selection wall     : {s['select_ms']} ms"
    )


# ----------------------------------------------------------------------
# Check mode
# ----------------------------------------------------------------------


def check_against(
    committed: Optional[Dict],
    kernels: Dict[str, Dict],
    serving: Dict[str, Any],
    quick: bool,
) -> List[str]:
    """Regression messages (empty = pass)."""
    if committed is None:
        return ["no committed report to check against"]
    problems: List[str] = []

    section = committed.get("quick", {}) if quick else committed
    baseline_k = section.get("kernels", {})
    for name, entry in kernels.items():
        if name not in baseline_k:
            problems.append(f"{name}: missing from committed report")
            continue
        floor = baseline_k[name]["speedup"] / 2.0
        if entry["speedup"] < floor:
            problems.append(
                f"{name}: measured {entry['speedup']:.2f}x < floor {floor:.2f}x "
                f"(committed {baseline_k[name]['speedup']:.2f}x)"
            )

    baseline_s = section.get("serving")
    if baseline_s is None:
        problems.append("serving: missing from committed report")
    else:
        floor = 0.9 * baseline_s["bytes_ratio"]
        if serving["bytes_ratio"] < floor:
            problems.append(
                f"serving: byte ratio {serving['bytes_ratio']}x < floor "
                f"{floor:.2f}x (committed {baseline_s['bytes_ratio']}x)"
            )
    if serving["hausdorff_dev"] > serving["tolerance"]:
        problems.append(
            f"serving: measured deviation {serving['hausdorff_dev']} exceeds "
            f"tolerance {serving['tolerance']} (guarantee violated)"
        )

    # The acceptance record lives in the committed FULL section; keep it
    # honest even when only quick sizes were measured.
    full_s = committed.get("serving")
    if full_s is None:
        problems.append("committed report has no full serving section")
    elif full_s["bytes_ratio"] < 5.0 or full_s["hausdorff_cells"] > 1.0:
        problems.append(
            "committed full section fails the acceptance bar: "
            f"{full_s['bytes_ratio']}x at {full_s['hausdorff_cells']} cells "
            "(needs >= 5x at <= 1 cell)"
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke sizes only; does not write the report")
    ap.add_argument("--check", metavar="PATH", default=None,
                    help="compare against a committed report; exit 1 on "
                    "kernel/byte-ratio regression or a tolerance violation")
    args = ap.parse_args(argv)

    if args.quick:
        print(f"measuring quick sizes (n={QUICK_NODES}) ...")
        kernels = measure_kernels(quick=True)
        serving = measure_serving(QUICK_NODES, epochs=3, quick=True)
        print(record.format_kernels(kernels))
        print(format_serving(serving))
        rep = None
    else:
        print(f"measuring full sizes (n={FULL_NODES}) ...")
        kernels = measure_kernels(quick=False)
        serving = measure_serving(FULL_NODES, epochs=6, quick=False)
        print(record.format_kernels(kernels))
        print(format_serving(serving))
        print(f"\nmeasuring quick sizes (n={QUICK_NODES}) ...")
        quick_kernels = measure_kernels(quick=True)
        quick_serving = measure_serving(QUICK_NODES, epochs=3, quick=True)
        print(record.format_kernels(quick_kernels))
        print(format_serving(quick_serving))
        rep = record.report(
            FULL_NODES,
            kernels,
            serving=serving,
            quick={
                "n": QUICK_NODES,
                "kernels": quick_kernels,
                "serving": quick_serving,
            },
        )

    if args.check:
        problems = check_against(
            record.load_report(pathlib.Path(args.check)),
            kernels, serving, args.quick,
        )
        if problems:
            print("\nregression vs committed report:")
            for p in problems:
                print(f"  {p}")
            return 1
        print(f"\nno regression vs {args.check}")
    elif rep is not None:
        record.write_report(BENCH_JSON, rep)
        print(f"\nwrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
