"""Benchmark of the slot-batched collection transport -> ``BENCH_transport.json``.

Times the batched level-at-a-time transport kernel against the retained
per-frame scalar walk (``batched=False``), plus the vectorized topology
construction against its scalar reference:

- ``epoch_moderate_faults``  one full collection epoch (one report per
                             sensing node forwarded to the sink) under
                             ``FaultPlan.moderate()`` -- ARQ, CRC, dedup
                             and re-parenting all exercised.  This is the
                             headline: the batched kernel is pinned
                             bit-identical to the scalar walk by the
                             differential suite and re-verified here
                             before anything is timed.
- ``tree_build``             CSR frontier-array BFS + segmented parent
                             argmin vs the scalar FIFO-BFS reference.

An extra ``large_n`` section records the absolute wall clock of one
moderate-fault epoch at n = 40000 (the large-n feasibility point the
scaling experiments rely on).

Usage::

    python benchmarks/bench_transport.py             # full + quick, writes BENCH_transport.json
    python benchmarks/bench_transport.py --quick     # CI smoke sizes only, no write
    python benchmarks/bench_transport.py --quick --check BENCH_transport.json
                                                     # fail if a kernel regressed >2x

``--check`` compares each measured speedup against the committed report
(the ``quick`` section when ``--quick`` is given) and exits 1 if any
kernel runs at less than half its committed speedup.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys
import time
from typing import Dict, List, Optional

_HERE = pathlib.Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(_SRC))
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

import numpy as np

import record

from repro.baselines.base import forward_reports_to_sink
from repro.core.wire import VALUE_REPORT_BYTES
from repro.field import make_harbor_field
from repro.network import CostAccountant, SensorNetwork
from repro.network.faults import FaultPlan
from repro.network.routing_tree import (
    build_routing_tree,
    build_routing_tree_reference,
)
from repro.network.transport import EpochTransport, TransportConfig

BENCH_JSON = _HERE.parent / "BENCH_transport.json"

#: Headline size: the paper's density-1 operating point.
FULL_N = 2500

#: Large-n feasibility point (side 200 at density 1).
LARGE_N = 40000


def _network(n: int, seed: int = 1) -> SensorNetwork:
    side = round(n**0.5)
    field = make_harbor_field(side=side)
    return SensorNetwork.random_deploy(field, n, radio_range=1.5, seed=seed)


def _run_epoch(net: SensorNetwork, batched: bool, seed: int = 3):
    """One collection epoch under the moderate plan; returns the evidence
    tuple the bit-identity check compares."""
    costs = CostAccountant(net.n_nodes)
    transport = EpochTransport(
        net,
        costs,
        config=dataclasses.replace(TransportConfig.hardened(), batched=batched),
        plan=FaultPlan.moderate(seed=seed),
    )
    sources = [
        node.node_id
        for node in net.nodes
        if node.can_sense and node.level is not None
    ]
    delivered = forward_reports_to_sink(
        net, sources, VALUE_REPORT_BYTES, costs, transport=transport
    )
    degradation = transport.finalize()
    return delivered, costs, degradation


def _verify_epoch(net: SensorNetwork) -> None:
    """Assert the batched epoch is bit-identical to the scalar walk."""
    d_fast, c_fast, g_fast = _run_epoch(net, batched=True)
    d_ref, c_ref, g_ref = _run_epoch(net, batched=False)
    assert d_fast == d_ref
    assert np.array_equal(c_fast.tx_bytes, c_ref.tx_bytes)
    assert np.array_equal(c_fast.rx_bytes, c_ref.rx_bytes)
    assert np.array_equal(c_fast.ops, c_ref.ops)
    assert dataclasses.asdict(g_fast) == dataclasses.asdict(g_ref)


def _verify_tree(net: SensorNetwork) -> None:
    positions = [node.position for node in net.nodes]
    fast = build_routing_tree(positions, net.csr, net.sink_index)
    ref = build_routing_tree_reference(positions, net.neighbor_lists, net.sink_index)
    assert fast.level == ref.level
    assert fast.parent == ref.parent
    assert fast.children == ref.children


def measure(n: int, quick: bool) -> Dict[str, Dict]:
    """Measure both kernels at size ``n`` (verifying bit-identity first)."""
    repeats = 2 if quick else 3
    net = _network(n)
    kernels: Dict[str, Dict] = {}

    _verify_epoch(net)
    fast_ms = record.best_of(lambda: _run_epoch(net, batched=True), repeats)
    ref_ms = record.best_of(lambda: _run_epoch(net, batched=False), repeats)
    kernels["epoch_moderate_faults"] = record.kernel_entry(
        "per-frame scalar walk (batched=False)",
        "slot-batched level kernel (frame_draws_batch + charge_*_batch)",
        ref_ms,
        fast_ms,
    )

    _verify_tree(net)
    positions = [node.position for node in net.nodes]
    fast_ms = record.best_of(
        lambda: build_routing_tree(positions, net.csr, net.sink_index), repeats
    )
    ref_ms = record.best_of(
        lambda: build_routing_tree_reference(
            positions, net.neighbor_lists, net.sink_index
        ),
        repeats,
    )
    kernels["tree_build"] = record.kernel_entry(
        "scalar FIFO-BFS + per-node parent scan",
        "CSR frontier-array BFS + segmented parent argmin",
        ref_ms,
        fast_ms,
    )
    return kernels


def measure_large_n() -> Dict[str, float]:
    """Absolute feasibility: one moderate-fault epoch at n = 40000."""
    t0 = time.perf_counter()
    net = _network(LARGE_N)
    build_ms = (time.perf_counter() - t0) * 1e3
    t0 = time.perf_counter()
    _run_epoch(net, batched=True)
    epoch_ms = (time.perf_counter() - t0) * 1e3
    return {
        "n": LARGE_N,
        "topology_build_ms": round(build_ms, 1),
        "epoch_ms": round(epoch_ms, 1),
        "peak_rss_mb": round(record.peak_rss_mb(), 1),
    }


def check_against(
    committed: Optional[Dict], measured: Dict[str, Dict], quick: bool
) -> List[str]:
    """Regression messages (empty = pass): any kernel at < committed/2."""
    if committed is None:
        return ["no committed report to check against"]
    section = committed.get("quick", {}) if quick else committed
    baseline = section.get("kernels", {})
    problems = []
    for name, entry in measured.items():
        if name not in baseline:
            problems.append(f"{name}: missing from committed report")
            continue
        floor = baseline[name]["speedup"] / 2.0
        if entry["speedup"] < floor:
            problems.append(
                f"{name}: measured {entry['speedup']:.2f}x < floor {floor:.2f}x "
                f"(committed {baseline[name]['speedup']:.2f}x)"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke sizes only; does not write the report")
    ap.add_argument("--check", metavar="PATH", default=None,
                    help="compare against a committed report; exit 1 if any "
                    "kernel runs at < half its committed speedup")
    args = ap.parse_args(argv)

    quick_n = 400
    if args.quick:
        print(f"measuring quick sizes (n={quick_n}) ...")
        quick_kernels = measure(quick_n, quick=True)
        print(record.format_kernels(quick_kernels))
        measured, rep = quick_kernels, None
    else:
        print(f"measuring full sizes (n={FULL_N}) ...")
        full_kernels = measure(FULL_N, quick=False)
        print(record.format_kernels(full_kernels))
        print(f"\nmeasuring quick sizes (n={quick_n}) ...")
        quick_kernels = measure(quick_n, quick=True)
        print(record.format_kernels(quick_kernels))
        print(f"\nmeasuring large-n feasibility (n={LARGE_N}) ...")
        large = measure_large_n()
        print(
            f"n={large['n']}: topology {large['topology_build_ms']:.0f} ms, "
            f"moderate-fault epoch {large['epoch_ms']:.0f} ms"
        )
        rep = record.report(
            FULL_N,
            full_kernels,
            quick={"n": quick_n, "kernels": quick_kernels},
            large_n=large,
        )
        measured = full_kernels

    if args.check:
        problems = check_against(
            record.load_report(pathlib.Path(args.check)), measured, args.quick
        )
        if problems:
            print("\nspeedup regression vs committed report:")
            for p in problems:
                print(f"  {p}")
            return 1
        print(f"\nno kernel regressed vs {args.check}")
    elif rep is not None:
        record.write_report(BENCH_JSON, rep)
        print(f"\nwrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
