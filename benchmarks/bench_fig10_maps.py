"""Fig. 10 bench: contour maps at normalised densities 4 / 1 / 0.16.

Paper claims: Iso-Map's delivered reports stay in the tens-to-hundred
range (112/89/49) while TinyDB delivers every node's reading; both
protocols degrade as density falls but produce usable maps at density 1+.
"""

from repro.experiments.fig10_maps import run_fig10


def test_fig10_maps(benchmark, record_result):
    result = benchmark.pedantic(lambda: run_fig10(seed=1), rounds=1, iterations=1)
    record_result(result)

    by_key = {(r["protocol"], r["density"]): r for r in result.rows}
    # TinyDB delivers one report per node; Iso-Map a small fraction.
    for density in (4.0, 1.0):
        iso = by_key[("iso-map", density)]
        tdb = by_key[("tinydb", density)]
        assert iso["reports_at_sink"] < 0.1 * tdb["reports_at_sink"]
        # Paper's regime: tens to a couple hundred isoline reports.
        assert 20 <= iso["reports_at_sink"] <= 300
        # Comparable fidelity, TinyDB slightly ahead.
        assert iso["accuracy"] > 0.85
        assert tdb["accuracy"] >= iso["accuracy"] - 0.02
    # Accuracy degrades with density for Iso-Map.
    assert (
        by_key[("iso-map", 0.16)]["accuracy"]
        < by_key[("iso-map", 1.0)]["accuracy"]
    )
