"""Fig. 7 bench: gradient-direction error vs average node degree.

Paper claim: the error drops rapidly as the degree grows and is within
~5 degrees once the average degree reaches the connectivity regime
(>= 7, the paper's radio-range-1.5 operating point).
"""

from repro.experiments.fig07_gradient_error import run_fig07


def test_fig07_gradient_error(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig07(n=2500, seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)

    degrees = result.column("avg_degree")
    errors = result.column("mean_err_deg")
    # Enough of the sweep produced reports to judge the shape.
    assert len(errors) >= 4
    # Error falls as degree grows (compare the sparse end to the dense end).
    assert errors[-1] < errors[1]
    # At the paper's operating regime (degree ~7+) the error is small.
    for deg, err in zip(degrees, errors):
        if deg >= 9:
            assert err < 12.0
