"""Performance microbenchmarks of the hot kernels.

Unlike the figure benches (single-shot experiment regenerations), these
time the computational kernels properly (multiple rounds) so performance
regressions in the geometry/reconstruction/simulation code are visible.
"""

import math
import random

import pytest

from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.core.reconstruction import build_level_region
from repro.core.reports import IsolineReport
from repro.field import extract_isolines, make_harbor_field
from repro.geometry import BoundingBox, bounded_voronoi
from repro.network import SensorNetwork, build_adjacency


@pytest.fixture(scope="module")
def harbor_net():
    return SensorNetwork.random_deploy(make_harbor_field(), 2500, seed=1)


def _ring_reports(n, seed=0):
    rng = random.Random(seed)
    out = []
    for k in range(n):
        t = 2 * math.pi * k / n + rng.uniform(-0.1, 0.1)
        r = 15 + rng.uniform(-2, 2)
        p = (25 + r * math.cos(t), 25 + r * math.sin(t))
        out.append(IsolineReport(8.0, p, (math.cos(t), math.sin(t)), k))
    return out


def test_kernel_voronoi_100_sites(benchmark):
    rng = random.Random(1)
    sites = [(rng.uniform(1, 49), rng.uniform(1, 49)) for _ in range(100)]
    box = BoundingBox(0, 0, 50, 50)
    cells = benchmark(bounded_voronoi, sites, box)
    assert len(cells) == 100


def test_kernel_level_reconstruction_60_reports(benchmark):
    reports = _ring_reports(60)
    box = BoundingBox(0, 0, 50, 50)
    region = benchmark(build_level_region, 8.0, reports, box)
    assert region.loops


def test_kernel_adjacency_2500_nodes(benchmark):
    rng = random.Random(2)
    pts = [(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(2500)]
    adj = benchmark(build_adjacency, pts, 1.5)
    assert len(adj) == 2500


def test_kernel_full_protocol_2500(benchmark, harbor_net):
    query = ContourQuery(6.0, 12.0, 2.0)
    proto = IsoMapProtocol(query, FilterConfig(30.0, 4.0))
    result = benchmark(proto.run, harbor_net)
    assert result.delivered_reports


def test_kernel_marching_squares_200(benchmark):
    field = make_harbor_field()
    lines = benchmark(extract_isolines, field, 8.0, 200, 200)
    assert lines


def test_kernel_raster_classification(benchmark, harbor_net):
    query = ContourQuery(6.0, 12.0, 2.0)
    result = IsoMapProtocol(query, FilterConfig(30.0, 4.0)).run(harbor_net)
    raster = benchmark(result.contour_map.classify_raster, 100, 100)
    assert raster.shape == (100, 100)
