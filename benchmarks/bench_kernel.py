"""Performance microbenchmarks of the hot kernels.

Unlike the figure benches (single-shot experiment regenerations), these
time the computational kernels properly (multiple rounds) so performance
regressions in the geometry/reconstruction/simulation code are visible.

The ``*_vs_reference`` section times the vectorized kernels against the
pure-Python originals they replaced (and are bit-compatible with) and
writes the measured speedups to ``BENCH_kernels.json`` at the repo root.
"""

import math
import pathlib
import random

import numpy as np
import pytest

import record

from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.core.gradient import estimate_gradient, estimate_gradients_batch
from repro.core.reconstruction import build_level_region
from repro.core.reports import IsolineReport
from repro.field import extract_isolines, make_harbor_field
from repro.geometry import BoundingBox, bounded_voronoi
from repro.network import (
    SensorNetwork,
    build_adjacency,
    build_adjacency_reference,
    build_csr_adjacency,
)
from repro.network.topology import k_hop_neighbors

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_kernels.json"


@pytest.fixture(scope="module")
def harbor_net():
    return SensorNetwork.random_deploy(make_harbor_field(), 2500, seed=1)


def _ring_reports(n, seed=0):
    rng = random.Random(seed)
    out = []
    for k in range(n):
        t = 2 * math.pi * k / n + rng.uniform(-0.1, 0.1)
        r = 15 + rng.uniform(-2, 2)
        p = (25 + r * math.cos(t), 25 + r * math.sin(t))
        out.append(IsolineReport(8.0, p, (math.cos(t), math.sin(t)), k))
    return out


def test_kernel_voronoi_100_sites(benchmark):
    rng = random.Random(1)
    sites = [(rng.uniform(1, 49), rng.uniform(1, 49)) for _ in range(100)]
    box = BoundingBox(0, 0, 50, 50)
    cells = benchmark(bounded_voronoi, sites, box)
    assert len(cells) == 100


def test_kernel_level_reconstruction_60_reports(benchmark):
    reports = _ring_reports(60)
    box = BoundingBox(0, 0, 50, 50)
    region = benchmark(build_level_region, 8.0, reports, box)
    assert region.loops


def test_kernel_adjacency_2500_nodes(benchmark):
    rng = random.Random(2)
    pts = [(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(2500)]
    adj = benchmark(build_adjacency, pts, 1.5)
    assert len(adj) == 2500


def test_kernel_full_protocol_2500(benchmark, harbor_net):
    query = ContourQuery(6.0, 12.0, 2.0)
    proto = IsoMapProtocol(query, FilterConfig(30.0, 4.0))
    result = benchmark(proto.run, harbor_net)
    assert result.delivered_reports


def test_kernel_marching_squares_200(benchmark):
    field = make_harbor_field()
    lines = benchmark(extract_isolines, field, 8.0, 200, 200)
    assert lines


def test_kernel_raster_classification(benchmark, harbor_net):
    query = ContourQuery(6.0, 12.0, 2.0)
    result = IsoMapProtocol(query, FilterConfig(30.0, 4.0)).run(harbor_net)
    raster = benchmark(result.contour_map.classify_raster, 100, 100)
    assert raster.shape == (100, 100)


# ----------------------------------------------------------------------
# Vectorized kernels vs their pure-Python reference implementations
# ----------------------------------------------------------------------

#: Node count for the before/after comparison (the paper's density-1
#: operating point on the 50 x 50 field).
BENCH_N = 2500


def _bench_positions(n=BENCH_N, seed=2):
    rng = random.Random(seed)
    return [(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(n)]


def _bench_gradient_tasks(n=BENCH_N, seed=7, degree=8):
    rng = random.Random(seed)
    tasks = []
    for _ in range(n):
        cx, cy, cv = rng.uniform(0, 50), rng.uniform(0, 50), rng.uniform(0, 30)
        nbrs = [
            ((cx + rng.uniform(-1.5, 1.5), cy + rng.uniform(-1.5, 1.5)),
             rng.uniform(0, 30))
            for _ in range(degree)
        ]
        tasks.append(((cx, cy), cv, nbrs))
    return tasks


def test_kernel_adjacency_reference_2500_nodes(benchmark):
    pts = _bench_positions()
    adj = benchmark(build_adjacency_reference, pts, 1.5)
    assert len(adj) == BENCH_N


def test_kernel_csr_adjacency_2500_nodes(benchmark):
    arr = np.asarray(_bench_positions())
    csr = benchmark(build_csr_adjacency, arr, 1.5)
    assert csr.n_nodes == BENCH_N


def test_kernel_gradient_scalar_2500(benchmark):
    tasks = _bench_gradient_tasks()
    out = benchmark(lambda: [estimate_gradient(*t) for t in tasks])
    assert sum(e is not None for e in out) == BENCH_N


def test_kernel_gradient_batch_2500(benchmark):
    tasks = _bench_gradient_tasks()
    out = benchmark(estimate_gradients_batch, tasks)
    assert sum(e is not None for e in out) == BENCH_N


def test_kernel_speedups_vs_reference():
    """Measure before/after speedups and publish ``BENCH_kernels.json``.

    Each vectorized kernel must agree exactly with its reference (the
    differential/property tests pin that; spot-checked here too) and be
    substantially faster at the paper's n=2500 operating point.  The
    in-test floor is deliberately below the typical measured speedup
    (~3-4x) so a loaded CI machine does not flake the suite; the
    committed JSON records the actual measurement.
    """
    pts = _bench_positions()
    arr = np.asarray(pts)
    tasks = _bench_gradient_tasks()

    ref_sets = build_adjacency_reference(pts, 1.5)
    csr = build_csr_adjacency(arr, 1.5)
    assert csr.to_sets() == ref_sets
    assert np.array_equal(
        csr.k_hop_neighbors(0, 2), np.array(sorted(k_hop_neighbors(ref_sets, 0, 2)))
    )
    spot = [100, 1700, 2400]
    batch = estimate_gradients_batch([tasks[i] for i in spot])
    for got, i in zip(batch, spot):
        assert got == estimate_gradient(*tasks[i])

    adj_ref_ms = record.best_of(lambda: build_adjacency_reference(pts, 1.5), repeats=12)
    adj_vec_ms = record.best_of(lambda: build_csr_adjacency(arr, 1.5), repeats=40)
    grad_ref_ms = record.best_of(
        lambda: [estimate_gradient(*t) for t in tasks], repeats=8
    )
    grad_vec_ms = record.best_of(lambda: estimate_gradients_batch(tasks), repeats=20)

    report = record.report(
        BENCH_N,
        {
            "adjacency": record.kernel_entry(
                "build_adjacency_reference (per-node spatial hash)",
                "build_csr_adjacency (bucketed batch pass)",
                adj_ref_ms,
                adj_vec_ms,
            ),
            "gradient_regression": record.kernel_entry(
                "estimate_gradient per node (scalar 3x3 solve)",
                "estimate_gradients_batch (stacked solve)",
                grad_ref_ms,
                grad_vec_ms,
            ),
        },
    )
    record.write_report(BENCH_JSON, report)

    assert adj_ref_ms / adj_vec_ms > 2.0, report
    assert grad_ref_ms / grad_vec_ms > 2.0, report
