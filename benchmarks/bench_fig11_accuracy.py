"""Fig. 11 bench: mapping accuracy vs node density (a) and failures (b).

Paper claims: accuracy of both protocols jumps above 80% as density
grows, with Iso-Map slightly below TinyDB but comparable; a rough border
range (large epsilon) helps at low density and hurts at high density;
accuracy degrades with failures, and more than 40% failures make the
maps unusable relative to their failure-free fidelity.
"""

from repro.experiments.fig11_accuracy import run_fig11a, run_fig11b


def test_fig11a_accuracy_vs_density(benchmark, record_result, sweep_jobs):
    result = benchmark.pedantic(
        lambda: run_fig11a(seeds=(1, 2), jobs=sweep_jobs), rounds=1, iterations=1
    )
    record_result(result)

    rows = {r["density"]: r for r in result.rows}
    # Above-80% regime from moderate density on, for both protocols.
    for density in (0.64, 1.0, 2.0, 4.0):
        assert rows[density]["tinydb"] > 0.8
        assert rows[density]["isomap_eps005"] > 0.8
        # TinyDB slightly ahead but comparable.
        assert rows[density]["tinydb"] >= rows[density]["isomap_eps005"] - 0.02
        assert rows[density]["tinydb"] - rows[density]["isomap_eps005"] < 0.15
    # Epsilon trade-off: rough border helps when sparse, hurts when dense.
    assert rows[0.16]["isomap_eps025"] > rows[0.16]["isomap_eps005"]
    assert rows[4.0]["isomap_eps025"] < rows[4.0]["isomap_eps005"]


def test_fig11b_accuracy_vs_failures(benchmark, record_result, sweep_jobs):
    result = benchmark.pedantic(
        lambda: run_fig11b(seeds=(1, 2), jobs=sweep_jobs), rounds=1, iterations=1
    )
    record_result(result)

    rows = {r["failure_ratio"]: r for r in result.rows}
    # Monotone-ish degradation for both protocols.
    assert rows[0.5]["tinydb"] < rows[0.0]["tinydb"]
    assert rows[0.5]["isomap_eps005"] < rows[0.0]["isomap_eps005"]
    # The rough border region tolerates failures better than the default.
    assert (
        rows[0.4]["isomap_eps025"] - rows[0.4]["isomap_eps005"]
        > rows[0.0]["isomap_eps025"] - rows[0.0]["isomap_eps005"]
    )
