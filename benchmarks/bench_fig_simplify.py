"""fig_simplify bench: SIMPLIFIED-stream fidelity vs bytes to client.

Claims pinned here (CI sizes; the committed 5x acceptance point lives in
``BENCH_simplify.json``, re-measured by ``bench_simplify.py``):

- tolerance 0 is the exact passthrough: identical bytes, zero deviation;
- the byte ratio grows monotonically with the tolerance on every
  scenario (the knob actually trades fidelity for bytes);
- the measured Hausdorff deviation never exceeds the tolerance (the
  simplifier's per-segment guarantee, observed on real served maps).
"""

from repro.experiments.fig_simplify import run_fig_simplify


def test_fig_simplify_fidelity_vs_bytes(benchmark, record_result, sweep_jobs):
    tolerances = (0.0, 0.5, 1.0)
    result = benchmark.pedantic(
        lambda: run_fig_simplify(
            seeds=(1,),
            n=2500,
            epochs=4,
            scenarios=("steady", "storm"),
            tolerances=tolerances,
            jobs=sweep_jobs,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    by_scenario = {}
    for row in result.rows:
        by_scenario.setdefault(row["scenario"], []).append(row)
    assert set(by_scenario) == {"steady", "storm"}
    for scenario, rows in by_scenario.items():
        rows.sort(key=lambda r: r["tolerance"])
        # Tolerance 0 is the byte-identical passthrough.
        assert rows[0]["bytes_ratio"] == 1.0
        assert rows[0]["hausdorff_dev"] == 0.0
        assert rows[0]["records_kept"] == rows[0]["records_full"]
        # More tolerance -> fewer bytes, monotonically.
        ratios = [r["bytes_ratio"] for r in rows]
        assert ratios == sorted(ratios), (scenario, ratios)
        assert ratios[-1] > 2.0, (scenario, ratios)
        # The guarantee holds on every measured point.
        for r in rows:
            assert r["hausdorff_dev"] <= r["tolerance"] + 1e-9, (scenario, r)
