"""Benchmark of incremental sink reconstruction -> ``BENCH_continuous.json``.

Times :class:`repro.core.reconstruction.ReconstructionCache` (the
incremental, locality-certified splice) against rebuilding every epoch
from scratch with ``build_level_region``, over multi-epoch continuous
monitoring workloads:

- ``steady_drift``  the isoline creeps: each epoch a contiguous arc of
                    the fixed sensor pool retracts behind the line and
                    activates ahead of it (~2% churn) -- the steady-state
                    tide shape, and the headline speedup;
- ``local_storm``   calm churn epochs around one epoch that replaces a
                    third of the ring at once -- the storm epoch trips
                    the dirty-fraction fallback, so the incremental path
                    degrades to ~full cost instead of winning.

Both paths are asserted bit-identical on every epoch (an untimed
verification pass replays the sequence and compares every vertex,
label, neighbor list, loop and statistic) before anything is timed.

Usage::

    python benchmarks/bench_continuous.py             # full + quick, writes BENCH_continuous.json
    python benchmarks/bench_continuous.py --quick     # CI smoke sizes only, no write
    python benchmarks/bench_continuous.py --quick --check BENCH_continuous.json
                                                      # fail if a workload regressed >2x

``--check`` compares each measured speedup against the committed report
(the ``quick`` section when ``--quick`` is given) and exits 1 if any
workload runs at less than half its committed speedup.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import random
import sys
import time
from typing import Dict, List, Optional, Tuple

_HERE = pathlib.Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(_SRC))
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

import record

from repro.core.reconstruction import ReconstructionCache, build_level_region
from repro.core.reports import IsolineReport
from repro.geometry import BoundingBox

BENCH_JSON = _HERE.parent / "BENCH_continuous.json"

BOX = BoundingBox(0.0, 0.0, 100.0, 100.0)
LEVEL = 8.0

#: Headline size: reports per level at the paper's n=2500 density-1
#: operating point is the node count; the sink stress case puts that
#: many reports on one isoline.
FULL_N = 2500


# ----------------------------------------------------------------------
# Workload generators (deterministic)
# ----------------------------------------------------------------------


def _make_pool(n_pool: int, seed: int) -> List[Tuple[Tuple[float, float], Tuple[float, float]]]:
    """Fixed sensor positions along a noisy 5-lobed ring; epoch churn
    activates and retracts pool members, it never teleports them."""
    rng = random.Random(seed)
    pool = []
    for k in range(n_pool):
        th = 2.0 * math.pi * k / n_pool
        r = 30.0 + 5.0 * math.sin(5.0 * th) + rng.uniform(-2.5, 2.5)
        pos = (50.0 + r * math.cos(th), 50.0 + r * math.sin(th))
        pool.append((pos, (math.cos(th), math.sin(th))))
    return pool


def _reports_from(pool, active) -> List[IsolineReport]:
    return [
        IsolineReport(LEVEL, pool[k][0], pool[k][1], source=k)
        for k in sorted(active)
    ]


def steady_drift_epochs(n: int, epochs: int, seed: int = 42) -> List[List[IsolineReport]]:
    """Epoch 0 plus ``epochs`` drift steps: a contiguous arc of the pool
    flips parity each epoch (retract the even member, activate the odd
    one) until ~2% of the active set has churned."""
    n_pool = 2 * n
    pool = _make_pool(n_pool, seed)
    active = set(range(0, n_pool, 2))
    churn = max(1, int(0.02 * n))
    out = [_reports_from(pool, active)]
    arc = 0
    for _ in range(epochs):
        changed = 0
        while changed < churn:
            k = arc % n_pool
            if k in active:
                active.discard(k)
                active.add((k + 1) % n_pool)
                changed += 1
            arc += 1
        out.append(_reports_from(pool, active))
    return out


def local_storm_epochs(n: int, epochs: int, seed: int = 7) -> List[List[IsolineReport]]:
    """Calm ~1% churn epochs around one storm epoch (at ``epochs // 2``)
    that re-seats a third of the ring at once."""
    n_pool = 2 * n
    pool = _make_pool(n_pool, seed)
    rng = random.Random(seed + 1)
    active = set(range(0, n_pool, 2))
    out = [_reports_from(pool, active)]
    for ep in range(epochs):
        if ep == epochs // 2:
            start = rng.randrange(n_pool)
            cluster = {(start + j) % n_pool for j in range(n_pool // 3)}
            flipped = {
                (k + 1) % n_pool if k % 2 == 0 else k - 1 for k in cluster & active
            }
            active = (active - cluster) | flipped
        else:
            for k in rng.sample(range(n_pool), max(1, int(0.01 * n))):
                if k in active:
                    active.discard(k)
                else:
                    active.add(k)
        out.append(_reports_from(pool, active))
    return out


# ----------------------------------------------------------------------
# Bit-identity verification (untimed)
# ----------------------------------------------------------------------


def _assert_regions_equal(fast, ref) -> None:
    assert fast.reports == ref.reports
    assert len(fast.cells) == len(ref.cells)
    for cf, cr in zip(fast.cells, ref.cells):
        assert cf.site_index == cr.site_index
        assert cf.site == cr.site
        assert cf.polygon.vertices == cr.polygon.vertices
        assert cf.polygon.labels == cr.polygon.labels
        assert cf.neighbors == cr.neighbors
    assert [p.vertices for p in fast.inner_polys] == [
        p.vertices for p in ref.inner_polys
    ]
    assert fast.loops == ref.loops
    assert fast.regulated_loops == ref.regulated_loops
    assert fast.regulation_stats == ref.regulation_stats


def verify_sequence(sequence: List[List[IsolineReport]]) -> None:
    """Replay a workload, asserting the splice is bit-identical to a
    from-scratch rebuild at every epoch."""
    cache = ReconstructionCache(LEVEL, BOX)
    for reports in sequence:
        _assert_regions_equal(
            cache.update(reports), build_level_region(LEVEL, reports, BOX)
        )


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------


def time_sequence(
    sequence: List[List[IsolineReport]], repeats: int = 2
) -> Tuple[float, float]:
    """Best-of-``repeats`` (incremental_ms, full_ms) over the post-warm-up
    epochs.

    Epoch 0 (the cold start) is excluded from both sides: it is a full
    build either way.  Each repeat replays the whole sequence on a fresh
    cache; the min damps scheduler noise the same way
    :func:`record.best_of` does.
    """
    inc_ms = full_ms = math.inf
    for _ in range(repeats):
        cache = ReconstructionCache(LEVEL, BOX)
        cache.update(sequence[0])
        t0 = time.perf_counter()
        for reports in sequence[1:]:
            cache.update(reports)
        inc_ms = min(inc_ms, (time.perf_counter() - t0) * 1000.0)

        build_level_region(LEVEL, sequence[0], BOX)  # symmetric warm-up
        t0 = time.perf_counter()
        for reports in sequence[1:]:
            build_level_region(LEVEL, reports, BOX)
        full_ms = min(full_ms, (time.perf_counter() - t0) * 1000.0)
    return inc_ms, full_ms


def measure(n: int, quick: bool) -> Dict[str, Dict]:
    """Measure both workloads at size ``n`` and return the ``kernels``
    section (verifying bit-identity along the way)."""
    epochs = 4 if quick else 5
    kernels: Dict[str, Dict] = {}

    drift = steady_drift_epochs(n, epochs)
    verify_sequence(drift)
    inc_ms, full_ms = time_sequence(drift)
    kernels["steady_drift"] = record.kernel_entry(
        "build_level_region per epoch (from scratch)",
        "ReconstructionCache.update (locality-certified splice)",
        full_ms,
        inc_ms,
    )

    storm = local_storm_epochs(n, epochs)
    verify_sequence(storm)
    inc_ms, full_ms = time_sequence(storm)
    kernels["local_storm"] = record.kernel_entry(
        "build_level_region per epoch (from scratch)",
        "ReconstructionCache.update (fallback on the storm epoch)",
        full_ms,
        inc_ms,
    )
    return kernels


# ----------------------------------------------------------------------
# Check mode
# ----------------------------------------------------------------------


def check_against(
    committed: Optional[Dict], measured: Dict[str, Dict], quick: bool
) -> List[str]:
    """Regression messages (empty = pass): any workload at < committed/2."""
    if committed is None:
        return ["no committed report to check against"]
    section = committed.get("quick", {}) if quick else committed
    baseline = section.get("kernels", {})
    problems = []
    for name, entry in measured.items():
        if name not in baseline:
            problems.append(f"{name}: missing from committed report")
            continue
        floor = baseline[name]["speedup"] / 2.0
        if entry["speedup"] < floor:
            problems.append(
                f"{name}: measured {entry['speedup']:.2f}x < floor {floor:.2f}x "
                f"(committed {baseline[name]['speedup']:.2f}x)"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke sizes only; does not write the report")
    ap.add_argument("--check", metavar="PATH", default=None,
                    help="compare against a committed report; exit 1 if any "
                    "workload runs at < half its committed speedup")
    args = ap.parse_args(argv)

    quick_n = 500
    if args.quick:
        print(f"measuring quick sizes (n={quick_n}) ...")
        quick_kernels = measure(quick_n, quick=True)
        print(record.format_kernels(quick_kernels))
        measured, rep = quick_kernels, None
    else:
        print(f"measuring full sizes (n={FULL_N}) ...")
        full_kernels = measure(FULL_N, quick=False)
        print(record.format_kernels(full_kernels))
        print(f"\nmeasuring quick sizes (n={quick_n}) ...")
        quick_kernels = measure(quick_n, quick=True)
        print(record.format_kernels(quick_kernels))
        rep = record.report(
            FULL_N, full_kernels, quick={"n": quick_n, "kernels": quick_kernels}
        )
        measured = full_kernels

    if args.check:
        problems = check_against(
            record.load_report(pathlib.Path(args.check)), measured, args.quick
        )
        if problems:
            print("\nspeedup regression vs committed report:")
            for p in problems:
                print(f"  {p}")
            return 1
        print(f"\nno workload regressed vs {args.check}")
    elif rep is not None:
        record.write_report(BENCH_JSON, rep)
        print(f"\nwrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
