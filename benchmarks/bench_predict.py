"""Benchmark of model-predictive suppression -> ``BENCH_predict.json``.

Three sections:

- ``kernels``: the predictor kernel pairs (scalar reference vs
  vectorized batch twin -- dead-reckoning advance, own-track innovation
  gate, all-pairs join-coverage gate) asserted **bit-identical** before
  anything is timed, the repo's kernel-pairing convention;
- ``suppression``: the committed acceptance point run end to end --
  the ``front`` steady-drift timeline (rigid translation at 2.5% of
  span per epoch) at n=600 with and without prediction from the same
  deployment seed, reporting the delivered-report reduction, the
  Hausdorff penalty vs the true isolines (field units and
  sqrt(n)-raster grid cells), observed staleness, and per-epoch
  predictor wall-clock;
- ``verify``: untimed -- re-asserts the dead-reckoning contract
  (``prediction=off`` byte-identical to the committed golden epoch
  streams) and the kernel-pair agreement on the measured workload.

The committed full section is the PR's acceptance record: reduction
**>= 2x** delivered reports per warm epoch at a mean penalty **<= 1
grid cell**.

Usage::

    python benchmarks/bench_predict.py               # full + quick, writes BENCH_predict.json
    python benchmarks/bench_predict.py --quick       # CI smoke sizes only, no write
    python benchmarks/bench_predict.py --quick --check BENCH_predict.json
                                                     # regression gate (CI)

``--check`` fails (exit 1) when a kernel runs at less than half its
committed speedup, when the measured reduction falls below 90% of the
committed one, when staleness exceeds the heartbeat (the hard bound),
when the byte-identity verify fails, or when the committed *full*
section no longer meets the acceptance bar (>= 2x at <= 1 cell).
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import random
import sys
import time
from typing import Any, Dict, List, Optional

_HERE = pathlib.Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(_SRC))
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

import numpy as np
import record

from repro.core.prediction import (
    advance_tracks_batch,
    advance_tracks_reference,
    join_accept_batch,
    join_accept_reference,
    track_accept_batch,
    track_accept_reference,
)
from repro.metrics.hausdorff import mean_isoline_hausdorff
from repro.serving.session import SessionCompute, SessionConfig, field_for_epoch

BENCH_JSON = _HERE.parent / "BENCH_predict.json"
GOLDEN = _HERE.parent / "tests" / "core" / "golden" / "continuous_streams.json"

#: The committed acceptance point: n=600 on the front timeline, seed 7,
#: tolerance 1.1 field units, heartbeat 8, warm window epochs 6..16.
FULL_NODES = 600
FULL_EPOCHS = 16
FULL_WARM = 6

#: CI smoke point: same scenario, smaller/shorter (checked against a
#: looser floor -- the acceptance bar is enforced on the committed full
#: section).
QUICK_NODES = 400
QUICK_EPOCHS = 8
QUICK_WARM = 4

TOLERANCE = 1.1
HEARTBEAT = 8
SEED = 7


# ----------------------------------------------------------------------
# Kernel workloads (deterministic)
# ----------------------------------------------------------------------


def _track_arrays(n: int, seed: int = 11) -> Dict[str, np.ndarray]:
    rng = random.Random(seed)
    out = {
        "x": [rng.uniform(0.0, 20.0) for _ in range(n)],
        "y": [rng.uniform(0.0, 20.0) for _ in range(n)],
        "vx": [rng.uniform(-0.5, 0.5) for _ in range(n)],
        "vy": [rng.uniform(-0.5, 0.5) for _ in range(n)],
        "theta": [rng.uniform(-math.pi, math.pi) for _ in range(n)],
        "omega": [rng.uniform(-0.2, 0.2) for _ in range(n)],
        "level": [rng.choice((14.0, 16.0)) for _ in range(n)],
        "age": [rng.randrange(0, 10) for _ in range(n)],
    }
    return {k: np.asarray(v) for k, v in out.items()}


def measure_kernels(quick: bool) -> Dict[str, Dict]:
    n = 2000 if quick else 20000
    n_join = 300 if quick else 1200
    reps = 3 if quick else 5

    kernels: Dict[str, Dict] = {}
    t = _track_arrays(n)
    obs = _track_arrays(n, seed=13)

    ref = advance_tracks_reference(
        t["x"], t["y"], t["vx"], t["vy"], t["theta"], t["omega"]
    )
    fast = advance_tracks_batch(
        t["x"], t["y"], t["vx"], t["vy"], t["theta"], t["omega"]
    )
    assert all(list(r) == list(f) for r, f in zip(ref, fast))
    kernels["advance_tracks"] = record.kernel_entry(
        "advance_tracks_reference (scalar dead-reckoning loop)",
        "advance_tracks_batch (NumPy p+v, wrapped theta+omega)",
        record.best_of(
            lambda: advance_tracks_reference(
                t["x"], t["y"], t["vx"], t["vy"], t["theta"], t["omega"]
            ),
            reps,
        ),
        record.best_of(
            lambda: advance_tracks_batch(
                t["x"], t["y"], t["vx"], t["vy"], t["theta"], t["omega"]
            ),
            reps + 2,
        ),
    )

    gate_args = (
        obs["x"], obs["y"], obs["theta"], obs["level"],
        t["x"], t["y"], t["theta"], t["level"], t["age"],
        TOLERANCE * TOLERANCE, math.radians(35.0), HEARTBEAT,
    )
    ra, rw = track_accept_reference(*gate_args)
    fa, fw = track_accept_batch(*gate_args)
    assert list(ra) == list(fa) and list(rw) == list(fw)
    kernels["track_accept"] = record.kernel_entry(
        "track_accept_reference (scalar innovation gate)",
        "track_accept_batch (vectorized distance/angle/level gate)",
        record.best_of(lambda: track_accept_reference(*gate_args), reps),
        record.best_of(lambda: track_accept_batch(*gate_args), reps + 2),
    )

    j = _track_arrays(n_join, seed=17)
    tr = _track_arrays(n_join, seed=19)
    join_args = (
        j["x"], j["y"], j["theta"], j["level"],
        tr["x"], tr["y"], tr["theta"], tr["level"], tr["age"],
        TOLERANCE * TOLERANCE, math.radians(35.0), HEARTBEAT,
    )
    ra, rc = join_accept_reference(*join_args)
    fa, fc = join_accept_batch(*join_args)
    assert list(ra) == list(fa) and list(rc) == list(fc)
    kernels["join_accept"] = record.kernel_entry(
        "join_accept_reference (scalar all-pairs coverage scan)",
        "join_accept_batch (broadcast joins x tracks, any-reductions)",
        record.best_of(lambda: join_accept_reference(*join_args), reps),
        record.best_of(lambda: join_accept_batch(*join_args), reps + 2),
    )
    return kernels


# ----------------------------------------------------------------------
# Suppression section (the acceptance point)
# ----------------------------------------------------------------------


def measure_suppression(
    n_nodes: int, epochs: int, warm: int
) -> Dict[str, Any]:
    """Run the front timeline with and without prediction; measure the
    reduction, the Hausdorff penalty and the predictor wall-clock."""
    kw = dict(n_nodes=n_nodes, seed=SEED, scenario="front")
    base = SessionCompute(SessionConfig(query_id="bench-base", **kw))
    pred = SessionCompute(
        SessionConfig(
            query_id="bench-pred",
            prediction_tolerance=TOLERANCE,
            prediction_heartbeat=HEARTBEAT,
            **kw,
        )
    )
    levels = base.query.isolevels
    cell = 20.0 / math.ceil(math.sqrt(n_nodes))  # span / sqrt(n) raster

    reports_base = reports_pred = 0
    predicted = 0
    staleness_max = 0
    penalties: List[float] = []
    pred_seconds = 0.0
    for epoch in range(1, epochs + 1):
        field_now = field_for_epoch(base.config, epoch)
        base.network.resense(field_now)
        rb = base.monitor.epoch(base.network)
        pred.network.resense(field_now)
        t0 = time.perf_counter()
        rp = pred.monitor.epoch(pred.network)
        pred_seconds += time.perf_counter() - t0
        staleness_max = max(staleness_max, rp.staleness)
        assert rp.staleness <= HEARTBEAT, "staleness bound violated"
        if epoch < warm:
            continue
        reports_base += len(rb.delivered_reports)
        reports_pred += len(rp.delivered_reports)
        predicted += rp.predicted
        hb = mean_isoline_hausdorff(field_now, rb.contour_map, levels)
        hp = mean_isoline_hausdorff(field_now, rp.contour_map, levels)
        if hb is not None and hp is not None:
            penalties.append(hp - hb)

    warm_epochs = epochs - warm + 1
    penalty = sum(penalties) / len(penalties)
    return {
        "scenario": "front",
        "n_nodes": n_nodes,
        "epochs": epochs,
        "warm_from": warm,
        "tolerance": TOLERANCE,
        "heartbeat": HEARTBEAT,
        "reports_base_per_epoch": round(reports_base / warm_epochs, 2),
        "reports_pred_per_epoch": round(reports_pred / warm_epochs, 2),
        "reduction": round(reports_base / reports_pred, 2),
        "predicted_per_epoch": round(predicted / warm_epochs, 2),
        "staleness_max": staleness_max,
        "penalty_mean": round(penalty, 4),
        "penalty_max": round(max(penalties), 4),
        "cell": round(cell, 4),
        "penalty_cells_mean": round(penalty / cell, 4),
        "epoch_ms": round(1e3 * pred_seconds / epochs, 3),
    }


def format_suppression(s: Dict[str, Any]) -> str:
    return (
        f"suppression (front, n={s['n_nodes']}, epochs "
        f"{s['warm_from']}..{s['epochs']}, tol={s['tolerance']}, "
        f"heartbeat={s['heartbeat']}):\n"
        f"  delivered/epoch : {s['reports_base_per_epoch']} -> "
        f"{s['reports_pred_per_epoch']}  ({s['reduction']}x reduction)\n"
        f"  predicted/epoch : {s['predicted_per_epoch']}  "
        f"(staleness max {s['staleness_max']} <= {s['heartbeat']})\n"
        f"  hausdorff penalty: mean {s['penalty_mean']} max "
        f"{s['penalty_max']} units = {s['penalty_cells_mean']} cells "
        f"(cell {s['cell']})\n"
        f"  monitor epoch    : {s['epoch_ms']} ms"
    )


# ----------------------------------------------------------------------
# Verify section (untimed)
# ----------------------------------------------------------------------


def verify_off_identity() -> Dict[str, Any]:
    """The dead-reckoning contract: prediction=off serving streams
    byte-identical to the committed goldens (same fixture the
    ``test_prediction_off_golden`` suite pins; the bench re-checks the
    serving scenarios so a gate run never times a divergent build)."""
    import hashlib

    golden = json.loads(GOLDEN.read_text())
    checked = 0
    for scenario, epochs in sorted(golden["serving"].items()):
        compute = SessionCompute(
            SessionConfig(query_id=f"golden-{scenario}", scenario=scenario)
        )
        for want in epochs:
            out = compute.epoch(want["epoch"])
            digest = hashlib.sha256(out["delta"]).hexdigest()
            if digest != want["delta_sha256"] or out["crc"] != want["crc"]:
                return {
                    "ok": False,
                    "stream": scenario,
                    "epoch": want["epoch"],
                }
            checked += 1
    return {
        "ok": True,
        "streams": len(golden["serving"]),
        "epochs": checked,
    }


# ----------------------------------------------------------------------
# Check mode
# ----------------------------------------------------------------------


def check_against(
    committed: Optional[Dict],
    kernels: Dict[str, Dict],
    suppression: Dict[str, Any],
    verify: Dict[str, Any],
    quick: bool,
) -> List[str]:
    """Regression messages (empty = pass)."""
    if committed is None:
        return ["no committed report to check against"]
    problems: List[str] = []

    section = committed.get("quick", {}) if quick else committed
    baseline_k = section.get("kernels", {})
    for name, entry in kernels.items():
        if name not in baseline_k:
            problems.append(f"{name}: missing from committed report")
            continue
        floor = baseline_k[name]["speedup"] / 2.0
        if entry["speedup"] < floor:
            problems.append(
                f"{name}: measured {entry['speedup']:.2f}x < floor {floor:.2f}x "
                f"(committed {baseline_k[name]['speedup']:.2f}x)"
            )

    baseline_s = section.get("suppression")
    if baseline_s is None:
        problems.append("suppression: missing from committed report")
    else:
        floor = 0.9 * baseline_s["reduction"]
        if suppression["reduction"] < floor:
            problems.append(
                f"suppression: reduction {suppression['reduction']}x < floor "
                f"{floor:.2f}x (committed {baseline_s['reduction']}x)"
            )
    if suppression["staleness_max"] > suppression["heartbeat"]:
        problems.append(
            f"suppression: staleness {suppression['staleness_max']} exceeds "
            f"heartbeat {suppression['heartbeat']} (bound violated)"
        )
    if not verify["ok"]:
        problems.append(
            "verify: prediction=off diverged from the golden stream "
            f"{verify.get('stream')} at epoch {verify.get('epoch')}"
        )

    # The acceptance record lives in the committed FULL section; keep it
    # honest even when only quick sizes were measured.
    full_s = committed.get("suppression")
    if full_s is None:
        problems.append("committed report has no full suppression section")
    elif full_s["reduction"] < 2.0 or full_s["penalty_cells_mean"] > 1.0:
        problems.append(
            "committed full section fails the acceptance bar: "
            f"{full_s['reduction']}x at {full_s['penalty_cells_mean']} cells "
            "(needs >= 2x at <= 1 cell)"
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke sizes only; does not write the report")
    ap.add_argument("--check", metavar="PATH", default=None,
                    help="compare against a committed report; exit 1 on "
                    "kernel/reduction regression, a staleness-bound or "
                    "byte-identity violation")
    args = ap.parse_args(argv)

    print("verifying prediction=off byte identity ...")
    verify = verify_off_identity()
    if verify["ok"]:
        print(
            f"  ok: {verify['streams']} golden streams, "
            f"{verify['epochs']} epochs byte-identical"
        )
    else:
        print(f"  FAILED at {verify['stream']} epoch {verify['epoch']}")

    if args.quick:
        print(f"measuring quick sizes (n={QUICK_NODES}) ...")
        kernels = measure_kernels(quick=True)
        suppression = measure_suppression(
            QUICK_NODES, QUICK_EPOCHS, QUICK_WARM
        )
        print(record.format_kernels(kernels))
        print(format_suppression(suppression))
        rep = None
    else:
        print(f"measuring full sizes (n={FULL_NODES}) ...")
        kernels = measure_kernels(quick=False)
        suppression = measure_suppression(FULL_NODES, FULL_EPOCHS, FULL_WARM)
        print(record.format_kernels(kernels))
        print(format_suppression(suppression))
        print(f"\nmeasuring quick sizes (n={QUICK_NODES}) ...")
        quick_kernels = measure_kernels(quick=True)
        quick_suppression = measure_suppression(
            QUICK_NODES, QUICK_EPOCHS, QUICK_WARM
        )
        print(record.format_kernels(quick_kernels))
        print(format_suppression(quick_suppression))
        rep = record.report(
            FULL_NODES,
            kernels,
            suppression=suppression,
            verify=verify,
            quick={
                "n": QUICK_NODES,
                "kernels": quick_kernels,
                "suppression": quick_suppression,
            },
        )

    if args.check:
        problems = check_against(
            record.load_report(pathlib.Path(args.check)),
            kernels, suppression, verify, args.quick,
        )
        if problems:
            print("\nregression vs committed report:")
            for p in problems:
                print(f"  {p}")
            return 1
        print(f"\nno regression vs {args.check}")
    elif rep is not None:
        if not verify["ok"]:
            print("\nrefusing to write a report with a failed verify")
            return 1
        record.write_report(BENCH_JSON, rep)
        print(f"\nwrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
