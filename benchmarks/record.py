"""Shared helpers for the before/after benchmark reports.

Both ``bench_kernel.py`` (node-side kernels, ``BENCH_kernels.json``) and
``bench_sink.py`` (sink-side pipeline, ``BENCH_sink.json``) publish the
same JSON shape::

    {
      "n": 2500,
      "python": "3.11.7",
      "numpy": "2.4.6",
      "timing": "min over repeats, wall clock (ms)",
      "kernels": {
        "<stage>": {
          "reference": "<what the scalar reference is>",
          "vectorized": "<what replaced it>",
          "reference_ms": 9.064,
          "vectorized_ms": 2.371,
          "speedup": 3.82
        },
        ...
      }
    }

plus optional extra sections (``bench_sink.py`` adds a ``quick`` section
with the same ``{"n", "kernels"}`` shape for the CI smoke sizes).
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
import platform
import resource
import sys
import time
from typing import Any, Callable, Dict, Optional

import numpy as np


def peak_rss_mb() -> float:
    """Peak resident set size of this process so far, in MB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    high-water marks, so a meaningful per-measurement number needs a
    fresh process (see :func:`run_isolated`).
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def run_isolated(target: Callable[..., None], *args: Any) -> Dict[str, Any]:
    """Run ``target(conn, *args)`` in a fresh spawned process.

    ``target`` must be a module-level function (spawn pickles it) that
    sends exactly one dict through ``conn``.  Spawn -- not fork -- is
    essential for memory benchmarks: a forked child inherits the
    parent's ``ru_maxrss`` high-water mark, so its peak-RSS reading
    would be the *parent's* peak, not the measurement's.
    """
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=target, args=(child_conn, *args))
    proc.start()
    child_conn.close()
    try:
        out = parent_conn.recv()
    except EOFError:
        out = {"error": "isolated worker died before reporting"}
    finally:
        proc.join()
        parent_conn.close()
    if proc.exitcode not in (0, None) and "error" not in out:
        out = {"error": f"isolated worker exited {proc.exitcode}"}
    return out


def best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Min-of-repeats wall time in ms (robust against machine noise)."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times) * 1e3


def kernel_entry(
    reference: str, vectorized: str, reference_ms: float, vectorized_ms: float
) -> Dict[str, Any]:
    """One ``kernels`` record: descriptions, timings and the speedup."""
    return {
        "reference": reference,
        "vectorized": vectorized,
        "reference_ms": round(reference_ms, 3),
        "vectorized_ms": round(vectorized_ms, 3),
        "speedup": round(reference_ms / vectorized_ms, 2),
    }


def report(
    n: int, kernels: Dict[str, Dict[str, Any]], **extra: Any
) -> Dict[str, Any]:
    """Assemble a full report dict in the shared schema."""
    rep: Dict[str, Any] = {
        "n": n,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "timing": "min over repeats, wall clock (ms)",
        "kernels": kernels,
    }
    rep.update(extra)
    return rep


def write_report(path: pathlib.Path, rep: Dict[str, Any]) -> None:
    path.write_text(json.dumps(rep, indent=2) + "\n")


def load_report(path: pathlib.Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def format_kernels(kernels: Dict[str, Dict[str, Any]]) -> str:
    """Aligned text table of a ``kernels`` section."""
    name_w = max([len("stage")] + [len(k) for k in kernels])
    header = (
        f"{'stage':<{name_w}} {'reference ms':>13} {'vectorized ms':>14} {'speedup':>8}"
    )
    lines = [header, "-" * len(header)]
    for name, e in kernels.items():
        lines.append(
            f"{name:<{name_w}} {e['reference_ms']:>13.3f} "
            f"{e['vectorized_ms']:>14.3f} {e['speedup']:>7.2f}x"
        )
    return "\n".join(lines)
