"""Ablation benches: what each Iso-Map design choice buys.

These go beyond the paper's own evaluation: each bench switches off (or
substitutes) one mechanism from DESIGN.md's inventory and measures the
delta, with the qualitative expectation asserted.
"""

from repro.experiments.ablations import (
    run_ablation_filtering_placement,
    run_ablation_gradient,
    run_ablation_localization,
    run_ablation_regression,
    run_ablation_regulation,
)


def test_ablation_gradient_direction(benchmark, record_result):
    """The gradient direction is the load-bearing report field (Fig. 4)."""
    result = benchmark.pedantic(
        lambda: run_ablation_gradient(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["directions"]: r["accuracy"] for r in result.rows}
    # Reported directions dominate both substitutes by a wide margin.
    assert rows["reported"] > rows["sink_estimated"] + 0.3
    assert rows["reported"] > rows["random"] + 0.3
    # Position-only estimation cannot break the inside/outside ambiguity.
    assert rows["sink_estimated"] < 0.6


def test_ablation_filtering_placement(benchmark, record_result):
    """In-network filtering saves transit bytes vs sink-side filtering."""
    result = benchmark.pedantic(
        lambda: run_ablation_filtering_placement(seeds=(1, 2)),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    rows = {r["placement"]: r for r in result.rows}
    assert rows["in-network"]["traffic_kb"] < 0.8 * rows["sink-side"]["traffic_kb"]
    # Equal-information check: final report counts are close.
    assert (
        abs(rows["in-network"]["final_reports"] - rows["sink-side"]["final_reports"])
        < 0.3 * rows["sink-side"]["final_reports"]
    )


def test_ablation_regulation(benchmark, record_result):
    """Rules 1-2 fire and keep the boundary sane.

    Honest finding: on the harbor field with the paper's filter settings
    the jogs are already small, so regulation's effect on the mean
    Hausdorff distance is within noise -- we assert it does not *hurt*
    meaningfully, and that it actually fires.
    """
    result = benchmark.pedantic(
        lambda: run_ablation_regulation(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["regulation"]: r for r in result.rows}
    assert rows["on"]["rules_applied"] > 0
    assert rows["off"]["rules_applied"] == 0
    assert rows["on"]["hausdorff"] < 1.25 * rows["off"]["hausdorff"]


def test_ablation_regression_models(benchmark, record_result):
    """Quadratic fits cost ~4x the CPU for a marginal error gain --
    the measured justification for the paper's linear-model choice."""
    result = benchmark.pedantic(
        lambda: run_ablation_regression(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["model"]: r for r in result.rows}
    assert rows["quadratic"]["isoline_node_ops"] > 2.5 * rows["linear"]["isoline_node_ops"]
    # The error gain is marginal: within 30% of each other.
    assert rows["quadratic"]["mean_err_deg"] < 1.3 * rows["linear"]["mean_err_deg"]
    assert rows["linear"]["mean_err_deg"] < 1.3 * rows["quadratic"]["mean_err_deg"]


def test_ablation_localization_error(benchmark, record_result):
    """Accuracy degrades gracefully with position noise up to the node
    spacing, then collapses -- localisation at ~node-spacing precision
    suffices."""
    result = benchmark.pedantic(
        lambda: run_ablation_localization(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["position_noise"]: r["accuracy"] for r in result.rows}
    assert rows[0.0] > 0.9
    assert rows[0.5] > rows[0.0] - 0.08  # graceful below node spacing
    assert rows[2.0] < rows[0.0] - 0.15  # collapse beyond it
    # Monotone non-increasing within tolerance.
    noises = sorted(rows)
    for a, b in zip(noises, noises[1:]):
        assert rows[b] <= rows[a] + 0.02


def test_ablation_isoline_agg_baseline(benchmark, record_result):
    """Same restricted-reporting traffic regime, wildly different maps:
    the gradient direction is Iso-Map's decisive contribution over the
    isoline-aggregation design of [22]."""
    from repro.experiments.ablations import run_ablation_isoline_agg

    result = benchmark.pedantic(
        lambda: run_ablation_isoline_agg(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["protocol"]: r for r in result.rows}
    assert rows["isoline-agg"]["traffic_kb"] < 2 * rows["iso-map"]["traffic_kb"]
    assert rows["iso-map"]["accuracy"] > rows["isoline-agg"]["accuracy"] + 0.2


def test_ablation_detection_mode(benchmark, record_result):
    """The adaptive straddle policy rescues sparse deployments (where the
    fixed epsilon border starves detection) at a modest traffic premium,
    and matches the paper's policy at the dense operating point."""
    from repro.experiments.ablations import run_ablation_detection_mode

    result = benchmark.pedantic(
        lambda: run_ablation_detection_mode(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["density"]: r for r in result.rows}
    # Sparse: straddle wins big.
    assert rows[0.16]["acc_straddle"] > rows[0.16]["acc_border"] + 0.2
    # Dense: both in the high-accuracy regime, within a few points.
    assert rows[4.0]["acc_straddle"] > 0.9
    assert abs(rows[4.0]["acc_straddle"] - rows[4.0]["acc_border"]) < 0.06
    # The premium is the value broadcast: bounded, not explosive.
    for row in result.rows:
        assert row["traffic_straddle_kb"] < 3 * row["traffic_border_kb"] + 10
