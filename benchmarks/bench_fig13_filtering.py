"""Fig. 13 (and Fig. 9) bench: filtering thresholds vs reports/accuracy.

Paper claims: higher tolerances of s_a and s_d cut more reports at a
(modest) accuracy cost -- the traffic/fidelity knob; at the operating
point (30 deg, 4) the report count is in the tens with accuracy close to
the unfiltered map.
"""

from repro.experiments.fig13_filtering import run_fig09, run_fig13


def test_fig13_threshold_sweeps(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig13(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)

    sa_rows = [r for r in result.rows if r["swept"] == "sa"]
    sd_rows = [r for r in result.rows if r["swept"] == "sd"]
    # Looser thresholds -> monotonically fewer reports.
    sa_reports = [r["reports"] for r in sa_rows]
    sd_reports = [r["reports"] for r in sd_rows]
    assert all(a >= b for a, b in zip(sa_reports, sa_reports[1:]))
    assert all(a >= b for a, b in zip(sd_reports, sd_reports[1:]))
    # ...and no higher accuracy at the loosest than at the tightest end.
    assert sa_rows[-1]["accuracy"] <= sa_rows[0]["accuracy"]
    assert sd_rows[-1]["accuracy"] <= sd_rows[0]["accuracy"]
    # Substantial savings at the paper's operating point, accuracy kept.
    op = next(r for r in sa_rows if r["sa_deg"] == 30.0)
    unfiltered = next(r for r in sd_rows if r["sd"] == 0.0)
    assert op["reports"] < 0.5 * unfiltered["reports"]
    assert op["accuracy"] > unfiltered["accuracy"] - 0.05


def test_fig09_report_density_contrast(benchmark, record_result):
    result = benchmark.pedantic(lambda: run_fig09(), rounds=1, iterations=1)
    record_result(result)

    off, on = result.rows
    assert off["filtering"] == "off"
    assert on["reports"] < 0.5 * off["reports"]
    # "Evenly filtering some of the reports indeed does not degrade the
    # result by much."
    assert on["accuracy"] > off["accuracy"] - 0.05
