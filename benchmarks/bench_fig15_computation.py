"""Fig. 15 bench: per-node computational intensity vs network size.

Paper claims: INLR's per-node computation is comparatively huge and
grows with the network size; TinyDB and Iso-Map stay low; the amplified
view shows Iso-Map's per-node computation does NOT grow with the network
size (constant per node).
"""

from repro.experiments.fig15_computation import run_fig15


def test_fig15_computation(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig15(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)

    first, last = result.rows[0], result.rows[-1]
    # INLR is the heavyweight at every size and keeps growing.
    for row in result.rows:
        assert row["inlr_ops"] > 3 * row["isomap_ops"]
        assert row["inlr_ops"] > 3 * row["tinydb_ops"]
    assert last["inlr_ops"] > 1.5 * first["inlr_ops"]
    # Fig. 15b (amplified view): Iso-Map per-node ops are constant in n --
    # the largest network costs within 35% of the smallest.
    iso = result.column("isomap_ops")
    assert max(iso) < 1.35 * min(iso)
