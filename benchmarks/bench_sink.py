"""Before/after benchmark of the sink-side pipeline -> ``BENCH_sink.json``.

Times every vectorized sink-side stage against the retained scalar
reference it replaced (and, except for the resample kernel, is
bit-compatible with -- each timed pair is also checked for agreement
inline):

- ``voronoi``              bounded Voronoi of a ring site set
- ``dedupe``               coincident-report deduplication
- ``reconstruction``       full single-level region build (ring reports)
- ``marching_squares``     ground-truth isoline extraction
- ``resample``             polyline arclength resampling
- ``hausdorff``            directed point-set Hausdorff distance
- ``fig12_hausdorff_eval`` the Fig. 12 evaluation loop: per-level truth
                           extraction + resampling + symmetric Hausdorff
                           for three n=2500 contour maps (the reference
                           re-derives truth per map/level, as the
                           pre-vectorization code did -- memoisation is
                           part of what the fast path buys)

The ring workloads put every site/report on a wiggly closed curve --
the realistic Iso-Map input shape and the adversarial one for the
Voronoi prefilter (cells are slivers reaching the medial axis).

Usage::

    python benchmarks/bench_sink.py               # full + quick, writes BENCH_sink.json
    python benchmarks/bench_sink.py --quick       # CI smoke sizes only, no write
    python benchmarks/bench_sink.py --quick --check BENCH_sink.json
                                                  # fail if any stage regressed >2x

``--check`` compares each measured speedup against the committed report
(the ``quick`` section when ``--quick`` is given) and exits 1 if any
stage runs at less than half its committed speedup -- tolerant enough
for loaded CI machines, tight enough to catch a devectorized stage.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import random
import sys
from typing import Dict, List, Optional

_HERE = pathlib.Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(_SRC))
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

import numpy as np

import record

from repro.core.reconstruction import (
    _dedupe_reports,
    _dedupe_reports_reference,
    build_level_region,
    build_level_region_reference,
)
from repro.core.reports import IsolineReport
from repro.experiments.common import default_levels, harbor_network, run_isomap
from repro.field import make_harbor_field
from repro.field.contours import extract_isolines, extract_isolines_reference
from repro.geometry import BoundingBox
from repro.geometry.polyline import resample_polyline, resample_polyline_fast
from repro.geometry.voronoi import (
    bounded_voronoi_batched,
    bounded_voronoi_reference,
)
from repro.metrics.hausdorff import (
    _sample_all_reference,
    directed_hausdorff,
    directed_hausdorff_reference,
    mean_isoline_hausdorff,
)

BENCH_JSON = _HERE.parent / "BENCH_sink.json"

#: Headline size: reports/sites per level at the paper's n=2500 density-1
#: operating point is the *node* count; the sink stress case puts that
#: many reports on one isoline.
FULL_N = 2500


# ----------------------------------------------------------------------
# Workload generators (deterministic)
# ----------------------------------------------------------------------


def _ring_reports(n: int, seed: int = 0) -> List[IsolineReport]:
    """``n`` reports on a 5-lobed closed curve around (50, 50)."""
    rng = random.Random(seed)
    out: List[IsolineReport] = []
    for k in range(n):
        ang = 2.0 * math.pi * k / n + rng.uniform(-0.3, 0.3) * math.pi / n
        r = 30.0 + 8.0 * math.sin(5.0 * ang) + rng.uniform(-0.5, 0.5)
        pos = (50.0 + r * math.cos(ang), 50.0 + r * math.sin(ang))
        out.append(IsolineReport(8.0, pos, (math.cos(ang), math.sin(ang)), k))
    return out


def _dedupe_workload(n: int, seed: int = 3) -> List[IsolineReport]:
    """Reports with a realistic mix of exact/near/non duplicates."""
    rng = random.Random(seed)
    base = _ring_reports(max(1, (2 * n) // 3), seed=seed)
    out = list(base)
    while len(out) < n:
        src = rng.choice(base)
        # Half the clones land inside the dedupe tolerance, half just out.
        eps = rng.uniform(0.1e-6, 0.9e-6) if rng.random() < 0.5 else rng.uniform(2e-6, 5e-6)
        ang = rng.uniform(0, 2 * math.pi)
        pos = (src.position[0] + eps * math.cos(ang), src.position[1] + eps * math.sin(ang))
        out.append(IsolineReport(src.isolevel, pos, src.direction, len(out)))
    rng.shuffle(out)
    return out


def _wiggly_polyline(n: int, seed: int = 5) -> List:
    rng = random.Random(seed)
    pts = []
    for k in range(n):
        x = 100.0 * k / n
        pts.append((x, 10.0 * math.sin(0.3 * x) + rng.uniform(-0.4, 0.4)))
    return pts


def _point_cloud(n: int, seed: int) -> List:
    rng = random.Random(seed)
    return [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(n)]


# ----------------------------------------------------------------------
# Agreement checks (fast path vs reference)
# ----------------------------------------------------------------------


def _assert_cells_equal(fast, ref) -> None:
    assert len(fast) == len(ref)
    for cf, cr in zip(fast, ref):
        assert cf.site_index == cr.site_index
        assert cf.polygon.vertices == cr.polygon.vertices
        assert cf.polygon.labels == cr.polygon.labels
        assert cf.neighbors == cr.neighbors


def _assert_regions_equal(fast, ref) -> None:
    assert fast.reports == ref.reports
    _assert_cells_equal(fast.cells, ref.cells)
    assert [p.vertices for p in fast.inner_polys] == [p.vertices for p in ref.inner_polys]
    assert fast.loops == ref.loops
    assert fast.regulated_loops == ref.regulated_loops
    assert fast.regulation_stats == ref.regulation_stats


def _assert_close(a: Optional[float], b: Optional[float], rel: float) -> None:
    assert (a is None) == (b is None), (a, b)
    if a is not None:
        assert abs(a - b) <= rel * max(abs(a), abs(b), 1e-12), (a, b)


# ----------------------------------------------------------------------
# The fig12 evaluation pair
# ----------------------------------------------------------------------


def _fig12_maps(n: int) -> List:
    """Contour maps to evaluate: the three protocol runs of one Fig. 12
    sweep point (random/grid deployments, two seeds)."""
    specs = [("random", 1), ("grid", 1), ("random", 2)]
    maps = []
    for deploy, seed in specs:
        net = harbor_network(n, deploy, seed=seed)
        maps.append(run_isomap(net).contour_map)
    return maps


def _fig12_eval_fast(maps, levels, grid: int) -> List[Optional[float]]:
    """What one sweep point pays now: a shared field whose ground truth is
    extracted (vectorized) once per level and memoised across maps."""
    field = make_harbor_field()
    return [mean_isoline_hausdorff(field, m, levels, grid=grid) for m in maps]


def _fig12_eval_reference(maps, levels, grid: int) -> List[Optional[float]]:
    """What the pre-vectorization pipeline paid: scalar sampling, scalar
    marching squares, scalar resampling and scalar Hausdorff, re-derived
    for every (map, level) pair (no caches existed)."""
    out: List[Optional[float]] = []
    for band_map in maps:
        values: List[float] = []
        for level in levels:
            field = make_harbor_field()  # fresh instance: cold caches
            true_pts = _sample_all_reference(
                extract_isolines_reference(field, level, nx=grid, ny=grid), 0.5
            )
            est_pts = _sample_all_reference(band_map.isolines(level), 0.5)
            if not true_pts or not est_pts:
                continue
            values.append(
                max(
                    directed_hausdorff_reference(true_pts, est_pts),
                    directed_hausdorff_reference(est_pts, true_pts),
                )
            )
        out.append(sum(values) / len(values) if values else None)
    return out


# ----------------------------------------------------------------------
# Stage measurements
# ----------------------------------------------------------------------


def measure(n: int, quick: bool) -> Dict[str, Dict]:
    """Measure every stage pair at size ``n`` and return the ``kernels``
    section (asserting fast/reference agreement along the way)."""
    heavy_reps = 1 if not quick else 2
    light_reps = 3 if not quick else 3

    kernels: Dict[str, Dict] = {}
    box = BoundingBox(0, 0, 100, 100)

    # --- voronoi ------------------------------------------------------
    sites = [r.position for r in _ring_reports(n, seed=1)]
    _assert_cells_equal(
        bounded_voronoi_batched(sites, box), bounded_voronoi_reference(sites, box)
    )
    kernels["voronoi"] = record.kernel_entry(
        "bounded_voronoi_reference (per-site sort + scalar clips)",
        "bounded_voronoi_batched (blocked prefilter + no-op pruning)",
        record.best_of(lambda: bounded_voronoi_reference(sites, box), heavy_reps),
        record.best_of(lambda: bounded_voronoi_batched(sites, box), heavy_reps + 1),
    )

    # --- dedupe -------------------------------------------------------
    dreports = _dedupe_workload(n)
    assert _dedupe_reports(dreports) == _dedupe_reports_reference(dreports)
    kernels["dedupe"] = record.kernel_entry(
        "_dedupe_reports_reference (all-pairs scan)",
        "_dedupe_reports (spatial hash)",
        record.best_of(lambda: _dedupe_reports_reference(dreports), heavy_reps + 1),
        record.best_of(lambda: _dedupe_reports(dreports), 10),
    )

    # --- reconstruction ----------------------------------------------
    rreports = _ring_reports(n, seed=2)
    _assert_regions_equal(
        build_level_region(8.0, rreports, box),
        build_level_region_reference(8.0, rreports, box),
    )
    kernels["reconstruction"] = record.kernel_entry(
        "build_level_region_reference (scalar kernels end to end)",
        "build_level_region (vectorized dedupe/voronoi/boundary)",
        record.best_of(lambda: build_level_region_reference(8.0, rreports, box), heavy_reps),
        record.best_of(lambda: build_level_region(8.0, rreports, box), heavy_reps + 1),
    )

    # --- marching squares --------------------------------------------
    ms_grid = 100 if quick else 200
    field = make_harbor_field()
    field.sample_grid(ms_grid, ms_grid)  # pre-warm: time extraction, not sampling
    fast_lines = extract_isolines(field, 8.0, ms_grid, ms_grid)
    assert fast_lines == extract_isolines_reference(field, 8.0, ms_grid, ms_grid)

    def _ms_fast():
        field.__dict__["_isolines_cache"] = {}
        return extract_isolines(field, 8.0, ms_grid, ms_grid)

    kernels["marching_squares"] = record.kernel_entry(
        "extract_isolines_reference (per-square scalar loop)",
        "extract_isolines (one-array-op case classification)",
        record.best_of(lambda: extract_isolines_reference(field, 8.0, ms_grid, ms_grid), light_reps),
        record.best_of(_ms_fast, 10),
    )

    # --- resample -----------------------------------------------------
    line = _wiggly_polyline(200 if quick else 2000)
    ref_pts = resample_polyline(line, 0.05)
    fast_pts = resample_polyline_fast(line, 0.05)
    assert abs(len(ref_pts) - len(fast_pts)) <= 1
    m = min(len(ref_pts), len(fast_pts))
    assert np.allclose(np.asarray(ref_pts[:m]), np.asarray(fast_pts[:m]), atol=1e-6)
    kernels["resample"] = record.kernel_entry(
        "resample_polyline (scalar arclength walk)",
        "resample_polyline_fast (cumulative-length searchsorted)",
        record.best_of(lambda: resample_polyline(line, 0.05), light_reps + 2),
        record.best_of(lambda: resample_polyline_fast(line, 0.05), 10),
    )

    # --- hausdorff ----------------------------------------------------
    hn = 1500 if quick else 4000
    pa, pb = _point_cloud(hn, seed=11), _point_cloud(hn, seed=12)
    assert directed_hausdorff(pa, pb) == directed_hausdorff_reference(pa, pb)
    kernels["hausdorff"] = record.kernel_entry(
        "directed_hausdorff_reference (nested scalar min/max)",
        "directed_hausdorff (blocked broadcast)",
        record.best_of(lambda: directed_hausdorff_reference(pa, pb), heavy_reps),
        record.best_of(lambda: directed_hausdorff(pa, pb), 5),
    )

    # --- fig12 evaluation loop ---------------------------------------
    fig_n = 600 if quick else FULL_N
    fig_grid = 80 if quick else 120
    levels = default_levels()
    maps = _fig12_maps(fig_n)
    fast_vals = _fig12_eval_fast(maps, levels, fig_grid)
    ref_vals = _fig12_eval_reference(maps, levels, fig_grid)
    # The resample fast path is tolerance- (not bit-) compatible, so the
    # aggregate distances agree to ~sample spacing, not exactly.
    for fv, rv in zip(fast_vals, ref_vals):
        _assert_close(fv, rv, rel=0.02)
    kernels["fig12_hausdorff_eval"] = record.kernel_entry(
        "per-(map,level) scalar truth extraction + resample + Hausdorff",
        "memoised vectorized mean_isoline_hausdorff",
        record.best_of(lambda: _fig12_eval_reference(maps, levels, fig_grid), heavy_reps),
        record.best_of(lambda: _fig12_eval_fast(maps, levels, fig_grid), heavy_reps + 1),
    )
    return kernels


# ----------------------------------------------------------------------
# Check mode
# ----------------------------------------------------------------------


def check_against(
    committed: Optional[Dict], measured: Dict[str, Dict], quick: bool
) -> List[str]:
    """Regression messages (empty = pass): any stage at < committed/2."""
    if committed is None:
        return ["no committed report to check against"]
    section = committed.get("quick", {}) if quick else committed
    baseline = section.get("kernels", {})
    problems = []
    for name, entry in measured.items():
        if name not in baseline:
            problems.append(f"{name}: missing from committed report")
            continue
        floor = baseline[name]["speedup"] / 2.0
        if entry["speedup"] < floor:
            problems.append(
                f"{name}: measured {entry['speedup']:.2f}x < floor {floor:.2f}x "
                f"(committed {baseline[name]['speedup']:.2f}x)"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke sizes only; does not write the report")
    ap.add_argument("--check", metavar="PATH", default=None,
                    help="compare against a committed report; exit 1 if any "
                    "stage runs at < half its committed speedup")
    args = ap.parse_args(argv)

    quick_n = 500
    if args.quick:
        print(f"measuring quick sizes (n={quick_n}) ...")
        quick_kernels = measure(quick_n, quick=True)
        print(record.format_kernels(quick_kernels))
        measured, rep = quick_kernels, None
    else:
        print(f"measuring full sizes (n={FULL_N}) ...")
        full_kernels = measure(FULL_N, quick=False)
        print(record.format_kernels(full_kernels))
        print(f"\nmeasuring quick sizes (n={quick_n}) ...")
        quick_kernels = measure(quick_n, quick=True)
        print(record.format_kernels(quick_kernels))
        rep = record.report(
            FULL_N, full_kernels, quick={"n": quick_n, "kernels": quick_kernels}
        )
        measured = full_kernels

    if args.check:
        problems = check_against(
            record.load_report(pathlib.Path(args.check)), measured, args.quick
        )
        if problems:
            print("\nspeedup regression vs committed report:")
            for p in problems:
                print(f"  {p}")
            return 1
        print(f"\nno stage regressed vs {args.check}")
    elif rep is not None:
        record.write_report(BENCH_JSON, rep)
        print(f"\nwrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
