"""Fig. 16 bench: per-node energy consumption for contour mapping.

Paper claims: Iso-Map significantly reduces per-node energy compared
with TinyDB and INLR, and -- unlike theirs -- its per-node cost barely
grows with the network size.
"""

from repro.experiments.fig16_energy import run_fig16


def test_fig16_energy(benchmark, record_result, sweep_jobs):
    result = benchmark.pedantic(
        lambda: run_fig16(seeds=(1, 2), jobs=sweep_jobs), rounds=1, iterations=1
    )
    record_result(result)

    first, last = result.rows[0], result.rows[-1]
    # Iso-Map is the cheapest at every size.
    for row in result.rows:
        assert row["isomap_mj"] < row["tinydb_mj"]
        assert row["isomap_mj"] < row["inlr_mj"]
    # TinyDB's and INLR's per-node energy grows with network size...
    assert last["tinydb_mj"] > 1.8 * first["tinydb_mj"]
    assert last["inlr_mj"] > 1.2 * first["inlr_mj"]
    # ...while Iso-Map's stays nearly flat (the scalability headline).
    iso = result.column("isomap_mj")
    assert max(iso) < 1.4 * min(iso)
    # And the absolute gap at scale is large (paper: several-fold).
    assert last["tinydb_mj"] > 3 * last["isomap_mj"]
