"""Shared benchmark fixtures.

Each bench regenerates one paper table/figure: it runs the experiment
once (pedantic single-round timing via pytest-benchmark), prints the
row/series table, writes it under ``benchmarks/results/``, and asserts
the paper's qualitative claims (who wins, growth shapes, crossovers).

Sweep-based benches (figs 11/12/14/16) accept ``--sweep-jobs N`` to run
their (configuration, seed) points across N worker processes through
:mod:`repro.experiments.runner`; the resulting tables are byte-identical
at any job count, only the wall-clock changes.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--sweep-jobs",
        type=int,
        default=1,
        help="worker processes for sweep-based figure benches "
        "(results are identical at any job count)",
    )


@pytest.fixture(scope="session")
def sweep_jobs(request):
    """Worker count for experiment sweeps (from ``--sweep-jobs``)."""
    jobs = request.config.getoption("--sweep-jobs")
    if jobs < 1:
        raise pytest.UsageError("--sweep-jobs must be >= 1")
    return jobs


@pytest.fixture()
def record_result():
    """Print an ExperimentResult table and persist it to results/."""

    def _record(result):
        table = result.to_table()
        print()
        print(table)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(table + "\n")
        (RESULTS_DIR / f"{result.experiment_id}.csv").write_text(result.to_csv())
        return result

    return _record
