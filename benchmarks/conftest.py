"""Shared benchmark fixtures.

Each bench regenerates one paper table/figure: it runs the experiment
once (pedantic single-round timing via pytest-benchmark), prints the
row/series table, writes it under ``benchmarks/results/``, and asserts
the paper's qualitative claims (who wins, growth shapes, crossovers).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def record_result():
    """Print an ExperimentResult table and persist it to results/."""

    def _record(result):
        table = result.to_table()
        print()
        print(table)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(table + "\n")
        (RESULTS_DIR / f"{result.experiment_id}.csv").write_text(result.to_csv())
        return result

    return _record
