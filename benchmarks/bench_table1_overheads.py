"""Table 1 + Theorem 4.1 bench: asymptotic claims vs measured exponents.

Renders the paper's analytical comparison and fits measured report
counts against ``a * n^b``:

- TinyDB (and the other full-collection protocols) must fit b ~ 1;
- data suppression stays O(n) (b close to 1, reduced by a degree factor);
- Iso-Map in the theorem's constant-K regime must fit b ~ 0.5
  (Theorem 4.1); on the harbor windows the effective contour count grows
  with the window, so its exponent there lands between 0.5 and 1.
"""

from repro.experiments.table1_overheads import (
    analytical_table,
    run_table1,
    run_theorem41,
)


def test_table1_scaling_exponents(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_table1(seeds=(1, 2)), rounds=1, iterations=1
    )
    print()
    print(analytical_table())
    record_result(result)

    fits = {r["protocol"]: r for r in result.rows}
    assert abs(fits["tinydb"]["fitted_exponent"] - 1.0) < 0.05
    assert 0.7 < fits["suppression"]["fitted_exponent"] <= 1.1
    # Harbor windows: between the fixed-K 0.5 and the feature-growth 1.0.
    assert 0.4 < fits["isomap"]["fitted_exponent"] < 1.2
    for row in result.rows:
        assert row["r_squared"] > 0.9


def test_theorem41_sqrt_scaling(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_theorem41(seeds=(1, 2, 3)), rounds=1, iterations=1
    )
    record_result(result)

    from repro.analysis import fit_power_law

    ns = result.column("n_nodes")
    counts = result.column("isoline_nodes")
    fit = fit_power_law(ns, counts)
    # Theorem 4.1: O(sqrt(n)) in the constant-K regime.
    assert 0.35 < fit.exponent < 0.65
    assert fit.r_squared > 0.85
