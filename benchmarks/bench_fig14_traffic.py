"""Fig. 14 bench: network traffic vs diameter (a) and density (b).

Paper claims: TinyDB's and INLR's traffic grows rapidly with the network
diameter while Iso-Map imposes much less; against density all three grow
but Iso-Map with a much smaller factor.
"""

from repro.experiments.fig14_traffic import run_fig14a, run_fig14b


def test_fig14a_traffic_vs_diameter(benchmark, record_result, sweep_jobs):
    result = benchmark.pedantic(
        lambda: run_fig14a(seeds=(1, 2), jobs=sweep_jobs), rounds=1, iterations=1
    )
    record_result(result)

    first, last = result.rows[0], result.rows[-1]
    # Iso-Map wins at every size, by a growing margin.
    for row in result.rows:
        assert row["isomap_kb"] < row["tinydb_kb"]
        assert row["isomap_kb"] < row["inlr_kb"]
    # The full-collection protocols grow much faster than Iso-Map.
    tdb_growth = last["tinydb_kb"] / first["tinydb_kb"]
    iso_growth = last["isomap_kb"] / first["isomap_kb"]
    assert tdb_growth > 1.5 * iso_growth
    # At the paper's largest size the gap is large (paper: ~6x TinyDB).
    assert last["tinydb_kb"] > 3 * last["isomap_kb"]


def test_fig14b_traffic_vs_density(benchmark, record_result, sweep_jobs):
    result = benchmark.pedantic(
        lambda: run_fig14b(seeds=(1, 2), jobs=sweep_jobs), rounds=1, iterations=1
    )
    record_result(result)

    # All protocols' traffic grows with density...
    for key in ("isomap_kb", "tinydb_kb", "inlr_kb"):
        series = result.column(key)
        assert series[-1] > series[0]
    # ...but Iso-Map stays the cheapest throughout.
    for row in result.rows:
        assert row["isomap_kb"] < row["tinydb_kb"]
        assert row["isomap_kb"] < row["inlr_kb"]
