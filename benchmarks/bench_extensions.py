"""Extension benches: beyond the paper's evaluation.

The lossy-link bench prices the paper's perfect-link-layer assumption;
the continuous-monitoring bench measures the epoch-delta variant the
paper's future-work section points toward.
"""

from repro.experiments.extensions import run_continuous_monitoring, run_lossy_links


def test_ext_lossy_links(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_lossy_links(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["loss_rate"]: r for r in result.rows}
    # Without ARQ, multi-hop delivery collapses fast with loss.
    assert rows[0.3]["delivered_no_arq"] < 0.2
    # ARQ (the paper's cited MAC reliability) restores delivery...
    assert rows[0.3]["delivered_arq"] > 0.8
    # ...at a visible but modest energy premium over the lossless run.
    assert rows[0.3]["energy_mj_arq"] < 1.4 * rows[0.0]["energy_mj_arq"]
    assert rows[0.3]["energy_mj_arq"] > rows[0.0]["energy_mj_arq"]


def test_ext_continuous_monitoring(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_continuous_monitoring(), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["epoch"]: r for r in result.rows}
    # Steady state: no delta reports, far less traffic than snapshots.
    assert rows[1]["delta_reports"] == 0
    assert rows[1]["delta_kb"] < 0.4 * rows[1]["snapshot_kb"]
    # The storm epoch re-reports only the affected stretch.
    assert 0 < rows[3]["delta_reports"] < rows[0]["delta_reports"]
    # Map quality holds throughout.
    for row in result.rows:
        assert row["delta_accuracy"] > 0.9
    # Cumulative savings over the timeline.
    total_delta = sum(r["delta_kb"] for r in result.rows)
    total_snap = sum(r["snapshot_kb"] for r in result.rows)
    assert total_delta < 0.5 * total_snap


def test_ext_localization(benchmark, record_result):
    """Iso-Map accuracy tracks the localization substrate's error: more
    anchors -> tighter fixes -> better maps, with residual damage from
    the error tail (flip outliers distort Voronoi cells)."""
    from repro.experiments.extensions import run_localized_isomap

    result = benchmark.pedantic(
        lambda: run_localized_isomap(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["anchor_fraction"]: r for r in result.rows}
    # Localisation error falls with anchors.
    assert rows[0.4]["loc_mean_err"] < rows[0.05]["loc_mean_err"]
    # Mapping accuracy improves with anchors...
    assert rows[0.4]["accuracy"] > rows[0.05]["accuracy"]
    # ...but stays below GPS because of the error tail.
    assert rows[0.4]["accuracy"] < rows[0.4]["accuracy_gps"]
    # Coverage is near-total in the connected regime.
    for row in result.rows:
        assert row["coverage"] > 0.9


def test_ext_epoch_latency(benchmark, record_result):
    """Iso-Map's collection epoch drains the channel several times faster
    than the full-collection protocols, and the gap widens with size."""
    from repro.experiments.extensions import run_epoch_latency

    result = benchmark.pedantic(
        lambda: run_epoch_latency(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)
    for row in result.rows:
        assert row["isomap_s"] < row["tinydb_s"]
        assert row["isomap_s"] < row["inlr_s"]
    first, last = result.rows[0], result.rows[-1]
    iso_growth = last["isomap_s"] / first["isomap_s"]
    tdb_growth = last["tinydb_s"] / first["tinydb_s"]
    assert tdb_growth > iso_growth


def test_ext_network_lifetime(benchmark, record_result):
    """Per-epoch energy translates to lifetime: Iso-Map extends time to
    first node death by an order of magnitude over full collection, and
    its funnel hotspot is shallower."""
    from repro.experiments.extensions import run_network_lifetime

    result = benchmark.pedantic(
        lambda: run_network_lifetime(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["protocol"]: r for r in result.rows}
    assert rows["iso-map"]["epochs_first_death"] > 5 * rows["tinydb"]["epochs_first_death"]
    assert rows["iso-map"]["epochs_first_death"] > rows["inlr"]["epochs_first_death"]
    assert rows["iso-map"]["hotspot_ratio"] < rows["tinydb"]["hotspot_ratio"]


def test_ext_sink_placement(benchmark, record_result):
    """A corner sink deepens the funnel: larger diameter, more traffic,
    and a hotter worst node than the centre placement."""
    from repro.experiments.extensions import run_sink_placement

    result = benchmark.pedantic(
        lambda: run_sink_placement(seeds=(1, 2)), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["placement"]: r for r in result.rows}
    assert rows["corner"]["diameter_hops"] > rows["centre"]["diameter_hops"]
    assert rows["corner"]["traffic_kb"] > rows["centre"]["traffic_kb"]
    assert rows["corner"]["hotspot_max_mj"] > rows["centre"]["hotspot_max_mj"]
