"""Serving-layer fault-recovery benchmark -> ``BENCH_serving_faults.json``.

Runs the load harness through a :class:`~repro.serving.supervisor.
SupervisedShardPool` with a seeded moderate :class:`ChaosPlan` injecting
worker kills, hangs, dropped results and corrupted payloads, and
measures what self-healing costs and delivers:

- **injected** -- what the chaos engine did (counter-based draws, so
  the counts are a pure function of the plan: the CI gate checks them
  for *exact* equality against the committed report);
- **detected** -- what the supervisors saw and recovered from
  (crashes, hangs, drops, corruptions, restarts, retries);
- **recovery** -- MTTR (first failed attempt of an epoch to its
  successful recompute) and availability (1 - degraded time / run
  time).

Before anything is measured, a correctness pass asserts the PR's
acceptance bar on the benchmark configuration itself: the chaos run's
replayed delta stream and every retained snapshot are byte-identical
to a fault-free run at the same epoch.

Usage::

    python benchmarks/bench_serving_faults.py           # full + quick, writes the report
    python benchmarks/bench_serving_faults.py --quick   # CI smoke sizes, no write
    python benchmarks/bench_serving_faults.py --quick --check BENCH_serving_faults.json

``--check`` fails (exit 1) when the injected counts differ from the
committed report (a determinism break) or availability falls below half
its committed value (a recovery regression).  MTTR is reported but not
gated -- it is wall-clock and machine-dependent.
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import sys
from typing import Any, Dict, List, Optional

_HERE = pathlib.Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(_SRC))
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

import record

from repro.serving.chaos import ChaosPlan
from repro.serving.clients import percentile, run_load
from repro.serving.errors import EpochComputeFailed, ShardUnavailableError
from repro.serving.router import MapService
from repro.serving.session import SessionCompute, SessionConfig
from repro.serving.supervisor import SupervisorConfig
from repro.serving.wire import DeltaReplayer, encode_snapshot

BENCH_JSON = _HERE.parent / "BENCH_serving_faults.json"

#: The one seed every run uses: the injected-failure counts below are
#: reproducible *because* the draws are counter-based, and the CI gate
#: checks them exactly.
CHAOS_SEED = 6

FULL = dict(
    n_nodes=600, subscribers=100, snapshot_clients=8, epochs=10, shards=2,
    compute_timeout=0.75,
)
QUICK = dict(
    n_nodes=300, subscribers=25, snapshot_clients=4, epochs=6, shards=0,
    compute_timeout=0.3,
)


def _config(n_nodes: int) -> SessionConfig:
    return SessionConfig(query_id="bench", n_nodes=n_nodes, scenario="tide")


def _supervision(compute_timeout: float) -> SupervisorConfig:
    return SupervisorConfig(
        compute_timeout=compute_timeout,
        probe_timeout=1.0,
        backoff_base=0.002,
        backoff_cap=0.02,
    )


def verify(sizes: Dict[str, Any]) -> None:
    """Untimed acceptance pass: chaos costs retries, never bytes."""
    config = _config(sizes["n_nodes"])
    compute = SessionCompute(config)
    truth = []
    for e in range(1, sizes["epochs"] + 1):
        r = compute.epoch(e)
        truth.append(encode_snapshot(e, r["records"], r["sink"]))

    async def main():
        service = MapService(
            [config],
            n_shards=sizes["shards"],
            supervision=_supervision(sizes["compute_timeout"]),
            chaos=ChaosPlan.moderate(seed=CHAOS_SEED),
            retention=sizes["epochs"],
        )
        session = service.session("bench")
        replayer = DeltaReplayer()
        sub = service.subscribe("bench", since_epoch=0)
        rounds = 0
        while session.latest_epoch < sizes["epochs"]:
            rounds += 1
            assert rounds <= 60 * sizes["epochs"], "chaos run not converging"
            try:
                await session.advance()
            except (EpochComputeFailed, ShardUnavailableError):
                await asyncio.sleep(0.002)
        for e in range(1, sizes["epochs"] + 1):
            replayer.apply(await sub.__anext__())
            assert replayer.render() == truth[e - 1], f"replay differs at {e}"
            assert service.snapshot("bench", epoch=e).payload == truth[e - 1]
        sub.close()
        injected = sum(service.pool.chaos.stats.to_dict().values())
        assert injected > 0, "the seeded plan injected nothing"
        await service.stop()

    asyncio.run(main())


def measure(sizes: Dict[str, Any]) -> Dict[str, Any]:
    """One chaos load run -> the ``serving_faults`` report section."""

    async def main():
        service = MapService(
            [_config(sizes["n_nodes"])],
            n_shards=sizes["shards"],
            supervision=_supervision(sizes["compute_timeout"]),
            chaos=ChaosPlan.moderate(seed=CHAOS_SEED),
            queue_depth=max(16, sizes["epochs"] + 2),
        )
        report = await run_load(
            service,
            "bench",
            epochs=sizes["epochs"],
            n_snapshot_clients=sizes["snapshot_clients"],
            n_subscribers=sizes["subscribers"],
        )
        return service, report

    service, report = asyncio.run(main())
    assert report.epochs == sizes["epochs"], "not every epoch recovered"

    shards = service.pool.status()
    recovery_ms: List[float] = []
    for sup in service.pool.supervisors:
        recovery_ms.extend(sup.health.recovery_ms)
    detected = {
        key: sum(s[key] for s in shards)
        for key in ("crashes", "hangs", "drops", "corruptions",
                    "retries", "restarts", "failures", "breaker_fast_fails")
    }
    availability = (
        1.0 - report.degraded_s / report.elapsed_s if report.elapsed_s else 1.0
    )
    section = {
        "epochs": report.epochs,
        "elapsed_s": round(report.elapsed_s, 3),
        "chaos": {"intensity": 1.0, "seed": CHAOS_SEED},
        "injected": service.pool.chaos.stats.to_dict(),
        "detected": detected,
        "recovery": {
            "recoveries": len(recovery_ms),
            "mttr_ms_mean": round(
                sum(recovery_ms) / len(recovery_ms), 3
            ) if recovery_ms else 0.0,
            "mttr_ms_p95": round(percentile(recovery_ms, 0.95), 3),
            "availability": round(availability, 4),
        },
        "client_impact": {
            "epochs_failed": report.epochs_failed,
            "stale_snapshots": report.stale_snapshots,
            "degraded_s": round(report.degraded_s, 3),
            "deltas_delivered": report.deltas_delivered,
        },
    }
    inj, rec = section["injected"], section["recovery"]
    print(
        f"injected   : {inj['kills']} kills, {inj['hangs']} hangs, "
        f"{inj['drops']} drops, {inj['corruptions']} corruptions"
    )
    print(
        f"detected   : {detected['crashes']} crashes, {detected['hangs']} hangs, "
        f"{detected['drops']} drops, {detected['corruptions']} corruptions, "
        f"{detected['restarts']} restarts"
    )
    print(
        f"recovery   : {rec['recoveries']} recoveries, "
        f"MTTR mean {rec['mttr_ms_mean']:.1f} ms / p95 {rec['mttr_ms_p95']:.1f} ms, "
        f"availability {rec['availability']:.2%}"
    )
    return section


def check_against(
    committed: Optional[Dict], measured: Dict[str, Any], quick: bool
) -> List[str]:
    """Gate messages (empty = pass): injection determinism + availability."""
    if committed is None:
        return ["no committed report to check against"]
    section = committed.get("quick", {}) if quick else committed
    baseline = section.get("serving_faults")
    if not baseline:
        return ["committed report has no serving_faults section"]
    problems = []
    if measured["injected"] != baseline["injected"]:
        problems.append(
            f"injected counts changed: measured {measured['injected']} "
            f"vs committed {baseline['injected']} -- the seeded chaos "
            f"stream is no longer deterministic"
        )
    committed_avail = baseline["recovery"]["availability"]
    floor = committed_avail / 2.0
    got = measured["recovery"]["availability"]
    if got < floor:
        problems.append(
            f"availability {got:.2%} < floor {floor:.2%} "
            f"(committed {committed_avail:.2%})"
        )
    if measured["epochs"] != baseline["epochs"]:
        problems.append(
            f"run published {measured['epochs']} epochs, committed run "
            f"published {baseline['epochs']}"
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke sizes only; does not write the report")
    ap.add_argument("--check", metavar="PATH", default=None,
                    help="compare against a committed report; exit 1 on an "
                    "injection-determinism break or halved availability")
    args = ap.parse_args(argv)

    print("verifying chaos-run byte-identity vs fault-free truth ...")
    verify(QUICK)

    if args.quick:
        print(f"\nmeasuring quick chaos run ({QUICK['epochs']} epochs, inline) ...")
        quick_faults = measure(QUICK)
        measured, rep = quick_faults, None
    else:
        print(
            f"\nmeasuring full chaos run ({FULL['epochs']} epochs, "
            f"{FULL['shards']} shards) ..."
        )
        full_faults = measure(FULL)
        print(f"\nmeasuring quick chaos run ({QUICK['epochs']} epochs, inline) ...")
        quick_faults = measure(QUICK)
        rep = record.report(
            FULL["subscribers"],
            kernels={},
            timing="one seeded chaos run, wall clock (MTTR ms)",
            serving_faults=full_faults,
            quick={"n": QUICK["subscribers"], "serving_faults": quick_faults},
        )
        del rep["kernels"]  # this report has no kernel section
        measured = full_faults

    if args.check:
        problems = check_against(
            record.load_report(pathlib.Path(args.check)), measured, args.quick
        )
        if problems:
            print("\nfault-recovery regression vs committed report:")
            for p in problems:
                print(f"  {p}")
            return 1
        print(f"\nno fault-recovery regression vs {args.check}")
    elif rep is not None:
        record.write_report(BENCH_JSON, rep)
        print(f"\nwrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
