"""fig_predict bench: predictive suppression's traffic/staleness/accuracy.

Claims pinned here (CI sizes; the committed 2x / one-grid-cell
acceptance point lives in ``BENCH_predict.json``, re-measured by
``bench_predict.py``):

- prediction delivers fewer reports than the paired baseline on the
  steady-drift front (the workload the knob targets), and more
  tolerance never delivers more reports;
- the observed staleness never exceeds the heartbeat cap on any
  measured point (the hard bound);
- suppression actually engages (extrapolated cache entries > 0) on
  every drifting point.
"""

from repro.experiments.fig_predict import run_fig_predict

HEARTBEAT = 6


def test_fig_predict_traffic_vs_staleness(benchmark, record_result, sweep_jobs):
    tolerances = (0.55, 1.1)
    result = benchmark.pedantic(
        lambda: run_fig_predict(
            seeds=(7,),
            n=400,
            epochs=8,
            scenarios=("tide", "front"),
            tolerances=tolerances,
            heartbeat=HEARTBEAT,
            jobs=sweep_jobs,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    by_scenario = {}
    for row in result.rows:
        by_scenario.setdefault(row["scenario"], []).append(row)
    assert set(by_scenario) == {"tide", "front"}
    for scenario, rows in by_scenario.items():
        rows.sort(key=lambda r: r["tolerance"])
        for r in rows:
            # The staleness bound is hard; suppression must engage.
            assert r["staleness_max"] <= HEARTBEAT, (scenario, r)
            assert r["predicted"] > 0, (scenario, r)
        # More tolerance never delivers more reports.
        reports = [r["reports_pred"] for r in rows]
        assert reports == sorted(reports, reverse=True), (scenario, reports)
    # The steady-drift front is where the knob pays: reduction on every
    # tolerance, with a clear margin at the operating point even at CI
    # size.  (Oscillating scenarios at tight tolerances may deliver
    # slightly MORE than baseline -- the LMS overshoots each reversal --
    # which is exactly what the sweep is there to show.)
    for r in by_scenario["front"]:
        assert r["reduction"] > 1.0, r
    front = [r for r in by_scenario["front"] if r["tolerance"] == 1.1]
    assert front[0]["reduction"] > 1.3, front
