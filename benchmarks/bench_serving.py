"""Serving-layer load benchmark -> ``BENCH_serving.json``.

Drives :func:`repro.serving.clients.run_load` against a
:class:`~repro.serving.router.MapService`: one tide-scenario session
advancing epochs while simulated clients hammer both paths --

- snapshot clients measuring ``snapshot()`` request throughput/latency,
- delta subscribers measuring publish-to-delivery latency.

The full run serves >= 1200 concurrent subscribers (the ISSUE
acceptance load) over a 2-shard pool; the quick run is an inline
CI-sized smoke.  Before anything is timed, a correctness pass asserts
the byte-identity contract (a replayed delta stream renders the served
snapshot exactly) on the benchmark configuration itself.

Usage::

    python benchmarks/bench_serving.py            # full + quick, writes BENCH_serving.json
    python benchmarks/bench_serving.py --quick    # CI smoke sizes only, no write
    python benchmarks/bench_serving.py --quick --check BENCH_serving.json
                                                  # fail on a >4x throughput regression

``--check`` compares measured snapshot req/s and delta deliveries/s
against the committed report (the ``quick`` section when ``--quick`` is
given) and exits 1 if either falls below a quarter of its committed
value.  Latency percentiles are reported but never gated -- they are
too machine-dependent for CI.
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import sys
from typing import Any, Dict, List, Optional

_HERE = pathlib.Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(_SRC))
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

import record

from repro.serving.clients import run_load
from repro.serving.router import MapService
from repro.serving.session import SessionConfig
from repro.serving.wire import DeltaReplayer

BENCH_JSON = _HERE.parent / "BENCH_serving.json"

#: Full-size load: the ISSUE acceptance bar is >= 1000 subscribers.
FULL = dict(n_nodes=600, subscribers=1200, snapshot_clients=64, epochs=6, shards=2)
QUICK = dict(n_nodes=300, subscribers=200, snapshot_clients=16, epochs=4, shards=0)


def _config(n_nodes: int) -> SessionConfig:
    return SessionConfig(query_id="bench", n_nodes=n_nodes, scenario="tide")


def verify(n_nodes: int, epochs: int) -> None:
    """Untimed correctness pass: replayed deltas render served bytes."""

    async def main():
        async with MapService([_config(n_nodes)]) as service:
            session = service.session("bench")
            replayer = DeltaReplayer()
            sub = service.subscribe("bench", since_epoch=0)
            for _ in range(epochs):
                await session.advance()
                replayer.apply(await sub.__anext__())
                assert replayer.render() == service.snapshot("bench").payload
            sub.close()

    asyncio.run(main())


def measure(sizes: Dict[str, int]) -> Dict[str, Any]:
    """One timed load run -> the ``serving`` section of the report."""

    async def main():
        service = MapService(
            [_config(sizes["n_nodes"])],
            n_shards=sizes["shards"],
            queue_depth=max(16, sizes["epochs"] + 2),
        )
        return await run_load(
            service,
            "bench",
            epochs=sizes["epochs"],
            n_snapshot_clients=sizes["snapshot_clients"],
            n_subscribers=sizes["subscribers"],
        )

    report = asyncio.run(main())
    print(report.to_table())
    return report.to_dict()


def check_against(
    committed: Optional[Dict], measured: Dict[str, Any], quick: bool
) -> List[str]:
    """Regression messages (empty = pass): throughput < committed/4."""
    if committed is None:
        return ["no committed report to check against"]
    section = committed.get("quick", {}) if quick else committed
    baseline = section.get("serving")
    if not baseline:
        return ["committed report has no serving section"]
    problems = []
    for label, path in (
        ("snapshot req/s", ("snapshot", "rps")),
        ("delta deliveries/s", ("delta_stream", "deliveries_per_s")),
    ):
        want = baseline[path[0]][path[1]] / 4.0
        got = measured[path[0]][path[1]]
        if got < want:
            problems.append(
                f"{label}: measured {got:.0f}/s < floor {want:.0f}/s "
                f"(committed {baseline[path[0]][path[1]]:.0f}/s)"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke sizes only; does not write the report")
    ap.add_argument("--check", metavar="PATH", default=None,
                    help="compare against a committed report; exit 1 if "
                    "throughput fell below a quarter of its committed value")
    args = ap.parse_args(argv)

    print("verifying replay/snapshot byte-identity ...")
    verify(QUICK["n_nodes"], QUICK["epochs"])

    if args.quick:
        print(f"\nmeasuring quick load ({QUICK['subscribers']} subscribers, inline) ...")
        quick_serving = measure(QUICK)
        measured, rep = quick_serving, None
    else:
        print(
            f"\nmeasuring full load ({FULL['subscribers']} subscribers, "
            f"{FULL['shards']} shards) ..."
        )
        full_serving = measure(FULL)
        print(f"\nmeasuring quick load ({QUICK['subscribers']} subscribers, inline) ...")
        quick_serving = measure(QUICK)
        rep = record.report(
            FULL["subscribers"],
            kernels={},
            timing="one load run, wall clock (latencies ms, throughput /s)",
            serving=full_serving,
            quick={"n": QUICK["subscribers"], "serving": quick_serving},
        )
        del rep["kernels"]  # this report has no kernel section
        measured = full_serving

    if args.check:
        problems = check_against(
            record.load_report(pathlib.Path(args.check)), measured, args.quick
        )
        if problems:
            print("\nthroughput regression vs committed report:")
            for p in problems:
                print(f"  {p}")
            return 1
        print(f"\nno throughput regression vs {args.check}")
    elif rep is not None:
        record.write_report(BENCH_JSON, rep)
        print(f"\nwrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
