"""Fig. 12 bench: isoline Hausdorff distance vs density (a) / failures (b).

Paper claims: irregularity intensifies as density drops and as failures
grow; Iso-Map's output is more regular on a grid deployment than on a
random one (especially when sparse); TinyDB is relatively stable against
density (grid-size-proportional) but proportionally more vulnerable to
failures.
"""

import math

from repro.experiments.fig12_hausdorff import run_fig12a, run_fig12b


def test_fig12a_hausdorff_vs_density(benchmark, record_result, sweep_jobs):
    result = benchmark.pedantic(
        lambda: run_fig12a(densities=(0.25, 1.0, 4.0), seeds=(1, 2), jobs=sweep_jobs),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    rows = {r["density"]: r for r in result.rows}
    for series in ("isomap_random", "isomap_grid", "tinydb"):
        assert not math.isnan(rows[1.0][series])
        # Denser networks give more regular isolines.
        assert rows[4.0][series] < rows[0.25][series]
    # Grid deployment regularises Iso-Map's output in the sparse regime.
    assert rows[0.25]["isomap_grid"] < rows[0.25]["isomap_random"]


def test_fig12b_hausdorff_vs_failures(benchmark, record_result, sweep_jobs):
    result = benchmark.pedantic(
        lambda: run_fig12b(failures=(0.0, 0.2, 0.4), seeds=(1, 2), jobs=sweep_jobs),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    rows = {r["failure_ratio"]: r for r in result.rows}
    # Failures increase irregularity for both protocols.
    assert rows[0.4]["isomap_random"] > rows[0.0]["isomap_random"]
    assert rows[0.4]["tinydb"] > rows[0.0]["tinydb"]
    # TinyDB is proportionally more failure-vulnerable (its failure-free
    # irregularity is grid-limited and tiny, so failures multiply it more).
    tdb_growth = rows[0.4]["tinydb"] / rows[0.0]["tinydb"]
    iso_growth = rows[0.4]["isomap_random"] / rows[0.0]["isomap_random"]
    assert tdb_growth > iso_growth
