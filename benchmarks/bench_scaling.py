"""Million-node scaling bench: tiled-epoch feasibility with bounded memory.

Produces ``BENCH_scaling.json``: one faulted, tile-sharded Iso-Map epoch
per size from the paper's 2500-node operating point up to n = 10^6, each
measured in a *fresh spawned process* so its ``peak_rss_mb`` is the
point's own high-water mark (a forked child would inherit the parent's).
TinyDB rides along up to n = 40000, past which its n x sqrt(n)-hop epoch
is infeasible and its columns go null.  The fitted log-log exponent of
the Iso-Map report count is the headline (O(sqrt(n)) predicts 0.5).

Before any timing, the bench re-proves the tiling contract at the
paper's operating point: the tiled epoch must be bit-identical to the
untiled one for two tile layouts (the ISSUE acceptance pin).

Usage::

    python benchmarks/bench_scaling.py                  # full run, writes JSON
    python benchmarks/bench_scaling.py --quick          # CI sizes only
    python benchmarks/bench_scaling.py --quick --check BENCH_scaling.json
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import math
import pathlib
import platform
import sys
import time
from typing import Any, Dict, List, Optional

_HERE = pathlib.Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(_SRC))
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

import numpy as np

import record

from repro.baselines import TinyDBProtocol
from repro.energy import energy_from_costs
from repro.experiments.common import default_levels, harbor_network, run_isomap
from repro.experiments.fig14_traffic import (
    TINYDB_MAX_N,
    _loglog_slope,
    auto_tile_size,
)
from repro.field import make_harbor_field
from repro.network.faults import FaultPlan

BENCH_JSON = _HERE.parent / "BENCH_scaling.json"

#: Full sweep sizes (density 1: side = sqrt(n)).
FULL_NS = (2500, 10000, 40000, 100000, 1000000)

#: CI smoke sizes.
QUICK_NS = (2500, 10000)

#: Shared operating point of every measured epoch.
FAULT_INTENSITY = 0.5
SEED = 1

#: Memory gate for the quick points: n = 10000 fits comfortably under
#: this; a regression that re-materialises a global epoch or leaks the
#: skeleton cache blows through it.
QUICK_RSS_CEILING_MB = 600.0


# ----------------------------------------------------------------------
# Verification: tiled == untiled at the paper's operating point
# ----------------------------------------------------------------------


def _epoch_evidence(n: int, tile_size: Optional[float]):
    net = harbor_network(n, "random", seed=SEED, field=make_harbor_field(side=round(math.sqrt(n))))
    run = run_isomap(
        net, fault_plan=FaultPlan.moderate(seed=5), tile_size=tile_size
    )
    costs = run.costs
    return (
        hashlib.sha256(costs.tx_bytes.tobytes()).hexdigest(),
        hashlib.sha256(costs.rx_bytes.tobytes()).hexdigest(),
        hashlib.sha256(costs.ops.tobytes()).hexdigest(),
        dataclasses.asdict(run.degradation),
    )


def verify_tiling(n: int = 2500) -> None:
    """Assert tiled epochs are bit-identical to untiled for two layouts."""
    base = _epoch_evidence(n, None)
    for tile_size in (10.0, 18.0):
        assert _epoch_evidence(n, tile_size) == base, (
            f"tile_size={tile_size} diverged from the untiled epoch at n={n}"
        )


# ----------------------------------------------------------------------
# One measured point (runs inside a fresh spawned process)
# ----------------------------------------------------------------------


def _scaling_point(n: int, fault_intensity: float, seed: int) -> Dict[str, Any]:
    side = round(math.sqrt(n))
    field = make_harbor_field(side=side)
    plan = (
        FaultPlan.at_intensity(fault_intensity, seed=seed)
        if fault_intensity > 0
        else None
    )
    tile_size = auto_tile_size(side)
    t0 = time.perf_counter()
    net = harbor_network(n, "random", seed=seed, field=field)
    topology_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    iso = run_isomap(net, fault_plan=plan, tile_size=tile_size)
    epoch_s = time.perf_counter() - t0
    out: Dict[str, Any] = {
        "n": n,
        "side": side,
        "tile_size": round(tile_size, 3),
        "diameter_hops": int(net.diameter_hops),
        "isomap_reports": int(iso.costs.reports_generated),
        "isomap_kb": round(iso.costs.total_traffic_kb(), 3),
        "isomap_mj": round(energy_from_costs(iso.costs).per_node_mean_mj(), 4),
        "tinydb_kb": None,
        "tinydb_mj": None,
        "topology_s": round(topology_s, 2),
        "epoch_s": round(epoch_s, 2),
    }
    if n <= TINYDB_MAX_N:
        grid = harbor_network(n, "grid", seed=seed, field=field)
        tdb = TinyDBProtocol(default_levels(), fault_plan=plan).run(grid)
        out["tinydb_kb"] = round(tdb.costs.total_traffic_kb(), 3)
        out["tinydb_mj"] = round(
            energy_from_costs(tdb.costs).per_node_mean_mj(), 4
        )
    return out


def _point_worker(conn, n: int, fault_intensity: float, seed: int) -> None:
    """Spawn target: measure one point and report it with its peak RSS."""
    try:
        out = _scaling_point(n, fault_intensity, seed)
        out["peak_rss_mb"] = round(record.peak_rss_mb(), 1)
        conn.send(out)
    except Exception as exc:  # pragma: no cover - surfaced to the parent
        conn.send({"error": f"n={n}: {exc!r}"})
    finally:
        conn.close()


def measure_points(ns) -> List[Dict[str, Any]]:
    points = []
    for n in ns:
        print(f"  n={n} ...", flush=True)
        out = record.run_isolated(_point_worker, n, FAULT_INTENSITY, SEED)
        if "error" in out:
            raise RuntimeError(out["error"])
        print(
            f"    reports={out['isomap_reports']} epoch={out['epoch_s']}s "
            f"peak_rss={out['peak_rss_mb']}MB"
        )
        points.append(out)
    return points


def fitted_exponent(points: List[Dict[str, Any]]) -> float:
    return round(
        _loglog_slope(
            [p["n"] for p in points], [p["isomap_reports"] for p in points]
        ),
        4,
    )


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------


def check_against(
    committed: Optional[Dict], measured: List[Dict[str, Any]], quick: bool
) -> List[str]:
    """Regression messages (empty = pass).

    Report counts and diameters are fully deterministic per (n, seed),
    so they must match the committed points exactly; peak RSS only has
    to stay under the committed ceiling (timings are machine-dependent
    and not gated).
    """
    if committed is None:
        return ["no committed report to check against"]
    section = committed.get("quick", {}) if quick else committed
    baseline = {p["n"]: p for p in section.get("points", [])}
    ceiling = section.get("rss_ceiling_mb", QUICK_RSS_CEILING_MB)
    problems = []
    for p in measured:
        ref = baseline.get(p["n"])
        if ref is None:
            problems.append(f"n={p['n']}: missing from committed report")
            continue
        for key in ("isomap_reports", "diameter_hops"):
            if p[key] != ref[key]:
                problems.append(
                    f"n={p['n']}: {key} {p[key]} != committed {ref[key]}"
                )
        if p["peak_rss_mb"] > ceiling:
            problems.append(
                f"n={p['n']}: peak_rss {p['peak_rss_mb']} MB over the "
                f"{ceiling} MB ceiling"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke sizes only; does not write the report")
    ap.add_argument("--check", metavar="PATH", default=None,
                    help="compare against a committed report; exit 1 on any "
                    "determinism mismatch or peak-RSS ceiling breach")
    args = ap.parse_args(argv)

    print("verifying tiled == untiled at n=2500 (two layouts) ...")
    verify_tiling()
    print("  bit-identical")

    quick_points = None
    rep = None
    if args.quick:
        print(f"measuring quick sizes {QUICK_NS} ...")
        quick_points = measure_points(QUICK_NS)
        measured = quick_points
    else:
        print(f"measuring full sizes {FULL_NS} ...")
        full_points = measure_points(FULL_NS)
        print(f"measuring quick sizes {QUICK_NS} ...")
        quick_points = measure_points(QUICK_NS)
        exponent = fitted_exponent(full_points)
        print(f"fitted Iso-Map report exponent: n^{exponent}")
        rep = {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "config": {
                "seed": SEED,
                "fault_intensity": FAULT_INTENSITY,
                "tile_rule": "auto: max(1.5, side / 8)",
                "tinydb_max_n": TINYDB_MAX_N,
                "memory": "peak_rss_mb per point in a fresh spawned process",
            },
            "fitted_report_exponent": exponent,
            "points": full_points,
            "quick": {
                "rss_ceiling_mb": QUICK_RSS_CEILING_MB,
                "fitted_report_exponent": fitted_exponent(quick_points),
                "points": quick_points,
            },
        }
        measured = full_points

    if args.check:
        problems = check_against(
            record.load_report(pathlib.Path(args.check)), measured, args.quick
        )
        if problems:
            print("\nregression vs committed report:")
            for p in problems:
                print(f"  {p}")
            return 1
        print(f"\nno regression vs {args.check}")
    elif rep is not None:
        record.write_report(BENCH_JSON, rep)
        print(f"\nwrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
