"""Ground-truth contours: isolevel helpers, band classification, marching squares.

The accuracy metric (Fig. 11) compares a protocol's contour map against the
*true* map of the field, band by band; the Hausdorff metric (Fig. 12)
compares estimated isolines against the *true* isolines.  Both ground
truths come from here.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro import profiling
from repro.field.base import ScalarField
from repro.geometry import Vec


def isolevels_for(lo: float, hi: float, granularity: float) -> List[float]:
    """The isolevels ``v_i = lo + i * T`` inside ``[lo, hi]`` (Section 3.2).

    Raises:
        ValueError: on non-positive granularity or an empty range.
    """
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    if hi < lo:
        raise ValueError("empty data space: hi < lo")
    levels = []
    i = 0
    while True:
        v = lo + i * granularity
        if v > hi + 1e-12:
            break
        levels.append(v)
        i += 1
    return levels


def band_of(value: float, levels: Sequence[float]) -> int:
    """The contour band of ``value``: the number of isolevels it reaches.

    Band 0 is below the lowest isolevel; band ``len(levels)`` is at or
    above the highest.  Contour *regions* in the paper are exactly the
    preimages of these bands.
    """
    band = 0
    for v in levels:
        if value >= v:
            band += 1
        else:
            break
    return band


def classify_raster(
    field: ScalarField, levels: Sequence[float], nx: int, ny: int
) -> np.ndarray:
    """Band index of every cell of an ``nx x ny`` raster of the field.

    Shape ``(ny, nx)``, dtype int -- the ground-truth contour map at raster
    resolution.
    """
    grid = field.sample_grid(nx, ny)
    out = np.zeros(grid.shape, dtype=int)
    for v in sorted(levels):
        out += (grid >= v).astype(int)
    return out


def extract_isolines(
    field: ScalarField, level: float, nx: int = 200, ny: int = 200
) -> List[List[Vec]]:
    """True isolines of ``field`` at ``level`` via marching squares.

    The field is sampled on an ``nx x ny`` grid of cell centres; each 2x2
    sample square contributes 0-2 linearly interpolated crossing segments,
    which are then chained into polylines.  Closed isolines come back as
    closed rings (first point repeated at the end is NOT included; closure
    is implicit); isolines that leave the field come back as open chains.

    The grid cells are classified in one vectorized pass (bit-compatible
    with :func:`extract_isolines_reference`, the retained scalar loop) and
    the result is memoised on the field instance -- the evaluation
    pipeline asks for the same ground-truth isolines once per protocol
    under comparison, and fields are immutable by construction.
    """
    cache = field.__dict__.setdefault("_isolines_cache", {})
    key = (float(level), int(nx), int(ny))
    hit = cache.get(key)
    if hit is None:
        grid = field.sample_grid(nx, ny)
        with profiling.stage("contours.marching_squares"):
            segments = _marching_squares_segments(field, grid, level, nx, ny)
        with profiling.stage("contours.chain"):
            hit = chain_segments(segments)
        cache[key] = hit
    return hit


def extract_isolines_reference(
    field: ScalarField, level: float, nx: int = 200, ny: int = 200
) -> List[List[Vec]]:
    """Scalar reference for :func:`extract_isolines` (per-cell loop).

    Retained for the differential tests and the sink benchmark; no
    memoisation, and every 2x2 square goes through
    :func:`_square_segments` individually.
    """
    grid = field.sample_grid(nx, ny)
    b = field.bounds
    dx = b.width / nx
    dy = b.height / ny
    xs = b.xmin + (np.arange(nx) + 0.5) * dx
    ys = b.ymin + (np.arange(ny) + 0.5) * dy

    segments: List[Tuple[Vec, Vec]] = []
    for j in range(ny - 1):
        for i in range(nx - 1):
            v00 = grid[j, i]
            v10 = grid[j, i + 1]
            v01 = grid[j + 1, i]
            v11 = grid[j + 1, i + 1]
            segments.extend(
                _square_segments(
                    level,
                    (float(xs[i]), float(ys[j])),
                    dx,
                    dy,
                    v00,
                    v10,
                    v01,
                    v11,
                )
            )
    return chain_segments(segments)


# ----------------------------------------------------------------------
# Marching-squares internals
# ----------------------------------------------------------------------

#: Case -> crossing segments as index pairs into the per-cell edge-point
#: table ``[bottom, right, top, left]``.  Mirrors the dict in
#: :func:`_square_segments` exactly (order included); saddles (5, 10) are
#: resolved separately against the centre average.
_CASE_EDGES: Dict[int, Tuple[Tuple[int, int], ...]] = {
    1: ((3, 0),),
    2: ((0, 1),),
    3: ((3, 1),),
    4: ((1, 2),),
    6: ((0, 2),),
    7: ((3, 2),),
    8: ((2, 3),),
    9: ((2, 0),),
    11: ((2, 1),),
    12: ((1, 3),),
    13: ((1, 0),),
    14: ((0, 3),),
}
_SADDLE_EDGES: Dict[Tuple[int, bool], Tuple[Tuple[int, int], ...]] = {
    (5, True): ((3, 2), (1, 0)),
    (5, False): ((3, 0), (1, 2)),
    (10, True): ((0, 1), (2, 3)),
    (10, False): ((0, 3), (2, 1)),
}


def _marching_squares_segments(
    field: ScalarField, grid: np.ndarray, level: float, nx: int, ny: int
) -> List[Tuple[Vec, Vec]]:
    """All crossing segments of the raster, classified in one array pass.

    Produces the identical segment list -- same floats, same order -- as
    the reference row-major loop over :func:`_square_segments`: cells are
    emitted in (j, i) order (``np.nonzero`` is row-major) and the edge
    interpolation repeats the scalar formulas elementwise.
    """
    b = field.bounds
    dx = b.width / nx
    dy = b.height / ny
    xs = b.xmin + (np.arange(nx) + 0.5) * dx
    ys = b.ymin + (np.arange(ny) + 0.5) * dy

    v00 = grid[:-1, :-1]
    v10 = grid[:-1, 1:]
    v01 = grid[1:, :-1]
    v11 = grid[1:, 1:]
    case = (
        (v00 >= level).astype(np.int8)
        | ((v10 >= level).astype(np.int8) << 1)
        | ((v11 >= level).astype(np.int8) << 2)
        | ((v01 >= level).astype(np.int8) << 3)
    )
    jj, ii = np.nonzero((case != 0) & (case != 15))
    if not len(jj):
        return []
    cases = case[jj, ii]
    a00 = v00[jj, ii]
    a10 = v10[jj, ii]
    a01 = v01[jj, ii]
    a11 = v11[jj, ii]
    x0 = xs[ii]
    y0 = ys[jj]
    # Square corners exactly as the scalar code builds them: the far
    # corner is (x0 + dx, y0 + dy) computed from this cell's origin.
    x1 = x0 + dx
    y1 = y0 + dy

    def interp(va, vb):
        same = va == vb
        denom = np.where(same, 1.0, vb - va)
        t = (level - va) / denom
        return np.where(same, 0.5, np.clip(t, 0.0, 1.0))

    tb = interp(a00, a10)  # bottom: p00 -> p10
    tr = interp(a10, a11)  # right:  p10 -> p11
    tt = interp(a01, a11)  # top:    p01 -> p11
    tl = interp(a00, a01)  # left:   p00 -> p01
    # pa + t * (pb - pa), with pb - pa taken on the already-rounded
    # corner coordinates (x1 - x0, not dx) to match the scalar path.
    ex = np.stack(
        [x0 + tb * (x1 - x0), x1 + tr * (x1 - x1), x0 + tt * (x1 - x0), x0 + tl * (x0 - x0)],
        axis=1,
    ).tolist()
    ey = np.stack(
        [y0 + tb * (y0 - y0), y0 + tr * (y1 - y0), y1 + tt * (y1 - y1), y0 + tl * (y1 - y0)],
        axis=1,
    ).tolist()

    saddle = (cases == 5) | (cases == 10)
    centre_hi = np.zeros(len(cases), dtype=bool)
    if saddle.any():
        centre = (a00 + a10 + a01 + a11) / 4.0
        centre_hi = centre >= level

    segments: List[Tuple[Vec, Vec]] = []
    cases_list = cases.tolist()
    hi_list = centre_hi.tolist()
    for k, c in enumerate(cases_list):
        pairs = _CASE_EDGES.get(c)
        if pairs is None:
            pairs = _SADDLE_EDGES[(c, hi_list[k])]
        exk = ex[k]
        eyk = ey[k]
        for ea, eb in pairs:
            segments.append(((exk[ea], eyk[ea]), (exk[eb], eyk[eb])))
    return segments


def _interp(level: float, pa: Vec, pb: Vec, va: float, vb: float) -> Vec:
    """Point on segment pa-pb where the value linearly crosses ``level``."""
    if va == vb:
        t = 0.5
    else:
        t = (level - va) / (vb - va)
        t = max(0.0, min(1.0, t))
    return (pa[0] + t * (pb[0] - pa[0]), pa[1] + t * (pb[1] - pa[1]))


def _square_segments(
    level: float,
    origin: Vec,
    dx: float,
    dy: float,
    v00: float,
    v10: float,
    v01: float,
    v11: float,
) -> List[Tuple[Vec, Vec]]:
    """Crossing segments inside one 2x2 sample square.

    Corner layout (sample positions)::

        p01 -- p11        top edge:    p01-p11
         |      |          bottom:     p00-p10
        p00 -- p10         left/right: p00-p01 / p10-p11
    """
    x0, y0 = origin
    p00 = (x0, y0)
    p10 = (x0 + dx, y0)
    p01 = (x0, y0 + dy)
    p11 = (x0 + dx, y0 + dy)

    case = 0
    if v00 >= level:
        case |= 1
    if v10 >= level:
        case |= 2
    if v11 >= level:
        case |= 4
    if v01 >= level:
        case |= 8

    if case in (0, 15):
        return []

    bottom = _interp(level, p00, p10, v00, v10)
    right = _interp(level, p10, p11, v10, v11)
    top = _interp(level, p01, p11, v01, v11)
    left = _interp(level, p00, p01, v00, v01)

    table: Dict[int, List[Tuple[Vec, Vec]]] = {
        1: [(left, bottom)],
        2: [(bottom, right)],
        3: [(left, right)],
        4: [(right, top)],
        6: [(bottom, top)],
        7: [(left, top)],
        8: [(top, left)],
        9: [(top, bottom)],
        11: [(top, right)],
        12: [(right, left)],
        13: [(right, bottom)],
        14: [(bottom, left)],
    }
    if case in table:
        return table[case]

    # Saddle cases 5 and 10: disambiguate with the centre average.
    centre = (v00 + v10 + v01 + v11) / 4.0
    if case == 5:
        if centre >= level:
            return [(left, top), (right, bottom)]
        return [(left, bottom), (right, top)]
    # case == 10
    if centre >= level:
        return [(bottom, right), (top, left)]
    return [(bottom, left), (top, right)]


def chain_segments(
    segments: Sequence[Tuple[Vec, Vec]], tol: float = 1e-9
) -> List[List[Vec]]:
    """Chain point-pair segments into maximal polylines.

    Greedy endpoint matching on a hash of rounded coordinates; each segment
    is used once.  Returns polylines as vertex lists; a closed ring repeats
    no vertex (closure is implicit when the last point equals the first --
    callers can test that).
    """
    if not segments:
        return []

    def key(p: Vec) -> Tuple[int, int]:
        return (int(round(p[0] / max(tol, 1e-12))), int(round(p[1] / max(tol, 1e-12))))

    # endpoint key -> list of (segment index, endpoint selector)
    index: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for k, (a, b) in enumerate(segments):
        index.setdefault(key(a), []).append((k, 0))
        index.setdefault(key(b), []).append((k, 1))

    used = [False] * len(segments)
    polylines: List[List[Vec]] = []

    def take_from(p: Vec) -> Tuple[Vec, Vec] | None:
        """Pop an unused segment incident to ``p``; return it oriented away."""
        for k, end in index.get(key(p), ()):
            if used[k]:
                continue
            used[k] = True
            a, b = segments[k]
            return (a, b) if end == 0 else (b, a)
        return None

    for start in range(len(segments)):
        if used[start]:
            continue
        used[start] = True
        a, b = segments[start]
        chain: List[Vec] = [a, b]
        # Extend forward.
        while True:
            nxt = take_from(chain[-1])
            if nxt is None:
                break
            chain.append(nxt[1])
        # Extend backward.
        while True:
            prv = take_from(chain[0])
            if prv is None:
                break
            chain.insert(0, prv[1])
        polylines.append(chain)
    return polylines


def total_isoline_length(field: ScalarField, levels: Sequence[float], nx: int = 200, ny: int = 200) -> float:
    """Total length of all true isolines at the given levels.

    Theorem 4.1 bounds the number of isoline nodes by (density x epsilon x
    this length); the scaling benchmark checks that empirically.
    """
    total = 0.0
    for level in levels:
        for line in extract_isolines(field, level, nx, ny):
            total += sum(
                math.hypot(line[i + 1][0] - line[i][0], line[i + 1][1] - line[i][1])
                for i in range(len(line) - 1)
            )
    return total
