"""The scalar-field interface sensed by the network.

A :class:`ScalarField` maps positions to attribute values (water depth in
the harbor scenario).  Sensors sample :meth:`value`; the evaluation
pipeline additionally uses :meth:`gradient` (for ground-truth gradient
error, Fig. 7) and :meth:`sample_grid` (for ground-truth contour maps).
"""

from __future__ import annotations

import abc
from typing import List, Tuple

import numpy as np

from repro.geometry import BoundingBox, Vec


class ScalarField(abc.ABC):
    """A continuous scalar attribute over a rectangular field."""

    def __init__(self, bounds: BoundingBox):
        self._bounds = bounds

    @property
    def bounds(self) -> BoundingBox:
        """The rectangular extent over which the field is defined."""
        return self._bounds

    @abc.abstractmethod
    def value(self, x: float, y: float) -> float:
        """The attribute value at position ``(x, y)``."""

    def gradient(self, x: float, y: float, h: float = 1e-4) -> Vec:
        """The spatial gradient ``(df/dx, df/dy)`` at ``(x, y)``.

        The default implementation uses central differences with step ``h``;
        fields with an analytic gradient override this.  Note the *gradient
        direction* reported by Iso-Map nodes is ``d = -grad f`` (Eq. 1 of
        the paper): the direction of steepest descent.
        """
        fx = (self.value(x + h, y) - self.value(x - h, y)) / (2 * h)
        fy = (self.value(x, y + h) - self.value(x, y - h)) / (2 * h)
        return (fx, fy)

    def descent_direction(self, x: float, y: float) -> Vec:
        """``d = -grad f``, the paper's gradient-direction parameter."""
        gx, gy = self.gradient(x, y)
        return (-gx, -gy)

    def value_range(self, samples: int = 64) -> Tuple[float, float]:
        """(min, max) of the field estimated on a ``samples x samples`` grid."""
        grid = self.sample_grid(samples, samples)
        return float(grid.min()), float(grid.max())

    def sample_grid(self, nx: int, ny: int) -> np.ndarray:
        """Field values at the cell centres of an ``nx x ny`` raster.

        Returns an array of shape ``(ny, nx)`` with ``[j, i]`` the value at
        the centre of raster cell ``(i, j)`` (x-index i, y-index j).

        Fields are immutable by construction, so the sampled grid is
        memoised per resolution: the evaluation pipeline asks for the same
        ground-truth raster once per isolevel and once per protocol under
        comparison, and re-evaluating ``value`` point by point dominated
        the Fig. 11/12 sweeps before this cache.  The returned array is
        marked read-only because it is shared between callers.
        """
        cache = self.__dict__.setdefault("_sample_grid_cache", {})
        key = (int(nx), int(ny))
        hit = cache.get(key)
        if hit is None:
            from repro import profiling

            with profiling.stage("field.sample_grid"):
                hit = self._sample_grid(nx, ny)
            hit.setflags(write=False)
            cache[key] = hit
        return hit

    def _sample_grid(self, nx: int, ny: int) -> np.ndarray:
        """Uncached grid evaluation; subclasses with a vectorized (and
        bit-compatible) evaluation override this, not :meth:`sample_grid`."""
        b = self.bounds
        dx = b.width / nx
        dy = b.height / ny
        xs = b.xmin + (np.arange(nx) + 0.5) * dx
        ys = b.ymin + (np.arange(ny) + 0.5) * dy
        out = np.empty((ny, nx), dtype=float)
        for j, y in enumerate(ys):
            for i, x in enumerate(xs):
                out[j, i] = self.value(float(x), float(y))
        return out

    def values_at(self, points: List[Vec]) -> List[float]:
        """Vectorised convenience: the field value at each point."""
        return [self.value(p[0], p[1]) for p in points]
