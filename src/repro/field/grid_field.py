"""Scalar fields backed by sampled data (grids and scattered points).

This is how real measurements enter the pipeline: a rectangular array of
sonar samples bilinearly interpolated between centres
(:class:`SampledGridField`), or irregular per-sensor samples interpolated
by inverse-distance weighting (:class:`ScatteredField` -- used e.g. to
treat the network's own per-node residual energy as a sensed field).
The experiments also use the grid variant to freeze an analytic field
into a fixed "trace", mirroring the paper's trace-driven methodology.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.field.base import ScalarField
from repro.geometry import BoundingBox, Vec


class SampledGridField(ScalarField):
    """Bilinear interpolation over a grid of samples.

    ``grid[j, i]`` is the value at the centre of cell ``(i, j)``: x index
    ``i`` (left to right), y index ``j`` (bottom to top).  Positions outside
    the outermost sample centres are clamped, so the field is defined on
    the full (closed) bounding box.
    """

    def __init__(self, bounds: BoundingBox, grid: np.ndarray):
        super().__init__(bounds)
        grid = np.asarray(grid, dtype=float)
        if grid.ndim != 2 or grid.shape[0] < 2 or grid.shape[1] < 2:
            raise ValueError("grid must be 2-D with at least 2x2 samples")
        if not np.all(np.isfinite(grid)):
            raise ValueError("grid contains non-finite samples")
        self.grid = grid
        self._ny, self._nx = grid.shape
        self._dx = bounds.width / self._nx
        self._dy = bounds.height / self._ny

    @staticmethod
    def from_field(field: ScalarField, nx: int, ny: int) -> "SampledGridField":
        """Freeze ``field`` into an ``nx x ny`` sampled trace."""
        return SampledGridField(field.bounds, field.sample_grid(nx, ny))

    def value(self, x: float, y: float) -> float:
        b = self.bounds
        # Continuous cell coordinates of the query point, in units of cells,
        # with 0.0 at the centre of the first cell.
        u = (x - b.xmin) / self._dx - 0.5
        v = (y - b.ymin) / self._dy - 0.5
        u = min(max(u, 0.0), self._nx - 1.0)
        v = min(max(v, 0.0), self._ny - 1.0)
        i0 = int(u)
        j0 = int(v)
        i1 = min(i0 + 1, self._nx - 1)
        j1 = min(j0 + 1, self._ny - 1)
        fu = u - i0
        fv = v - j0
        g = self.grid
        top = g[j0, i0] + (g[j0, i1] - g[j0, i0]) * fu
        bot = g[j1, i0] + (g[j1, i1] - g[j1, i0]) * fu
        return float(top + (bot - top) * fv)

    def _sample_grid(self, nx: int, ny: int) -> np.ndarray:
        """Vectorized bilinear resampling, bit-compatible with :meth:`value`.

        Every operation repeats the scalar path elementwise in the same
        order (the differential tests pin the equality), so freezing or
        re-rasterising a trace is array-speed without changing a single
        output bit.
        """
        b = self.bounds
        dx = b.width / nx
        dy = b.height / ny
        xq = b.xmin + (np.arange(nx) + 0.5) * dx
        yq = b.ymin + (np.arange(ny) + 0.5) * dy
        u = (xq - b.xmin) / self._dx - 0.5
        v = (yq - b.ymin) / self._dy - 0.5
        u = np.clip(u, 0.0, self._nx - 1.0)
        v = np.clip(v, 0.0, self._ny - 1.0)
        i0 = u.astype(int)  # u >= 0, so truncation == int(u)
        j0 = v.astype(int)
        i1 = np.minimum(i0 + 1, self._nx - 1)
        j1 = np.minimum(j0 + 1, self._ny - 1)
        fu = (u - i0)[None, :]
        fv = (v - j0)[:, None]
        g = self.grid
        g00 = g[np.ix_(j0, i0)]
        g10 = g[np.ix_(j0, i1)]
        g01 = g[np.ix_(j1, i0)]
        g11 = g[np.ix_(j1, i1)]
        top = g00 + (g10 - g00) * fu
        bot = g01 + (g11 - g01) * fu
        return top + (bot - top) * fv

    def gradient(self, x: float, y: float, h: Optional[float] = None) -> Vec:
        """Central differences with a step matched to the sample spacing.

        A step much smaller than the grid spacing would see the piecewise-
        bilinear kinks; half a cell is the natural smoothing scale.
        """
        step = h if h is not None else 0.5 * min(self._dx, self._dy)
        fx = (self.value(x + step, y) - self.value(x - step, y)) / (2 * step)
        fy = (self.value(x, y + step) - self.value(x, y - step)) / (2 * step)
        return (fx, fy)


class ScatteredField(ScalarField):
    """Inverse-distance-weighted interpolation of scattered samples.

    ``value(x, y)`` is the Shepard interpolant over the ``k`` nearest
    samples with weights ``1 / (d^power + eps)``.  Exact at sample
    points.  Used to turn irregular per-node measurements -- such as each
    sensor's own residual battery energy -- into a continuous field that
    the contour-mapping stack can treat like any other phenomenon.
    """

    def __init__(
        self,
        bounds: BoundingBox,
        positions: Sequence[Vec],
        values: Sequence[float],
        k: int = 8,
        power: float = 2.0,
    ):
        super().__init__(bounds)
        if len(positions) != len(values):
            raise ValueError("positions and values must parallel")
        if not positions:
            raise ValueError("need at least one sample")
        if k < 1:
            raise ValueError("k must be positive")
        if power <= 0:
            raise ValueError("power must be positive")
        self._pos = np.asarray(positions, dtype=float)
        self._val = np.asarray(values, dtype=float)
        if not np.all(np.isfinite(self._val)):
            raise ValueError("samples contain non-finite values")
        self.k = min(k, len(positions))
        self.power = power

    def value(self, x: float, y: float) -> float:
        d2 = (self._pos[:, 0] - x) ** 2 + (self._pos[:, 1] - y) ** 2
        if self.k < len(d2):
            idx = np.argpartition(d2, self.k)[: self.k]
        else:
            idx = np.arange(len(d2))
        d2k = d2[idx]
        nearest = int(d2k.argmin())
        if d2k[nearest] < 1e-18:
            return float(self._val[idx[nearest]])  # exact at a sample
        w = 1.0 / (d2k ** (self.power / 2.0))
        return float((w * self._val[idx]).sum() / w.sum())
