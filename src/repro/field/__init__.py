"""Scalar-field substrate: the physical phenomenon the WSN senses.

The paper evaluates Iso-Map on a proprietary sonar trace of underwater
depth in Huanghua Harbor.  This package provides:

- :mod:`repro.field.base` -- the :class:`ScalarField` interface every
  field implements (value, analytic-or-numeric gradient, bounds).
- :mod:`repro.field.synthetic` -- composable synthetic fields (planes,
  radial bowls, Gaussian mixtures, ridges, multi-octave value noise).
- :mod:`repro.field.harbor` -- the deterministic Huanghua-Harbor stand-in
  used by all trace-driven experiments (see DESIGN.md, "Substitutions").
- :mod:`repro.field.grid_field` -- fields backed by a sampled grid with
  bilinear interpolation (how a real trace would be ingested).
- :mod:`repro.field.contours` -- ground-truth isoline extraction by
  marching squares, and band classification used by the accuracy metric.
"""

from repro.field.base import ScalarField
from repro.field.synthetic import (
    CompositeField,
    GaussianBumpField,
    PlaneField,
    RadialField,
    RidgeField,
    ScaledField,
    ValueNoiseField,
    WindowField,
)
from repro.field.grid_field import SampledGridField, ScatteredField
from repro.field.harbor import HuanghuaHarborField, make_harbor_field
from repro.field.contours import (
    band_of,
    classify_raster,
    extract_isolines,
    isolevels_for,
)

__all__ = [
    "ScalarField",
    "CompositeField",
    "GaussianBumpField",
    "PlaneField",
    "RadialField",
    "RidgeField",
    "ScaledField",
    "ValueNoiseField",
    "WindowField",
    "SampledGridField",
    "ScatteredField",
    "HuanghuaHarborField",
    "make_harbor_field",
    "band_of",
    "classify_raster",
    "extract_isolines",
    "isolevels_for",
]
