"""The Huanghua-Harbor bathymetry stand-in.

The paper's trace-driven evaluation uses sonar measurements of a
400 m x 400 m section of the silted sea route at Huanghua Harbor,
normalised to a 50 x 50 unit field (Section 5).  That trace is
proprietary, so this module synthesises a deterministic bathymetry with
the same structure the paper describes:

- a shallow silted shelf (the short-sea area that feeds silt into the
  route),
- a dredged navigation channel crossing the field -- the 13.5 m design
  depth corridor,
- storm-deposited silt mounds that locally raise the seabed (the paper's
  motivating 2003 storm cut the channel from 9.5 m to 5.7 m),
- small-scale smooth noise for realistic isoline shapes.

Depth values span roughly 5-14 m, matching the paper's reported depths,
and all isolines are well behaved (Hausdorff dimension 1), which is the
only property Theorem 4.1 and the reconstruction rely on.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.field.base import ScalarField
from repro.field.synthetic import (
    CompositeField,
    GaussianBumpField,
    PlaneField,
    RidgeField,
    ValueNoiseField,
)
from repro.geometry import BoundingBox, Vec

#: Field extent in normalised units (Section 5: 50 x 50 with density 1
#: corresponding to 2500 nodes over 400 m x 400 m).
FIELD_SIDE = 50.0

#: Default isolevels (metres of water depth) used by the experiments:
#: the paper queries a data space with granularity T; with depths in
#: 5-14 m, T = 2 m yields the four isobath levels below.
DEFAULT_ISOLEVELS: Tuple[float, ...] = (6.0, 8.0, 10.0, 12.0)

#: Default query granularity (metres between isolevels).
DEFAULT_GRANULARITY = 2.0

#: Deterministic silt-mound layout: (amplitude m, centre, sigma units).
#: Negative amplitude = shallower seabed (silt deposit); the two positive
#: entries are dredged pockets near the berth.
_SILT_MOUNDS: Tuple[Tuple[float, Vec, float], ...] = (
    (-2.8, (12.0, 34.0), 5.0),
    (-2.2, (30.0, 14.0), 6.0),
    (-1.6, (40.0, 38.0), 4.0),
    (-1.2, (6.0, 10.0), 3.5),
    (+1.4, (44.0, 20.0), 4.5),
    (+1.0, (22.0, 44.0), 3.0),
)


class HuanghuaHarborField(CompositeField):
    """Deterministic synthetic bathymetry of the silted harbor sea route.

    Values are water depth in metres (larger = deeper).  The field is the
    sum of a sloping shelf, a dredged-channel ridge, fixed silt mounds and
    (optionally) seeded value noise.

    Args:
        seed: seed for the small-scale noise octaves.
        noise_amplitude: metres of small-scale depth variation; 0 disables
            the noise term entirely (useful for exact-geometry tests).
        side: field extent in normalised units (default: the paper's 50).
            A larger side models monitoring a longer stretch of the sea
            route: landmark *positions* (channel axis, mound centres)
            scale with the side while every *local* length scale (channel
            width, mound sigmas, noise period) and the per-unit gradients
            stay fixed -- so the epsilon-stripe of Theorem 4.1 keeps its
            width and isoline length grows like the side, which is what
            makes report counts scale as O(sqrt(n)) at density 1.  At
            ``side=50`` every coefficient reduces to exactly the paper's
            (the scale factor multiplies out to the identical floats).
    """

    def __init__(
        self,
        seed: int = 2003,
        noise_amplitude: float = 0.35,
        side: float = FIELD_SIDE,
    ):
        if side <= 0:
            raise ValueError("field side must be positive")
        s = side / FIELD_SIDE
        bounds = BoundingBox(0.0, 0.0, side, side)
        parts: List[ScalarField] = [
            # Shelf: ~6.5 m inshore deepening to ~9.5 m at the seaward edge.
            PlaneField(bounds, c0=6.5, cx=0.01, cy=0.06),
            # The dredged navigation channel: a deep corridor entering at
            # the south-west and leaving at the north-east, ~5 m deeper
            # than the shelf at its axis.
            RidgeField(
                bounds,
                a=(0.0, 12.0 * s),
                b=(side, 38.0 * s),
                amplitude=5.0,
                width=5.5,
            ),
            GaussianBumpField(
                bounds,
                base=0.0,
                bumps=tuple(
                    (amp, (cx * s, cy * s), sigma)
                    for amp, (cx, cy), sigma in _SILT_MOUNDS
                ),
            ),
        ]
        if noise_amplitude > 0:
            parts.append(
                ValueNoiseField(
                    bounds,
                    seed=seed,
                    octaves=3,
                    base_period=18.0,
                    amplitude=noise_amplitude,
                )
            )
        super().__init__(bounds, parts)
        self.seed = seed
        self.noise_amplitude = noise_amplitude
        self.side = side


def make_harbor_field(
    seed: int = 2003,
    noise_amplitude: float = 0.35,
    side: float = FIELD_SIDE,
) -> HuanghuaHarborField:
    """Factory for the default experiment field (see :class:`HuanghuaHarborField`)."""
    return HuanghuaHarborField(seed=seed, noise_amplitude=noise_amplitude, side=side)
