"""Composable synthetic scalar fields.

These are the building blocks of the Huanghua-Harbor stand-in
(:mod:`repro.field.harbor`) and the controlled fields used by unit tests:
a plane has an exactly-known gradient, a radial bowl has exactly-circular
isolines, and so on.  All fields are deterministic; the value-noise field
takes an explicit seed.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.field.base import ScalarField
from repro.geometry import BoundingBox, Vec


class PlaneField(ScalarField):
    """The linear field ``f(x, y) = c0 + cx * x + cy * y``.

    Its gradient is constant, making it the canonical fixture for testing
    the regression-based gradient estimator: the estimator must recover
    ``(cx, cy)`` exactly (up to floating point) from any non-collinear
    neighbourhood.
    """

    def __init__(self, bounds: BoundingBox, c0: float, cx: float, cy: float):
        super().__init__(bounds)
        self.c0 = c0
        self.cx = cx
        self.cy = cy

    def value(self, x: float, y: float) -> float:
        return self.c0 + self.cx * x + self.cy * y

    def gradient(self, x: float, y: float, h: float = 1e-4) -> Vec:
        return (self.cx, self.cy)


class RadialField(ScalarField):
    """A radially symmetric field ``f = peak - slope * |p - centre|``.

    Isolines are exact circles around ``centre``, which pins down the
    reconstruction pipeline's behaviour on closed contours.
    """

    def __init__(
        self, bounds: BoundingBox, center: Vec, peak: float = 10.0, slope: float = 1.0
    ):
        super().__init__(bounds)
        self.center = center
        self.peak = peak
        self.slope = slope

    def value(self, x: float, y: float) -> float:
        r = math.hypot(x - self.center[0], y - self.center[1])
        return self.peak - self.slope * r

    def gradient(self, x: float, y: float, h: float = 1e-4) -> Vec:
        dx = x - self.center[0]
        dy = y - self.center[1]
        r = math.hypot(dx, dy)
        if r < 1e-12:
            return (0.0, 0.0)
        return (-self.slope * dx / r, -self.slope * dy / r)


class GaussianBumpField(ScalarField):
    """A sum of isotropic Gaussian bumps over a constant base level.

    Each bump is ``(amplitude, (cx, cy), sigma)``.  Negative amplitudes make
    basins.  This is the workhorse for synthesising silt mounds and dredged
    pockets in the harbor field.
    """

    def __init__(
        self,
        bounds: BoundingBox,
        base: float,
        bumps: Sequence[Tuple[float, Vec, float]],
    ):
        super().__init__(bounds)
        self.base = base
        self.bumps = list(bumps)
        for (_, _, sigma) in self.bumps:
            if sigma <= 0:
                raise ValueError("bump sigma must be positive")

    def value(self, x: float, y: float) -> float:
        v = self.base
        for amp, (cx, cy), sigma in self.bumps:
            d2 = (x - cx) ** 2 + (y - cy) ** 2
            v += amp * math.exp(-d2 / (2.0 * sigma * sigma))
        return v

    def gradient(self, x: float, y: float, h: float = 1e-4) -> Vec:
        gx = 0.0
        gy = 0.0
        for amp, (cx, cy), sigma in self.bumps:
            d2 = (x - cx) ** 2 + (y - cy) ** 2
            s2 = sigma * sigma
            g = amp * math.exp(-d2 / (2.0 * s2)) / s2
            gx += -g * (x - cx)
            gy += -g * (y - cy)
        return (gx, gy)


class RidgeField(ScalarField):
    """A Gaussian ridge along the straight line through ``a`` and ``b``.

    ``f = amplitude * exp(-d^2 / 2 width^2)`` with ``d`` the distance to the
    (infinite) line.  Models a dredged channel: a deep corridor cut through
    a shallower shelf.
    """

    def __init__(
        self, bounds: BoundingBox, a: Vec, b: Vec, amplitude: float, width: float
    ):
        super().__init__(bounds)
        if width <= 0:
            raise ValueError("ridge width must be positive")
        dx = b[0] - a[0]
        dy = b[1] - a[1]
        n = math.hypot(dx, dy)
        if n < 1e-12:
            raise ValueError("ridge endpoints must be distinct")
        # Unit normal of the centre line.
        self._nx = -dy / n
        self._ny = dx / n
        self._c = self._nx * a[0] + self._ny * a[1]
        self.amplitude = amplitude
        self.width = width

    def _signed_dist(self, x: float, y: float) -> float:
        return self._nx * x + self._ny * y - self._c

    def value(self, x: float, y: float) -> float:
        d = self._signed_dist(x, y)
        return self.amplitude * math.exp(-d * d / (2.0 * self.width * self.width))

    def gradient(self, x: float, y: float, h: float = 1e-4) -> Vec:
        d = self._signed_dist(x, y)
        w2 = self.width * self.width
        g = -self.amplitude * math.exp(-d * d / (2.0 * w2)) * d / w2
        return (g * self._nx, g * self._ny)


class ValueNoiseField(ScalarField):
    """Deterministic multi-octave value noise (smooth random terrain).

    A seeded lattice of random values is interpolated with a smoothstep
    kernel; octaves at doubling frequency and halving amplitude are summed.
    This produces well-behaved (Hausdorff-dimension-1) isolines of organic
    shape -- the same regime as real bathymetry -- without any external
    trace data.
    """

    def __init__(
        self,
        bounds: BoundingBox,
        seed: int = 0,
        octaves: int = 3,
        base_period: float = 16.0,
        amplitude: float = 1.0,
    ):
        super().__init__(bounds)
        if octaves < 1:
            raise ValueError("need at least one octave")
        if base_period <= 0:
            raise ValueError("base_period must be positive")
        self.octaves = octaves
        self.base_period = base_period
        self.amplitude = amplitude
        rng = np.random.default_rng(seed)
        # One 64x64 wrap-around lattice per octave.
        self._lattices: List[np.ndarray] = [
            rng.uniform(-1.0, 1.0, size=(64, 64)) for _ in range(octaves)
        ]

    @staticmethod
    def _smooth(t: float) -> float:
        return t * t * (3.0 - 2.0 * t)

    def _octave(self, lattice: np.ndarray, u: float, v: float) -> float:
        i0 = int(math.floor(u))
        j0 = int(math.floor(v))
        fu = self._smooth(u - i0)
        fv = self._smooth(v - j0)
        n = lattice.shape[0]
        i0 %= n
        j0 %= n
        i1 = (i0 + 1) % n
        j1 = (j0 + 1) % n
        v00 = lattice[j0, i0]
        v10 = lattice[j0, i1]
        v01 = lattice[j1, i0]
        v11 = lattice[j1, i1]
        top = v00 + (v10 - v00) * fu
        bot = v01 + (v11 - v01) * fu
        return top + (bot - top) * fv

    def value(self, x: float, y: float) -> float:
        out = 0.0
        amp = self.amplitude
        period = self.base_period
        for lattice in self._lattices:
            out += amp * self._octave(lattice, x / period, y / period)
            amp *= 0.5
            period *= 0.5
        return out


class ScaledField(ScalarField):
    """A field re-mapped onto a different rectangular extent.

    ``value(x, y)`` samples the inner field at the affinely corresponding
    position.  The experiments use this to run the same harbor bathymetry
    over deployment extents of different sizes (the paper keeps one trace
    and varies the field diameter).
    """

    def __init__(self, inner: ScalarField, bounds: BoundingBox):
        super().__init__(bounds)
        self.inner = inner
        ib = inner.bounds
        self._sx = ib.width / bounds.width
        self._sy = ib.height / bounds.height
        self._ox = ib.xmin - bounds.xmin * self._sx
        self._oy = ib.ymin - bounds.ymin * self._sy

    def _map(self, x: float, y: float) -> Vec:
        return (self._ox + x * self._sx, self._oy + y * self._sy)

    def value(self, x: float, y: float) -> float:
        u, v = self._map(x, y)
        return self.inner.value(u, v)

    def gradient(self, x: float, y: float, h: float = 1e-4) -> Vec:
        u, v = self._map(x, y)
        gx, gy = self.inner.gradient(u, v, h)
        return (gx * self._sx, gy * self._sy)


class WindowField(ScalarField):
    """A rectangular window into a larger field (identity coordinates).

    Unlike :class:`ScaledField`, the physical structure (value gradients
    per unit distance) is untouched -- this is how the experiments grow
    the monitored area with the network size while keeping the paper's
    fixed ``epsilon``-stripe width, the regime Theorem 4.1 analyses.

    Raises:
        ValueError: when the window is not contained in the inner field.
    """

    def __init__(self, inner: ScalarField, bounds: BoundingBox):
        ib = inner.bounds
        if (
            bounds.xmin < ib.xmin - 1e-9
            or bounds.ymin < ib.ymin - 1e-9
            or bounds.xmax > ib.xmax + 1e-9
            or bounds.ymax > ib.ymax + 1e-9
        ):
            raise ValueError("window must lie inside the inner field's bounds")
        super().__init__(bounds)
        self.inner = inner

    def value(self, x: float, y: float) -> float:
        return self.inner.value(x, y)

    def gradient(self, x: float, y: float, h: float = 1e-4) -> Vec:
        return self.inner.gradient(x, y, h)


class CompositeField(ScalarField):
    """The pointwise sum of several fields (all sharing this one's bounds)."""

    def __init__(self, bounds: BoundingBox, parts: Sequence[ScalarField]):
        super().__init__(bounds)
        if not parts:
            raise ValueError("composite field needs at least one part")
        self.parts = list(parts)

    def value(self, x: float, y: float) -> float:
        return sum(p.value(x, y) for p in self.parts)

    def gradient(self, x: float, y: float, h: float = 1e-4) -> Vec:
        gx = 0.0
        gy = 0.0
        for p in self.parts:
            px, py = p.gradient(x, y, h)
            gx += px
            gy += py
        return (gx, gy)
