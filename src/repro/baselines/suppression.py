"""The data-suppression protocol (Meng et al. [15]).

"The sensor node suppresses its data if there is another sensor node
'nearby' transmitting similar data and the transmitted data is considered
as a representation of the local field. ... the suppression algorithm
ensures that the range spanned by suppressed nodes is bounded within the
2-hop neighborhood."

Reproduction: nodes elect representatives greedily -- a node suppresses
when a representative within its 2-hop neighbourhood already transmits a
value within ``similarity``; every node pays the pairwise comparisons
against the representatives it hears (the Theta(n * d) computation of
Table 1, with d the 2-hop degree).  Representatives report (value, x, y)
to the sink, which interpolates (nearest-reading) -- the paper's sink
interpolation and smoothing.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from repro.baselines.base import (
    NearestReportBandMap,
    ProtocolRun,
    disseminate_query,
    forward_reports_to_sink,
)
from repro.core.wire import QUERY_BYTES, VALUE_REPORT_BYTES
from repro.network import CostAccountant, SensorNetwork
from repro.network.faults import FaultPlan
from repro.network.transport import EpochTransport, TransportConfig

#: Ops per similarity comparison against a candidate representative.
OPS_PER_COMPARISON = 2


class DataSuppressionProtocol:
    """2-hop similarity suppression plus sink interpolation.

    Args:
        levels: isolevels for the final band map.
        similarity: values closer than this are "similar" (defaults to
            half the level granularity, the loosest setting that cannot
            move a reading across a band boundary by more than one band).
    """

    name = "suppression"

    def __init__(
        self,
        levels: Sequence[float],
        similarity: float = None,
        fault_plan: Optional[FaultPlan] = None,
        transport_config: Optional[TransportConfig] = None,
    ):
        if not levels:
            raise ValueError("need at least one isolevel")
        self.fault_plan = fault_plan
        self.transport_config = transport_config
        self.levels = sorted(levels)
        if similarity is None:
            similarity = (
                (self.levels[1] - self.levels[0]) / 2.0
                if len(self.levels) >= 2
                else 1.0
            )
        if similarity <= 0:
            raise ValueError("similarity threshold must be positive")
        self.similarity = similarity

    def run(self, network: SensorNetwork) -> ProtocolRun:
        costs = CostAccountant(network.n_nodes)
        disseminate_query(network, QUERY_BYTES, costs)

        representatives = self._elect_representatives(network, costs)
        transport = EpochTransport(
            network, costs, config=self.transport_config, plan=self.fault_plan
        )
        delivered = forward_reports_to_sink(
            network,
            sorted(representatives),
            VALUE_REPORT_BYTES,
            costs,
            transport=transport,
        )
        degradation = transport.finalize()
        costs.reports_generated = len(representatives)
        costs.reports_delivered = len(delivered)

        band_map = NearestReportBandMap(
            network.bounds,
            [network.nodes[i].position for i in delivered],
            [network.nodes[i].value for i in delivered],
            self.levels,
        )
        return ProtocolRun(
            name=self.name,
            band_map=band_map,
            costs=costs,
            reports_delivered=len(delivered),
            degradation=degradation,
        )

    def _elect_representatives(
        self, network: SensorNetwork, costs: CostAccountant
    ) -> Set[int]:
        """Greedy election in node-id order (a deterministic stand-in for
        the distributed timer-based election of [15])."""
        representatives: Set[int] = set()
        for node in network.nodes:
            if not node.can_sense or node.level is None:
                continue
            i = node.node_id
            two_hop = network.k_hop_sensing_neighbors(i, 2)
            suppressed = False
            for j in two_hop:
                if j not in representatives:
                    continue
                costs.charge_ops(i, OPS_PER_COMPARISON)
                if abs(network.nodes[j].value - node.value) <= self.similarity:
                    suppressed = True
                    break
            # Every node also pays for listening to its 2-hop area while
            # deciding (the protocol's similarity measurements).
            costs.charge_ops(i, OPS_PER_COMPARISON * max(1, len(two_hop)))
            if not suppressed:
                representatives.add(i)
        return representatives
