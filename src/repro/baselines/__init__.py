"""Baseline contour-mapping protocols the paper compares against.

All four reimplementations follow the descriptions in Sections 4.3 and 6
of the paper:

- :mod:`repro.baselines.tinydb` -- TinyDB [8]: every node reports, no
  aggregation; the fidelity reference and the per-node-computation lower
  bound.
- :mod:`repro.baselines.inlr` -- INLR [27]: in-network aggregation of
  model-described contour regions; heavy intermediate-node computation.
- :mod:`repro.baselines.escan` -- eScan [28]: aggregation of
  (VALUE, COVERAGE) tuples with polygon merging.
- :mod:`repro.baselines.suppression` -- the data-suppression protocol
  [15]: 2-hop neighbourhood similarity suppression plus sink
  interpolation.
- :mod:`repro.baselines.isoline_agg` -- isoline aggregation [22]:
  isoline-restricted reporting WITHOUT gradient directions (the
  related-work design closest to Iso-Map, with its two unspecified steps
  filled in as favourably as position-only data allows).

Every protocol exposes ``run(network) -> ProtocolRun`` with a band map
and a cost accountant, so the experiment harness treats them and Iso-Map
uniformly.
"""

from repro.baselines.base import NearestReportBandMap, ProtocolRun
from repro.baselines.tinydb import TinyDBProtocol
from repro.baselines.inlr import INLRProtocol
from repro.baselines.escan import EScanProtocol
from repro.baselines.suppression import DataSuppressionProtocol
from repro.baselines.isoline_agg import IsolineAggregationProtocol

__all__ = [
    "NearestReportBandMap",
    "ProtocolRun",
    "TinyDBProtocol",
    "INLRProtocol",
    "EScanProtocol",
    "DataSuppressionProtocol",
    "IsolineAggregationProtocol",
]
