"""TinyDB-style full collection (Hellerstein et al. [8]).

The paper's fidelity reference: "In its aggregate-free version, all
sensor nodes are required to report and a simple algorithm is employed
without data aggregation."  Every sensing node sends its reading to the
sink hop by hop; intermediate nodes store and forward (the per-node
computation lower bound, Section 5.2); the sink classifies the field by
nearest-reading interpolation, which on TinyDB's native grid deployment
is exactly the per-grid-cell isobar map of [8].

Report size: on a grid deployment a reading addresses its cell
(2 parameters); on a random deployment it must carry coordinates
(3 parameters).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.base import (
    NearestReportBandMap,
    ProtocolRun,
    disseminate_query,
    forward_reports_to_sink,
)
from repro.core.wire import GRID_REPORT_BYTES, QUERY_BYTES, VALUE_REPORT_BYTES
from repro.network import CostAccountant, SensorNetwork
from repro.network.faults import FaultPlan
from repro.network.transport import EpochTransport, TransportConfig


class TinyDBProtocol:
    """Full-collection contour mapping.

    Args:
        levels: the isolevels of the requested contour map.
        grid_addressing: use the 2-parameter grid report format (set True
            when the network uses TinyDB's native grid deployment).
        fault_plan: optional faults applied during the collection epoch.
        transport_config: collection-transport defense knobs.
    """

    name = "tinydb"

    def __init__(
        self,
        levels: Sequence[float],
        grid_addressing: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        transport_config: Optional[TransportConfig] = None,
    ):
        if not levels:
            raise ValueError("need at least one isolevel")
        self.levels = sorted(levels)
        self.grid_addressing = grid_addressing
        self.fault_plan = fault_plan
        self.transport_config = transport_config

    @property
    def report_bytes(self) -> int:
        return GRID_REPORT_BYTES if self.grid_addressing else VALUE_REPORT_BYTES

    def run(self, network: SensorNetwork) -> ProtocolRun:
        """One collection epoch: query down, every reading up, map at sink."""
        costs = CostAccountant(network.n_nodes)
        disseminate_query(network, QUERY_BYTES, costs)

        sources = [
            node.node_id
            for node in network.nodes
            if node.can_sense and node.level is not None
        ]
        transport = EpochTransport(
            network, costs, config=self.transport_config, plan=self.fault_plan
        )
        delivered = forward_reports_to_sink(
            network, sources, self.report_bytes, costs, transport=transport
        )
        degradation = transport.finalize()
        costs.reports_generated = len(sources)
        costs.reports_delivered = len(delivered)

        band_map = NearestReportBandMap(
            network.bounds,
            [network.nodes[i].position for i in delivered],
            [network.nodes[i].value for i in delivered],
            self.levels,
        )
        return ProtocolRun(
            name=self.name,
            band_map=band_map,
            costs=costs,
            reports_delivered=len(delivered),
            degradation=degradation,
        )
