"""Isoline aggregation (Solis & Obraczka [22]).

The related-work protocol closest to Iso-Map: "it proposes to reduce the
traffic overhead by restricting sensor reporting from nodes near the
isolines.  However, the paper neither specifies how the sensor nodes
detect the isolines passing by nor how the sink recovers the isolines
from the discrete reports."

This reimplementation fills those two gaps in the most favourable way
available without Iso-Map's contribution (the locally-regressed gradient
direction):

- detection reuses Definition 3.1's border-region + straddle test, but
  the local probe only needs neighbour VALUES (2-byte replies instead of
  Iso-Map's 6-byte value+position tuples) since no regression runs;
- reports carry (isolevel, x, y) -- 6 bytes, no direction;
- a distance-only in-network filter thins clustered reports (there is no
  angle to compare);
- the sink classifies every point by its nearest isoposition's level --
  the best position-only recovery, which cannot resolve the
  inside/outside ambiguity the paper's Fig. 4 illustrates, only
  approximate it through isoline nesting.

Traffic thus matches Iso-Map's O(sqrt(n)) scaling while fidelity shows
what the gradient direction buys -- the comparison the paper's Section 6
implies but never runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.base import NearestReportBandMap, ProtocolRun, disseminate_query
from repro.core.query import ContourQuery
from repro.core.wire import BYTES_PER_PARAM, LOCAL_QUERY_BYTES, QUERY_BYTES, VALUE_REPORT_BYTES
from repro.geometry import Vec, dist_sq
from repro.network import CostAccountant, SensorNetwork
from repro.network.faults import FaultPlan
from repro.network.transport import EpochTransport, OutFrame, TransportConfig

#: A value-only probe reply (the neighbour's reading).
VALUE_REPLY_BYTES = 1 * BYTES_PER_PARAM

#: Ops per border-region / straddle comparison (as in Iso-Map detection).
OPS_PER_CHECK = 2

#: Ops per pairwise distance comparison in the in-network filter.
OPS_PER_FILTER_COMPARISON = 4


class IsolineAggregationProtocol:
    """Isoline-restricted reporting without gradient directions.

    Args:
        query: the contour query (levels, border epsilon).
        distance_separation: in-network thinning threshold (no angular
            term exists without gradients); defaults to the same 4 units
            as Iso-Map's operating point.
    """

    name = "isoline-agg"

    def __init__(
        self,
        query: ContourQuery,
        distance_separation: float = 4.0,
        fault_plan: Optional[FaultPlan] = None,
        transport_config: Optional[TransportConfig] = None,
    ):
        if distance_separation < 0:
            raise ValueError("distance separation must be non-negative")
        self.query = query
        self.distance_separation = distance_separation
        self.fault_plan = fault_plan
        self.transport_config = transport_config

    def run(self, network: SensorNetwork) -> ProtocolRun:
        costs = CostAccountant(network.n_nodes)
        disseminate_query(network, QUERY_BYTES, costs)

        isoline_nodes = self._detect(network, costs)
        transport = EpochTransport(
            network, costs, config=self.transport_config, plan=self.fault_plan
        )
        delivered = self._collect(network, isoline_nodes, costs, transport)
        degradation = transport.finalize()
        costs.reports_generated = len(isoline_nodes)
        costs.reports_delivered = len(delivered)

        band_map = NearestReportBandMap(
            network.bounds,
            [network.nodes[i].app_position for i in delivered],
            [isoline_nodes[i] for i in delivered],
            self.query.isolevels,
        )
        return ProtocolRun(
            name=self.name,
            band_map=band_map,
            costs=costs,
            reports_delivered=len(delivered),
            degradation=degradation,
        )

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _detect(
        self, network: SensorNetwork, costs: CostAccountant
    ) -> Dict[int, float]:
        """Definition 3.1 detection with value-only neighbourhood probes."""
        out: Dict[int, float] = {}
        levels = self.query.isolevels
        for node in network.nodes:
            if not node.can_sense or node.level is None:
                continue
            costs.charge_ops(node.node_id, OPS_PER_CHECK * len(levels))
            level = self.query.matching_isolevel(node.value)
            if level is None:
                continue
            alive_nbrs = network.alive_neighbors(node.node_id)
            costs.charge_local_broadcast(
                node.node_id, alive_nbrs, LOCAL_QUERY_BYTES
            )
            straddles = False
            for j in network.sensing_neighbors(node.node_id):
                costs.charge_tx(j, VALUE_REPLY_BYTES)
                costs.charge_rx(node.node_id, VALUE_REPLY_BYTES)
                costs.charge_ops(node.node_id, OPS_PER_CHECK)
                vq = network.nodes[j].value
                if (node.value < level < vq) or (vq < level < node.value):
                    straddles = True
            if straddles:
                out[node.node_id] = level
        return out

    def _collect(
        self,
        network: SensorNetwork,
        isoline_nodes: Dict[int, float],
        costs: CostAccountant,
        transport: EpochTransport,
    ) -> List[int]:
        """Tree collection with distance-only in-network thinning."""
        tree = network.tree
        sd2 = self.distance_separation**2
        # Per-node kept positions per level (the thinning state).
        kept: Dict[int, Dict[float, List[Vec]]] = {}
        outbox: Dict[int, List[tuple]] = {}
        delivered: List[int] = []

        def offer(holder: int, source: int, level: float) -> bool:
            state = kept.setdefault(holder, {}).setdefault(level, [])
            p = network.nodes[source].app_position
            for q in state:
                costs.charge_ops(holder, OPS_PER_FILTER_COMPARISON)
                if dist_sq(p, q) <= sd2:
                    return False
            state.append(p)
            return True

        for source, level in isoline_nodes.items():
            rid = transport.register(group=level)
            if offer(source, source, level):
                outbox.setdefault(source, []).append((source, rid))
            else:
                transport.mark_filtered(rid)

        def frames_for(u: int) -> List[OutFrame]:
            return [
                OutFrame(nbytes=VALUE_REPORT_BYTES, rids=(rid,), payload=source)
                for source, rid in outbox.pop(u, ())
            ]

        def on_arrival(_sender, receiver, frame, arrived, _is_dup):
            rid = frame.rids[0]
            if receiver == tree.sink:
                if transport.deliver_at_sink(rid):
                    delivered.append(arrived)
            elif offer(receiver, arrived, isoline_nodes[arrived]):
                outbox.setdefault(receiver, []).append((arrived, rid))
            else:
                transport.mark_filtered(rid)

        transport.run_collection(frames_for, on_arrival)
        return delivered
