"""INLR: in-network contour-region aggregation (Xue et al. [27]).

"INLR makes contour regions from close sensor reports of similar readings
and delivers contour regions back to the sink.  A numerical data model is
built for each contour region ... INLR aggregates contour regions
according to their data model during the delivery."

The reproduction follows that structure: every sensing node starts a
unit region (its own reading); routing-tree nodes merge same-band regions
whose member points are adjacent, refitting the region's linear data
model on each merge.  The model refit over the members is what makes the
per-node computation grow with the region sizes flowing through the node
-- nodes near the sink handle subtree-sized regions, which is how the
paper's Theta(n^1.5) network computation (Section 4.3) emerges from a
tree of depth ~sqrt(n).

Wire format: a region report carries (band, member count) plus up to
``MAX_WIRE_POINTS`` boundary points at 2 parameters each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.baselines.base import (
    NearestReportBandMap,
    ProtocolRun,
    disseminate_query,
)
from repro.core.wire import BYTES_PER_PARAM, QUERY_BYTES
from repro.field.contours import band_of
from repro.geometry import Vec, dist_sq
from repro.network import CostAccountant, SensorNetwork
from repro.network.faults import FaultPlan
from repro.network.transport import EpochTransport, OutFrame, TransportConfig

from typing import Optional

#: Maximum boundary points serialised per region report.
MAX_WIRE_POINTS = 10

#: Maximum member points retained in memory per region (a subsample that
#: keeps merging adjacency honest without quadratic memory).
MAX_KEPT_POINTS = 24

#: Ops charged per member point when refitting a region's data model.
OPS_PER_MODEL_POINT = 10

#: Ops charged per retained point pair when testing region adjacency.
OPS_PER_ADJACENCY_PAIR = 2


@dataclass
class Region:
    """One in-flight contour region.

    Attributes:
        band: the contour band the region belongs to.
        points: retained member positions (subsampled at MAX_KEPT_POINTS).
        values: the corresponding readings.
        size: TRUE member count (used for cost accounting even when the
            retained point list is subsampled).
        rids: transport tracking ids of the member reports aggregated in
            (empty when the run has no transport bookkeeping).
    """

    band: int
    points: List[Vec] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    size: int = 1
    rids: List[int] = field(default_factory=list)

    @property
    def mean_value(self) -> float:
        return sum(self.values) / len(self.values)

    def wire_bytes(self) -> int:
        k = min(len(self.points), MAX_WIRE_POINTS)
        return 2 * BYTES_PER_PARAM + k * 2 * BYTES_PER_PARAM

    def merge(self, other: "Region") -> None:
        self.points.extend(other.points)
        self.values.extend(other.values)
        self.size += other.size
        self.rids.extend(other.rids)
        if len(self.points) > MAX_KEPT_POINTS:
            # Deterministic thinning: keep every other point.
            self.points = self.points[::2][:MAX_KEPT_POINTS]
            self.values = self.values[::2][:MAX_KEPT_POINTS]

    def clone(self) -> "Region":
        """Independent copy (a duplicated frame's second arrival)."""
        return Region(
            band=self.band,
            points=list(self.points),
            values=list(self.values),
            size=self.size,
            rids=list(self.rids),
        )


class INLRProtocol:
    """In-network contour-region aggregation.

    Args:
        levels: isolevels defining the bands.
        adjacency_range: regions whose retained points come within this
            distance are mergeable (defaults to twice the radio range at
            run time when None).
    """

    name = "inlr"

    def __init__(
        self,
        levels: Sequence[float],
        adjacency_range: float = None,
        fault_plan: Optional[FaultPlan] = None,
        transport_config: Optional[TransportConfig] = None,
    ):
        if not levels:
            raise ValueError("need at least one isolevel")
        self.levels = sorted(levels)
        self.adjacency_range = adjacency_range
        self.fault_plan = fault_plan
        self.transport_config = transport_config

    def run(self, network: SensorNetwork) -> ProtocolRun:
        costs = CostAccountant(network.n_nodes)
        disseminate_query(network, QUERY_BYTES, costs)
        adjacency = (
            self.adjacency_range
            if self.adjacency_range is not None
            else 2.0 * network.radio_range
        )
        transport = EpochTransport(
            network, costs, config=self.transport_config, plan=self.fault_plan
        )

        # Per-node region buffers, filled bottom-up.
        buffers: Dict[int, List[Region]] = {}
        generated = 0
        for node in network.nodes:
            if node.can_sense and node.level is not None:
                region = Region(
                    band=band_of(node.value, self.levels),
                    points=[node.position],
                    values=[node.value],
                    size=1,
                    rids=[transport.register()],
                )
                buffers[node.node_id] = [region]
                generated += 1

        tree = network.tree

        def frames_for(u: int) -> List[OutFrame]:
            # Transmit each (already aggregated) region to the parent,
            # which merges the arrivals into its own buffer.
            return [
                OutFrame(
                    nbytes=region.wire_bytes(),
                    rids=tuple(region.rids),
                    payload=region,
                )
                for region in buffers.pop(u, ())
            ]

        def on_arrival(_sender, receiver, _frame, arrived, is_dup):
            instance = arrived.clone() if is_dup else arrived
            self._absorb(
                buffers.setdefault(receiver, []), instance, receiver, adjacency, costs
            )

        transport.run_collection(frames_for, on_arrival)

        final_regions = buffers.get(tree.sink, [])
        for region in final_regions:
            for rid in region.rids:
                transport.deliver_at_sink(rid)
        degradation = transport.finalize()
        costs.reports_generated = generated
        costs.reports_delivered = len(final_regions)

        band_map = self._sink_map(network, final_regions)
        return ProtocolRun(
            name=self.name,
            band_map=band_map,
            costs=costs,
            reports_delivered=len(final_regions),
            degradation=degradation,
        )

    # ------------------------------------------------------------------
    # Aggregation internals
    # ------------------------------------------------------------------

    def _absorb(
        self,
        buffer: List[Region],
        region: Region,
        node_id: int,
        adjacency: float,
        costs: CostAccountant,
    ) -> None:
        """Merge ``region`` into the node's buffer or append it."""
        adjacency_sq = adjacency * adjacency
        for existing in buffer:
            if existing.band != region.band:
                continue
            # Adjacency test over retained point pairs.
            pairs = len(existing.points) * len(region.points)
            costs.charge_ops(node_id, OPS_PER_ADJACENCY_PAIR * pairs)
            if not self._adjacent(existing, region, adjacency_sq):
                continue
            # Model similarity: same band and adjacent -> merge; the
            # refit over the TRUE member count is the dominant cost (the
            # paper's "multiple integrals" similarity estimation scales
            # the same way).
            costs.charge_ops(
                node_id, OPS_PER_MODEL_POINT * (existing.size + region.size)
            )
            existing.merge(region)
            return
        buffer.append(region)

    @staticmethod
    def _adjacent(a: Region, b: Region, adjacency_sq: float) -> bool:
        for p in a.points:
            for q in b.points:
                if dist_sq(p, q) <= adjacency_sq:
                    return True
        return False

    def _sink_map(
        self, network: SensorNetwork, regions: List[Region]
    ) -> NearestReportBandMap:
        """Classify by the nearest retained region point's mean value."""
        positions: List[Vec] = []
        values: List[float] = []
        for region in regions:
            mean = region.mean_value
            for p in region.points:
                positions.append(p)
                values.append(mean)
        return NearestReportBandMap(network.bounds, positions, values, self.levels)
