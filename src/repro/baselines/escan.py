"""eScan: aggregation of (VALUE, COVERAGE) tuples (Zhao et al. [28]).

"An eScan is defined as a collection of (VALUE, COVERAGE) tuples and each
tuple describes a region of COVERAGE where each node has its residual
energy within VALUE = (min, max).  A tuple initially consists of only an
individual sensor node and gets aggregated with other tuples with
adjacent COVERAGE and similar VALUE."

The reproduction aggregates tuples up the routing tree.  COVERAGE is a
retained point set (the polygon boundary of [28]); the merge test charges
operations quadratic in the coverage sizes -- the polygon union/adjacency
machinery that gives eScan its O(n^3)-per-sensor worst case in Table 1.
The VALUE interval widens on merge up to ``value_tolerance``, trading map
precision for aggregation exactly as [28] describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.baselines.base import (
    NearestReportBandMap,
    ProtocolRun,
    disseminate_query,
)
from repro.core.wire import BYTES_PER_PARAM, QUERY_BYTES
from repro.geometry import Vec, dist_sq
from repro.network import CostAccountant, SensorNetwork
from repro.network.faults import FaultPlan
from repro.network.transport import EpochTransport, OutFrame, TransportConfig

from typing import Optional

#: Maximum coverage points serialised per tuple.
MAX_WIRE_POINTS = 10

#: Maximum coverage points retained in memory per tuple.
MAX_KEPT_POINTS = 24

#: Ops charged per retained point PAIR in the coverage merge test -- the
#: quadratic polygon machinery of [28].
OPS_PER_COVERAGE_PAIR = 4


@dataclass
class ScanTuple:
    """One (VALUE, COVERAGE) tuple in flight.

    Attributes:
        vmin, vmax: the VALUE interval.
        points: retained coverage positions.
        size: true member count.
        rids: transport tracking ids of the aggregated member reports.
    """

    vmin: float
    vmax: float
    points: List[Vec] = field(default_factory=list)
    size: int = 1
    rids: List[int] = field(default_factory=list)

    def wire_bytes(self) -> int:
        k = min(len(self.points), MAX_WIRE_POINTS)
        return 2 * BYTES_PER_PARAM + k * 2 * BYTES_PER_PARAM

    @property
    def mid_value(self) -> float:
        return (self.vmin + self.vmax) / 2.0

    def merge(self, other: "ScanTuple") -> None:
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)
        self.points.extend(other.points)
        self.size += other.size
        self.rids.extend(other.rids)
        if len(self.points) > MAX_KEPT_POINTS:
            self.points = self.points[::2][:MAX_KEPT_POINTS]

    def clone(self) -> "ScanTuple":
        """Independent copy (a duplicated frame's second arrival)."""
        return ScanTuple(
            vmin=self.vmin,
            vmax=self.vmax,
            points=list(self.points),
            size=self.size,
            rids=list(self.rids),
        )


class EScanProtocol:
    """(VALUE, COVERAGE) tuple aggregation.

    Args:
        levels: isolevels for the final band map.
        value_tolerance: maximum VALUE interval width a merged tuple may
            reach; defaults to the level granularity (the natural choice
            when eScan feeds a contour map of that granularity).
    """

    name = "escan"

    def __init__(
        self,
        levels: Sequence[float],
        value_tolerance: float = None,
        fault_plan: Optional[FaultPlan] = None,
        transport_config: Optional[TransportConfig] = None,
    ):
        if not levels:
            raise ValueError("need at least one isolevel")
        self.levels = sorted(levels)
        if value_tolerance is None and len(self.levels) >= 2:
            value_tolerance = self.levels[1] - self.levels[0]
        self.value_tolerance = value_tolerance if value_tolerance else 1.0
        self.fault_plan = fault_plan
        self.transport_config = transport_config

    def run(self, network: SensorNetwork) -> ProtocolRun:
        costs = CostAccountant(network.n_nodes)
        disseminate_query(network, QUERY_BYTES, costs)
        adjacency_sq = (2.0 * network.radio_range) ** 2
        transport = EpochTransport(
            network, costs, config=self.transport_config, plan=self.fault_plan
        )

        buffers: Dict[int, List[ScanTuple]] = {}
        generated = 0
        for node in network.nodes:
            if node.can_sense and node.level is not None:
                buffers[node.node_id] = [
                    ScanTuple(
                        node.value,
                        node.value,
                        [node.position],
                        1,
                        rids=[transport.register()],
                    )
                ]
                generated += 1

        tree = network.tree

        def frames_for(u: int) -> List[OutFrame]:
            return [
                OutFrame(nbytes=tup.wire_bytes(), rids=tuple(tup.rids), payload=tup)
                for tup in buffers.pop(u, ())
            ]

        def on_arrival(_sender, receiver, _frame, arrived, is_dup):
            instance = arrived.clone() if is_dup else arrived
            self._absorb(
                buffers.setdefault(receiver, []),
                instance,
                receiver,
                adjacency_sq,
                costs,
            )

        transport.run_collection(frames_for, on_arrival)

        final_tuples = buffers.get(tree.sink, [])
        for tup in final_tuples:
            for rid in tup.rids:
                transport.deliver_at_sink(rid)
        degradation = transport.finalize()
        costs.reports_generated = generated
        costs.reports_delivered = len(final_tuples)

        positions: List[Vec] = []
        values: List[float] = []
        for tup in final_tuples:
            for p in tup.points:
                positions.append(p)
                values.append(tup.mid_value)
        band_map = NearestReportBandMap(
            network.bounds, positions, values, self.levels
        )
        return ProtocolRun(
            name=self.name,
            band_map=band_map,
            costs=costs,
            reports_delivered=len(final_tuples),
            degradation=degradation,
        )

    def _absorb(
        self,
        buffer: List[ScanTuple],
        tup: ScanTuple,
        node_id: int,
        adjacency_sq: float,
        costs: CostAccountant,
    ) -> None:
        for existing in buffer:
            pairs = len(existing.points) * len(tup.points)
            costs.charge_ops(node_id, OPS_PER_COVERAGE_PAIR * pairs)
            merged_width = max(existing.vmax, tup.vmax) - min(
                existing.vmin, tup.vmin
            )
            if merged_width > self.value_tolerance:
                continue
            if not self._adjacent(existing, tup, adjacency_sq):
                continue
            existing.merge(tup)
            return
        buffer.append(tup)

    @staticmethod
    def _adjacent(a: ScanTuple, b: ScanTuple, adjacency_sq: float) -> bool:
        for p in a.points:
            for q in b.points:
                if dist_sq(p, q) <= adjacency_sq:
                    return True
        return False
