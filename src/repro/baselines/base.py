"""Shared baseline infrastructure.

A baseline run produces a :class:`ProtocolRun`: a name, a band map the
metrics can rasterise, the cost accountant, and bookkeeping counts.  The
band map used by the value-reporting baselines is
:class:`NearestReportBandMap`: the sink knows a set of (position, value)
readings and classifies any point by the band of the nearest reading --
the "sink interpolation" the paper attributes to TinyDB and the
data-suppression protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.field.contours import band_of, extract_isolines
from repro.field.grid_field import SampledGridField
from repro.geometry import BoundingBox, Vec
from repro.network import CostAccountant, SensorNetwork
from repro.network.transport import DegradationReport, EpochTransport


@dataclass
class ProtocolRun:
    """Uniform result record for any contour protocol run.

    Attributes:
        name: protocol name (for experiment tables).
        band_map: an object with ``classify_raster(nx, ny)``, ``band_at(p)``
            and ``isolines(level)``.
        costs: the per-node cost counters.
        reports_delivered: application reports that reached the sink.
        degradation: the collection transport's account of this epoch
            (None only for code paths that predate the transport).
    """

    name: str
    band_map: "NearestReportBandMap"
    costs: CostAccountant
    reports_delivered: int
    degradation: Optional[DegradationReport] = None


class NearestReportBandMap:
    """Sink-side map built from raw (position, value) readings.

    Classification assigns each point the band of its nearest reading --
    nearest-neighbour sink interpolation.  Isolines for the Hausdorff
    metric are extracted by running marching squares over the interpolated
    surface (the sink has unconstrained resources, so this mirrors what a
    real TinyDB front-end would render).
    """

    def __init__(
        self,
        bounds: BoundingBox,
        positions: Sequence[Vec],
        values: Sequence[float],
        levels: Sequence[float],
    ):
        if len(positions) != len(values):
            raise ValueError("positions and values must parallel")
        self.bounds = bounds
        self.positions = list(positions)
        self.values = list(values)
        self.levels = sorted(levels)
        self._pos_arr = (
            np.array(self.positions, dtype=float)
            if self.positions
            else np.zeros((0, 2))
        )
        self._val_arr = np.array(self.values, dtype=float)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def band_at(self, p: Vec) -> int:
        if not self.positions:
            return 0
        best = min(
            range(len(self.positions)),
            key=lambda i: (p[0] - self.positions[i][0]) ** 2
            + (p[1] - self.positions[i][1]) ** 2,
        )
        return band_of(self.values[best], self.levels)

    def value_at(self, p: Vec) -> Optional[float]:
        """Nearest-reading value (None when no readings arrived)."""
        if not self.positions:
            return None
        d2 = (self._pos_arr[:, 0] - p[0]) ** 2 + (self._pos_arr[:, 1] - p[1]) ** 2
        return float(self._val_arr[d2.argmin()])

    def classify_points(self, points: Sequence[Vec]) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        if not self.positions:
            return np.zeros(len(pts), dtype=int)
        # Chunk the distance matrix so 10k-report x 10k-point queries stay
        # within a few tens of MB.
        chunk = max(1, int(4e6 // max(1, len(self.positions))))
        nearest_vals = np.empty(len(pts))
        for start in range(0, len(pts), chunk):
            block = pts[start : start + chunk]
            d2 = (
                (block[:, None, 0] - self._pos_arr[None, :, 0]) ** 2
                + (block[:, None, 1] - self._pos_arr[None, :, 1]) ** 2
            )
            nearest_vals[start : start + chunk] = self._val_arr[d2.argmin(axis=1)]
        bands = np.zeros(len(pts), dtype=int)
        for v in self.levels:
            bands += (nearest_vals >= v).astype(int)
        return bands

    def classify_raster(self, nx: int, ny: int) -> np.ndarray:
        pts = self.bounds.sample_grid(nx, ny)
        return self.classify_points(pts).reshape(ny, nx)

    # ------------------------------------------------------------------
    # Isolines (for the Hausdorff metric)
    # ------------------------------------------------------------------

    def isolines(self, level: float, grid: int = 100) -> List[List[Vec]]:
        """Isolines of the interpolated surface via marching squares.

        The interpolated surface is memoised per resolution (the readings
        are fixed once the map is built), so the Hausdorff metric's
        per-level calls interpolate once instead of once per level.
        """
        if not self.positions:
            return []
        cache = self.__dict__.setdefault("_surface_cache", {})
        surface = cache.get(grid)
        if surface is None:
            surface = self._interpolated_field(grid)
            cache[grid] = surface
        return extract_isolines(surface, level, nx=grid, ny=grid)

    def _interpolated_field(self, grid: int) -> SampledGridField:
        pts = self.bounds.sample_grid(grid, grid)
        vals = np.empty(len(pts))
        chunk = max(1, int(4e6 // max(1, len(self.positions))))
        for start in range(0, len(pts), chunk):
            block = np.asarray(pts[start : start + chunk], dtype=float)
            d2 = (
                (block[:, None, 0] - self._pos_arr[None, :, 0]) ** 2
                + (block[:, None, 1] - self._pos_arr[None, :, 1]) ** 2
            )
            vals[start : start + chunk] = self._val_arr[d2.argmin(axis=1)]
        return SampledGridField(self.bounds, vals.reshape(grid, grid))


def forward_reports_to_sink(
    network: SensorNetwork,
    sources: Sequence[int],
    report_bytes: int,
    costs: CostAccountant,
    ops_per_forward: int = 1,
    transport: Optional[EpochTransport] = None,
) -> List[int]:
    """Store-and-forward of one report per source node over the transport.

    Charges tx/rx on every hop and ``ops_per_forward`` at every relay (the
    minimal store-and-forward bookkeeping that makes TinyDB the paper's
    per-node computation lower bound).  The walk is the TAG bottom-up
    schedule, which charges exactly what the per-source path walk charged
    under a perfect link layer; under a fault plan the transport's
    ARQ/CRC/dedup/re-parenting defenses apply.  Returns the sources whose
    report reached the sink, in ``sources`` order.
    """
    tree = network.tree
    if transport is None:
        transport = EpochTransport(network, costs)
    outbox: dict = {}
    delivered: set = set()
    for s in sources:
        if tree.level[s] is None:
            continue
        rid = transport.register()
        if s == tree.sink:
            # The sink's own reading needs no transmission.
            if transport.deliver_at_sink(rid):
                delivered.add(s)
            continue
        outbox.setdefault(s, []).append((s, rid))
    for hop in transport.walk():
        items = outbox.pop(hop.node, [])
        if hop.parent is None:
            transport.strand([rid for _, rid in items], hop.reason)
            continue
        for src, rid in items:
            costs.charge_ops(hop.node, ops_per_forward)
            outcome = transport.send(
                hop.node, hop.parent, report_bytes, rids=(rid,), payload=src
            )
            for arrived, _is_dup in outcome.arrivals:
                if hop.parent == tree.sink:
                    if transport.deliver_at_sink(rid):
                        delivered.add(src)
                else:
                    outbox.setdefault(hop.parent, []).append((arrived, rid))
    return [s for s in sources if s in delivered]


def disseminate_query(network: SensorNetwork, query_bytes: int, costs: CostAccountant) -> None:
    """Flood a query down the routing tree (one broadcast per internal node)."""
    for node in network.nodes:
        if node.level is None or not node.alive:
            continue
        kids = [c for c in node.children if network.nodes[c].level is not None]
        if kids:
            costs.charge_local_broadcast(node.node_id, kids, query_bytes)
