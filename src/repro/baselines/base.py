"""Shared baseline infrastructure.

A baseline run produces a :class:`ProtocolRun`: a name, a band map the
metrics can rasterise, the cost accountant, and bookkeeping counts.  The
band map used by the value-reporting baselines is
:class:`NearestReportBandMap`: the sink knows a set of (position, value)
readings and classifies any point by the band of the nearest reading --
the "sink interpolation" the paper attributes to TinyDB and the
data-suppression protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.field.contours import band_of, extract_isolines
from repro.field.grid_field import SampledGridField
from repro.geometry import BoundingBox, Vec
from repro.network import CostAccountant, SensorNetwork
from repro.network.transport import DegradationReport, EpochTransport, OutFrame


@dataclass
class ProtocolRun:
    """Uniform result record for any contour protocol run.

    Attributes:
        name: protocol name (for experiment tables).
        band_map: an object with ``classify_raster(nx, ny)``, ``band_at(p)``
            and ``isolines(level)``.
        costs: the per-node cost counters.
        reports_delivered: application reports that reached the sink.
        degradation: the collection transport's account of this epoch
            (None only for code paths that predate the transport).
    """

    name: str
    band_map: "NearestReportBandMap"
    costs: CostAccountant
    reports_delivered: int
    degradation: Optional[DegradationReport] = None


class NearestReportBandMap:
    """Sink-side map built from raw (position, value) readings.

    Classification assigns each point the band of its nearest reading --
    nearest-neighbour sink interpolation.  Isolines for the Hausdorff
    metric are extracted by running marching squares over the interpolated
    surface (the sink has unconstrained resources, so this mirrors what a
    real TinyDB front-end would render).
    """

    def __init__(
        self,
        bounds: BoundingBox,
        positions: Sequence[Vec],
        values: Sequence[float],
        levels: Sequence[float],
    ):
        if len(positions) != len(values):
            raise ValueError("positions and values must parallel")
        self.bounds = bounds
        self.positions = list(positions)
        self.values = list(values)
        self.levels = sorted(levels)
        self._pos_arr = (
            np.array(self.positions, dtype=float)
            if self.positions
            else np.zeros((0, 2))
        )
        self._val_arr = np.array(self.values, dtype=float)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def band_at(self, p: Vec) -> int:
        if not self.positions:
            return 0
        best = min(
            range(len(self.positions)),
            key=lambda i: (p[0] - self.positions[i][0]) ** 2
            + (p[1] - self.positions[i][1]) ** 2,
        )
        return band_of(self.values[best], self.levels)

    def value_at(self, p: Vec) -> Optional[float]:
        """Nearest-reading value (None when no readings arrived)."""
        if not self.positions:
            return None
        d2 = (self._pos_arr[:, 0] - p[0]) ** 2 + (self._pos_arr[:, 1] - p[1]) ** 2
        return float(self._val_arr[d2.argmin()])

    def classify_points(self, points: Sequence[Vec]) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        if not self.positions:
            return np.zeros(len(pts), dtype=int)
        # Chunk the distance matrix so 10k-report x 10k-point queries stay
        # within a few tens of MB.
        chunk = max(1, int(4e6 // max(1, len(self.positions))))
        nearest_vals = np.empty(len(pts))
        for start in range(0, len(pts), chunk):
            block = pts[start : start + chunk]
            d2 = (
                (block[:, None, 0] - self._pos_arr[None, :, 0]) ** 2
                + (block[:, None, 1] - self._pos_arr[None, :, 1]) ** 2
            )
            nearest_vals[start : start + chunk] = self._val_arr[d2.argmin(axis=1)]
        bands = np.zeros(len(pts), dtype=int)
        for v in self.levels:
            bands += (nearest_vals >= v).astype(int)
        return bands

    def classify_raster(self, nx: int, ny: int) -> np.ndarray:
        pts = self.bounds.sample_grid(nx, ny)
        return self.classify_points(pts).reshape(ny, nx)

    # ------------------------------------------------------------------
    # Isolines (for the Hausdorff metric)
    # ------------------------------------------------------------------

    def isolines(self, level: float, grid: int = 100) -> List[List[Vec]]:
        """Isolines of the interpolated surface via marching squares.

        The interpolated surface is memoised per resolution (the readings
        are fixed once the map is built), so the Hausdorff metric's
        per-level calls interpolate once instead of once per level.
        """
        if not self.positions:
            return []
        cache = self.__dict__.setdefault("_surface_cache", {})
        surface = cache.get(grid)
        if surface is None:
            surface = self._interpolated_field(grid)
            cache[grid] = surface
        return extract_isolines(surface, level, nx=grid, ny=grid)

    def _interpolated_field(self, grid: int) -> SampledGridField:
        pts = self.bounds.sample_grid(grid, grid)
        vals = np.empty(len(pts))
        chunk = max(1, int(4e6 // max(1, len(self.positions))))
        for start in range(0, len(pts), chunk):
            block = np.asarray(pts[start : start + chunk], dtype=float)
            d2 = (
                (block[:, None, 0] - self._pos_arr[None, :, 0]) ** 2
                + (block[:, None, 1] - self._pos_arr[None, :, 1]) ** 2
            )
            vals[start : start + chunk] = self._val_arr[d2.argmin(axis=1)]
        return SampledGridField(self.bounds, vals.reshape(grid, grid))


def forward_reports_to_sink(
    network: SensorNetwork,
    sources: Sequence[int],
    report_bytes: int,
    costs: CostAccountant,
    ops_per_forward: int = 1,
    transport: Optional[EpochTransport] = None,
) -> List[int]:
    """Store-and-forward of one report per source node over the transport.

    Charges tx/rx on every hop and ``ops_per_forward`` at every relay (the
    minimal store-and-forward bookkeeping that makes TinyDB the paper's
    per-node computation lower bound).  The walk is the TAG bottom-up
    schedule, which charges exactly what the per-source path walk charged
    under a perfect link layer; under a fault plan the transport's
    ARQ/CRC/dedup/re-parenting defenses apply.  Returns the sources whose
    report reached the sink, in ``sources`` order.
    """
    tree = network.tree
    if transport is None:
        transport = EpochTransport(network, costs)
    delivered: set = set()
    pending: List[tuple] = []  # (source, rid) for routed non-sink sources
    for s in sources:
        if tree.level[s] is None:
            continue
        rid = transport.register()
        if s == tree.sink:
            # The sink's own reading needs no transmission.
            if transport.deliver_at_sink(rid):
                delivered.add(s)
            continue
        pending.append((s, rid))

    if (
        transport.engine is None
        and transport.link_model is None
        and transport.config.batched
        and pending
    ):
        # Perfect links and no faults: every report travels its full
        # path, so the per-hop charges collapse to subtree counts --
        # no per-frame Python at all (what makes n=40k feasible).
        # ``batched=False`` keeps the per-frame loop reachable for the
        # differential tests.
        _forward_zero_fault_analytic(
            network, pending, report_bytes, costs, ops_per_forward,
            transport, delivered,
        )
        return [s for s in sources if s in delivered]

    outbox: dict = {}
    for s, rid in pending:
        outbox.setdefault(s, []).append((s, rid))

    def frames_for(u: int) -> List[OutFrame]:
        return [
            OutFrame(nbytes=report_bytes, rids=(rid,), payload=src)
            for src, rid in outbox.pop(u, ())
        ]

    def on_arrival(_sender, receiver, frame, arrived, _is_dup):
        rid = frame.rids[0]
        if receiver == tree.sink:
            if transport.deliver_at_sink(rid):
                delivered.add(frame.payload)
        else:
            outbox.setdefault(receiver, []).append((arrived, rid))

    transport.run_collection(
        frames_for, on_arrival, ops_per_frame=ops_per_forward
    )
    return [s for s in sources if s in delivered]


def _forward_zero_fault_analytic(
    network: SensorNetwork,
    pending: Sequence[tuple],
    report_bytes: int,
    costs: CostAccountant,
    ops_per_forward: int,
    transport: EpochTransport,
    delivered: set,
) -> None:
    """Charge the fault-free forwarding epoch in closed form.

    On perfect links every pending report crosses each edge of its path
    to the sink exactly once, so the number of frames node ``u`` sends is
    the count of pending sources in its subtree -- computed bottom-up
    with one scatter-add per level.  Charges are the identical integer
    sums the per-frame walk accumulates (pinned by a differential test).
    """
    tree = network.tree
    n = network.n_nodes
    counts = np.zeros(n, dtype=np.int64)
    for s, _rid in pending:
        counts[s] += 1
    parent_arr = np.array(
        [-1 if p is None else p for p in tree.parent], dtype=np.int64
    )
    levels = np.array(
        [-1 if l is None else l for l in tree.level], dtype=np.int64
    )
    for lvl in range(tree.depth, 0, -1):
        members = np.flatnonzero(levels == lvl)
        if members.size == 0:
            continue
        senders = members[counts[members] > 0]
        if senders.size == 0:
            continue
        c = counts[senders]
        parents = parent_arr[senders]
        costs.charge_tx_batch(senders, c * report_bytes)
        costs.charge_rx_batch(parents, c * report_bytes)
        if ops_per_forward:
            costs.charge_ops_batch(senders, c * ops_per_forward)
        np.add.at(counts, parents, c)
    for s, rid in pending:
        if transport.deliver_at_sink(rid):
            delivered.add(s)


def disseminate_query(network: SensorNetwork, query_bytes: int, costs: CostAccountant) -> None:
    """Flood a query down the routing tree (one broadcast per internal node)."""
    for node in network.nodes:
        if node.level is None or not node.alive:
            continue
        kids = [c for c in node.children if network.nodes[c].level is not None]
        if kids:
            costs.charge_local_broadcast(node.node_id, kids, query_bytes)
