"""Per-stage wall-clock profiling of the sink-side pipeline.

The reconstruction and evaluation code is instrumented with named stages
(``voronoi``, ``hausdorff``, ``marching_squares``, ...).  Profiling is
*off* by default and the instrumentation is designed to cost nothing in
that state: :func:`stage` returns a shared no-op context manager and the
:func:`profiled` decorator wraps functions in a two-branch shim whose
disabled path is a single global check.

Usage::

    from repro import profiling

    profiling.enable()
    ...  # run the pipeline
    print(profiling.format_table())

The CLI exposes this as ``python -m repro experiment <id> --profile`` and
the sweep runner merges worker-process snapshots back into the parent
(see :mod:`repro.experiments.runner`).

Counters are per-process and not thread-safe; the pipeline is
single-threaded per process (parallelism happens across sweep-point
worker processes).
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "stage",
    "profiled",
    "snapshot",
    "merge_snapshot",
    "format_table",
]

#: Global profiling switch.  Checked once per instrumented call.
_enabled: bool = False

#: ``stage name -> (total seconds, call count)``.
_stats: Dict[str, List[float]] = {}

F = TypeVar("F", bound=Callable)


def enable() -> None:
    """Turn stage timing on (counters keep accumulating until reset)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn stage timing off.  Recorded stats are kept."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def reset() -> None:
    """Drop all recorded stats."""
    _stats.clear()


def _record(name: str, seconds: float) -> None:
    entry = _stats.get(name)
    if entry is None:
        _stats[name] = [seconds, 1]
    else:
        entry[0] += seconds
        entry[1] += 1


class _StageTimer:
    """Context manager that records one timed run of a named stage."""

    __slots__ = ("_name", "_t0")

    def __init__(self, name: str):
        self._name = name

    def __enter__(self) -> "_StageTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        _record(self._name, time.perf_counter() - self._t0)


class _NoopTimer:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP = _NoopTimer()


def stage(name: str):
    """Context manager timing one named stage (no-op when disabled).

    ::

        with profiling.stage("voronoi"):
            cells = bounded_voronoi(sites, box)
    """
    if not _enabled:
        return _NOOP
    return _StageTimer(name)


def profiled(name: str) -> Callable[[F], F]:
    """Decorator form of :func:`stage`.

    The disabled fast path is one global-flag check before delegating, so
    decorating hot functions is safe.
    """

    def deco(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                _record(name, time.perf_counter() - t0)

        return wrapper  # type: ignore[return-value]

    return deco


def snapshot() -> Dict[str, Tuple[float, int]]:
    """A copy of the accumulated stats: ``name -> (seconds, calls)``.

    The dict is JSON-friendly (tuples serialise as lists) so worker
    processes can ship it back to the parent for :func:`merge_snapshot`.
    """
    return {name: (entry[0], entry[1]) for name, entry in _stats.items()}


def merge_snapshot(snap: Dict[str, Tuple[float, int]]) -> None:
    """Fold another process's :func:`snapshot` into this one's counters."""
    for name, (seconds, calls) in snap.items():
        entry = _stats.get(name)
        if entry is None:
            _stats[name] = [float(seconds), int(calls)]
        else:
            entry[0] += float(seconds)
            entry[1] += int(calls)


def format_table(title: Optional[str] = "stage profile") -> str:
    """The accumulated stats as an aligned text table, slowest first."""
    if not _stats:
        return "(no stages recorded -- was profiling enabled?)"
    rows = sorted(_stats.items(), key=lambda kv: kv[1][0], reverse=True)
    name_w = max(len("stage"), max(len(n) for n, _ in rows))
    total = sum(e[0] for _, e in rows)
    lines = []
    if title:
        lines.append(title)
    header = f"{'stage':<{name_w}} {'total ms':>10} {'calls':>8} {'ms/call':>10} {'share':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, (seconds, calls) in rows:
        ms = seconds * 1e3
        share = seconds / total if total > 0 else 0.0
        lines.append(
            f"{name:<{name_w}} {ms:>10.2f} {calls:>8d} {ms / calls:>10.3f} {share:>6.1%}"
        )
    lines.append("-" * len(header))
    lines.append(f"{'(sum of stages)':<{name_w}} {total * 1e3:>10.2f}")
    return "\n".join(lines)
