"""Exceptions raised by the contour-map serving layer."""

from __future__ import annotations


class ServingError(Exception):
    """Base class for all serving-layer errors."""


class WireFormatError(ServingError, ValueError):
    """A serving payload failed to decode (bad size, bad framing)."""


class ReplayGapError(ServingError):
    """A delta stream skipped an epoch the replayer has not seen.

    Raised by :class:`repro.serving.wire.DeltaReplayer` when a delta's
    epoch is not exactly one past the replayer's current epoch -- the
    stream contract (replay-then-live, snapshot resync on retention
    gaps) guarantees contiguity, so a gap means a protocol bug upstream.
    """


class EpochEvicted(ServingError, KeyError):
    """The requested ``(query_id, epoch)`` fell out of store retention.

    The store never serves stale bytes: once an epoch's records are
    evicted, any cached rendering is purged with them and requests for
    that epoch fail loudly instead of returning the wrong map.
    """


class SlowConsumerEvicted(ServingError):
    """This subscriber's bounded queue overflowed and it was evicted.

    The session drops the subscriber's backlog and terminates its stream
    with this error; the client should re-subscribe (getting a snapshot
    resync if it fell past retention) rather than silently losing deltas.
    """


class UnknownQueryError(ServingError, KeyError):
    """No session is registered for the requested query id."""


class EncodingUnavailable(ServingError, ValueError):
    """Version negotiation failed: none of the stream encodings the
    subscriber offered is servable by this session.

    The SIMPLIFIED encoding is only available on sessions configured
    with a ``simplify_tolerance``; a subscriber offering *only*
    SIMPLIFIED against a plain session gets this instead of a silently
    downgraded stream.
    """


class ShardComputeError(ServingError):
    """One shard compute attempt failed for an *infrastructure* reason.

    Base class of the supervisor's retryable failures (crash, hang,
    dropped result, corrupted result).  Application exceptions raised by
    the compute itself are never wrapped in this hierarchy -- they are
    deterministic, so retrying them is pointless and they propagate
    unchanged (see :class:`SessionFailedError`).
    """

    def __init__(self, message: str, shard: int = -1):
        super().__init__(message)
        self.shard = shard


class ShardCrashError(ShardComputeError):
    """The shard's worker process died mid-request (broken pool)."""


class ShardHangError(ShardComputeError):
    """The shard failed to answer within the per-request deadline.

    The supervisor cannot tell a wedged worker from a merely slow one,
    so it treats both the same way: kill the worker, respawn the shard,
    and let the deterministic rebuild+fast-forward recompute the epoch.
    """


class ShardResultDropped(ShardComputeError):
    """The compute ran but its result was lost on the way back."""


class ShardResultCorrupted(ShardComputeError):
    """The returned payload failed its integrity check (CRC mismatch)."""


class ShardUnavailableError(ServingError):
    """The shard's circuit breaker is open: fail fast, do not compute.

    Raised before any attempt is made while the breaker cools down after
    repeated consecutive failures; callers should degrade gracefully
    (serve a staleness-tagged snapshot) and retry later.
    """

    def __init__(self, message: str, shard: int = -1):
        super().__init__(message)
        self.shard = shard


class EpochComputeFailed(ServingError):
    """Every supervised attempt at one epoch compute failed.

    The session stays recoverable: the epoch was never published, so a
    later ``advance`` retries the *same* epoch and -- compute being a
    pure function of ``(config, epoch)`` -- publishes the byte-identical
    payload the fault-free run would have.
    """

    def __init__(self, message: str, query_id: str = "", epoch: int = 0,
                 attempts: int = 0):
        super().__init__(message)
        self.query_id = query_id
        self.epoch = epoch
        self.attempts = attempts


class SessionFailedError(ServingError):
    """The session hit a non-recoverable application error.

    An exception inside a session's epoch loop (bad config surfacing at
    compute time, a bug in the pipeline) is terminal for that session:
    every subscriber's stream raises this error instead of stalling
    silently, and the originating exception rides along as
    ``__cause__``.  Other sessions of the same service are unaffected.
    """
