"""Exceptions raised by the contour-map serving layer."""

from __future__ import annotations


class ServingError(Exception):
    """Base class for all serving-layer errors."""


class WireFormatError(ServingError, ValueError):
    """A serving payload failed to decode (bad size, bad framing)."""


class ReplayGapError(ServingError):
    """A delta stream skipped an epoch the replayer has not seen.

    Raised by :class:`repro.serving.wire.DeltaReplayer` when a delta's
    epoch is not exactly one past the replayer's current epoch -- the
    stream contract (replay-then-live, snapshot resync on retention
    gaps) guarantees contiguity, so a gap means a protocol bug upstream.
    """


class EpochEvicted(ServingError, KeyError):
    """The requested ``(query_id, epoch)`` fell out of store retention.

    The store never serves stale bytes: once an epoch's records are
    evicted, any cached rendering is purged with them and requests for
    that epoch fail loudly instead of returning the wrong map.
    """


class SlowConsumerEvicted(ServingError):
    """This subscriber's bounded queue overflowed and it was evicted.

    The session drops the subscriber's backlog and terminates its stream
    with this error; the client should re-subscribe (getting a snapshot
    resync if it fell past retention) rather than silently losing deltas.
    """


class UnknownQueryError(ServingError, KeyError):
    """No session is registered for the requested query id."""
