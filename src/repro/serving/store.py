"""Per-session payload store: retention window + rendered-snapshot cache.

A :class:`MapStore` holds, for every epoch inside its retention window:

- the epoch's **delta payload** (what a subscriber replaying missed
  epochs is sent), and
- the epoch's canonical **record state** (the position-keyed map records
  after applying the delta, as a sorted tuple) plus the sink reading,
  from which the snapshot payload is rendered on demand.

Snapshot payloads are memoised in a small LRU keyed by
``(query_id, epoch)``.  The cache is *transparent* by construction --
rendering is a pure function of the retained per-epoch state, so cache
hits and misses return identical bytes (pinned by a property test) --
and eviction is safe: dropping an epoch's state also purges its cached
rendering, so a request for an evicted epoch raises
:class:`~repro.serving.errors.EpochEvicted` instead of ever serving
stale bytes.

Epoch 0 (before anything was published) renders as the canonical empty
snapshot -- the same state a fresh
:class:`~repro.serving.wire.DeltaReplayer` renders, which is what makes
the snapshot-vs-replay identity hold from the very start of a stream.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.serving.errors import EpochEvicted
from repro.serving.wire import encode_snapshot


@dataclass(frozen=True)
class _EpochEntry:
    delta: bytes
    records: Tuple[bytes, ...]
    sink: Optional[int]
    #: The SIMPLIFIED stream's payloads for this epoch (None on sessions
    #: without a configured simplify tolerance).
    s_delta: Optional[bytes] = None
    s_records: Optional[Tuple[bytes, ...]] = None


class MapStore:
    """Bounded per-session storage of served payloads.

    Args:
        query_id: the owning session's query id (cache-key component and
            error-message context).
        retention: how many most-recent epochs keep their delta payload
            and record state (>= 1); older epochs are evicted.
        snapshot_cache_size: LRU capacity for rendered snapshot payloads.
        cache_enabled: disable to re-render every snapshot request (the
            transparency property tests compare both modes byte-for-byte).
    """

    def __init__(
        self,
        query_id: str,
        retention: int = 128,
        snapshot_cache_size: int = 8,
        cache_enabled: bool = True,
    ):
        if retention < 1:
            raise ValueError("retention must be >= 1")
        if snapshot_cache_size < 1:
            raise ValueError("snapshot_cache_size must be >= 1")
        self.query_id = query_id
        self.retention = retention
        self.snapshot_cache_size = snapshot_cache_size
        self.cache_enabled = cache_enabled
        self._epochs: "OrderedDict[int, _EpochEntry]" = OrderedDict()
        # Rendered-snapshot LRU, keyed (epoch, simplified).
        self._rendered: "OrderedDict[Tuple[int, bool], bytes]" = OrderedDict()
        self._latest = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def latest_epoch(self) -> int:
        """The newest published epoch (0 before the first publish)."""
        return self._latest

    def oldest_retained(self) -> Optional[int]:
        """The oldest epoch still in retention (None when empty)."""
        if not self._epochs:
            return None
        return next(iter(self._epochs))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def put_epoch(
        self,
        epoch: int,
        delta: bytes,
        records: Tuple[bytes, ...],
        sink: Optional[int],
        s_delta: Optional[bytes] = None,
        s_records: Optional[Tuple[bytes, ...]] = None,
    ) -> None:
        """Publish one epoch's payloads (epochs must arrive in order).

        ``s_delta`` / ``s_records`` carry the SIMPLIFIED stream's epoch
        payloads when the session produces one; they share the epoch's
        retention window.
        """
        if epoch != self._latest + 1:
            raise ValueError(
                f"epoch {epoch} out of order (latest is {self._latest})"
            )
        self._epochs[epoch] = _EpochEntry(
            delta,
            tuple(records),
            sink,
            s_delta=s_delta,
            s_records=None if s_records is None else tuple(s_records),
        )
        self._latest = epoch
        while len(self._epochs) > self.retention:
            old, _ = self._epochs.popitem(last=False)
            # Purge any cached rendering with the state it came from:
            # eviction must never leave a servable stale snapshot behind.
            self._rendered.pop((old, False), None)
            self._rendered.pop((old, True), None)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def delta(self, epoch: int, simplified: bool = False) -> Optional[bytes]:
        """The delta payload of ``epoch`` (None once evicted / unknown).

        With ``simplified`` the SIMPLIFIED stream's delta is returned;
        requesting it on a session that never produced one raises
        ``ValueError`` (negotiation upstream should have refused).
        """
        entry = self._epochs.get(epoch)
        if entry is None:
            return None
        if not simplified:
            return entry.delta
        if entry.s_delta is None:
            raise ValueError(
                f"query {self.query_id!r} epoch {epoch} has no simplified delta"
            )
        return entry.s_delta

    def snapshot(
        self, epoch: Optional[int] = None, simplified: bool = False
    ) -> bytes:
        """The rendered snapshot payload of ``epoch`` (default: latest).

        With ``simplified`` the snapshot is rendered from the epoch's
        SIMPLIFIED record subset (cached separately from the plain
        rendering).

        Raises:
            EpochEvicted: the epoch fell out of retention (or was never
                published).
            ValueError: a simplified snapshot of an epoch that has none.
        """
        if epoch is None:
            epoch = self._latest
        if epoch == 0 and self._latest == 0:
            # Nothing published yet: the canonical empty map (identical
            # for both encodings -- simplifying nothing keeps nothing).
            return encode_snapshot(0, (), None)
        entry = self._epochs.get(epoch)
        if entry is None:
            raise EpochEvicted(
                f"query {self.query_id!r} epoch {epoch} is outside retention "
                f"[{self.oldest_retained()}, {self._latest}]"
            )
        records = entry.records
        if simplified:
            if entry.s_records is None:
                raise ValueError(
                    f"query {self.query_id!r} epoch {epoch} has no simplified "
                    f"record state"
                )
            records = entry.s_records
        key = (epoch, simplified)
        if self.cache_enabled:
            cached = self._rendered.get(key)
            if cached is not None:
                self._rendered.move_to_end(key)
                self.cache_hits += 1
                return cached
        self.cache_misses += 1
        payload = encode_snapshot(epoch, records, entry.sink)
        if self.cache_enabled:
            self._rendered[key] = payload
            self._rendered.move_to_end(key)
            while len(self._rendered) > self.snapshot_cache_size:
                self._rendered.popitem(last=False)
        return payload
