"""Shard supervision: deadlines, crash/hang detection, respawn, retries.

PR 6's :class:`~repro.serving.router.ShardPool` assumed perfect workers:
a crashed or wedged shard process stalled ``compute`` forever and took
every session pinned to it down with it.  This module wraps the same
sharded layout in a self-healing control loop:

- every compute attempt runs under a **per-request deadline**
  (:attr:`SupervisorConfig.compute_timeout`); a worker that crashes
  raises a broken-pool error, a worker that hangs blows the deadline --
  both are *detected*, classified, and recovered from;
- recovery is **kill + respawn + deterministic rebuild**: the shard's
  process is killed, a fresh single-worker pool is spawned lazily, and
  the worker-side compute (:func:`repro.serving.worker.compute_epoch`)
  rebuilds the session and fast-forwards to the requested epoch --
  byte-identical to an uninterrupted run, because every payload is a
  pure function of ``(config, epoch)``;
- failed attempts are retried with **capped, jittered exponential
  backoff** -- the serving mirror of the transport's ARQ policy
  (``min(base << (k - 2), cap)`` windows), with the jitter drawn from a
  counter-based stream keyed ``(query, epoch, attempt)`` so even the
  retry timing is reproducible;
- each shard carries a **circuit breaker**: after
  :attr:`SupervisorConfig.breaker_threshold` consecutive infrastructure
  failures it opens and the next :attr:`SupervisorConfig.breaker_cooldown`
  compute calls fail fast (:class:`ShardUnavailableError`) instead of
  burning deadlines on a shard that is clearly down, then a half-open
  trial call decides between closing and re-opening.  The cooldown is
  counted in *calls*, not seconds, so chaos runs replay identically on
  any machine;
- results carry a CRC integrity tag; a payload damaged in transit is
  rejected and recomputed, never published;
- a :class:`~repro.serving.chaos.ChaosEngine` can be plugged between the
  supervisor and the workers to inject kills, hangs, drops and
  corruption from seeded counter-based draws (the reproducible chaos
  harness).

Health is first-class: per-shard :class:`ShardHealth` counters (crashes,
hangs, restarts, retries, MTTR samples) feed ``MapService.health()`` and
``BENCH_serving_faults.json``, and :meth:`ShardSupervisor.probe` runs a
worker heartbeat (:func:`repro.serving.worker.ping`) under its own
deadline to tell a wedged shard from an idle one without waiting for a
real request to fail.
"""

from __future__ import annotations

import asyncio
import time
import zlib
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.network.rngstream import derive_key, uniform_at
from repro.serving import worker as worker_mod
from repro.serving.chaos import CORRUPT, DROP, HANG, KILL, ChaosEngine, ChaosPlan
from repro.serving.errors import (
    EpochComputeFailed,
    ShardComputeError,
    ShardCrashError,
    ShardHangError,
    ShardResultCorrupted,
    ShardResultDropped,
    ShardUnavailableError,
)
from repro.serving.session import SessionConfig

#: Backoff-jitter stream tag (sibling of the chaos engine's tags).
_TAG_BACKOFF = 103


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning knobs of the self-healing layer.

    Attributes:
        compute_timeout: per-request deadline (seconds); a compute that
            has not answered by then is treated as a hang.
        probe_timeout: deadline for the worker heartbeat probe.
        max_attempts: attempts per ``compute`` call (first try included),
            mirroring the transport's ``max_retries + 1`` ARQ budget.
        backoff_base / backoff_cap: retry ``k`` (k >= 2) sleeps
            ``min(backoff_base * 2**(k - 2), backoff_cap)`` seconds,
            scaled by a deterministic jitter in [0.5, 1.0) -- the capped
            exponential backoff of the transport, in wall time.
        backoff_seed: seed of the jitter stream.
        breaker_threshold: consecutive infrastructure failures that open
            a shard's circuit breaker.
        breaker_cooldown: compute *calls* that fail fast while the
            breaker is open, before the half-open trial (call-counted so
            chaos runs replay identically on any machine).
        close_timeout: worker-join deadline on shutdown; stragglers are
            killed so closing can never hang.
    """

    compute_timeout: float = 30.0
    probe_timeout: float = 5.0
    max_attempts: int = 4
    backoff_base: float = 0.01
    backoff_cap: float = 0.08
    backoff_seed: int = 0
    breaker_threshold: int = 3
    breaker_cooldown: int = 2
    close_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.compute_timeout <= 0 or self.probe_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.breaker_threshold < 1 or self.breaker_cooldown < 0:
            raise ValueError("breaker parameters out of range")


class CircuitBreaker:
    """Per-shard three-state breaker with call-counted cooldown.

    Closed: calls flow.  Open: the next ``cooldown`` calls fail fast.
    Half-open: one trial call runs; success closes the breaker, failure
    re-opens it.
    """

    def __init__(self, threshold: int, cooldown: int):
        self.threshold = threshold
        self.cooldown = cooldown
        self.consecutive_failures = 0
        self.opens = 0
        self._budget = 0

    @property
    def state(self) -> str:
        if self._budget > 0:
            return "open"
        if self.consecutive_failures >= self.threshold:
            return "half_open"
        return "closed"

    @property
    def is_open(self) -> bool:
        return self._budget > 0

    def allows(self) -> bool:
        """Gate one compute call; consumes one cooldown slot when open."""
        if self._budget > 0:
            self._budget -= 1
            return False
        return True

    def on_success(self) -> None:
        self.consecutive_failures = 0
        self._budget = 0

    def on_failure(self) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold and self._budget == 0:
            self._budget = self.cooldown
            self.opens += 1


@dataclass
class ShardHealth:
    """What one shard's supervisor has seen and done."""

    computes: int = 0
    retries: int = 0
    crashes: int = 0
    hangs: int = 0
    drops: int = 0
    corruptions: int = 0
    restarts: int = 0
    failures: int = 0  # compute calls that exhausted every attempt
    breaker_fast_fails: int = 0
    recovery_ms: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "computes": self.computes,
            "retries": self.retries,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "drops": self.drops,
            "corruptions": self.corruptions,
            "restarts": self.restarts,
            "failures": self.failures,
            "breaker_fast_fails": self.breaker_fast_fails,
            "recoveries": len(self.recovery_ms),
        }


def drain_executor(executor: ProcessPoolExecutor, timeout: float = 5.0) -> None:
    """Shut a process pool down without ever hanging the caller.

    Queued-but-unstarted work is cancelled, workers get ``timeout``
    seconds to join, and stragglers (dead-but-unreaped or genuinely
    wedged processes) are killed -- so ``MapService.stop()`` can never
    block on a worker that will not come back.
    """
    executor.shutdown(wait=False, cancel_futures=True)
    # _processes is None once the executor has fully shut down.
    procs = [
        p for p in (getattr(executor, "_processes", None) or {}).values()
        if p is not None
    ]
    deadline = time.monotonic() + timeout
    for p in procs:
        p.join(max(0.0, deadline - time.monotonic()))
    for p in procs:
        if p.is_alive():
            p.kill()
    for p in procs:
        if p.is_alive():
            p.join(1.0)


class ShardSupervisor:
    """Owns one shard's worker process, breaker, and health counters.

    ``inline=True`` is the processless (``n_shards = 0``) twin: compute
    runs in the event loop's default thread executor, and "respawn"
    wipes the in-process session table instead of killing anything --
    the recovery path still exercises the deterministic rebuild, so
    inline and sharded chaos runs stay byte-identical.
    """

    def __init__(self, index: int, config: SupervisorConfig, inline: bool = False):
        self.index = index
        self.config = config
        self.inline = inline
        self.health = ShardHealth()
        self.breaker = CircuitBreaker(
            config.breaker_threshold, config.breaker_cooldown
        )
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------

    def executor(self) -> Optional[ProcessPoolExecutor]:
        """The live executor (respawned lazily); None in inline mode."""
        if self.inline:
            return None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=1)
        return self._executor

    def kill_workers(self) -> int:
        """SIGKILL every live worker process of this shard.

        Returns how many processes were actually killed (0 inline, or
        when the pool has not spawned its worker yet).
        """
        if self._executor is None:
            return 0
        killed = 0
        for p in (getattr(self._executor, "_processes", None) or {}).values():
            if p is not None and p.is_alive():
                p.kill()
                killed += 1
        return killed

    def respawn(self) -> None:
        """Tear the shard's worker down and arrange a fresh one.

        The replacement pool is created lazily on the next request; the
        worker-side session table dies with the old process, so the next
        epoch compute rebuilds and fast-forwards deterministically.
        """
        self.health.restarts += 1
        if self.inline:
            worker_mod.reset()
            return
        if self._executor is not None:
            self.kill_workers()
            old = self._executor
            self._executor = None
            old.shutdown(wait=False, cancel_futures=True)

    def on_crash(self) -> None:
        self.health.crashes += 1
        self.respawn()

    def on_hang(self) -> None:
        self.health.hangs += 1
        self.respawn()

    def close(self) -> None:
        if self._executor is not None:
            old = self._executor
            self._executor = None
            drain_executor(old, self.config.close_timeout)

    # ------------------------------------------------------------------
    # Health probing
    # ------------------------------------------------------------------

    async def probe(self) -> bool:
        """Heartbeat: does the worker answer within the probe deadline?

        A wedged single-worker shard cannot run :func:`worker.ping`
        until its current (stuck) task finishes, so the probe times out
        -- the supervisor's way of detecting a hang *between* requests.
        """
        loop = asyncio.get_running_loop()
        try:
            fut = loop.run_in_executor(self.executor(), worker_mod.ping)
            await asyncio.wait_for(fut, self.config.probe_timeout)
            return True
        except (asyncio.TimeoutError, BrokenExecutor, OSError, RuntimeError):
            return False

    async def ensure_healthy(self) -> bool:
        """Probe; on failure kill + respawn and probe the replacement."""
        if await self.probe():
            return True
        self.on_hang()
        return await self.probe()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        d = self.health.to_dict()
        d["shard"] = self.index
        d["inline"] = self.inline
        d["breaker"] = self.breaker.state
        d["breaker_opens"] = self.breaker.opens
        return d


class SupervisedShardPool:
    """Self-healing drop-in for :class:`~repro.serving.router.ShardPool`.

    Same sharding (stable crc32 pinning, ``n_shards = 0`` = inline) and
    the same deterministic payloads, plus the supervision loop described
    in the module docstring.  With default supervision and no chaos the
    zero-failure path is behaviourally identical to the plain pool --
    pinned by the pre-existing serving test suite running through it.

    Args:
        n_shards: worker processes; 0 computes inline.
        supervision: deadlines/retry/breaker tuning (defaults are
            production-shaped: generous deadline, small backoff).
        chaos: a seeded :class:`~repro.serving.chaos.ChaosPlan` to
            inject failures (None or a null plan = no injection).
    """

    def __init__(
        self,
        n_shards: int = 0,
        supervision: Optional[SupervisorConfig] = None,
        chaos: Optional[ChaosPlan] = None,
    ):
        if n_shards < 0:
            raise ValueError("n_shards must be >= 0")
        self.n_shards = n_shards
        self.supervision = supervision if supervision is not None else SupervisorConfig()
        self.chaos: Optional[ChaosEngine] = None
        if chaos is not None and not chaos.is_null:
            self.chaos = ChaosEngine(chaos)
        if n_shards:
            self.supervisors = [
                ShardSupervisor(i, self.supervision) for i in range(n_shards)
            ]
        else:
            self.supervisors = [ShardSupervisor(0, self.supervision, inline=True)]
        #: perf_counter of the first failed attempt per (query, epoch),
        #: kept across compute calls so MTTR spans breaker-open gaps.
        self._first_failure: Dict[Tuple[str, int], float] = {}

    def shard_of(self, query_id: str) -> int:
        """The shard a query id is pinned to (stable across runs)."""
        if not self.n_shards:
            return 0
        return zlib.crc32(query_id.encode("utf-8")) % self.n_shards

    # ------------------------------------------------------------------
    # The supervised compute path
    # ------------------------------------------------------------------

    async def compute(self, config: SessionConfig, epoch: int) -> Dict[str, Any]:
        """Run one session epoch with supervision, retries and breaker.

        Raises:
            ShardUnavailableError: the shard's breaker is open (fail
                fast, nothing was attempted).
            EpochComputeFailed: every attempt failed; the epoch can be
                retried later and will produce identical bytes.
        """
        qid = config.query_id
        shard_idx = self.shard_of(qid)
        sup = self.supervisors[shard_idx]
        scfg = self.supervision
        if not sup.breaker.allows():
            sup.health.breaker_fast_fails += 1
            raise ShardUnavailableError(
                f"shard {shard_idx} circuit open "
                f"(cooling down after {sup.breaker.consecutive_failures} "
                f"consecutive failures)",
                shard=shard_idx,
            )
        last: Optional[ShardComputeError] = None
        attempts = 0
        for k in range(1, scfg.max_attempts + 1):
            if k > 1:
                sup.health.retries += 1
                delay = self._backoff_delay(qid, epoch, k)
                if delay > 0:
                    await asyncio.sleep(delay)
            attempt = (
                self.chaos.next_attempt(qid, epoch) if self.chaos is not None else k
            )
            action = (
                self.chaos.action(shard_idx, qid, epoch, attempt)
                if self.chaos is not None
                else None
            )
            attempts = k
            try:
                result = await self._attempt(sup, config, epoch, action, attempt)
            except ShardComputeError as exc:
                last = exc
                self._first_failure.setdefault((qid, epoch), time.perf_counter())
                sup.breaker.on_failure()
                if sup.breaker.is_open:
                    break  # fail the call; the breaker gates the next ones
                continue
            sup.breaker.on_success()
            sup.health.computes += 1
            t0 = self._first_failure.pop((qid, epoch), None)
            if t0 is not None:
                sup.health.recovery_ms.append((time.perf_counter() - t0) * 1e3)
            return result
        sup.health.failures += 1
        raise EpochComputeFailed(
            f"epoch {epoch} of {qid!r} failed after {attempts} attempts "
            f"(last: {last!r})",
            query_id=qid,
            epoch=epoch,
            attempts=attempts,
        )

    async def _attempt(
        self,
        sup: ShardSupervisor,
        config: SessionConfig,
        epoch: int,
        action: Optional[str],
        attempt: int,
    ) -> Dict[str, Any]:
        """One supervised attempt; infrastructure failures raise
        :class:`ShardComputeError` subclasses (and have already been
        recovered from -- the shard is respawned before the raise)."""
        scfg = self.supervision
        qid = config.query_id
        loop = asyncio.get_running_loop()

        if action == HANG:
            # A wedged worker: the deadline passes with no answer.  The
            # recovery is the real one -- kill whatever the shard runs
            # and respawn -- so the rebuild path is genuinely exercised.
            await asyncio.sleep(scfg.compute_timeout)
            sup.on_hang()
            raise ShardHangError(
                f"shard {sup.index} hung on epoch {epoch} of {qid!r} "
                f"(deadline {scfg.compute_timeout}s)",
                shard=sup.index,
            )

        if action == KILL:
            # A real SIGKILL when the shard has a live worker; the broken
            # pool then surfaces below.  Inline -- or before the lazy
            # pool has spawned its worker -- there is nothing to kill,
            # so the crash (and the state loss) is simulated instead.
            if sup.kill_workers() == 0:
                sup.on_crash()
                raise ShardCrashError(
                    f"shard {sup.index} worker killed (simulated) "
                    f"on epoch {epoch} of {qid!r}",
                    shard=sup.index,
                )

        try:
            fut = loop.run_in_executor(
                sup.executor(), worker_mod.compute_epoch, config.to_dict(), epoch
            )
            result = await asyncio.wait_for(fut, scfg.compute_timeout)
        except asyncio.TimeoutError:
            sup.on_hang()
            raise ShardHangError(
                f"shard {sup.index} blew its {scfg.compute_timeout}s deadline "
                f"on epoch {epoch} of {qid!r}",
                shard=sup.index,
            ) from None
        except BrokenExecutor as exc:
            sup.on_crash()
            raise ShardCrashError(
                f"shard {sup.index} worker died on epoch {epoch} of {qid!r}: "
                f"{exc!r}",
                shard=sup.index,
            ) from exc

        if action == DROP:
            sup.health.drops += 1
            raise ShardResultDropped(
                f"shard {sup.index} result for epoch {epoch} of {qid!r} "
                f"dropped in transit",
                shard=sup.index,
            )
        if action == CORRUPT and self.chaos is not None:
            result = dict(result)
            result["delta"] = self.chaos.corrupt_payload(
                result["delta"], sup.index, qid, epoch, attempt
            )

        crc = result.get("crc")
        if crc is not None and (zlib.crc32(result["delta"]) & 0xFFFFFFFF) != crc:
            sup.health.corruptions += 1
            raise ShardResultCorrupted(
                f"shard {sup.index} payload for epoch {epoch} of {qid!r} "
                f"failed its CRC check",
                shard=sup.index,
            )
        # The SIMPLIFIED stream's delta carries its own integrity tag:
        # both payloads must survive transit for the epoch to publish.
        s_crc = result.get("s_crc")
        if s_crc is not None and (
            zlib.crc32(result["s_delta"]) & 0xFFFFFFFF
        ) != s_crc:
            sup.health.corruptions += 1
            raise ShardResultCorrupted(
                f"shard {sup.index} simplified payload for epoch {epoch} of "
                f"{qid!r} failed its CRC check",
                shard=sup.index,
            )
        return result

    def _backoff_delay(self, query_id: str, epoch: int, k: int) -> float:
        """Deterministically jittered capped exponential backoff."""
        scfg = self.supervision
        window = min(scfg.backoff_base * (2 ** (k - 2)), scfg.backoff_cap)
        if window <= 0:
            return 0.0
        key = derive_key(
            scfg.backoff_seed, _TAG_BACKOFF,
            zlib.crc32(query_id.encode("utf-8")), epoch, k,
        )
        return window * (0.5 + 0.5 * uniform_at(key, 0))

    # ------------------------------------------------------------------
    # Health / lifecycle
    # ------------------------------------------------------------------

    async def probe_all(self) -> List[bool]:
        """Heartbeat every shard (True = answered within the deadline)."""
        return [await sup.probe() for sup in self.supervisors]

    def status(self) -> List[Dict[str, Any]]:
        return [sup.status() for sup in self.supervisors]

    def close(self, timeout: Optional[float] = None) -> None:
        """Shut every shard down; never hangs (stragglers are killed)."""
        join = self.supervision.close_timeout if timeout is None else timeout
        for sup in self.supervisors:
            if sup._executor is not None:
                old = sup._executor
                sup._executor = None
                drain_executor(old, join)
