"""The async front door: session sharding and the service router.

:class:`ShardPool` spreads session compute across worker processes, one
single-worker :class:`~concurrent.futures.ProcessPoolExecutor` per
shard.  A session is pinned to its shard by a stable hash of its query
id, so its epochs always run sequentially in the same process and the
worker-side state table (:mod:`repro.serving.worker`) stays warm.  With
``n_shards = 0`` the same worker function runs in the event loop's
default thread executor instead -- byte-identical payloads either way
(the sharding-determinism tests pin inline vs. 1-shard vs. 2-shard).

:class:`MapService` is the single async router in front of the shards:
it owns one :class:`~repro.serving.session.MapSession` per standing
query and exposes the two client paths -- ``snapshot(query_id)`` and
``subscribe(query_id, since_epoch)`` -- plus lifecycle control
(``start_all`` / ``advance_all`` / ``stop``).

Since PR 7 the service routes compute through a
:class:`~repro.serving.supervisor.SupervisedShardPool` -- the
self-healing wrapper with per-request deadlines, crash/hang recovery,
retries and per-shard circuit breakers (see
:mod:`repro.serving.supervisor`).  The plain :class:`ShardPool` remains
for direct, unsupervised use; both close without ever hanging.
"""

from __future__ import annotations

import asyncio
import zlib
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.serving.chaos import ChaosPlan
from repro.serving.errors import UnknownQueryError
from repro.serving.session import MapSession, SessionConfig, Subscription
from repro.serving.supervisor import (
    SupervisedShardPool,
    SupervisorConfig,
    drain_executor,
)
from repro.serving.wire import ENCODING_PLAIN, ServedMessage
from repro.serving.worker import compute_epoch


class ShardPool:
    """Process-sharded (or inline) epoch compute.

    Args:
        n_shards: worker processes; ``0`` computes inline in the default
            thread executor (no extra processes -- the CI/test mode).
    """

    def __init__(self, n_shards: int = 0):
        if n_shards < 0:
            raise ValueError("n_shards must be >= 0")
        self.n_shards = n_shards
        self._pools: List[ProcessPoolExecutor] = [
            ProcessPoolExecutor(max_workers=1) for _ in range(n_shards)
        ]

    def shard_of(self, query_id: str) -> int:
        """The shard a query id is pinned to (stable across runs)."""
        if not self._pools:
            return 0
        return zlib.crc32(query_id.encode("utf-8")) % len(self._pools)

    async def compute(self, config: SessionConfig, epoch: int) -> Dict[str, Any]:
        """Run one session epoch on the owning shard (or inline)."""
        loop = asyncio.get_running_loop()
        executor = (
            self._pools[self.shard_of(config.query_id)] if self._pools else None
        )
        return await loop.run_in_executor(
            executor, compute_epoch, config.to_dict(), epoch
        )

    def close(self, timeout: float = 5.0) -> None:
        """Shut the shards down; never hangs.

        Workers get ``timeout`` seconds to join; stragglers (wedged or
        killed-but-unreaped processes) are SIGKILLed.  A plain
        ``shutdown(wait=True)`` here could block ``MapService.stop()``
        forever behind one stuck worker.
        """
        pools, self._pools = self._pools, []
        for pool in pools:
            drain_executor(pool, timeout)


class MapService:
    """Async router over many serving sessions.

    Args:
        configs: one :class:`SessionConfig` per standing query.
        n_shards: worker processes for the shard pool (0 = inline).
        supervision: deadlines/retry/breaker tuning for the supervised
            pool (None = production defaults; behaviourally identical to
            the plain pool on the zero-failure path).
        chaos: a seeded :class:`~repro.serving.chaos.ChaosPlan` to
            inject failures between the supervisor and the workers
            (None = no injection).
        session_kwargs: forwarded to every :class:`MapSession`
            (``retention``, ``queue_depth``, ``epoch_interval``, ...).
    """

    def __init__(
        self,
        configs: Iterable[SessionConfig],
        n_shards: int = 0,
        supervision: Optional[SupervisorConfig] = None,
        chaos: Optional[ChaosPlan] = None,
        **session_kwargs: Any,
    ):
        self.pool = SupervisedShardPool(
            n_shards, supervision=supervision, chaos=chaos
        )
        self.sessions: Dict[str, MapSession] = {}
        for config in configs:
            if config.query_id in self.sessions:
                raise ValueError(f"duplicate query id {config.query_id!r}")
            self.sessions[config.query_id] = MapSession(
                config, self.pool, **session_kwargs
            )

    # ------------------------------------------------------------------
    # Client paths
    # ------------------------------------------------------------------

    def session(self, query_id: str) -> MapSession:
        try:
            return self.sessions[query_id]
        except KeyError:
            raise UnknownQueryError(
                f"no session for query {query_id!r} "
                f"(serving: {sorted(self.sessions)})"
            ) from None

    def snapshot(
        self,
        query_id: str,
        epoch: Optional[int] = None,
        encoding: str = ENCODING_PLAIN,
    ) -> ServedMessage:
        """The latest (or a retained historical) rendered map snapshot.

        ``encoding`` picks the PLAIN or SIMPLIFIED rendering (the latter
        only on sessions configured with a ``simplify_tolerance``)."""
        return self.session(query_id).snapshot(epoch, encoding=encoding)

    def subscribe(
        self,
        query_id: str,
        since_epoch: int = 0,
        encodings: Tuple[str, ...] = (ENCODING_PLAIN,),
    ) -> Subscription:
        """A delta stream that replays from ``since_epoch`` then follows
        live updates (see :meth:`MapSession.attach` for edge semantics).
        ``encodings`` is the subscriber's offer for version negotiation."""
        return self.session(query_id).attach(since_epoch, encodings=encodings)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start_all(self) -> None:
        """Put every session on its epoch clock."""
        for session in self.sessions.values():
            session.start()

    async def advance_all(self) -> Dict[str, Dict[str, Any]]:
        """Advance every session one epoch (concurrently across shards)."""
        ids = list(self.sessions)
        results = await asyncio.gather(
            *(self.sessions[qid].advance() for qid in ids)
        )
        return dict(zip(ids, results))

    async def probe_shards(self) -> List[bool]:
        """Heartbeat every shard (True = it answered within deadline)."""
        return await self.pool.probe_all()

    def health(self) -> Dict[str, Any]:
        """A structured view of service health for operators and tests.

        Returns per-shard supervision counters (crashes, hangs,
        restarts, breaker state), per-session liveness (latest epoch,
        degraded/failed flags, subscriber count), and -- when chaos is
        plugged in -- the injected-failure counts.
        """
        report: Dict[str, Any] = {
            "shards": self.pool.status(),
            "sessions": {
                qid: {
                    "latest_epoch": s.latest_epoch,
                    "degraded": s.degraded,
                    "failed": s.failure is not None,
                    "epochs_failed": s.stats.epochs_failed,
                    "stale_snapshots": s.stats.stale_snapshots,
                    "subscribers": s.subscriber_count,
                }
                for qid, s in self.sessions.items()
            },
        }
        if self.pool.chaos is not None:
            report["chaos"] = self.pool.chaos.stats.to_dict()
        return report

    async def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop every session (draining subscribers) and the shard pool.

        Never hangs: worker processes that do not join within the pool's
        close deadline are killed.  Safe to call more than once.
        """
        await asyncio.gather(
            *(s.stop(drain=drain, timeout=timeout) for s in self.sessions.values())
        )
        self.pool.close()

    async def __aenter__(self) -> "MapService":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()
