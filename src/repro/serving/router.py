"""The async front door: session sharding and the service router.

:class:`ShardPool` spreads session compute across worker processes, one
single-worker :class:`~concurrent.futures.ProcessPoolExecutor` per
shard.  A session is pinned to its shard by a stable hash of its query
id, so its epochs always run sequentially in the same process and the
worker-side state table (:mod:`repro.serving.worker`) stays warm.  With
``n_shards = 0`` the same worker function runs in the event loop's
default thread executor instead -- byte-identical payloads either way
(the sharding-determinism tests pin inline vs. 1-shard vs. 2-shard).

:class:`MapService` is the single async router in front of the shards:
it owns one :class:`~repro.serving.session.MapSession` per standing
query and exposes the two client paths -- ``snapshot(query_id)`` and
``subscribe(query_id, since_epoch)`` -- plus lifecycle control
(``start_all`` / ``advance_all`` / ``stop``).
"""

from __future__ import annotations

import asyncio
import zlib
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterable, List, Optional

from repro.serving.errors import UnknownQueryError
from repro.serving.session import MapSession, SessionConfig, Subscription
from repro.serving.wire import ServedMessage
from repro.serving.worker import compute_epoch


class ShardPool:
    """Process-sharded (or inline) epoch compute.

    Args:
        n_shards: worker processes; ``0`` computes inline in the default
            thread executor (no extra processes -- the CI/test mode).
    """

    def __init__(self, n_shards: int = 0):
        if n_shards < 0:
            raise ValueError("n_shards must be >= 0")
        self.n_shards = n_shards
        self._pools: List[ProcessPoolExecutor] = [
            ProcessPoolExecutor(max_workers=1) for _ in range(n_shards)
        ]

    def shard_of(self, query_id: str) -> int:
        """The shard a query id is pinned to (stable across runs)."""
        if not self._pools:
            return 0
        return zlib.crc32(query_id.encode("utf-8")) % len(self._pools)

    async def compute(self, config: SessionConfig, epoch: int) -> Dict[str, Any]:
        """Run one session epoch on the owning shard (or inline)."""
        loop = asyncio.get_running_loop()
        executor = (
            self._pools[self.shard_of(config.query_id)] if self._pools else None
        )
        return await loop.run_in_executor(
            executor, compute_epoch, config.to_dict(), epoch
        )

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)
        self._pools = []


class MapService:
    """Async router over many serving sessions.

    Args:
        configs: one :class:`SessionConfig` per standing query.
        n_shards: worker processes for the shard pool (0 = inline).
        session_kwargs: forwarded to every :class:`MapSession`
            (``retention``, ``queue_depth``, ``epoch_interval``, ...).
    """

    def __init__(
        self,
        configs: Iterable[SessionConfig],
        n_shards: int = 0,
        **session_kwargs: Any,
    ):
        self.pool = ShardPool(n_shards)
        self.sessions: Dict[str, MapSession] = {}
        for config in configs:
            if config.query_id in self.sessions:
                raise ValueError(f"duplicate query id {config.query_id!r}")
            self.sessions[config.query_id] = MapSession(
                config, self.pool, **session_kwargs
            )

    # ------------------------------------------------------------------
    # Client paths
    # ------------------------------------------------------------------

    def session(self, query_id: str) -> MapSession:
        try:
            return self.sessions[query_id]
        except KeyError:
            raise UnknownQueryError(
                f"no session for query {query_id!r} "
                f"(serving: {sorted(self.sessions)})"
            ) from None

    def snapshot(self, query_id: str, epoch: Optional[int] = None) -> ServedMessage:
        """The latest (or a retained historical) rendered map snapshot."""
        return self.session(query_id).snapshot(epoch)

    def subscribe(self, query_id: str, since_epoch: int = 0) -> Subscription:
        """A delta stream that replays from ``since_epoch`` then follows
        live updates (see :meth:`MapSession.attach` for edge semantics)."""
        return self.session(query_id).attach(since_epoch)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start_all(self) -> None:
        """Put every session on its epoch clock."""
        for session in self.sessions.values():
            session.start()

    async def advance_all(self) -> Dict[str, Dict[str, Any]]:
        """Advance every session one epoch (concurrently across shards)."""
        ids = list(self.sessions)
        results = await asyncio.gather(
            *(self.sessions[qid].advance() for qid in ids)
        )
        return dict(zip(ids, results))

    async def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop every session (draining subscribers) and the shard pool."""
        await asyncio.gather(
            *(s.stop(drain=drain, timeout=timeout) for s in self.sessions.values())
        )
        self.pool.close()

    async def __aenter__(self) -> "MapService":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()
