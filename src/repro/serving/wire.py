"""Wire framing for served contour maps: snapshots, deltas, replay.

The serving layer ships the sink's report cache to clients in the same
2-byte-per-parameter quantised records the network uses
(:class:`repro.core.codec.ReportCodec`, 8 bytes per report), wrapped in
two payload kinds:

- a **snapshot** carries the complete current map: every cached record,
  in canonical order, plus the sink's own quantised reading;
- a **delta** carries one epoch's change: the records that were
  (re)delivered this epoch and the positions whose reports were
  retracted (a retraction is position-only, 4 bytes -- the serving
  analogue of :data:`repro.core.continuous.RETRACTION_BYTES`).

Records are keyed by their quantised position (the paper's reports carry
no source id -- the position identifies the source), so a client that
folds deltas into a position-keyed dict reconstructs the server's map
state exactly.  :class:`DeltaReplayer` implements that fold and can
re-render the snapshot payload at any point; the serving tests pin that
a replay from epoch 0 is *byte-identical* to the server's ``snapshot()``
at every epoch.

Canonical ordering: snapshot records are sorted by their raw 8-byte
encoding.  Any total order would do -- sorting makes the rendering a
pure function of the map state, which is what byte-identity needs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.codec import ReportCodec
from repro.core.contour_map import ContourMap, build_contour_map
from repro.core.reports import IsolineReport
from repro.core.wire import ISOLINE_REPORT_BYTES
from repro.geometry import BoundingBox
from repro.serving.errors import ReplayGapError, WireFormatError

#: Message kinds carried by :class:`ServedMessage`.
SNAPSHOT = "snapshot"
DELTA = "delta"

#: A snapshot served while the session's shard is failing or recovering:
#: the payload is the last *retained* epoch (byte-identical to what
#: ``snapshot`` served when that epoch was fresh), and the distinct kind
#: is the explicit staleness marker -- the client knows the map may lag
#: the field instead of mistaking a degraded answer for a live one.
SNAPSHOT_STALE = "snapshot_stale"

#: Delta header: epoch (u32), new-record count (u16), retraction count
#: (u16), quantised sink value (u16), sink-present flag (u8).
_DELTA_HEADER = struct.Struct("<IHHHB")

#: Snapshot header: epoch (u32), record count (u16), quantised sink
#: value (u16), sink-present flag (u8).
_SNAPSHOT_HEADER = struct.Struct("<IHHB")

#: A retraction on the serving wire: the quantised (x, y) position.
_RETRACTION = struct.Struct("<HH")

#: Position offset inside an encoded report record (value is first).
_RECORD_POS = struct.Struct("<HH")

#: Counts are u16 fields.
MAX_RECORDS = 0xFFFF


@dataclass(frozen=True)
class ServedMessage:
    """One unit of the serving protocol as seen by a client.

    Attributes:
        kind: :data:`SNAPSHOT`, :data:`SNAPSHOT_STALE` or :data:`DELTA`.
        epoch: the epoch the payload describes (snapshots: the epoch the
            state is current *as of*; deltas: the epoch the change
            belongs to).
        payload: the encoded bytes.
    """

    kind: str
    epoch: int
    payload: bytes

    @property
    def stale(self) -> bool:
        """True when this is a degraded-mode (staleness-tagged) snapshot."""
        return self.kind == SNAPSHOT_STALE


@dataclass(frozen=True)
class DeltaFrame:
    """A decoded delta payload."""

    epoch: int
    records: Tuple[bytes, ...]
    retractions: Tuple[Tuple[int, int], ...]
    sink: Optional[int]


@dataclass(frozen=True)
class SnapshotFrame:
    """A decoded snapshot payload."""

    epoch: int
    records: Tuple[bytes, ...]
    sink: Optional[int]


def record_position_key(record: bytes) -> Tuple[int, int]:
    """The quantised (x, y) a record is keyed by in map state."""
    return _RECORD_POS.unpack_from(record, 2)


def _pack_sink(sink: Optional[int]) -> Tuple[int, int]:
    if sink is None:
        return 0, 0
    if not 0 <= sink <= 0xFFFF:
        raise WireFormatError(f"quantised sink value {sink} out of range")
    return sink, 1


def _unpack_sink(q: int, flag: int) -> Optional[int]:
    return q if flag else None


def _check_records(records: Iterable[bytes]) -> Tuple[bytes, ...]:
    recs = tuple(records)
    if len(recs) > MAX_RECORDS:
        raise WireFormatError(f"{len(recs)} records exceed the u16 count field")
    for r in recs:
        if len(r) != ISOLINE_REPORT_BYTES:
            raise WireFormatError(
                f"record must be {ISOLINE_REPORT_BYTES} bytes, got {len(r)}"
            )
    return recs


def encode_delta(
    epoch: int,
    records: Iterable[bytes],
    retractions: Iterable[Tuple[int, int]],
    sink: Optional[int],
) -> bytes:
    """Serialise one epoch's change set."""
    recs = _check_records(records)
    rets = tuple(retractions)
    if len(rets) > MAX_RECORDS:
        raise WireFormatError(f"{len(rets)} retractions exceed the u16 count field")
    q_sink, flag = _pack_sink(sink)
    parts = [_DELTA_HEADER.pack(epoch, len(recs), len(rets), q_sink, flag)]
    parts.extend(recs)
    parts.extend(_RETRACTION.pack(qx, qy) for qx, qy in rets)
    return b"".join(parts)


def decode_delta(payload: bytes) -> DeltaFrame:
    """Deserialise a delta payload; raises :class:`WireFormatError`."""
    if len(payload) < _DELTA_HEADER.size:
        raise WireFormatError("delta payload shorter than its header")
    epoch, n_new, n_ret, q_sink, flag = _DELTA_HEADER.unpack_from(payload)
    expected = _DELTA_HEADER.size + n_new * ISOLINE_REPORT_BYTES + n_ret * _RETRACTION.size
    if len(payload) != expected:
        raise WireFormatError(
            f"delta payload is {len(payload)} bytes, header implies {expected}"
        )
    off = _DELTA_HEADER.size
    records = tuple(
        bytes(payload[off + i * ISOLINE_REPORT_BYTES : off + (i + 1) * ISOLINE_REPORT_BYTES])
        for i in range(n_new)
    )
    off += n_new * ISOLINE_REPORT_BYTES
    retractions = tuple(
        _RETRACTION.unpack_from(payload, off + i * _RETRACTION.size)
        for i in range(n_ret)
    )
    return DeltaFrame(epoch, records, retractions, _unpack_sink(q_sink, flag))


def encode_snapshot(
    epoch: int, records: Iterable[bytes], sink: Optional[int]
) -> bytes:
    """Serialise the full map state in canonical (sorted) record order."""
    recs = tuple(sorted(_check_records(records)))
    q_sink, flag = _pack_sink(sink)
    return b"".join(
        [_SNAPSHOT_HEADER.pack(epoch, len(recs), q_sink, flag), *recs]
    )


def decode_snapshot(payload: bytes) -> SnapshotFrame:
    """Deserialise a snapshot payload; raises :class:`WireFormatError`."""
    if len(payload) < _SNAPSHOT_HEADER.size:
        raise WireFormatError("snapshot payload shorter than its header")
    epoch, count, q_sink, flag = _SNAPSHOT_HEADER.unpack_from(payload)
    expected = _SNAPSHOT_HEADER.size + count * ISOLINE_REPORT_BYTES
    if len(payload) != expected:
        raise WireFormatError(
            f"snapshot payload is {len(payload)} bytes, header implies {expected}"
        )
    off = _SNAPSHOT_HEADER.size
    records = tuple(
        bytes(payload[off + i * ISOLINE_REPORT_BYTES : off + (i + 1) * ISOLINE_REPORT_BYTES])
        for i in range(count)
    )
    return SnapshotFrame(epoch, records, _unpack_sink(q_sink, flag))


class DeltaReplayer:
    """Client-side map state: fold served messages, re-render snapshots.

    Starts empty at epoch 0 (matching the server's pre-first-epoch
    state).  Deltas must arrive contiguously (epoch ``n+1`` after ``n``);
    a snapshot resets the state to the carried epoch, which is how the
    session resyncs a subscriber whose requested epoch fell out of
    retention.
    """

    def __init__(self) -> None:
        self._state: Dict[Tuple[int, int], bytes] = {}
        self._sink: Optional[int] = None
        self.epoch = 0

    @property
    def record_count(self) -> int:
        return len(self._state)

    def apply(self, message: ServedMessage) -> None:
        """Fold one served message into the map state."""
        if message.kind == DELTA:
            self.apply_delta(decode_delta(message.payload))
        elif message.kind in (SNAPSHOT, SNAPSHOT_STALE):
            # A stale snapshot resyncs like a live one; its embedded
            # epoch is the (older) epoch the state is current as of.
            self.apply_snapshot(decode_snapshot(message.payload))
        else:
            raise WireFormatError(f"unknown message kind {message.kind!r}")

    def apply_delta(self, frame: DeltaFrame) -> None:
        if frame.epoch != self.epoch + 1:
            raise ReplayGapError(
                f"delta for epoch {frame.epoch} cannot follow epoch {self.epoch}"
            )
        for rec in frame.records:
            self._state[record_position_key(rec)] = rec
        for key in frame.retractions:
            self._state.pop(key, None)
        self._sink = frame.sink
        self.epoch = frame.epoch

    def apply_snapshot(self, frame: SnapshotFrame) -> None:
        self._state = {record_position_key(r): r for r in frame.records}
        self._sink = frame.sink
        self.epoch = frame.epoch

    def render(self) -> bytes:
        """The snapshot payload of the current state (canonical order)."""
        return encode_snapshot(self.epoch, self._state.values(), self._sink)

    # ------------------------------------------------------------------
    # Decoded views (what an end client actually wants)
    # ------------------------------------------------------------------

    def reports(self, codec: ReportCodec) -> List[IsolineReport]:
        """The decoded reports, in canonical record order."""
        return [codec.decode(r) for r in sorted(self._state.values())]

    def sink_value(self, codec: ReportCodec) -> Optional[float]:
        return None if self._sink is None else codec.dequantize_value(self._sink)

    def contour_map(
        self,
        codec: ReportCodec,
        levels: List[float],
        bounds: BoundingBox,
        regulate: bool = True,
    ) -> ContourMap:
        """Reconstruct the multi-level map from the replayed state."""
        return build_contour_map(
            self.reports(codec),
            levels,
            bounds,
            sink_value=self.sink_value(codec),
            regulate=regulate,
        )
