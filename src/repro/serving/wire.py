"""Wire framing for served contour maps: snapshots, deltas, replay.

The serving layer ships the sink's report cache to clients in the same
2-byte-per-parameter quantised records the network uses
(:class:`repro.core.codec.ReportCodec`, 8 bytes per report), wrapped in
two payload kinds:

- a **snapshot** carries the complete current map: every cached record,
  in canonical order, plus the sink's own quantised reading;
- a **delta** carries one epoch's change: the records that were
  (re)delivered this epoch and the positions whose reports were
  retracted (a retraction is position-only, 4 bytes -- the serving
  analogue of :data:`repro.core.continuous.RETRACTION_BYTES`).

Records are keyed by their quantised position (the paper's reports carry
no source id -- the position identifies the source), so a client that
folds deltas into a position-keyed dict reconstructs the server's map
state exactly.  :class:`DeltaReplayer` implements that fold and can
re-render the snapshot payload at any point; the serving tests pin that
a replay from epoch 0 is *byte-identical* to the server's ``snapshot()``
at every epoch.

Canonical ordering: snapshot records are sorted by their raw 8-byte
encoding.  Any total order would do -- sorting makes the rendering a
pure function of the map state, which is what byte-identity needs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.codec import ReportCodec
from repro.core.contour_map import ContourMap, build_contour_map
from repro.core.reports import IsolineReport
from repro.core.wire import ISOLINE_REPORT_BYTES
from repro.geometry import BoundingBox
from repro.geometry.simplify import (
    chain_points,
    polyline_deviation,
    simplify_polyline,
    simplify_ring,
)
from repro.serving.errors import (
    EncodingUnavailable,
    ReplayGapError,
    WireFormatError,
)

#: Message kinds carried by :class:`ServedMessage`.
SNAPSHOT = "snapshot"
DELTA = "delta"

#: A delta from a prediction-enabled session (``prediction_tolerance``
#: set on its :class:`~repro.serving.session.SessionConfig`): the PAYLOAD
#: layout is byte-identical to :data:`DELTA` and a :class:`DeltaReplayer`
#: folds it the same way, but the kind tags the records as *mirrored
#: predictor state* -- some entries are deterministic dead-reckoned
#: extrapolations rather than delivered sensor reports, with staleness
#: bounded by the session's heartbeat cap.
DELTA_PREDICTED = "delta_predicted"

#: Stream encodings a subscriber can negotiate (see
#: :func:`negotiate_encoding`).  PLAIN is the PR-6 contract: every
#: cached record ships.  SIMPLIFIED ships the tolerance-bounded record
#: subset produced by :class:`SimplifiedStream`; its payload *layout* is
#: identical to PLAIN (same headers, records, retractions -- a
#: :class:`DeltaReplayer` folds either), only the record selection
#: differs, so the version number is part of the negotiation, not of the
#: payload bytes.
ENCODING_PLAIN = "plain"
ENCODING_SIMPLIFIED = "simplified"

#: Wire contract versions (negotiated out of band, per subscriber).
WIRE_VERSION_PLAIN = 1
WIRE_VERSION_SIMPLIFIED = 2
WIRE_VERSIONS = {
    ENCODING_PLAIN: WIRE_VERSION_PLAIN,
    ENCODING_SIMPLIFIED: WIRE_VERSION_SIMPLIFIED,
}

#: A snapshot served while the session's shard is failing or recovering:
#: the payload is the last *retained* epoch (byte-identical to what
#: ``snapshot`` served when that epoch was fresh), and the distinct kind
#: is the explicit staleness marker -- the client knows the map may lag
#: the field instead of mistaking a degraded answer for a live one.
SNAPSHOT_STALE = "snapshot_stale"

#: Delta header: epoch (u32), new-record count (u16), retraction count
#: (u16), quantised sink value (u16), sink-present flag (u8).
_DELTA_HEADER = struct.Struct("<IHHHB")

#: Snapshot header: epoch (u32), record count (u16), quantised sink
#: value (u16), sink-present flag (u8).
_SNAPSHOT_HEADER = struct.Struct("<IHHB")

#: A retraction on the serving wire: the quantised (x, y) position.
_RETRACTION = struct.Struct("<HH")

#: Position offset inside an encoded report record (value is first).
_RECORD_POS = struct.Struct("<HH")

#: Counts are u16 fields.
MAX_RECORDS = 0xFFFF


@dataclass(frozen=True)
class ServedMessage:
    """One unit of the serving protocol as seen by a client.

    Attributes:
        kind: :data:`SNAPSHOT`, :data:`SNAPSHOT_STALE`, :data:`DELTA` or
            :data:`DELTA_PREDICTED`.
        epoch: the epoch the payload describes (snapshots: the epoch the
            state is current *as of*; deltas: the epoch the change
            belongs to).
        payload: the encoded bytes.
    """

    kind: str
    epoch: int
    payload: bytes

    @property
    def stale(self) -> bool:
        """True when this is a degraded-mode (staleness-tagged) snapshot."""
        return self.kind == SNAPSHOT_STALE

    @property
    def predicted(self) -> bool:
        """True when this delta carries mirrored-predictor state (some
        records may be bounded-staleness extrapolations)."""
        return self.kind == DELTA_PREDICTED


@dataclass(frozen=True)
class DeltaFrame:
    """A decoded delta payload."""

    epoch: int
    records: Tuple[bytes, ...]
    retractions: Tuple[Tuple[int, int], ...]
    sink: Optional[int]


@dataclass(frozen=True)
class SnapshotFrame:
    """A decoded snapshot payload."""

    epoch: int
    records: Tuple[bytes, ...]
    sink: Optional[int]


def record_position_key(record: bytes) -> Tuple[int, int]:
    """The quantised (x, y) a record is keyed by in map state."""
    return _RECORD_POS.unpack_from(record, 2)


def _pack_sink(sink: Optional[int]) -> Tuple[int, int]:
    if sink is None:
        return 0, 0
    if not 0 <= sink <= 0xFFFF:
        raise WireFormatError(f"quantised sink value {sink} out of range")
    return sink, 1


def _unpack_sink(q: int, flag: int) -> Optional[int]:
    return q if flag else None


def _check_records(records: Iterable[bytes]) -> Tuple[bytes, ...]:
    recs = tuple(records)
    if len(recs) > MAX_RECORDS:
        raise WireFormatError(f"{len(recs)} records exceed the u16 count field")
    for r in recs:
        if len(r) != ISOLINE_REPORT_BYTES:
            raise WireFormatError(
                f"record must be {ISOLINE_REPORT_BYTES} bytes, got {len(r)}"
            )
    return recs


def encode_delta(
    epoch: int,
    records: Iterable[bytes],
    retractions: Iterable[Tuple[int, int]],
    sink: Optional[int],
) -> bytes:
    """Serialise one epoch's change set."""
    recs = _check_records(records)
    rets = tuple(retractions)
    if len(rets) > MAX_RECORDS:
        raise WireFormatError(f"{len(rets)} retractions exceed the u16 count field")
    q_sink, flag = _pack_sink(sink)
    parts = [_DELTA_HEADER.pack(epoch, len(recs), len(rets), q_sink, flag)]
    parts.extend(recs)
    parts.extend(_RETRACTION.pack(qx, qy) for qx, qy in rets)
    return b"".join(parts)


def decode_delta(payload: bytes) -> DeltaFrame:
    """Deserialise a delta payload; raises :class:`WireFormatError`."""
    if len(payload) < _DELTA_HEADER.size:
        raise WireFormatError("delta payload shorter than its header")
    epoch, n_new, n_ret, q_sink, flag = _DELTA_HEADER.unpack_from(payload)
    expected = _DELTA_HEADER.size + n_new * ISOLINE_REPORT_BYTES + n_ret * _RETRACTION.size
    if len(payload) != expected:
        raise WireFormatError(
            f"delta payload is {len(payload)} bytes, header implies {expected}"
        )
    off = _DELTA_HEADER.size
    records = tuple(
        bytes(payload[off + i * ISOLINE_REPORT_BYTES : off + (i + 1) * ISOLINE_REPORT_BYTES])
        for i in range(n_new)
    )
    off += n_new * ISOLINE_REPORT_BYTES
    retractions = tuple(
        _RETRACTION.unpack_from(payload, off + i * _RETRACTION.size)
        for i in range(n_ret)
    )
    return DeltaFrame(epoch, records, retractions, _unpack_sink(q_sink, flag))


def encode_snapshot(
    epoch: int, records: Iterable[bytes], sink: Optional[int]
) -> bytes:
    """Serialise the full map state in canonical (sorted) record order."""
    recs = tuple(sorted(_check_records(records)))
    q_sink, flag = _pack_sink(sink)
    return b"".join(
        [_SNAPSHOT_HEADER.pack(epoch, len(recs), q_sink, flag), *recs]
    )


def decode_snapshot(payload: bytes) -> SnapshotFrame:
    """Deserialise a snapshot payload; raises :class:`WireFormatError`."""
    if len(payload) < _SNAPSHOT_HEADER.size:
        raise WireFormatError("snapshot payload shorter than its header")
    epoch, count, q_sink, flag = _SNAPSHOT_HEADER.unpack_from(payload)
    expected = _SNAPSHOT_HEADER.size + count * ISOLINE_REPORT_BYTES
    if len(payload) != expected:
        raise WireFormatError(
            f"snapshot payload is {len(payload)} bytes, header implies {expected}"
        )
    off = _SNAPSHOT_HEADER.size
    records = tuple(
        bytes(payload[off + i * ISOLINE_REPORT_BYTES : off + (i + 1) * ISOLINE_REPORT_BYTES])
        for i in range(count)
    )
    return SnapshotFrame(epoch, records, _unpack_sink(q_sink, flag))


class DeltaReplayer:
    """Client-side map state: fold served messages, re-render snapshots.

    Starts empty at epoch 0 (matching the server's pre-first-epoch
    state).  Deltas must arrive contiguously (epoch ``n+1`` after ``n``);
    a snapshot resets the state to the carried epoch, which is how the
    session resyncs a subscriber whose requested epoch fell out of
    retention.
    """

    def __init__(self) -> None:
        self._state: Dict[Tuple[int, int], bytes] = {}
        self._sink: Optional[int] = None
        self.epoch = 0

    @property
    def record_count(self) -> int:
        return len(self._state)

    def apply(self, message: ServedMessage) -> None:
        """Fold one served message into the map state."""
        if message.kind in (DELTA, DELTA_PREDICTED):
            self.apply_delta(decode_delta(message.payload))
        elif message.kind in (SNAPSHOT, SNAPSHOT_STALE):
            # A stale snapshot resyncs like a live one; its embedded
            # epoch is the (older) epoch the state is current as of.
            self.apply_snapshot(decode_snapshot(message.payload))
        else:
            raise WireFormatError(f"unknown message kind {message.kind!r}")

    def apply_delta(self, frame: DeltaFrame) -> None:
        if frame.epoch != self.epoch + 1:
            raise ReplayGapError(
                f"delta for epoch {frame.epoch} cannot follow epoch {self.epoch}"
            )
        for rec in frame.records:
            self._state[record_position_key(rec)] = rec
        for key in frame.retractions:
            self._state.pop(key, None)
        self._sink = frame.sink
        self.epoch = frame.epoch

    def apply_snapshot(self, frame: SnapshotFrame) -> None:
        self._state = {record_position_key(r): r for r in frame.records}
        self._sink = frame.sink
        self.epoch = frame.epoch

    def render(self) -> bytes:
        """The snapshot payload of the current state (canonical order)."""
        return encode_snapshot(self.epoch, self._state.values(), self._sink)

    # ------------------------------------------------------------------
    # Decoded views (what an end client actually wants)
    # ------------------------------------------------------------------

    def reports(self, codec: ReportCodec) -> List[IsolineReport]:
        """The decoded reports, in canonical record order."""
        return [codec.decode(r) for r in sorted(self._state.values())]

    def sink_value(self, codec: ReportCodec) -> Optional[float]:
        return None if self._sink is None else codec.dequantize_value(self._sink)

    def contour_map(
        self,
        codec: ReportCodec,
        levels: List[float],
        bounds: BoundingBox,
        regulate: bool = True,
    ) -> ContourMap:
        """Reconstruct the multi-level map from the replayed state."""
        return build_contour_map(
            self.reports(codec),
            levels,
            bounds,
            sink_value=self.sink_value(codec),
            regulate=regulate,
        )

    def isoline_polylines(
        self, codec: ReportCodec, max_gap: Optional[float] = None
    ) -> Dict[float, List[Tuple[List[Tuple[float, float]], bool]]]:
        """Render the held records as per-level isoline polylines.

        A lightweight client view (e.g. for plotting a SIMPLIFIED
        stream without the full Voronoi reconstruction): records are
        grouped by quantised isolevel and chained with
        :func:`repro.geometry.simplify.chain_points`.  Returns
        ``{isolevel: [(points, is_ring), ...]}``.  Pass an explicit
        ``max_gap`` (e.g. derived from the deployment's node spacing)
        when comparing renderings of streams with different densities --
        the default gap adapts to the data and so differs per stream.
        """
        by_level: Dict[int, List[bytes]] = {}
        for rec in sorted(self._state.values()):
            q_level = rec[0] | (rec[1] << 8)
            by_level.setdefault(q_level, []).append(rec)
        out: Dict[float, List[Tuple[List[Tuple[float, float]], bool]]] = {}
        for q_level in sorted(by_level):
            positions = [
                codec.dequantize_position(record_position_key(r))
                for r in by_level[q_level]
            ]
            chains = [
                ([positions[i] for i in chain], is_ring)
                for chain, is_ring in chain_points(positions, max_gap=max_gap)
            ]
            out[codec.dequantize_value(q_level)] = chains
        return out


# ----------------------------------------------------------------------
# SIMPLIFIED encoding (wire version 2, negotiated per subscriber)
# ----------------------------------------------------------------------


def negotiate_encoding(
    offered: Iterable[str], simplified_available: bool
) -> str:
    """Pick the stream encoding for one subscriber.

    The subscriber offers encodings in preference order; the first one
    the session can serve wins.  PLAIN is always servable; SIMPLIFIED
    only on sessions configured with a ``simplify_tolerance``.  An
    unknown encoding name is a hard error (it is a client bug, not a
    preference), and so is an offer the session cannot meet at all --
    :class:`~repro.serving.errors.EncodingUnavailable` instead of a
    silent downgrade.
    """
    offers = tuple(offered)
    if not offers:
        raise EncodingUnavailable("subscriber offered no encodings")
    for enc in offers:
        if enc not in WIRE_VERSIONS:
            raise EncodingUnavailable(f"unknown stream encoding {enc!r}")
    for enc in offers:
        if enc == ENCODING_PLAIN or simplified_available:
            return enc
    raise EncodingUnavailable(
        f"none of {offers!r} is servable (simplified stream not configured)"
    )


#: Chain gap cutoff for record selection, as a multiple of the level's
#: median nearest-neighbour record distance.  Chaining only decides which
#: records may be *dropped* -- every dropped record stays within the
#: tolerance of the retained span of its own chain regardless of how the
#: chain was cut -- so a generous cutoff (longer chains, fewer always-kept
#: endpoints) buys bytes without touching the Hausdorff guarantee.
CHAIN_GAP_FACTOR = 12.0


def select_simplified_records(
    records: Iterable[bytes],
    dequantize: "Callable[[Tuple[int, int]], Tuple[float, float]]",
    tolerance: float,
) -> Tuple[bytes, ...]:
    """The tolerance-bounded record subset of a full map state.

    Records sharing a quantised value are samples of one level's
    isolines; per level they are chained into polylines/rings
    (:func:`repro.geometry.simplify.chain_points` -- deterministic
    greedy nearest-neighbour with a data-derived gap cutoff) and
    Douglas-Peucker simplified; the kept vertices are the kept records.
    Selection is a pure function of ``(records, tolerance)``: every
    replica selects the identical subset, which is what lets workers
    rebuild and fast-forward a simplified stream byte-identically.

    ``tolerance == 0`` keeps everything (the identity the byte-identity
    differentials pin).
    """
    recs = tuple(records)
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if tolerance == 0.0 or len(recs) <= 2:
        return recs
    kept: List[bytes] = []
    for level_recs, chain, pts, _is_ring, simplified in _iter_simplified_chains(
        recs, dequantize, tolerance
    ):
        kept_pts = set(simplified)
        kept.extend(
            level_recs[i] for i, p in zip(chain, pts) if p in kept_pts
        )
    return tuple(sorted(kept))


def _iter_simplified_chains(recs, dequantize, tolerance):
    """Per-level chaining + simplification shared by selection and stats.

    Yields ``(level_recs, chain, pts, is_ring, simplified)`` per chain,
    deterministically (levels ascending, records in canonical order).
    """
    by_level: Dict[int, List[bytes]] = {}
    for rec in recs:
        level = rec[0] | (rec[1] << 8)  # first u16 of the <HHHH> record
        by_level.setdefault(level, []).append(rec)
    for level in sorted(by_level):
        level_recs = sorted(by_level[level])
        positions = [dequantize(record_position_key(r)) for r in level_recs]
        for chain, is_ring in chain_points(
            positions, gap_factor=CHAIN_GAP_FACTOR
        ):
            pts = [positions[i] for i in chain]
            if is_ring:
                simplified = simplify_ring(pts, tolerance)
            else:
                simplified = simplify_polyline(pts, tolerance)
            yield level_recs, chain, pts, is_ring, simplified


def simplified_selection_stats(
    records: Iterable[bytes],
    dequantize: "Callable[[Tuple[int, int]], Tuple[float, float]]",
    tolerance: float,
) -> Dict[str, float]:
    """Measured fidelity of :func:`select_simplified_records`.

    Returns the record counts and the **measured Hausdorff deviation**:
    the maximum distance from any full-stream record position to the
    retained span of its own chain (closing segment included for rings).
    This is exactly the quantity the simplifier's per-segment tolerance
    guarantee bounds, so ``max_deviation <= tolerance`` always -- the
    stats exist to *measure* it rather than assume it, and the bench
    gate asserts the inequality on real served maps.
    """
    recs = tuple(records)
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    n_full = len(recs)
    if tolerance == 0.0 or n_full <= 2:
        return {
            "records_full": n_full,
            "records_kept": n_full,
            "chains": 0,
            "max_deviation": 0.0,
        }
    n_kept = 0
    n_chains = 0
    worst = 0.0
    for _level_recs, _chain, pts, is_ring, simplified in _iter_simplified_chains(
        recs, dequantize, tolerance
    ):
        n_kept += len(simplified)
        n_chains += 1
        curve = simplified + [simplified[0]] if is_ring else simplified
        worst = max(worst, polyline_deviation(pts, curve))
    return {
        "records_full": n_full,
        "records_kept": n_kept,
        "chains": n_chains,
        "max_deviation": worst,
    }


class SimplifiedStream:
    """Server-side producer of the SIMPLIFIED delta/snapshot stream.

    Mirrors what a simplified subscriber holds (a position-keyed record
    dict, exactly like a :class:`DeltaReplayer`) and, each epoch, folds
    the session's *full* change set into a simplified delta that moves
    the mirror to the tolerance-bounded subset of the new map state.

    Payload construction preserves the full delta's framing order so the
    two streams stay relatable byte-for-byte:

    - records: the full delta's records, in order, filtered to kept
      keys; then (sorted) any kept record the mirror lacks or holds with
      different bytes -- records re-entering the subset as the geometry
      shifts under a *fixed* tolerance;
    - retractions: the full delta's retractions, in order, filtered to
      keys the mirror actually holds; then (sorted) the simplification
      drops -- records leaving the subset without leaving the map.

    At ``tolerance == 0`` the selection keeps everything and the fold is
    a strict passthrough of the full delta bytes, so the simplified
    stream is **byte-identical** to the PR-6 encoding -- the acceptance
    differential.

    Determinism: the mirror evolves as a pure function of the epoch
    sequence, so a rebuilt worker that fast-forwards through the same
    epochs re-emits identical simplified payloads.
    """

    def __init__(
        self,
        tolerance: float,
        dequantize: "Callable[[Tuple[int, int]], Tuple[float, float]]",
    ):
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.tolerance = tolerance
        self._dequantize = dequantize
        self._mirror: Dict[Tuple[int, int], bytes] = {}
        self.epoch = 0

    def fold_epoch(
        self,
        epoch: int,
        delta_records: Iterable[bytes],
        delta_retractions: Iterable[Tuple[int, int]],
        state_records: Iterable[bytes],
        sink: Optional[int],
    ) -> Tuple[bytes, Tuple[bytes, ...]]:
        """Fold one epoch; returns ``(s_delta payload, s_records)``.

        ``delta_records`` / ``delta_retractions`` are the full delta's
        contents in wire order; ``state_records`` is the full map state
        after the epoch.  ``s_records`` is the canonical (sorted) kept
        subset -- what the store renders simplified snapshots from.
        """
        d_recs = tuple(delta_records)
        d_rets = tuple(delta_retractions)
        if self.tolerance == 0.0:
            # Strict passthrough: byte identity with the plain stream.
            self._mirror = {record_position_key(r): r for r in state_records}
            self.epoch = epoch
            return (
                encode_delta(epoch, d_recs, d_rets, sink),
                tuple(sorted(self._mirror.values())),
            )
        s_records = select_simplified_records(
            state_records, self._dequantize, self.tolerance
        )
        target = {record_position_key(r): r for r in s_records}
        applied = dict(self._mirror)
        emitted: List[bytes] = []
        for rec in d_recs:
            key = record_position_key(rec)
            if key in target:
                emitted.append(rec)
                applied[key] = rec
        extra = sorted(
            rec
            for key, rec in target.items()
            if applied.get(key) != rec
        )
        for rec in extra:
            applied[record_position_key(rec)] = rec
        emitted.extend(extra)
        need_drop = set(applied) - set(target)
        rets: List[Tuple[int, int]] = []
        for key in d_rets:
            if key in need_drop:
                rets.append(key)
                need_drop.discard(key)
        rets.extend(sorted(need_drop))
        self._mirror = target
        self.epoch = epoch
        return encode_delta(epoch, emitted, rets, sink), s_records
