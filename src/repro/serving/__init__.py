"""Contour-map serving: the front door over continuous monitoring.

``repro.serving`` turns the simulator's sink pipeline into a service:
long-lived :class:`MapSession` tasks run
:class:`~repro.core.continuous.ContinuousIsoMap` epochs (sharded across
worker processes by :class:`ShardPool`), publish wire-encoded results
through a per-session :class:`MapStore`, and serve two client paths via
the :class:`MapService` router --

- ``snapshot(query_id)``: the latest (or a retained historical)
  rendered map, byte-for-byte reproducible;
- ``subscribe(query_id, since_epoch)``: a delta stream that replays
  missed epochs and then follows live updates, with bounded
  per-subscriber queues and slow-consumer eviction.

The service is self-healing: compute runs through a
:class:`SupervisedShardPool` with per-request deadlines, crash/hang
detection, kill-and-respawn recovery, deterministically jittered
retries and per-shard circuit breakers
(:mod:`repro.serving.supervisor`).  While a shard recovers,
``snapshot()`` keeps answering with the last retained epoch, tagged
:data:`SNAPSHOT_STALE` so clients can tell a degraded answer from a
live one.  A seeded :class:`ChaosPlan` (:mod:`repro.serving.chaos`)
injects worker kills, hangs, dropped results and corrupted payloads
from counter-based draws -- the service-level twin of
:mod:`repro.network.faults` -- so recovery is testable and
reproducible.

The wire contract is pinned by differential tests: a
:class:`~repro.serving.wire.DeltaReplayer` folding the delta stream from
epoch 0 renders snapshots byte-identical to the server's, which in turn
encode exactly the sink cache of a direct ``ContinuousIsoMap`` run under
the same seed -- regardless of the shard layout, and regardless of how
much chaos the recovery machinery had to absorb along the way.
"""

from repro.serving.chaos import (
    CORRUPT,
    DROP,
    HANG,
    KILL,
    ChaosEngine,
    ChaosEvent,
    ChaosPlan,
    ChaosStats,
)
from repro.serving.clients import LoadReport, run_load
from repro.serving.errors import (
    EncodingUnavailable,
    EpochComputeFailed,
    EpochEvicted,
    ReplayGapError,
    ServingError,
    SessionFailedError,
    ShardComputeError,
    ShardCrashError,
    ShardHangError,
    ShardResultCorrupted,
    ShardResultDropped,
    ShardUnavailableError,
    SlowConsumerEvicted,
    UnknownQueryError,
    WireFormatError,
)
from repro.serving.router import MapService, ShardPool
from repro.serving.session import (
    MapSession,
    SessionCompute,
    SessionConfig,
    SessionStats,
    Subscription,
    field_for_epoch,
)
from repro.serving.store import MapStore
from repro.serving.supervisor import (
    CircuitBreaker,
    ShardHealth,
    ShardSupervisor,
    SupervisedShardPool,
    SupervisorConfig,
)
from repro.serving.wire import (
    DELTA,
    DELTA_PREDICTED,
    ENCODING_PLAIN,
    ENCODING_SIMPLIFIED,
    SNAPSHOT,
    SNAPSHOT_STALE,
    WIRE_VERSION_PLAIN,
    WIRE_VERSION_SIMPLIFIED,
    DeltaReplayer,
    ServedMessage,
    SimplifiedStream,
    decode_delta,
    decode_snapshot,
    encode_delta,
    encode_snapshot,
    negotiate_encoding,
    select_simplified_records,
)

__all__ = [
    "CORRUPT",
    "DELTA",
    "DELTA_PREDICTED",
    "DROP",
    "ENCODING_PLAIN",
    "ENCODING_SIMPLIFIED",
    "HANG",
    "KILL",
    "SNAPSHOT",
    "SNAPSHOT_STALE",
    "WIRE_VERSION_PLAIN",
    "WIRE_VERSION_SIMPLIFIED",
    "ChaosEngine",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosStats",
    "CircuitBreaker",
    "DeltaReplayer",
    "EncodingUnavailable",
    "EpochComputeFailed",
    "EpochEvicted",
    "LoadReport",
    "MapService",
    "MapSession",
    "MapStore",
    "ReplayGapError",
    "ServedMessage",
    "ServingError",
    "SessionCompute",
    "SessionConfig",
    "SessionFailedError",
    "SessionStats",
    "ShardComputeError",
    "ShardCrashError",
    "ShardHangError",
    "ShardHealth",
    "ShardPool",
    "ShardResultCorrupted",
    "ShardResultDropped",
    "ShardSupervisor",
    "ShardUnavailableError",
    "SimplifiedStream",
    "SlowConsumerEvicted",
    "Subscription",
    "SupervisedShardPool",
    "SupervisorConfig",
    "UnknownQueryError",
    "WireFormatError",
    "decode_delta",
    "decode_snapshot",
    "encode_delta",
    "encode_snapshot",
    "field_for_epoch",
    "negotiate_encoding",
    "run_load",
    "select_simplified_records",
]
