"""Contour-map serving: the front door over continuous monitoring.

``repro.serving`` turns the simulator's sink pipeline into a service:
long-lived :class:`MapSession` tasks run
:class:`~repro.core.continuous.ContinuousIsoMap` epochs (sharded across
worker processes by :class:`ShardPool`), publish wire-encoded results
through a per-session :class:`MapStore`, and serve two client paths via
the :class:`MapService` router --

- ``snapshot(query_id)``: the latest (or a retained historical)
  rendered map, byte-for-byte reproducible;
- ``subscribe(query_id, since_epoch)``: a delta stream that replays
  missed epochs and then follows live updates, with bounded
  per-subscriber queues and slow-consumer eviction.

The wire contract is pinned by differential tests: a
:class:`~repro.serving.wire.DeltaReplayer` folding the delta stream from
epoch 0 renders snapshots byte-identical to the server's, which in turn
encode exactly the sink cache of a direct ``ContinuousIsoMap`` run under
the same seed -- regardless of the shard layout.
"""

from repro.serving.clients import LoadReport, run_load
from repro.serving.errors import (
    EpochEvicted,
    ReplayGapError,
    ServingError,
    SlowConsumerEvicted,
    UnknownQueryError,
    WireFormatError,
)
from repro.serving.router import MapService, ShardPool
from repro.serving.session import (
    MapSession,
    SessionCompute,
    SessionConfig,
    SessionStats,
    Subscription,
    field_for_epoch,
)
from repro.serving.store import MapStore
from repro.serving.wire import (
    DELTA,
    SNAPSHOT,
    DeltaReplayer,
    ServedMessage,
    decode_delta,
    decode_snapshot,
    encode_delta,
    encode_snapshot,
)

__all__ = [
    "DELTA",
    "SNAPSHOT",
    "DeltaReplayer",
    "EpochEvicted",
    "LoadReport",
    "MapService",
    "MapSession",
    "MapStore",
    "ReplayGapError",
    "ServedMessage",
    "ServingError",
    "SessionCompute",
    "SessionConfig",
    "SessionStats",
    "ShardPool",
    "SlowConsumerEvicted",
    "Subscription",
    "UnknownQueryError",
    "WireFormatError",
    "decode_delta",
    "decode_snapshot",
    "encode_delta",
    "encode_snapshot",
    "field_for_epoch",
    "run_load",
]
