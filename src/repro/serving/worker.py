"""Shard-worker entry point: per-process session compute with catch-up.

The router pins every session to one shard (a single-worker process
pool), so a session's epochs always execute sequentially in the same
process and :func:`compute_epoch` can keep the stateful
:class:`~repro.serving.session.SessionCompute` in a module-level table,
exactly like the sweep runner keeps its topology skeletons per worker.

Determinism is the contract: the compute is a pure function of
``(config, epoch)`` given the sequential epoch history, so if the table
entry is missing or ahead (a fresh worker, a config change, a test
re-using a query id), the worker rebuilds the session and fast-forwards
through epochs ``1 .. epoch - 1`` -- byte-identical to having computed
them here all along.  That is also why the same function serves the
inline (``n_shards = 0``) path: where the state lives cannot change
what it produces.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict

from repro.serving.session import SessionCompute, SessionConfig

#: Per-process session table, keyed by query id.
_SESSIONS: Dict[str, SessionCompute] = {}


def compute_epoch(config_dict: Dict[str, Any], epoch: int) -> Dict[str, Any]:
    """Compute one session epoch, rebuilding/fast-forwarding as needed.

    Args:
        config_dict: a :meth:`SessionConfig.to_dict` payload (picklable).
        epoch: the 1-based epoch to produce.

    Returns:
        The :meth:`SessionCompute.epoch` payload dict.
    """
    if epoch < 1:
        raise ValueError("epoch must be >= 1")
    config = SessionConfig.from_dict(config_dict)
    session = _SESSIONS.get(config.query_id)
    if session is None or session.config != config or epoch < session.next_epoch:
        session = SessionCompute(config)
        _SESSIONS[config.query_id] = session
    while session.next_epoch < epoch:
        session.epoch(session.next_epoch)
    return session.epoch(epoch)


def reset() -> None:
    """Drop all per-process session state (test isolation hook)."""
    _SESSIONS.clear()


def ping() -> int:
    """Health-probe entry point: answers with the worker's pid.

    A healthy shard answers within the supervisor's probe deadline; a
    wedged worker (its single process stuck in a long compute) cannot,
    which is how the supervisor tells *hung* apart from *idle*.
    """
    return os.getpid()


def wedge(seconds: float) -> None:
    """Occupy the worker for ``seconds`` (supervision test hook).

    Submitted to a single-worker shard this simulates a genuinely wedged
    process: every queued request (including :func:`ping`) waits behind
    it until the supervisor's deadline fires and the shard is respawned.
    """
    time.sleep(seconds)
