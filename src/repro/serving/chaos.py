"""Seeded, service-level chaos injection for the serving tier.

The network layer already has a reproducible fault engine
(:mod:`repro.network.faults`); this module is its serving twin.  A
:class:`ChaosPlan` declares per-attempt probabilities of the four
failure modes a sharded service actually sees:

- **kill** -- the shard's worker process is killed mid-request (a real
  ``SIGKILL`` when the shard runs a process; a simulated crash plus a
  session-table wipe in inline mode);
- **hang** -- the request wedges: no result arrives before the
  supervisor's per-request deadline fires;
- **drop** -- the compute runs but its result is lost on the way back;
- **corrupt** -- the returned delta payload arrives bit-damaged (caught
  by the supervisor's CRC integrity check, exactly as the transport's
  CRC-16 catches in-network frame damage).

Every decision is a *counter-based* draw (:mod:`repro.network.rngstream`)
keyed by ``(seed, shard, query, epoch, attempt)``, where the attempt
index is a monotone per-``(query, epoch)`` cursor that survives across
retries and across separate ``advance`` calls.  That makes a chaos run
fully reproducible -- the same plan injects the same failures at the
same attempts no matter how fast the machine is or how the event loop
interleaves -- while guaranteeing the retry loop always makes progress
(a retried attempt reads a *fresh* draw, never the one that failed).

Explicit :class:`ChaosEvent` entries override the probabilistic draws
for targeted, hand-written scenarios (the tests' way of forcing "kill
exactly the first attempt of epoch 2").
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.network.rngstream import derive_key, uniform_at

#: Injected action kinds.
KILL = "kill"
HANG = "hang"
DROP = "drop"
CORRUPT = "corrupt"

_KINDS = (KILL, HANG, DROP, CORRUPT)

#: Stream tags (the serving twins of the fault engine's edge streams).
_TAG_ACTION = 101
_TAG_DAMAGE = 102


@dataclass(frozen=True)
class ChaosEvent:
    """One explicitly scheduled injection.

    Attributes:
        epoch: the epoch compute the event targets.
        attempt: the 1-based attempt index it fires on (the monotone
            per-``(query, epoch)`` cursor, so attempt 2 of a retried
            epoch is the second attempt *ever* made at it).
        kind: :data:`KILL`, :data:`HANG`, :data:`DROP` or :data:`CORRUPT`.
        query_id: restrict to one query (None = any query).
    """

    epoch: int
    attempt: int
    kind: str
    query_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown chaos event kind {self.kind!r}")
        if self.epoch < 1 or self.attempt < 1:
            raise ValueError("epoch and attempt are 1-based")


@dataclass(frozen=True)
class ChaosPlan:
    """A declarative, seeded description of service-level chaos.

    Attributes:
        seed: master seed; every draw derives from it.
        kill / hang / drop / corrupt: per-attempt probabilities of each
            failure mode (mutually exclusive per attempt: one uniform is
            carved into stacked intervals, so their sum must be <= 1).
        events: explicit injections that override the draw for their
            ``(query, epoch, attempt)`` address.
    """

    seed: int = 0
    kill: float = 0.0
    hang: float = 0.0
    drop: float = 0.0
    corrupt: float = 0.0
    events: Tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        total = 0.0
        for name in ("kill", "hang", "drop", "corrupt"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
            total += v
        if total > 1.0:
            raise ValueError("kill + hang + drop + corrupt must be <= 1")

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.kill == 0.0
            and self.hang == 0.0
            and self.drop == 0.0
            and self.corrupt == 0.0
            and not self.events
        )

    @staticmethod
    def none() -> "ChaosPlan":
        """The zero-chaos plan."""
        return ChaosPlan()

    @staticmethod
    def at_intensity(intensity: float, seed: int = 0) -> "ChaosPlan":
        """The one-knob family of plans (the fig_faults convention).

        ``intensity`` in [0, 1] scales every failure mode together; 1.0
        is the "moderate" operating point: per attempt, 6% worker kills,
        5% hangs, 4% dropped results and 5% corrupted payloads -- a 20%
        chance that any given attempt needs the recovery machinery.
        """
        if not 0.0 <= intensity <= 1.0:
            raise ValueError("intensity must be in [0, 1]")
        if intensity == 0.0:
            return ChaosPlan(seed=seed)
        return ChaosPlan(
            seed=seed,
            kill=0.06 * intensity,
            hang=0.05 * intensity,
            drop=0.04 * intensity,
            corrupt=0.05 * intensity,
        )

    @staticmethod
    def moderate(seed: int = 0) -> "ChaosPlan":
        """The all-modes-on moderate plan (intensity 1.0)."""
        return ChaosPlan.at_intensity(1.0, seed=seed)


@dataclass
class ChaosStats:
    """Counts of what the engine actually injected."""

    kills: int = 0
    hangs: int = 0
    drops: int = 0
    corruptions: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "kills": self.kills,
            "hangs": self.hangs,
            "drops": self.drops,
            "corruptions": self.corruptions,
        }


class ChaosEngine:
    """Draws injection decisions for the supervised shard pool.

    One engine per :class:`~repro.serving.supervisor.SupervisedShardPool`;
    stateless apart from the per-``(query, epoch)`` attempt cursors and
    the injection counters, so the decision for any address is a pure
    function of the plan.
    """

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self.stats = ChaosStats()
        self._cursors: Dict[Tuple[str, int], int] = {}

    def next_attempt(self, query_id: str, epoch: int) -> int:
        """Allocate the next 1-based attempt index for ``(query, epoch)``.

        Monotone across retries *and* across separate compute calls for
        the same epoch, which is what keeps a retried epoch from
        replaying the exact draw that failed it.
        """
        key = (query_id, epoch)
        attempt = self._cursors.get(key, 0) + 1
        self._cursors[key] = attempt
        return attempt

    def action(
        self, shard: int, query_id: str, epoch: int, attempt: int
    ) -> Optional[str]:
        """The injected action for one attempt (None = leave it alone)."""
        plan = self.plan
        for event in plan.events:
            if (
                event.epoch == epoch
                and event.attempt == attempt
                and (event.query_id is None or event.query_id == query_id)
            ):
                return self._record(event.kind)
        key = derive_key(
            plan.seed, _TAG_ACTION, shard, zlib.crc32(query_id.encode("utf-8")),
            epoch, attempt,
        )
        u = uniform_at(key, 0)
        edge = plan.kill
        if u < edge:
            return self._record(KILL)
        edge += plan.hang
        if u < edge:
            return self._record(HANG)
        edge += plan.drop
        if u < edge:
            return self._record(DROP)
        edge += plan.corrupt
        if u < edge:
            return self._record(CORRUPT)
        return None

    def corrupt_payload(
        self, payload: bytes, shard: int, query_id: str, epoch: int, attempt: int
    ) -> bytes:
        """Deterministically flip 1-3 distinct bits of ``payload``.

        The damage is addressed by the same ``(shard, query, epoch,
        attempt)`` coordinates as the decision to corrupt, so a chaos
        run damages the same bits every time.
        """
        if not payload:
            return payload
        key = derive_key(
            self.plan.seed, _TAG_DAMAGE, shard,
            zlib.crc32(query_id.encode("utf-8")), epoch, attempt,
        )
        n_bits = len(payload) * 8
        flips = 1 + int(uniform_at(key, 0) * 3.0)
        damaged = bytearray(payload)
        chosen: set = set()
        counter = 1
        while len(chosen) < min(flips, n_bits):
            bit = int(uniform_at(key, counter) * n_bits)
            counter += 1
            if bit in chosen:
                continue
            chosen.add(bit)
            damaged[bit // 8] ^= 1 << (bit % 8)
        return bytes(damaged)

    def _record(self, kind: str) -> str:
        if kind == KILL:
            self.stats.kills += 1
        elif kind == HANG:
            self.stats.hangs += 1
        elif kind == DROP:
            self.stats.drops += 1
        else:
            self.stats.corruptions += 1
        return kind
