"""Simulated client load: thousands of subscribers against one router.

The harness drives a :class:`~repro.serving.router.MapService` the way a
real deployment would be driven: the session advances epochs (compute
runs in the shard pool, so the event loop stays free), while

- **snapshot clients** hammer ``snapshot(query_id)`` in a tight
  cooperative loop, measuring per-request latency, and
- **delta subscribers** sit on ``subscribe(query_id)`` streams and
  timestamp every delivery against the session's publish instant.

Everything is wall-clock measured; the resulting :class:`LoadReport`
feeds ``benchmarks/bench_serving.py`` (BENCH_serving.json), the
``repro serve`` CLI command and ``examples/serving_demo.py``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.serving.errors import (
    EpochComputeFailed,
    ShardUnavailableError,
    SlowConsumerEvicted,
)
from repro.serving.router import MapService
from repro.serving.wire import (
    DELTA,
    DELTA_PREDICTED,
    ENCODING_PLAIN,
    ENCODING_SIMPLIFIED,
)


def percentile(values: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``values`` (nearest-rank; 0 if empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[idx]


@dataclass
class LoadReport:
    """Aggregate traffic/latency measurements of one load run."""

    query_id: str
    epochs: int = 0
    elapsed_s: float = 0.0
    snapshot_clients: int = 0
    snapshot_requests: int = 0
    snapshot_bytes: int = 0
    snapshot_latencies_ms: List[float] = field(default_factory=list)
    subscribers: int = 0
    deltas_delivered: int = 0
    delta_bytes: int = 0
    delta_latencies_ms: List[float] = field(default_factory=list)
    simplified_subscribers: int = 0
    s_deltas_delivered: int = 0
    s_delta_bytes: int = 0
    subscribers_evicted: int = 0
    epochs_failed: int = 0
    stale_snapshots: int = 0
    degraded_s: float = 0.0

    @property
    def snapshot_rps(self) -> float:
        return self.snapshot_requests / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def delta_deliveries_per_s(self) -> float:
        return self.deltas_delivered / self.elapsed_s if self.elapsed_s else 0.0

    def snapshot_p(self, q: float) -> float:
        return percentile(self.snapshot_latencies_ms, q)

    def delta_p(self, q: float) -> float:
        return percentile(self.delta_latencies_ms, q)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able summary (the BENCH_serving.json building block)."""
        out: Dict[str, Any] = {
            "query_id": self.query_id,
            "epochs": self.epochs,
            "elapsed_s": round(self.elapsed_s, 3),
            "snapshot": {
                "clients": self.snapshot_clients,
                "requests": self.snapshot_requests,
                "rps": round(self.snapshot_rps, 1),
                "p50_ms": round(self.snapshot_p(0.50), 3),
                "p99_ms": round(self.snapshot_p(0.99), 3),
                "bytes": self.snapshot_bytes,
            },
            "delta_stream": {
                "subscribers": self.subscribers,
                "deliveries": self.deltas_delivered,
                "deliveries_per_s": round(self.delta_deliveries_per_s, 1),
                "p50_ms": round(self.delta_p(0.50), 3),
                "p99_ms": round(self.delta_p(0.99), 3),
                "bytes": self.delta_bytes,
                "evicted": self.subscribers_evicted,
            },
            "resilience": {
                "epochs_failed": self.epochs_failed,
                "stale_snapshots": self.stale_snapshots,
                "degraded_s": round(self.degraded_s, 3),
            },
        }
        if self.simplified_subscribers:
            per_plain = (
                self.delta_bytes / self.deltas_delivered
                if self.deltas_delivered
                else 0.0
            )
            per_simplified = (
                self.s_delta_bytes / self.s_deltas_delivered
                if self.s_deltas_delivered
                else 0.0
            )
            out["simplified_stream"] = {
                "subscribers": self.simplified_subscribers,
                "deliveries": self.s_deltas_delivered,
                "bytes": self.s_delta_bytes,
                "bytes_per_delivery": round(per_simplified, 1),
                "plain_bytes_per_delivery": round(per_plain, 1),
                "bytes_ratio": round(per_plain / per_simplified, 2)
                if per_simplified
                else 0.0,
            }
        return out

    def to_table(self) -> str:
        d = self.to_dict()
        s, ds = d["snapshot"], d["delta_stream"]
        lines = [
            f"== serving load: query {self.query_id!r}, {self.epochs} epochs "
            f"in {self.elapsed_s:.2f}s ==",
            f"snapshots  : {s['clients']} clients, {s['requests']} requests, "
            f"{s['rps']:.0f} req/s, p50 {s['p50_ms']:.3f} ms, "
            f"p99 {s['p99_ms']:.3f} ms",
            f"deltas     : {ds['subscribers']} subscribers, "
            f"{ds['deliveries']} deliveries, {ds['deliveries_per_s']:.0f}/s, "
            f"p50 {ds['p50_ms']:.3f} ms, p99 {ds['p99_ms']:.3f} ms",
            f"bytes      : {s['bytes']} snapshot, {ds['bytes']} delta",
            f"evictions  : {ds['evicted']} slow subscribers",
        ]
        ss = d.get("simplified_stream")
        if ss:
            lines.append(
                f"simplified : {ss['subscribers']} subscribers, "
                f"{ss['deliveries']} deliveries, "
                f"{ss['bytes_per_delivery']:.0f} B/delivery vs "
                f"{ss['plain_bytes_per_delivery']:.0f} plain "
                f"({ss['bytes_ratio']:.1f}x smaller)"
            )
        r = d["resilience"]
        if r["epochs_failed"] or r["stale_snapshots"]:
            lines.append(
                f"resilience : {r['epochs_failed']} failed epoch attempts, "
                f"{r['stale_snapshots']} stale snapshots, "
                f"{r['degraded_s']:.3f}s degraded"
            )
        return "\n".join(lines)


async def _snapshot_client(
    service: MapService,
    query_id: str,
    stop: "asyncio.Event",
    report: LoadReport,
) -> None:
    while not stop.is_set():
        t0 = time.perf_counter()
        message = service.snapshot(query_id)
        report.snapshot_latencies_ms.append((time.perf_counter() - t0) * 1e3)
        report.snapshot_requests += 1
        report.snapshot_bytes += len(message.payload)
        # Yield so publishes and other clients interleave.
        await asyncio.sleep(0)


async def _delta_subscriber(
    service: MapService,
    query_id: str,
    report: LoadReport,
    since_epoch: int = 0,
    simplified: bool = False,
) -> None:
    session = service.session(query_id)
    encodings = (ENCODING_SIMPLIFIED,) if simplified else (ENCODING_PLAIN,)
    subscription = service.subscribe(query_id, since_epoch, encodings=encodings)
    try:
        async for message in subscription:
            if message.kind not in (DELTA, DELTA_PREDICTED):
                continue
            published = session.publish_walltime(message.epoch)
            if published is not None:
                report.delta_latencies_ms.append(
                    (time.perf_counter() - published) * 1e3
                )
            if simplified:
                report.s_deltas_delivered += 1
                report.s_delta_bytes += len(message.payload)
            else:
                report.deltas_delivered += 1
                report.delta_bytes += len(message.payload)
    except SlowConsumerEvicted:
        pass  # counted from session stats below
    finally:
        subscription.close()


async def run_load(
    service: MapService,
    query_id: str,
    epochs: int,
    n_snapshot_clients: int = 16,
    n_subscribers: int = 100,
    n_simplified_subscribers: int = 0,
    epoch_interval: float = 0.0,
) -> LoadReport:
    """Drive one session under concurrent client load and stop the service.

    Advances ``epochs`` epochs on ``query_id``'s session while the
    simulated clients run, then gracefully stops the *whole* service
    (draining subscribers) and returns the measurements.

    The driver is chaos-tolerant: an advance that fails after the
    supervisor's retries (:class:`EpochComputeFailed`) or hits an open
    circuit breaker (:class:`ShardUnavailableError`) is counted, waited
    out, and re-attempted -- the session serves stale snapshots in the
    meantime, exactly as a production driver would ride through a shard
    recovery.  The run still always reaches ``epochs`` published epochs
    (a safety cap turns a shard that never recovers into a hard error).
    """
    session = service.session(query_id)
    report = LoadReport(
        query_id=query_id,
        snapshot_clients=n_snapshot_clients,
        subscribers=n_subscribers,
        simplified_subscribers=n_simplified_subscribers,
    )
    stop = asyncio.Event()
    tasks = [
        asyncio.ensure_future(_delta_subscriber(service, query_id, report))
        for _ in range(n_subscribers)
    ]
    tasks += [
        asyncio.ensure_future(
            _delta_subscriber(service, query_id, report, simplified=True)
        )
        for _ in range(n_simplified_subscribers)
    ]
    tasks += [
        asyncio.ensure_future(_snapshot_client(service, query_id, stop, report))
        for _ in range(n_snapshot_clients)
    ]
    t0 = time.perf_counter()
    target = session.latest_epoch + epochs
    rounds_left = max(50 * epochs, 200)
    while session.latest_epoch < target:
        rounds_left -= 1
        if rounds_left < 0:
            raise RuntimeError(
                f"load run stuck: session {query_id!r} reached epoch "
                f"{session.latest_epoch} of {target} before the retry budget "
                f"ran out"
            )
        try:
            await session.advance()
        except (EpochComputeFailed, ShardUnavailableError):
            report.epochs_failed += 1
            await asyncio.sleep(epoch_interval or 0.002)
            continue
        if epoch_interval:
            await asyncio.sleep(epoch_interval)
    await service.stop(drain=True)
    stop.set()
    await asyncio.gather(*tasks, return_exceptions=True)
    report.elapsed_s = time.perf_counter() - t0
    report.epochs = session.stats.epochs
    report.subscribers_evicted = session.stats.subscribers_evicted
    report.stale_snapshots = session.stats.stale_snapshots
    report.degraded_s = session.stats.degraded_s
    return report
