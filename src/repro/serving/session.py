"""Map-serving sessions: deterministic epoch compute + asyncio fan-out.

A session is one standing contour query kept continuously up to date.
It has two halves:

- :class:`SessionCompute` -- the synchronous, picklable-config half: a
  seeded deployment, a :class:`~repro.core.continuous.ContinuousIsoMap`
  monitor, and a deterministic field *scenario* (the sensed field is a
  pure function of the epoch index).  Each :meth:`SessionCompute.epoch`
  advances the monitor one epoch and emits the wire payloads: the delta
  (delivered records + retracted positions) and the canonical record
  state.  Because everything derives from the config and the epoch
  index, the payload stream is byte-identical no matter where (or how
  often, after a rebuild) it is computed -- the property the sharded
  router leans on.

- :class:`MapSession` -- the asyncio half: owns a
  :class:`~repro.serving.store.MapStore`, advances epochs through a
  shard pool (optionally on a clock), and fans each delta out to
  subscribers over bounded queues.  A subscriber that stops draining its
  queue is *evicted* (its backlog is dropped and its stream terminates
  with :class:`~repro.serving.errors.SlowConsumerEvicted`) so one slow
  client can never stall the epoch clock or balloon memory.  Graceful
  shutdown publishes an end-of-stream marker *behind* any queued deltas
  and waits for subscribers to drain them.
"""

from __future__ import annotations

import asyncio
import math
import time
import zlib
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.codec import ReportCodec
from repro.core.continuous import ContinuousIsoMap
from repro.core.prediction import PredictionConfig
from repro.core.query import ContourQuery
from repro.field import (
    CompositeField,
    GaussianBumpField,
    RadialField,
    make_harbor_field,
)
from repro.field.base import ScalarField
from repro.geometry import BoundingBox
from repro.network import SensorNetwork
from repro.serving.errors import (
    EpochComputeFailed,
    SessionFailedError,
    ShardUnavailableError,
    SlowConsumerEvicted,
)
from repro.serving.store import MapStore
from repro.serving.wire import (
    DELTA,
    DELTA_PREDICTED,
    ENCODING_PLAIN,
    ENCODING_SIMPLIFIED,
    SNAPSHOT,
    SNAPSHOT_STALE,
    ServedMessage,
    SimplifiedStream,
    encode_delta,
    negotiate_encoding,
)

#: Radial test-field extent (matches the continuous-monitoring tests).
_RADIAL_BOX = BoundingBox(0.0, 0.0, 20.0, 20.0)


# ----------------------------------------------------------------------
# Configuration and deterministic field scenarios
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SessionConfig:
    """Everything that determines a session's payload stream.

    The config is a frozen, JSON-able value: it crosses process
    boundaries as a plain dict and *is* the session's identity for the
    worker-side compute cache.

    Attributes:
        query_id: client-facing session name (also the shard key).
        n_nodes: deployment size.
        seed: deployment seed.
        field: ``"radial"`` (fast 20x20 cone, the test default) or
            ``"harbor"`` (the paper's 50x50 harbor stand-in).
        scenario: field evolution per epoch -- ``"steady"`` (no change),
            ``"tide"`` (smooth periodic drift), ``"storm"`` (a local
            event ramping in at epoch 3), ``"pulse"`` (the field
            collapses below every queried level at epochs 3, 7, 11, ...:
            the all-retract edge case), or ``"front"`` (a trench
            marching across the field at constant per-epoch speed: the
            steady-drift workload the drift predictor targets).
        value_lo / value_hi / granularity / epsilon_fraction: the
            standing :class:`~repro.core.query.ContourQuery`.
        radio_range: deployment radio range.
        angle_delta_deg: the monitor's re-report threshold.
        simplify_tolerance: when set, the session also produces the
            SIMPLIFIED stream (wire version 2): each epoch's record
            state is isoline-simplified to this Hausdorff tolerance and
            a parallel delta/snapshot encoding is published, negotiable
            per subscriber.  ``None`` (the default) disables the
            simplified pipeline entirely -- the PR-6 stream is produced
            alone, byte-for-byte as before.  ``0.0`` runs the pipeline
            as a strict passthrough (the byte-identity differential).
        prediction_tolerance: when set, the monitor runs with
            model-predictive suppression
            (:class:`~repro.core.prediction.PredictionConfig` at this
            position tolerance): suppressed epochs are served from the
            mirrored predictor's dead-reckoned extrapolation and live
            deltas are tagged
            :data:`~repro.serving.wire.DELTA_PREDICTED`.  ``None`` (the
            default) keeps the prediction-off protocol byte-identical
            to the pre-prediction stream.
        prediction_heartbeat: staleness bound (max consecutive
            extrapolated epochs per cache entry) when prediction is on.
    """

    query_id: str
    n_nodes: int = 600
    seed: int = 1
    field: str = "radial"
    scenario: str = "tide"
    value_lo: float = 14.0
    value_hi: float = 16.0
    granularity: float = 2.0
    epsilon_fraction: float = 0.2
    radio_range: float = 2.2
    angle_delta_deg: float = 10.0
    simplify_tolerance: Optional[float] = None
    prediction_tolerance: Optional[float] = None
    prediction_heartbeat: int = 8

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "SessionConfig":
        return SessionConfig(**d)

    def query(self) -> ContourQuery:
        return ContourQuery(
            self.value_lo,
            self.value_hi,
            self.granularity,
            epsilon_fraction=self.epsilon_fraction,
        )

    def prediction(self) -> Optional[PredictionConfig]:
        """The monitor's predictor config (None when prediction is off)."""
        if self.prediction_tolerance is None:
            return None
        return PredictionConfig(
            position_tolerance=self.prediction_tolerance,
            heartbeat=self.prediction_heartbeat,
        )


def base_field(config: SessionConfig) -> ScalarField:
    """The epoch-0 field the deployment is sensed against."""
    if config.field == "harbor":
        return make_harbor_field()
    if config.field == "radial":
        return RadialField(_RADIAL_BOX, center=(10.0, 10.0), peak=20.0, slope=1.0)
    raise ValueError(f"unknown field {config.field!r}")


def field_for_epoch(config: SessionConfig, epoch: int) -> ScalarField:
    """The sensed field at ``epoch`` -- a pure function of the config.

    No wall clock, no sequential RNG: any worker can recompute any
    epoch's field and get the identical object semantics, which is what
    keeps the payload stream byte-identical across shard layouts.
    """
    base = base_field(config)
    scenario = config.scenario
    if scenario == "steady" or epoch <= 0:
        return base
    bounds = base.bounds
    if scenario == "tide":
        # Smooth periodic drift: a broad deposit breathing with an
        # 8-epoch period, centred off the field middle.
        amp = 1.5 * math.sin(2.0 * math.pi * epoch / 8.0)
        if amp == 0.0:
            return base
        cx = bounds.xmin + 0.65 * (bounds.xmax - bounds.xmin)
        cy = bounds.ymin + 0.55 * (bounds.ymax - bounds.ymin)
        sigma = 0.2 * (bounds.xmax - bounds.xmin)
        return CompositeField(
            bounds, [base, GaussianBumpField(bounds, 0.0, [(-amp, (cx, cy), sigma)])]
        )
    if scenario == "storm":
        # A local event ramping in from epoch 3 and holding.
        severity = min(max(epoch - 2, 0), 4)
        if severity == 0:
            return base
        cx = bounds.xmin + 0.7 * (bounds.xmax - bounds.xmin)
        cy = bounds.ymin + 0.5 * (bounds.ymax - bounds.ymin)
        sigma = 0.1 * (bounds.xmax - bounds.xmin)
        return CompositeField(
            bounds,
            [base, GaussianBumpField(bounds, 0.0, [(-float(severity), (cx, cy), sigma)])],
        )
    if scenario == "pulse":
        # Every 4th epoch (3, 7, 11, ...) the field collapses below all
        # queried levels: every cached report retracts at once.
        if epoch % 4 == 3:
            lo = min(0.0, config.value_lo - 2.0 * config.granularity)
            return _collapsed(bounds, lo)
        return base
    if scenario == "front":
        # Steady drift: the whole phenomenon translates at a constant
        # 2.5%-of-span per epoch, so every isoline sweeps the stationary
        # deployment at uniform speed -- pure membership churn with
        # stable topology, the workload model-predictive suppression
        # targets.  On the radial field this is a rigid translation of
        # the center; on other fields a trench marching across stands in.
        span = bounds.xmax - bounds.xmin
        frac = 0.30 + min(0.025 * epoch, 0.40)
        cx = bounds.xmin + frac * span
        cy = bounds.ymin + 0.5 * (bounds.ymax - bounds.ymin)
        if config.field == "radial":
            return RadialField(bounds, center=(cx, cy), peak=20.0, slope=1.0)
        sigma = 0.16 * span
        return CompositeField(
            bounds,
            [base, GaussianBumpField(bounds, 0.0, [(-4.0, (cx, cy), sigma)])],
        )
    raise ValueError(f"unknown scenario {scenario!r}")


def _collapsed(bounds: BoundingBox, lo: float) -> ScalarField:
    """A constant field at ``lo`` (below every queried level)."""
    return RadialField(bounds, center=(bounds.xmin, bounds.ymin), peak=lo, slope=0.0)


# ----------------------------------------------------------------------
# Synchronous epoch compute (runs inline or inside a shard worker)
# ----------------------------------------------------------------------


class SessionCompute:
    """The deterministic, stateful compute core of one session.

    Mirrors the sink cache of its :class:`ContinuousIsoMap` as a
    position-keyed dict of encoded records (the same keying a
    :class:`~repro.serving.wire.DeltaReplayer` uses), so the delta it
    emits each epoch reconstructs the record state exactly.
    """

    def __init__(self, config: SessionConfig):
        self.config = config
        self.query = config.query()
        base = base_field(config)
        self.network = SensorNetwork.random_deploy(
            base, config.n_nodes, radio_range=config.radio_range, seed=config.seed
        )
        self.monitor = ContinuousIsoMap(
            self.query,
            angle_delta_deg=config.angle_delta_deg,
            prediction=config.prediction(),
        )
        self.codec = ReportCodec.for_query(self.query, self.network.bounds)
        self._state: Dict[Tuple[int, int], bytes] = {}
        self._source_pos: Dict[int, Tuple[int, int]] = {}
        self._simplified: Optional[SimplifiedStream] = (
            None
            if config.simplify_tolerance is None
            else SimplifiedStream(
                config.simplify_tolerance, self.codec.dequantize_position
            )
        )
        self.next_epoch = 1

    def epoch(self, epoch: int) -> Dict[str, Any]:
        """Advance to ``epoch`` (must be the next one) and emit payloads.

        Returns a picklable dict: ``epoch``, ``delta`` (bytes),
        ``records`` (canonical sorted record tuple), ``sink`` (quantised
        sink value or None), and per-epoch stats.
        """
        if epoch != self.next_epoch:
            raise ValueError(
                f"epoch {epoch} out of order (next is {self.next_epoch})"
            )
        self.network.resense(field_for_epoch(self.config, epoch))
        result = self.monitor.epoch(self.network)

        if self.monitor.prediction is None:
            # The pre-prediction fold, byte-for-byte: sources are
            # stationary, so a delivered report never moves its key.
            new_records: List[bytes] = []
            for report in result.delivered_reports:
                key = self.codec.quantize_position(report.position)
                record = self.codec.encode(report)
                self._state[key] = record
                self._source_pos[report.source] = key
                new_records.append(record)
            retractions: List[Tuple[int, int]] = []
            for source in result.retractions:
                key = self._source_pos.pop(source, None)
                if key is not None and key in self._state:
                    del self._state[key]
                    retractions.append(key)
        else:
            # Prediction fold: cache entries are predictor tracks whose
            # dead-reckoned positions MOVE between epochs, so a changed
            # entry retracts its old position key alongside the new
            # record.  Keys re-occupied by this epoch's records are
            # never retracted (the replayer applies records first, so a
            # same-key retraction would delete fresh data).
            updates = [
                (
                    self.codec.quantize_position(report.position),
                    self.codec.encode(report),
                    report.source,
                )
                for report in result.cache_updates
            ]
            new_keys = {key for key, _, _ in updates}
            vacated: List[Tuple[int, int]] = []
            for key, _, source in updates:
                prev = self._source_pos.get(source)
                if prev is not None and prev != key:
                    vacated.append(prev)
            for source in result.cache_removed:
                prev = self._source_pos.pop(source, None)
                if prev is not None:
                    vacated.append(prev)
            retractions = []
            for key in vacated:
                if key not in new_keys and key in self._state:
                    del self._state[key]
                    retractions.append(key)
            new_records = []
            for key, record, source in updates:
                self._state[key] = record
                self._source_pos[source] = key
                new_records.append(record)

        sink = (
            None
            if result.sink_value is None
            else self.codec.quantize_value(result.sink_value)
        )
        delta = encode_delta(epoch, new_records, retractions, sink)
        self.next_epoch = epoch + 1
        out: Dict[str, Any] = {
            "epoch": epoch,
            "delta": delta,
            # Integrity tag: the supervised pool re-checks this on the
            # router side, so a payload damaged in transit (or by the
            # chaos engine) is detected and recomputed, never published.
            "crc": zlib.crc32(delta) & 0xFFFFFFFF,
            "records": tuple(sorted(self._state.values())),
            "sink": sink,
            "new_reports": len(result.new_reports),
            "delivered": len(result.delivered_reports),
            "retracted": len(result.retractions),
            "suppressed": result.suppressed,
            "cached_reports": result.cached_reports,
            "traffic_bytes": result.costs.total_traffic_bytes(),
            "predicted": result.predicted,
            "heartbeats": result.heartbeats,
            "staleness": result.staleness,
            "tracks": result.tracks,
        }
        if self._simplified is not None:
            s_delta, s_records = self._simplified.fold_epoch(
                epoch,
                new_records,
                retractions,
                self._state.values(),
                sink,
            )
            out["s_delta"] = s_delta
            # Same transit-integrity contract as the plain delta: the
            # supervisor re-checks this CRC before publishing.
            out["s_crc"] = zlib.crc32(s_delta) & 0xFFFFFFFF
            out["s_records"] = s_records
        return out


# ----------------------------------------------------------------------
# Asyncio session
# ----------------------------------------------------------------------

#: Terminal queue markers (identity-compared).
_CLOSE = object()
_EVICT = object()
_FAIL = object()

#: Clock-loop retry tick while the shard is recovering (seconds); keeps
#: a zero-interval session from hot-looping on a degraded shard.
_RETRY_TICK = 0.005


@dataclass
class SessionStats:
    epochs: int = 0
    deltas_published: int = 0
    subscribers_evicted: int = 0
    subscribers_peak: int = 0
    #: Recoverable compute failures (attempts exhausted / breaker open).
    epochs_failed: int = 0
    #: Snapshot requests answered with a staleness-tagged payload.
    stale_snapshots: int = 0
    #: Total wall time spent degraded (shard recovering), seconds.
    degraded_s: float = 0.0


@dataclass
class _SubEntry:
    queue: "asyncio.Queue"
    closed: "asyncio.Event"
    #: The negotiated stream encoding for this subscriber.
    encoding: str = ENCODING_PLAIN


class Subscription:
    """One subscriber's view of a session's delta stream.

    Async-iterable: yields :class:`~repro.serving.wire.ServedMessage`
    objects -- first any replayed backlog (deltas, or a snapshot resync
    when the requested epoch fell out of retention), then live updates.
    Terminates with ``StopAsyncIteration`` on graceful shutdown and
    raises :class:`SlowConsumerEvicted` if the session evicted it.
    """

    def __init__(
        self,
        session: "MapSession",
        sub_id: int,
        entry: _SubEntry,
        replay: List[ServedMessage],
    ):
        self._session = session
        self._id = sub_id
        self._entry = entry
        self._replay = replay
        self._replay_idx = 0
        self._done = False

    @property
    def encoding(self) -> str:
        """The negotiated stream encoding (fixed at attach time)."""
        return self._entry.encoding

    def __aiter__(self) -> "Subscription":
        return self

    async def __anext__(self) -> ServedMessage:
        if self._done:
            raise StopAsyncIteration
        if self._replay_idx < len(self._replay):
            msg = self._replay[self._replay_idx]
            self._replay_idx += 1
            return msg
        item = await self._entry.queue.get()
        if item is _CLOSE:
            self._finish()
            raise StopAsyncIteration
        if item is _EVICT:
            self._finish()
            raise SlowConsumerEvicted(
                f"subscriber {self._id} of {self._session.config.query_id!r} "
                f"overflowed its queue (depth {self._session.queue_depth})"
            )
        if item is _FAIL:
            self._finish()
            raise SessionFailedError(
                f"session {self._session.config.query_id!r} failed: "
                f"{self._session.failure!r}"
            ) from self._session.failure
        return item

    def close(self) -> None:
        """Detach from the session (idempotent)."""
        self._finish()

    async def __aenter__(self) -> "Subscription":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        self.close()

    def _finish(self) -> None:
        if not self._done:
            self._done = True
            self._entry.closed.set()
            self._session._detach(self._id)


class MapSession:
    """A long-lived serving session over one standing query.

    Args:
        config: the session's deterministic identity.
        pool: the shard pool epochs are computed through (see
            :class:`repro.serving.router.ShardPool`).
        retention: store retention window (epochs).
        snapshot_cache_size / cache_enabled: rendered-snapshot LRU.
        queue_depth: per-subscriber bounded queue size.
        epoch_interval: seconds between epochs when running on the
            clock (:meth:`start`); ``advance`` can always be called
            manually.
        max_epochs: stop the clock after this many epochs (None = run
            until :meth:`stop`).
    """

    def __init__(
        self,
        config: SessionConfig,
        pool: Any,
        retention: int = 128,
        snapshot_cache_size: int = 8,
        cache_enabled: bool = True,
        queue_depth: int = 16,
        epoch_interval: float = 0.0,
        max_epochs: Optional[int] = None,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.config = config
        self.queue_depth = queue_depth
        self.epoch_interval = epoch_interval
        self.max_epochs = max_epochs
        self._pool = pool
        self.store = MapStore(
            config.query_id,
            retention=retention,
            snapshot_cache_size=snapshot_cache_size,
            cache_enabled=cache_enabled,
        )
        self.stats = SessionStats()
        self._subs: Dict[int, _SubEntry] = {}
        self._next_sub_id = 0
        self._publish_walltime: Dict[int, float] = {}
        self._task: Optional["asyncio.Task"] = None
        self._stopping = False
        #: True while the owning shard is failing/recovering; snapshot
        #: requests are answered with a staleness-tagged payload.
        self.degraded = False
        self._degraded_since: Optional[float] = None
        #: The terminal application error, if the session failed.
        self.failure: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Epoch advancement
    # ------------------------------------------------------------------

    @property
    def latest_epoch(self) -> int:
        return self.store.latest_epoch

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    def publish_walltime(self, epoch: int) -> Optional[float]:
        """``time.perf_counter()`` at which ``epoch`` was published."""
        return self._publish_walltime.get(epoch)

    async def advance(self) -> Dict[str, Any]:
        """Compute and publish the next epoch; returns its stats dict.

        Failure semantics:

        - a *recoverable* infrastructure failure (supervised attempts
          exhausted, circuit breaker open) marks the session degraded
          and re-raises -- the epoch was not published, so a later call
          retries the same epoch and, compute being deterministic,
          publishes the byte-identical payload;
        - an *application* error is terminal: the session fails, every
          subscriber's stream raises
          :class:`~repro.serving.errors.SessionFailedError`, and so does
          this call.
        """
        if self._stopping:
            raise RuntimeError("session is stopping")
        if self.failure is not None:
            raise SessionFailedError(
                f"session {self.config.query_id!r} already failed: "
                f"{self.failure!r}"
            ) from self.failure
        epoch = self.store.latest_epoch + 1
        try:
            result = await self._pool.compute(self.config, epoch)
        except (EpochComputeFailed, ShardUnavailableError):
            self.stats.epochs_failed += 1
            if not self.degraded:
                self.degraded = True
                self._degraded_since = time.perf_counter()
            raise
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail(exc)
            raise SessionFailedError(
                f"session {self.config.query_id!r} epoch {epoch} failed: "
                f"{exc!r}"
            ) from exc
        if self.degraded:
            self.degraded = False
            if self._degraded_since is not None:
                self.stats.degraded_s += time.perf_counter() - self._degraded_since
                self._degraded_since = None
        self.store.put_epoch(
            result["epoch"],
            result["delta"],
            result["records"],
            result["sink"],
            s_delta=result.get("s_delta"),
            s_records=result.get("s_records"),
        )
        now = time.perf_counter()
        self._publish_walltime[result["epoch"]] = now
        stale = result["epoch"] - self.store.retention
        self._publish_walltime.pop(stale, None)
        messages = {
            ENCODING_PLAIN: ServedMessage(
                self.delta_kind, result["epoch"], result["delta"]
            )
        }
        if "s_delta" in result:
            messages[ENCODING_SIMPLIFIED] = ServedMessage(
                self.delta_kind, result["epoch"], result["s_delta"]
            )
        for sub_id in list(self._subs):
            entry = self._subs.get(sub_id)
            if entry is None:
                continue
            try:
                entry.queue.put_nowait(messages[entry.encoding])
            except asyncio.QueueFull:
                self._evict(sub_id)
        self.stats.epochs += 1
        self.stats.deltas_published += 1
        return result

    # ------------------------------------------------------------------
    # Client paths
    # ------------------------------------------------------------------

    @property
    def simplified_available(self) -> bool:
        """True when this session produces the SIMPLIFIED stream."""
        return self.config.simplify_tolerance is not None

    @property
    def prediction_enabled(self) -> bool:
        """True when this session suppresses reports via prediction."""
        return self.config.prediction_tolerance is not None

    @property
    def delta_kind(self) -> str:
        """Wire kind for this session's deltas.

        Prediction-enabled sessions tag every delta
        :data:`~repro.serving.wire.DELTA_PREDICTED` so clients know some
        records may be dead-reckoned extrapolations rather than sensed
        reports; the payload layout is identical to a plain DELTA.
        """
        return DELTA_PREDICTED if self.prediction_enabled else DELTA

    def snapshot(
        self, epoch: Optional[int] = None, encoding: str = ENCODING_PLAIN
    ) -> ServedMessage:
        """The rendered snapshot at ``epoch`` (default latest).

        ``encoding`` selects the record selection the snapshot is
        rendered from: :data:`~repro.serving.wire.ENCODING_PLAIN` (every
        cached record) or :data:`~repro.serving.wire.ENCODING_SIMPLIFIED`
        (the tolerance-bounded subset; only on sessions configured with
        a ``simplify_tolerance`` -- otherwise
        :class:`~repro.serving.errors.EncodingUnavailable`).

        Graceful degradation: while the session is degraded (its shard
        is failing or recovering) or failed, a latest-snapshot request
        still answers -- with the last retained epoch, tagged
        :data:`~repro.serving.wire.SNAPSHOT_STALE` so the client *knows*
        the map may lag the field -- instead of erroring.

        Raises :class:`~repro.serving.errors.EpochEvicted` for explicit
        epochs outside retention.
        """
        encoding = negotiate_encoding((encoding,), self.simplified_available)
        payload = self.store.snapshot(
            epoch, simplified=encoding == ENCODING_SIMPLIFIED
        )
        kind = SNAPSHOT
        if epoch is None and (self.degraded or self.failure is not None):
            kind = SNAPSHOT_STALE
            self.stats.stale_snapshots += 1
        return ServedMessage(
            kind, epoch if epoch is not None else self.store.latest_epoch, payload
        )

    def attach(
        self,
        since_epoch: int = 0,
        encodings: Tuple[str, ...] = (ENCODING_PLAIN,),
    ) -> Subscription:
        """Subscribe from ``since_epoch``: the stream replays epochs
        ``since_epoch + 1 .. latest`` and then follows live updates.

        ``encodings`` is the subscriber's offer, in preference order;
        the negotiated pick (see
        :func:`~repro.serving.wire.negotiate_encoding`) fixes the stream
        encoding for the subscription's lifetime and is exposed as
        :attr:`Subscription.encoding`.

        Replay edge cases (all pinned by ``tests/serving``):

        - ``since_epoch`` >= the current epoch: nothing to replay, the
          stream is live-only (a future ``since_epoch`` is clamped);
        - ``since_epoch + 1`` fell out of retention: the stream starts
          with a single snapshot resync at the current epoch instead of
          an unreplayable (and silently wrong) partial delta sequence;
        - an all-retract or zero-isoline epoch replays like any other --
          its delta simply carries retractions (or nothing).
        """
        if since_epoch < 0:
            raise ValueError("since_epoch must be >= 0")
        if self.failure is not None:
            raise SessionFailedError(
                f"session {self.config.query_id!r} failed: {self.failure!r}"
            ) from self.failure
        encoding = negotiate_encoding(encodings, self.simplified_available)
        simplified = encoding == ENCODING_SIMPLIFIED
        entry = _SubEntry(
            queue=asyncio.Queue(maxsize=self.queue_depth),
            closed=asyncio.Event(),
            encoding=encoding,
        )
        sub_id = self._next_sub_id
        self._next_sub_id += 1
        # Registration and replay-range capture happen atomically w.r.t.
        # publishes (no awaits): live messages begin at current + 1.
        self._subs[sub_id] = entry
        self.stats.subscribers_peak = max(
            self.stats.subscribers_peak, len(self._subs)
        )
        replay: List[ServedMessage] = []
        current = self.store.latest_epoch
        start = since_epoch + 1
        if start <= current:
            oldest = self.store.oldest_retained()
            if oldest is not None and start >= oldest:
                for e in range(start, current + 1):
                    delta = self.store.delta(e, simplified=simplified)
                    assert delta is not None  # inside retention by check above
                    replay.append(ServedMessage(self.delta_kind, e, delta))
            else:
                replay.append(
                    ServedMessage(
                        SNAPSHOT,
                        current,
                        self.store.snapshot(current, simplified=simplified),
                    )
                )
        return Subscription(self, sub_id, entry, replay)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Run epochs on the configured clock until stopped."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def _run(self) -> None:
        while not self._stopping and (
            self.max_epochs is None or self.stats.epochs < self.max_epochs
        ):
            try:
                await self.advance()
            except (EpochComputeFailed, ShardUnavailableError):
                # Recoverable: the epoch was not published; stay on the
                # clock and retry it (degraded snapshots serve meanwhile).
                await asyncio.sleep(max(self.epoch_interval, _RETRY_TICK))
                continue
            except SessionFailedError:
                return  # terminal; subscribers were notified by _fail
            await asyncio.sleep(self.epoch_interval)

    async def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop the clock and close every subscriber stream.

        With ``drain`` (the default) the end-of-stream marker is queued
        *behind* any pending deltas and the session waits (up to
        ``timeout`` seconds) for subscribers to consume their backlog.
        """
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        entries = []
        for sub_id in list(self._subs):
            entry = self._subs.get(sub_id)
            if entry is None:
                continue
            try:
                entry.queue.put_nowait(_CLOSE)
                entries.append(entry)
            except asyncio.QueueFull:
                # A subscriber this far behind at shutdown is evicted --
                # its stream ends in SlowConsumerEvicted, not silence.
                self._evict(sub_id)
        if drain and entries:
            waiters = [entry.closed.wait() for entry in entries]
            try:
                await asyncio.wait_for(asyncio.gather(*waiters), timeout)
            except asyncio.TimeoutError:
                pass
        self._subs.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fail(self, exc: BaseException) -> None:
        """Mark the session terminally failed and notify every subscriber.

        The failure marker is queued *behind* any pending deltas, so a
        subscriber drains what was published before its stream raises
        :class:`SessionFailedError`; a subscriber too far behind to even
        queue the marker is evicted (its stream still terminates with a
        typed error, never a silent stall).
        """
        if self.failure is not None:
            return
        self.failure = exc
        for sub_id in list(self._subs):
            entry = self._subs.get(sub_id)
            if entry is None:
                continue
            try:
                entry.queue.put_nowait(_FAIL)
            except asyncio.QueueFull:
                self._evict(sub_id)

    def _evict(self, sub_id: int) -> None:
        entry = self._subs.pop(sub_id, None)
        if entry is None:
            return
        while not entry.queue.empty():
            entry.queue.get_nowait()
        entry.queue.put_nowait(_EVICT)
        self.stats.subscribers_evicted += 1

    def _detach(self, sub_id: int) -> None:
        self._subs.pop(sub_id, None)
