"""Polyline utilities and boundary-loop stitching.

After the merge step removes interior edge portions, the contour-region
boundary is a soup of labelled segments.  :func:`stitch_segments_into_loops`
reassembles them into closed loops by matching endpoints with a spatial
hash, tolerating the small floating-point drift accumulated through
clipping and interval subtraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.geometry.primitives import Vec, dist
from repro.geometry.simplify import simplify_polyline, simplify_polyline_reference

#: Segment kind labels used by the reconstruction pipeline.
TYPE1 = 1  #: lies on a cut line (perpendicular to a report's gradient)
TYPE2 = 2  #: lies on a Voronoi cell border between inner and outer parts
BORDER = 3  #: lies on the field bounding box


@dataclass(frozen=True)
class BoundarySegment:
    """A directed boundary segment with its Iso-Map kind and owning cell.

    Attributes:
        a: start point.
        b: end point.
        kind: one of TYPE1 / TYPE2 / BORDER.
        cell: site index of the Voronoi cell that produced the segment.
        other: for TYPE2 segments, the adjacent cell's site index
            (``-1`` otherwise).
    """

    a: Vec
    b: Vec
    kind: int
    cell: int
    other: int = -1

    @property
    def length(self) -> float:
        return dist(self.a, self.b)

    def reversed(self) -> "BoundarySegment":
        return BoundarySegment(self.b, self.a, self.kind, self.cell, self.other)


def polyline_length(points: Sequence[Vec]) -> float:
    """Total length of an open polyline."""
    return sum(dist(points[i], points[i + 1]) for i in range(len(points) - 1))


def resample_polyline(
    points: Sequence[Vec], spacing: float, simplify_tolerance: float = 0.0
) -> List[Vec]:
    """Points along the polyline at (approximately) uniform ``spacing``.

    Always includes the first and last input points.  Used to turn estimated
    and true isolines into point sets for the Hausdorff-distance metric.

    With a positive ``simplify_tolerance`` the polyline is first reduced
    by :func:`repro.geometry.simplify.simplify_polyline_reference` (the
    scalar half of the simplifier pair; :func:`resample_polyline_fast`
    uses the vectorized half, and the pair is bit-identical, so the
    pre-simplified input to both resamplers is the same vertex list).

    Deviation contract with :func:`resample_polyline_fast` -- this is
    the ONE kernel pair in the repo that is *not* pinned bit-identical,
    and the exact deviation is bounded by a property test
    (``tests/geometry/test_polyline_resample_contract.py``):

    1. both outputs begin with ``points[0]`` and end with ``points[-1]``;
    2. their lengths differ by at most one sample -- both target global
       arclengths ``k * spacing``, but the scalar walk accumulates the
       arclength prefix per segment while the fast path takes one
       ``cumsum``, so when a sample lands within floating-point noise of
       the total length one implementation emits it and the other does
       not; the extra sample lies within ``spacing`` of the final point;
    3. over the common prefix, corresponding samples agree to absolute
       coordinate error ``<= 1e-6`` -- the two formulas target the same
       global arclengths and differ only in summation order (running
       scalar sum vs. one ``cumsum``), i.e. by accumulated ULPs.  (When
       a target lands within ULPs of a vertex the two paths may assign
       it to adjacent segments, but either way the emitted point is that
       vertex to within the same tolerance.)

    The Hausdorff metric consuming these samples is insensitive to all
    three deviations.
    """
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    if simplify_tolerance > 0.0:
        points = simplify_polyline_reference(points, simplify_tolerance)
    if len(points) == 0:
        return []
    if len(points) == 1:
        return [points[0]]
    out: List[Vec] = [points[0]]
    cum = 0.0  # arclength at the current segment's start
    k = 1  # next global sample index; target arclength is k * spacing
    for i in range(len(points) - 1):
        a, b = points[i], points[i + 1]
        seg_len = dist(a, b)
        if seg_len <= 0:
            continue
        end = cum + seg_len
        s = k * spacing
        while s <= end:
            f = (s - cum) / seg_len
            out.append((a[0] + f * (b[0] - a[0]), a[1] + f * (b[1] - a[1])))
            k += 1
            s = k * spacing
        cum = end
    if out[-1] != points[-1]:
        out.append(points[-1])
    return out


def resample_polyline_fast(
    points: Sequence[Vec], spacing: float, simplify_tolerance: float = 0.0
) -> List[Vec]:
    """Vectorized :func:`resample_polyline` (cumulative-arclength sampling).

    Mathematically identical to the scalar walk -- samples sit at global
    arclengths ``spacing, 2 * spacing, ...`` plus the first and last input
    points -- but the interpolation is evaluated in one NumPy pass.  The
    exact deviation contract between the two (length differs by at most
    one boundary sample; common-prefix samples agree to 1e-6; both keep
    the endpoints) is documented on :func:`resample_polyline` and bounded
    by a property test; the Hausdorff metric is insensitive to it.

    ``simplify_tolerance`` pre-simplifies with the *vectorized*
    simplifier half -- bit-identical to the scalar half the reference
    resampler uses, so the pre-step never widens the deviation contract.
    """
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    if simplify_tolerance > 0.0:
        points = simplify_polyline(points, simplify_tolerance)
    n = len(points)
    if n == 0:
        return []
    if n == 1:
        return [points[0]]
    pts = np.asarray(points, dtype=float)
    dx = np.diff(pts[:, 0])
    dy = np.diff(pts[:, 1])
    seg = np.hypot(dx, dy)
    cum = np.concatenate(([0.0], np.cumsum(seg)))
    total = float(cum[-1])
    out: List[Vec] = [points[0]]
    if total > 0.0:
        k = int(total / spacing)
        s = spacing * np.arange(1, k + 1)
        s = s[s <= total]
        if len(s):
            # Segment owning each sample: first i with cum[i] >= s, minus 1.
            idx = np.searchsorted(cum, s, side="left") - 1
            idx = np.clip(idx, 0, len(seg) - 1)
            f = (s - cum[idx]) / np.where(seg[idx] > 0, seg[idx], 1.0)
            f = np.clip(f, 0.0, 1.0)
            px = pts[idx, 0] + f * dx[idx]
            py = pts[idx, 1] + f * dy[idx]
            out.extend(zip(px.tolist(), py.tolist()))
    if out[-1] != points[-1]:
        out.append(points[-1])
    return out


def stitch_segments_into_loops(
    segments: Sequence[BoundarySegment], tol: float = 1e-6
) -> List[List[BoundarySegment]]:
    """Assemble boundary segments into closed loops.

    Each input segment is used exactly once.  Endpoints within ``tol`` are
    considered identical.  Open chains (which indicate a numerical defect in
    the merge step) are returned as loops too -- closed implicitly -- so
    callers never lose boundary geometry; the test suite asserts closure on
    well-formed inputs.

    Segments may need reversal to chain head-to-tail; the stitcher tries
    both orientations.
    """
    segs = [s for s in segments if s.length > tol]
    if not segs:
        return []

    index = _EndpointIndex(tol)
    for k, s in enumerate(segs):
        index.add(s.a, k)
        index.add(s.b, k)

    used = [False] * len(segs)
    loops: List[List[BoundarySegment]] = []

    for start in range(len(segs)):
        if used[start]:
            continue
        used[start] = True
        chain = [segs[start]]
        # Extend forward from the chain's tail until we return to its head.
        while True:
            tail = chain[-1].b
            head = chain[0].a
            if dist(tail, head) <= tol and len(chain) >= 2:
                break
            next_k = None
            next_rev = False
            for k in index.near(tail):
                if used[k]:
                    continue
                if dist(segs[k].a, tail) <= tol:
                    next_k, next_rev = k, False
                    break
                if dist(segs[k].b, tail) <= tol:
                    next_k, next_rev = k, True
                    break
            if next_k is None:
                break  # open chain; accept as-is
            used[next_k] = True
            chain.append(segs[next_k].reversed() if next_rev else segs[next_k])
        loops.append(chain)
    return loops


def loop_points(loop: Sequence[BoundarySegment]) -> List[Vec]:
    """The vertex ring of a stitched loop (one point per segment start)."""
    return [s.a for s in loop]


def loop_is_closed(loop: Sequence[BoundarySegment], tol: float = 1e-5) -> bool:
    """True when the loop's tail meets its head."""
    if not loop:
        return False
    return dist(loop[-1].b, loop[0].a) <= tol


class _EndpointIndex:
    """Spatial hash from points to segment indices (both endpoints)."""

    def __init__(self, tol: float):
        self._cell = max(tol * 4.0, 1e-9)
        self._buckets: Dict[Tuple[int, int], List[int]] = {}

    def _key(self, p: Vec) -> Tuple[int, int]:
        return (int(math.floor(p[0] / self._cell)), int(math.floor(p[1] / self._cell)))

    def add(self, p: Vec, k: int) -> None:
        self._buckets.setdefault(self._key(p), []).append(k)

    def near(self, p: Vec) -> List[int]:
        kx, ky = self._key(p)
        out: List[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                out.extend(self._buckets.get((kx + dx, ky + dy), ()))
        return out
