"""Bounded Voronoi diagrams by half-plane intersection.

The Iso-Map sink needs, per isolevel, the Voronoi cell of each reported
isoposition *clipped to the field boundary*, plus the adjacency between
cells (which neighbour's bisector each edge lies on).  With O(sqrt(n))
reports per level, the simple half-plane-intersection construction --
O(m) clips per cell with a distance-ordered early exit -- is both fast
enough and exact, and it produces the labelled edges the boundary
extraction needs for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.geometry.polygon import BORDER_LABEL, ConvexPolygon, HalfPlane
from repro.geometry.primitives import BoundingBox, Vec, dist, dist_sq


@dataclass
class VoronoiCell:
    """One bounded Voronoi cell.

    Attributes:
        site_index: index of the owning site in the input sequence.
        site: the owning site position.
        polygon: the cell clipped to the bounding box.  Edge labels are the
            neighbouring site index for bisector edges and ``BORDER_LABEL``
            for box edges.
        neighbors: site indices that actually share a positive-length edge
            with this cell.
    """

    site_index: int
    site: Vec
    polygon: ConvexPolygon
    neighbors: Set[int] = field(default_factory=set)


def bounded_voronoi(sites: Sequence[Vec], box: BoundingBox) -> List[VoronoiCell]:
    """Compute the Voronoi cells of ``sites`` clipped to ``box``.

    Duplicate sites are not supported (the Iso-Map report pipeline dedupes
    coincident isopositions before reconstruction); a ``ValueError`` is
    raised if two sites coincide, since their bisector is undefined.

    The construction clips each site's cell against other sites in order of
    increasing distance and stops as soon as the remaining sites are too far
    to affect the cell (farther than twice the current circumradius) -- the
    standard early-exit that makes the whole diagram roughly
    O(m * k log m) for m sites with k average neighbours.
    """
    m = len(sites)
    cells: List[VoronoiCell] = []
    if m == 0:
        return cells
    _check_distinct(sites)

    for i, site in enumerate(sites):
        if not box.contains(site, tol=1e-6):
            raise ValueError(f"site {i} at {site} lies outside the bounding box")
        poly = ConvexPolygon.from_box(box.xmin, box.ymin, box.xmax, box.ymax)
        others = sorted(
            (j for j in range(m) if j != i), key=lambda j: dist_sq(site, sites[j])
        )
        for j in others:
            d = dist(site, sites[j])
            # A site farther than twice the current circumradius cannot cut
            # the cell: every cell point is within circumradius of `site`,
            # hence closer to `site` than to `sites[j]`.
            if d > 2.0 * poly.max_vertex_distance(site) + 1e-12:
                break
            hp = HalfPlane.bisector(site, sites[j])
            poly = poly.clip(hp, j)
            if poly.is_empty:
                break
        neighbors = {lab for lab in poly.labels if lab != BORDER_LABEL}
        cells.append(VoronoiCell(i, site, poly, neighbors))
    return cells


def cells_by_site(cells: Sequence[VoronoiCell]) -> Dict[int, VoronoiCell]:
    """Index cells by their site index."""
    return {c.site_index: c for c in cells}


def total_cell_area(cells: Sequence[VoronoiCell]) -> float:
    """Sum of the cell areas (should equal the box area -- a test invariant)."""
    return sum(c.polygon.area() for c in cells)


def shared_edges(
    cells: Sequence[VoronoiCell],
) -> List[Tuple[int, int, Vec, Vec]]:
    """All distinct shared (bisector) edges as ``(i, j, a, b)`` with i < j.

    The endpoints are taken from cell ``i``'s polygon; cell ``j``'s copy of
    the edge spans the same segment (up to numerical tolerance), which the
    test suite asserts.
    """
    by_site = cells_by_site(cells)
    out: List[Tuple[int, int, Vec, Vec]] = []
    for cell in cells:
        for a, b, lab in cell.polygon.edges():
            if lab == BORDER_LABEL or lab <= cell.site_index:
                continue
            if lab in by_site:
                out.append((cell.site_index, lab, a, b))
    return out


def _check_distinct(sites: Sequence[Vec], tol: float = 1e-9) -> None:
    """Raise on coincident sites (hash-grid pass, O(m) expected)."""
    seen: Dict[Tuple[int, int], List[Vec]] = {}
    inv = 1.0 / max(tol, 1e-12)
    for s in sites:
        key = (int(s[0] * inv), int(s[1] * inv))
        for kx in (key[0] - 1, key[0], key[0] + 1):
            for ky in (key[1] - 1, key[1], key[1] + 1):
                for other in seen.get((kx, ky), ()):
                    if dist_sq(s, other) < tol * tol:
                        raise ValueError(f"coincident Voronoi sites near {s}")
        seen.setdefault(key, []).append(s)
