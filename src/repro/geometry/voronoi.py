"""Bounded Voronoi diagrams by half-plane intersection.

The Iso-Map sink needs, per isolevel, the Voronoi cell of each reported
isoposition *clipped to the field boundary*, plus the adjacency between
cells (which neighbour's bisector each edge lies on).  With O(sqrt(n))
reports per level, the simple half-plane-intersection construction --
O(m) clips per cell with a distance-ordered early exit -- is both fast
enough and exact, and it produces the labelled edges the boundary
extraction needs for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.geometry.polygon import BORDER_LABEL, ConvexPolygon, HalfPlane
from repro.geometry.primitives import EPS, BoundingBox, Vec, dist, dist_sq

#: Site count above which :func:`bounded_voronoi` switches from the
#: per-site Python sort to the blocked NumPy candidate prefilter.  Both
#: paths produce bit-identical diagrams (the differential tests pin it);
#: the threshold only marks where the array setup starts paying off.
_BATCH_MIN_SITES = 48

#: Float budget for one block of the pairwise distance matrix (~32 MB).
_PREFILTER_BLOCK_FLOATS = 1 << 22

#: How many scalar clips to run between vectorized no-op prunes in
#: :func:`_clip_cell_filtered`.  Smaller values prune more aggressively
#: (fewer wasted scalar no-op clips) at the cost of more NumPy passes;
#: the output is bit-identical for any value.
_PRUNE_EVERY = 16

#: Absolute inflation of :func:`cell_guard_radius` over the geometric
#: bound ``2 * circumradius``.  The bound itself is exact (see the guard
#: docstring); the slack absorbs the 1e-12 early-exit tolerance of
#: :func:`_clip_cell` and the EPS slack of the no-op clip test, with
#: orders of magnitude to spare at the simulation's O(100)-unit scale.
GUARD_SLACK = 1e-6


@dataclass
class VoronoiCell:
    """One bounded Voronoi cell.

    Attributes:
        site_index: index of the owning site in the input sequence.
        site: the owning site position.
        polygon: the cell clipped to the bounding box.  Edge labels are the
            neighbouring site index for bisector edges and ``BORDER_LABEL``
            for box edges.
        neighbors: site indices that actually share a positive-length edge
            with this cell.
    """

    site_index: int
    site: Vec
    polygon: ConvexPolygon
    neighbors: Set[int] = field(default_factory=set)


def bounded_voronoi(sites: Sequence[Vec], box: BoundingBox) -> List[VoronoiCell]:
    """Compute the Voronoi cells of ``sites`` clipped to ``box``.

    Duplicate sites are not supported (the Iso-Map report pipeline dedupes
    coincident isopositions before reconstruction); a ``ValueError`` is
    raised if two sites coincide, since their bisector is undefined.

    The construction clips each site's cell against other sites in order of
    increasing distance and stops as soon as the remaining sites are too far
    to affect the cell (farther than twice the current circumradius) -- the
    standard early-exit that makes each cell cost O(local neighbours)
    clips.  Above :data:`_BATCH_MIN_SITES` the distance ordering (the
    O(m^2) part) comes from a blocked NumPy prefilter instead of one
    Python sort per site; outputs are bit-identical either way.
    """
    if len(sites) < _BATCH_MIN_SITES:
        return bounded_voronoi_reference(sites, box)
    return bounded_voronoi_batched(sites, box)


def bounded_voronoi_reference(
    sites: Sequence[Vec], box: BoundingBox
) -> List[VoronoiCell]:
    """Per-site scalar construction (retained reference for the batched
    path; see :func:`bounded_voronoi`)."""
    m = len(sites)
    cells: List[VoronoiCell] = []
    if m == 0:
        return cells
    _check_distinct(sites)

    for i, site in enumerate(sites):
        others = sorted(
            (j for j in range(m) if j != i), key=lambda j: dist_sq(site, sites[j])
        )
        cells.append(_clip_cell(i, site, sites, box, others))
    return cells


def bounded_voronoi_batched(
    sites: Sequence[Vec], box: BoundingBox
) -> List[VoronoiCell]:
    """Prefiltered construction, bit-identical to the reference.

    Two ingredients:

    1. Candidate *order*: pairwise squared distances are evaluated
       block-by-block (bounded scratch) and stable-argsorted,
       reproducing exactly the per-site ``sorted(..., key=dist_sq)``
       order of the reference including its tie-breaking (ascending
       site index).

    2. Candidate *pruning*: per cell, a vectorized no-op test replaces
       the scalar clip-everything loop (see :func:`_clip_cell_filtered`).

    So each cell pays O(local neighbours) scalar clips plus a few
    array passes, instead of up to O(m) Python clip calls.
    """
    m = len(sites)
    cells: List[VoronoiCell] = []
    if m == 0:
        return cells
    _check_distinct(sites)

    arr = np.asarray(sites, dtype=float)
    xs = arr[:, 0]
    ys = arr[:, 1]
    block = max(1, _PREFILTER_BLOCK_FLOATS // m)
    for lo in range(0, m, block):
        hi = min(lo + block, m)
        chunk = arr[lo:hi]
        d2 = (chunk[:, 0:1] - xs[None, :]) ** 2
        d2 += (chunk[:, 1:2] - ys[None, :]) ** 2
        # Self-distance sorts last instead of being removed, keeping row
        # lengths uniform; the no-op test never selects it (violation 0).
        d2[np.arange(hi - lo), np.arange(lo, hi)] = np.inf
        order = np.argsort(d2, axis=1, kind="stable")
        for i in range(lo, hi):
            cells.append(
                _clip_cell_filtered(i, sites[i], box, order[i - lo], xs, ys)
            )
    return cells


def _clip_cell_filtered(
    i: int,
    site: Vec,
    box: BoundingBox,
    cand: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
) -> VoronoiCell:
    """Clip one cell, pruning candidates whose clip provably cannot change it.

    ``ConvexPolygon.clip`` returns ``self`` (the very same object)
    whenever every vertex satisfies ``signed_violation(v) <= EPS``.  That
    violation -- ``nx*vx + ny*vy - offset`` with ``n = other - site`` and
    ``offset = n . midpoint`` -- is plain elementwise arithmetic, so
    evaluating it for all remaining candidates at once in NumPy yields
    bit-for-bit the numbers the scalar clip would compute.  Every
    :data:`_PRUNE_EVERY` clips we re-test the remaining candidates
    against the current polygon and permanently drop the no-ops
    (clipping only shrinks the cell, and the violation of any new vertex
    is a convex combination of old-vertex violations, so a no-op stays a
    no-op forever); survivors between prunes go through the ordinary
    scalar clip, which handles any that became no-ops mid-batch.

    This reproduces the reference cell exactly: dropped candidates would
    have returned the polygon unchanged, and candidates beyond the
    reference's circumradius early-exit are mathematically inside by a
    margin (``(d/2 - R) * d``, at least ~1e-11 for the 1e-12 exit slack)
    that dwarfs both float rounding and the EPS test slack, so the fast
    path never clips a candidate the reference would have skipped.
    """
    if not box.contains(site, tol=1e-6):
        raise ValueError(f"site {i} at {site} lies outside the bounding box")
    poly = ConvexPolygon.from_box(box.xmin, box.ymin, box.xmax, box.ymax)
    sx, sy = site
    # Bisector half-plane coefficients for every candidate, computed with
    # the exact operation order of HalfPlane.bisector.
    nx = xs[cand] - sx
    ny = ys[cand] - sy
    mx = (sx + xs[cand]) / 2.0
    my = (sy + ys[cand]) / 2.0
    off = nx * mx + ny * my

    idx = np.arange(len(cand))
    pos = 0  # next unprocessed survivor
    since_prune = _PRUNE_EVERY  # force a prune before the first clip
    while pos < len(idx) and not poly.is_empty:
        if since_prune >= _PRUNE_EVERY:
            verts = np.asarray(poly.vertices)
            rest = idx[pos:]
            viol = nx[rest, None] * verts[None, :, 0]
            viol += ny[rest, None] * verts[None, :, 1]
            viol -= off[rest, None]
            idx = rest[(viol > EPS).any(axis=1)]
            pos = 0
            since_prune = 0
            continue
        k = int(idx[pos])
        pos += 1
        since_prune += 1
        hp = HalfPlane((float(nx[k]), float(ny[k])), float(off[k]))
        poly = poly.clip(hp, int(cand[k]))
    neighbors = {lab for lab in poly.labels if lab != BORDER_LABEL}
    return VoronoiCell(i, site, poly, neighbors)


def _clip_cell(
    i: int,
    site: Vec,
    sites: Sequence[Vec],
    box: BoundingBox,
    candidates: Sequence[int],
) -> VoronoiCell:
    """Clip one site's cell against ``candidates`` (nearest first).

    ``candidates`` may include ``i`` itself at the far end (the batched
    prefilter leaves it with infinite distance); the early exit stops
    before it can matter.
    """
    if not box.contains(site, tol=1e-6):
        raise ValueError(f"site {i} at {site} lies outside the bounding box")
    poly = ConvexPolygon.from_box(box.xmin, box.ymin, box.xmax, box.ymax)
    for j in candidates:
        if j == i:
            continue
        d = dist(site, sites[j])
        # A site farther than twice the current circumradius cannot cut
        # the cell: every cell point is within circumradius of `site`,
        # hence closer to `site` than to `sites[j]`.
        if d > 2.0 * poly.max_vertex_distance(site) + 1e-12:
            break
        hp = HalfPlane.bisector(site, sites[j])
        poly = poly.clip(hp, j)
        if poly.is_empty:
            break
    neighbors = {lab for lab in poly.labels if lab != BORDER_LABEL}
    return VoronoiCell(i, site, poly, neighbors)


# ----------------------------------------------------------------------
# Incremental locality (epoch-delta reconstruction support)
# ----------------------------------------------------------------------


def cell_guard_radius(cell: VoronoiCell) -> float:
    """Outer guard radius of a finished cell: ``2 * circumradius``.

    No candidate beyond this radius is ever *processed* against a
    polygon it could cut: the construction's early exit stops at the
    first candidate past ``2 * max_vertex_distance``, and any candidate
    before that point but beyond ``2 * R`` (R = final circumradius)
    clips as a bit-level no-op -- every final vertex is inside its
    half-plane by margin ``(d/2 - R) * d``, far beyond the EPS test
    slack once inflated by :data:`GUARD_SLACK`.  See
    :class:`CellLocality` for how this combines with the last-cutter
    radius into an exact dirty test.
    """
    return 2.0 * cell.polygon.max_vertex_distance(cell.site) + GUARD_SLACK


class CellLocality:
    """Retained per-cell data deciding which cells an epoch delta dirties.

    The question the epoch-delta reconstruction asks per retained cell
    ``i``: if these site positions are *added* and those *removed* (a
    moved site is one of each), does re-running the construction produce
    cell ``i`` bit-identical?  Distance-ordered half-plane clipping
    answers it from three retained quantities:

    - ``lastcut2[i]``: squared distance of the cell's *last cutter*.
      The final cutter's chord provably survives to the final ring (its
      chord endpoints lie at ``>= d/2`` from the site; clipping only
      shrinks the circumradius, so a later removal of the chord would
      contradict the cutters' increasing distances), hence the last
      cutter is a surviving *neighbour* and ``lastcut2`` is simply the
      max squared site distance over ``cell.neighbors``.  Every cutter
      lies at or below this distance, so any candidate strictly beyond
      it was a bit-level no-op, and no-op clips can be inserted or
      deleted without touching a single output bit.

    - the final ``verts[i]``: a candidate beyond ``lastcut2`` is
      processed only after the running polygon has already reached its
      final ring, so whether an *added* site clips as a no-op is decided
      by evaluating the clip's own vertex test (``violation <= EPS``,
      same arithmetic bit for bit) against the final vertices.

    - ``guard2[i]`` (:func:`cell_guard_radius`, squared): beyond it an
      added site is a no-op by a margin that dwarfs EPS, so the vertex
      test is skipped.

    So a retained cell stays provably bit-identical when every removed
    position is strictly beyond ``lastcut2`` and every added position is
    strictly beyond ``lastcut2`` and either beyond ``guard2`` or passes
    the exact no-op vertex test.  (Unchanged sites only ever reorder
    within equal-distance ties, which the stable candidate sort breaks
    identically before and after as long as survivors keep their
    relative index order -- which report streams do.)

    ``verts`` is padded to the widest ring with the site's own position,
    whose violation ``-d^2/2`` is always negative, so padding can never
    mark a cell dirty.
    """

    __slots__ = ("positions", "verts", "lastcut2", "guard2")

    def __init__(
        self,
        positions: np.ndarray,
        verts: np.ndarray,
        lastcut2: np.ndarray,
        guard2: np.ndarray,
    ):
        self.positions = positions
        self.verts = verts
        self.lastcut2 = lastcut2
        self.guard2 = guard2

    @staticmethod
    def from_cells(
        cells: Sequence[VoronoiCell], positions: np.ndarray
    ) -> "CellLocality":
        """Build the table for a full diagram.

        ``cells`` must be the complete diagram with ``cells[k].site_index
        == k`` (what :func:`bounded_voronoi` returns), and ``positions``
        the matching ``(m, 2)`` float array of sites.
        """
        m = len(cells)
        vmax = max((len(c.polygon.vertices) for c in cells), default=0)
        verts = np.empty((m, vmax, 2), dtype=float)
        lastcut2 = np.empty(m, dtype=float)
        guard2 = np.empty(m, dtype=float)
        table = CellLocality(positions, verts, lastcut2, guard2)
        for k, cell in enumerate(cells):
            table.fill_row(k, cell)
        return table

    def fill_row(self, k: int, cell: VoronoiCell) -> None:
        """(Re)compute row ``k`` from a freshly built cell."""
        px, py = self.positions[k]
        ring = cell.polygon.vertices
        self.verts[k, :, 0] = px
        self.verts[k, :, 1] = py
        for v, vert in enumerate(ring):
            self.verts[k, v, 0] = vert[0]
            self.verts[k, v, 1] = vert[1]
        if cell.neighbors:
            nb = np.fromiter(cell.neighbors, dtype=int, count=len(cell.neighbors))
            d2 = (self.positions[nb, 0] - px) ** 2
            d2 += (self.positions[nb, 1] - py) ** 2
            self.lastcut2[k] = d2.max()
        else:
            self.lastcut2[k] = 0.0
        self.guard2[k] = cell_guard_radius(cell) ** 2

    @staticmethod
    def splice(
        old: "CellLocality",
        old_of_new: Dict[int, int],
        cells: Sequence[VoronoiCell],
        positions: np.ndarray,
    ) -> "CellLocality":
        """The next epoch's table: retained rows copied, dirty rows rebuilt.

        ``old_of_new`` maps retained new indices to their old row;
        ``cells``/``positions`` describe the new diagram.
        """
        m = len(cells)
        vmax_old = old.verts.shape[1] if len(old.verts) else 0
        vmax = vmax_old
        fresh = [k for k in range(m) if k not in old_of_new]
        for k in fresh:
            vmax = max(vmax, len(cells[k].polygon.vertices))
        verts = np.empty((m, vmax, 2), dtype=float)
        lastcut2 = np.empty(m, dtype=float)
        guard2 = np.empty(m, dtype=float)
        table = CellLocality(positions, verts, lastcut2, guard2)
        for k in range(m):
            ok = old_of_new.get(k)
            if ok is None:
                table.fill_row(k, cells[k])
            else:
                verts[k, :vmax_old] = old.verts[ok]
                verts[k, vmax_old:, 0] = positions[k, 0]
                verts[k, vmax_old:, 1] = positions[k, 1]
                lastcut2[k] = old.lastcut2[ok]
                guard2[k] = old.guard2[ok]
        return table

    def affected(
        self, added: Sequence[Vec], removed: Sequence[Vec]
    ) -> np.ndarray:
        """Boolean mask of cells that may differ under the given delta.

        ``False`` entries are *guaranteed* bit-identical (see the class
        docstring); ``True`` entries must be recomputed.
        """
        m = len(self.positions)
        out = np.zeros(m, dtype=bool)
        if m == 0:
            return out
        px = self.positions[:, 0]
        py = self.positions[:, 1]
        for (qx, qy) in removed:
            d2 = (qx - px) ** 2 + (qy - py) ** 2
            out |= d2 <= self.lastcut2
        for (qx, qy) in added:
            d2 = (qx - px) ** 2 + (qy - py) ** 2
            out |= d2 <= self.lastcut2
            test = np.nonzero(~out & (d2 <= self.guard2))[0]
            if len(test):
                # Exact emulation of the clip's no-op test against the
                # final ring: same bisector coefficients, same violation
                # arithmetic, same EPS threshold, bit for bit.
                nx = qx - px[test]
                ny = qy - py[test]
                mx = (px[test] + qx) / 2.0
                my = (py[test] + qy) / 2.0
                off = nx * mx + ny * my
                ring = self.verts[test]
                viol = nx[:, None] * ring[:, :, 0]
                viol += ny[:, None] * ring[:, :, 1]
                viol -= off[:, None]
                out[test[(viol > EPS).any(axis=1)]] = True
        return out


#: Initial nearest-candidate count for :func:`recompute_cell`.  Local
#: cells finish within the first batch; the escalation loop guarantees
#: correctness for the rest, so this is purely a performance knob.
_RECOMPUTE_K0 = 64


def recompute_cell(
    i: int, site: Vec, xs: np.ndarray, ys: np.ndarray, box: BoundingBox
) -> VoronoiCell:
    """Rebuild the single cell ``i`` against the full site set.

    Produces bit-for-bit the cell :func:`bounded_voronoi` would emit at
    position ``i`` of a full run, without paying a full ``argsort`` per
    cell: the nearest ``K`` candidates (argpartition, widened to the
    whole tie group at the cut-off, then sorted with the same stable
    (distance, index) order as the full run) are clipped first, and the
    result is accepted once every unselected candidate is provably a
    bit-level no-op -- farther than the finished cell's guard radius
    (see :func:`cell_guard_radius`; a clip sequence keeps its output
    bits when no-op clips are dropped from it).  Cells that reach
    farther than the first batch escalate ``K`` geometrically up to the
    full, plain-argsort construction.

    The squared-distance row uses the exact elementwise arithmetic of
    the batched prefilter, so candidate order -- including
    ascending-index tie-breaking -- matches a full run bit for bit.
    """
    m = len(xs)
    d2 = (xs[i] - xs) ** 2 + (ys[i] - ys) ** 2
    d2[i] = np.inf
    k = _RECOMPUTE_K0
    while k < m - 1:
        part = np.argpartition(d2, k)[:k]
        cutoff = d2[part].max()
        sel = np.nonzero(d2 <= cutoff)[0]
        order = sel[np.argsort(d2[sel], kind="stable")]
        cell = _clip_cell_filtered(i, site, box, order, xs, ys)
        guard = 2.0 * cell.polygon.max_vertex_distance(site) + GUARD_SLACK
        if cutoff >= guard * guard:
            return cell
        k *= 4
    order = np.argsort(d2, kind="stable")
    return _clip_cell_filtered(i, site, box, order, xs, ys)


def cells_by_site(cells: Sequence[VoronoiCell]) -> Dict[int, VoronoiCell]:
    """Index cells by their site index."""
    return {c.site_index: c for c in cells}


def total_cell_area(cells: Sequence[VoronoiCell]) -> float:
    """Sum of the cell areas (should equal the box area -- a test invariant)."""
    return sum(c.polygon.area() for c in cells)


def shared_edges(
    cells: Sequence[VoronoiCell],
) -> List[Tuple[int, int, Vec, Vec]]:
    """All distinct shared (bisector) edges as ``(i, j, a, b)`` with i < j.

    The endpoints are taken from cell ``i``'s polygon; cell ``j``'s copy of
    the edge spans the same segment (up to numerical tolerance), which the
    test suite asserts.
    """
    by_site = cells_by_site(cells)
    out: List[Tuple[int, int, Vec, Vec]] = []
    for cell in cells:
        for a, b, lab in cell.polygon.edges():
            if lab == BORDER_LABEL or lab <= cell.site_index:
                continue
            if lab in by_site:
                out.append((cell.site_index, lab, a, b))
    return out


def _check_distinct(sites: Sequence[Vec], tol: float = 1e-9) -> None:
    """Raise on coincident sites (hash-grid pass, O(m) expected)."""
    seen: Dict[Tuple[int, int], List[Vec]] = {}
    inv = 1.0 / max(tol, 1e-12)
    for s in sites:
        key = (int(s[0] * inv), int(s[1] * inv))
        for kx in (key[0] - 1, key[0], key[0] + 1):
            for ky in (key[1] - 1, key[1], key[1] + 1):
                for other in seen.get((kx, ky), ()):
                    if dist_sq(s, other) < tol * tol:
                        raise ValueError(f"coincident Voronoi sites near {s}")
        seen.setdefault(key, []).append(s)
