"""Bounded Voronoi diagrams by half-plane intersection.

The Iso-Map sink needs, per isolevel, the Voronoi cell of each reported
isoposition *clipped to the field boundary*, plus the adjacency between
cells (which neighbour's bisector each edge lies on).  With O(sqrt(n))
reports per level, the simple half-plane-intersection construction --
O(m) clips per cell with a distance-ordered early exit -- is both fast
enough and exact, and it produces the labelled edges the boundary
extraction needs for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.geometry.polygon import BORDER_LABEL, ConvexPolygon, HalfPlane
from repro.geometry.primitives import EPS, BoundingBox, Vec, dist, dist_sq

#: Site count above which :func:`bounded_voronoi` switches from the
#: per-site Python sort to the blocked NumPy candidate prefilter.  Both
#: paths produce bit-identical diagrams (the differential tests pin it);
#: the threshold only marks where the array setup starts paying off.
_BATCH_MIN_SITES = 48

#: Float budget for one block of the pairwise distance matrix (~32 MB).
_PREFILTER_BLOCK_FLOATS = 1 << 22

#: How many scalar clips to run between vectorized no-op prunes in
#: :func:`_clip_cell_filtered`.  Smaller values prune more aggressively
#: (fewer wasted scalar no-op clips) at the cost of more NumPy passes;
#: the output is bit-identical for any value.
_PRUNE_EVERY = 16


@dataclass
class VoronoiCell:
    """One bounded Voronoi cell.

    Attributes:
        site_index: index of the owning site in the input sequence.
        site: the owning site position.
        polygon: the cell clipped to the bounding box.  Edge labels are the
            neighbouring site index for bisector edges and ``BORDER_LABEL``
            for box edges.
        neighbors: site indices that actually share a positive-length edge
            with this cell.
    """

    site_index: int
    site: Vec
    polygon: ConvexPolygon
    neighbors: Set[int] = field(default_factory=set)


def bounded_voronoi(sites: Sequence[Vec], box: BoundingBox) -> List[VoronoiCell]:
    """Compute the Voronoi cells of ``sites`` clipped to ``box``.

    Duplicate sites are not supported (the Iso-Map report pipeline dedupes
    coincident isopositions before reconstruction); a ``ValueError`` is
    raised if two sites coincide, since their bisector is undefined.

    The construction clips each site's cell against other sites in order of
    increasing distance and stops as soon as the remaining sites are too far
    to affect the cell (farther than twice the current circumradius) -- the
    standard early-exit that makes each cell cost O(local neighbours)
    clips.  Above :data:`_BATCH_MIN_SITES` the distance ordering (the
    O(m^2) part) comes from a blocked NumPy prefilter instead of one
    Python sort per site; outputs are bit-identical either way.
    """
    if len(sites) < _BATCH_MIN_SITES:
        return bounded_voronoi_reference(sites, box)
    return bounded_voronoi_batched(sites, box)


def bounded_voronoi_reference(
    sites: Sequence[Vec], box: BoundingBox
) -> List[VoronoiCell]:
    """Per-site scalar construction (retained reference for the batched
    path; see :func:`bounded_voronoi`)."""
    m = len(sites)
    cells: List[VoronoiCell] = []
    if m == 0:
        return cells
    _check_distinct(sites)

    for i, site in enumerate(sites):
        others = sorted(
            (j for j in range(m) if j != i), key=lambda j: dist_sq(site, sites[j])
        )
        cells.append(_clip_cell(i, site, sites, box, others))
    return cells


def bounded_voronoi_batched(
    sites: Sequence[Vec], box: BoundingBox
) -> List[VoronoiCell]:
    """Prefiltered construction, bit-identical to the reference.

    Two ingredients:

    1. Candidate *order*: pairwise squared distances are evaluated
       block-by-block (bounded scratch) and stable-argsorted,
       reproducing exactly the per-site ``sorted(..., key=dist_sq)``
       order of the reference including its tie-breaking (ascending
       site index).

    2. Candidate *pruning*: per cell, a vectorized no-op test replaces
       the scalar clip-everything loop (see :func:`_clip_cell_filtered`).

    So each cell pays O(local neighbours) scalar clips plus a few
    array passes, instead of up to O(m) Python clip calls.
    """
    m = len(sites)
    cells: List[VoronoiCell] = []
    if m == 0:
        return cells
    _check_distinct(sites)

    arr = np.asarray(sites, dtype=float)
    xs = arr[:, 0]
    ys = arr[:, 1]
    block = max(1, _PREFILTER_BLOCK_FLOATS // m)
    for lo in range(0, m, block):
        hi = min(lo + block, m)
        chunk = arr[lo:hi]
        d2 = (chunk[:, 0:1] - xs[None, :]) ** 2
        d2 += (chunk[:, 1:2] - ys[None, :]) ** 2
        # Self-distance sorts last instead of being removed, keeping row
        # lengths uniform; the no-op test never selects it (violation 0).
        d2[np.arange(hi - lo), np.arange(lo, hi)] = np.inf
        order = np.argsort(d2, axis=1, kind="stable")
        for i in range(lo, hi):
            cells.append(
                _clip_cell_filtered(i, sites[i], box, order[i - lo], xs, ys)
            )
    return cells


def _clip_cell_filtered(
    i: int,
    site: Vec,
    box: BoundingBox,
    cand: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
) -> VoronoiCell:
    """Clip one cell, pruning candidates whose clip provably cannot change it.

    ``ConvexPolygon.clip`` returns ``self`` (the very same object)
    whenever every vertex satisfies ``signed_violation(v) <= EPS``.  That
    violation -- ``nx*vx + ny*vy - offset`` with ``n = other - site`` and
    ``offset = n . midpoint`` -- is plain elementwise arithmetic, so
    evaluating it for all remaining candidates at once in NumPy yields
    bit-for-bit the numbers the scalar clip would compute.  Every
    :data:`_PRUNE_EVERY` clips we re-test the remaining candidates
    against the current polygon and permanently drop the no-ops
    (clipping only shrinks the cell, and the violation of any new vertex
    is a convex combination of old-vertex violations, so a no-op stays a
    no-op forever); survivors between prunes go through the ordinary
    scalar clip, which handles any that became no-ops mid-batch.

    This reproduces the reference cell exactly: dropped candidates would
    have returned the polygon unchanged, and candidates beyond the
    reference's circumradius early-exit are mathematically inside by a
    margin (``(d/2 - R) * d``, at least ~1e-11 for the 1e-12 exit slack)
    that dwarfs both float rounding and the EPS test slack, so the fast
    path never clips a candidate the reference would have skipped.
    """
    if not box.contains(site, tol=1e-6):
        raise ValueError(f"site {i} at {site} lies outside the bounding box")
    poly = ConvexPolygon.from_box(box.xmin, box.ymin, box.xmax, box.ymax)
    sx, sy = site
    # Bisector half-plane coefficients for every candidate, computed with
    # the exact operation order of HalfPlane.bisector.
    nx = xs[cand] - sx
    ny = ys[cand] - sy
    mx = (sx + xs[cand]) / 2.0
    my = (sy + ys[cand]) / 2.0
    off = nx * mx + ny * my

    idx = np.arange(len(cand))
    pos = 0  # next unprocessed survivor
    since_prune = _PRUNE_EVERY  # force a prune before the first clip
    while pos < len(idx) and not poly.is_empty:
        if since_prune >= _PRUNE_EVERY:
            verts = np.asarray(poly.vertices)
            rest = idx[pos:]
            viol = nx[rest, None] * verts[None, :, 0]
            viol += ny[rest, None] * verts[None, :, 1]
            viol -= off[rest, None]
            idx = rest[(viol > EPS).any(axis=1)]
            pos = 0
            since_prune = 0
            continue
        k = int(idx[pos])
        pos += 1
        since_prune += 1
        hp = HalfPlane((float(nx[k]), float(ny[k])), float(off[k]))
        poly = poly.clip(hp, int(cand[k]))
    neighbors = {lab for lab in poly.labels if lab != BORDER_LABEL}
    return VoronoiCell(i, site, poly, neighbors)


def _clip_cell(
    i: int,
    site: Vec,
    sites: Sequence[Vec],
    box: BoundingBox,
    candidates: Sequence[int],
) -> VoronoiCell:
    """Clip one site's cell against ``candidates`` (nearest first).

    ``candidates`` may include ``i`` itself at the far end (the batched
    prefilter leaves it with infinite distance); the early exit stops
    before it can matter.
    """
    if not box.contains(site, tol=1e-6):
        raise ValueError(f"site {i} at {site} lies outside the bounding box")
    poly = ConvexPolygon.from_box(box.xmin, box.ymin, box.xmax, box.ymax)
    for j in candidates:
        if j == i:
            continue
        d = dist(site, sites[j])
        # A site farther than twice the current circumradius cannot cut
        # the cell: every cell point is within circumradius of `site`,
        # hence closer to `site` than to `sites[j]`.
        if d > 2.0 * poly.max_vertex_distance(site) + 1e-12:
            break
        hp = HalfPlane.bisector(site, sites[j])
        poly = poly.clip(hp, j)
        if poly.is_empty:
            break
    neighbors = {lab for lab in poly.labels if lab != BORDER_LABEL}
    return VoronoiCell(i, site, poly, neighbors)


def cells_by_site(cells: Sequence[VoronoiCell]) -> Dict[int, VoronoiCell]:
    """Index cells by their site index."""
    return {c.site_index: c for c in cells}


def total_cell_area(cells: Sequence[VoronoiCell]) -> float:
    """Sum of the cell areas (should equal the box area -- a test invariant)."""
    return sum(c.polygon.area() for c in cells)


def shared_edges(
    cells: Sequence[VoronoiCell],
) -> List[Tuple[int, int, Vec, Vec]]:
    """All distinct shared (bisector) edges as ``(i, j, a, b)`` with i < j.

    The endpoints are taken from cell ``i``'s polygon; cell ``j``'s copy of
    the edge spans the same segment (up to numerical tolerance), which the
    test suite asserts.
    """
    by_site = cells_by_site(cells)
    out: List[Tuple[int, int, Vec, Vec]] = []
    for cell in cells:
        for a, b, lab in cell.polygon.edges():
            if lab == BORDER_LABEL or lab <= cell.site_index:
                continue
            if lab in by_site:
                out.append((cell.site_index, lab, a, b))
    return out


def _check_distinct(sites: Sequence[Vec], tol: float = 1e-9) -> None:
    """Raise on coincident sites (hash-grid pass, O(m) expected)."""
    seen: Dict[Tuple[int, int], List[Vec]] = {}
    inv = 1.0 / max(tol, 1e-12)
    for s in sites:
        key = (int(s[0] * inv), int(s[1] * inv))
        for kx in (key[0] - 1, key[0], key[0] + 1):
            for ky in (key[1] - 1, key[1], key[1] + 1):
                for other in seen.get((kx, ky), ()):
                    if dist_sq(s, other) < tol * tol:
                        raise ValueError(f"coincident Voronoi sites near {s}")
        seen.setdefault(key, []).append(s)
