"""Infinite lines and their intersections.

A :class:`Line` is stored in implicit normal form ``n . x = c`` with ``n`` a
unit vector.  This form makes signed distances, half-plane tests and
bisector construction one dot product each, and is numerically stable for
the near-parallel cut lines that the regulation rules must intersect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geometry.primitives import EPS, Vec, dot, normalize, perpendicular, sub


@dataclass(frozen=True)
class Line:
    """The line ``{x : normal . x = offset}`` with ``|normal| == 1``."""

    normal: Vec
    offset: float

    def signed_distance(self, p: Vec) -> float:
        """Signed distance of ``p`` from the line (positive on the normal side)."""
        return dot(self.normal, p) - self.offset

    def direction(self) -> Vec:
        """A unit vector along the line (normal rotated by +90 degrees)."""
        return perpendicular(self.normal)

    def point_on(self) -> Vec:
        """An arbitrary point on the line (the foot of the origin)."""
        return (self.normal[0] * self.offset, self.normal[1] * self.offset)


def line_through(a: Vec, b: Vec) -> Line:
    """The line through two distinct points ``a`` and ``b``.

    Raises:
        ValueError: if the points coincide (no unique line).
    """
    d = sub(b, a)
    n = normalize(perpendicular(d))
    return Line(n, dot(n, a))


def line_point_normal(p: Vec, normal: Vec) -> Line:
    """The line through ``p`` whose normal direction is ``normal``.

    The Iso-Map type-1 boundary of an isoline report ``<v, p, d>`` is exactly
    ``line_point_normal(p, d)``: the line through the isoposition
    perpendicular to the gradient direction (the gradient *is* the normal of
    the local isoline segment).
    """
    n = normalize(normal)
    return Line(n, dot(n, p))


def intersect_lines(l1: Line, l2: Line) -> Optional[Vec]:
    """Intersection point of two lines, or ``None`` when (near-)parallel.

    Near-parallel is judged by the cross product of the unit normals, so
    the threshold is an angle (~EPS radians), not a scale-dependent value.
    """
    a1, b1 = l1.normal
    a2, b2 = l2.normal
    det = a1 * b2 - a2 * b1
    if abs(det) < EPS:
        return None
    x = (l1.offset * b2 - l2.offset * b1) / det
    y = (a1 * l2.offset - a2 * l1.offset) / det
    return (x, y)


def project_point(line: Line, p: Vec) -> Vec:
    """Orthogonal projection of ``p`` onto ``line``."""
    d = line.signed_distance(p)
    return (p[0] - d * line.normal[0], p[1] - d * line.normal[1])


def point_line_signed_distance(p: Vec, a: Vec, b: Vec) -> float:
    """Signed distance from ``p`` to the line through ``a`` and ``b``.

    Positive when ``p`` is to the left of the directed line ``a -> b``.
    """
    return line_through(a, b).signed_distance(p) * _left_sign(a, b)


def _left_sign(a: Vec, b: Vec) -> float:
    """Sign fix so that "left of a->b" is positive for point_line_signed_distance.

    ``line_through`` orients its normal as ``perp(b - a)`` which already
    points to the left of ``a -> b``; the helper exists to make that
    orientation contract explicit (and testable) rather than implicit.
    """
    return 1.0


def segment_intersection(
    a1: Vec, a2: Vec, b1: Vec, b2: Vec
) -> Optional[Tuple[float, Vec]]:
    """Intersection of segments ``a1 a2`` and ``b1 b2``.

    Returns ``(t, point)`` where ``t`` in [0, 1] is the parameter along the
    first segment, or ``None`` when the segments do not properly intersect.
    Collinear overlap returns ``None`` (callers in the loop-stitching code
    never feed collinear overlapping segments).
    """
    r = sub(a2, a1)
    s = sub(b2, b1)
    denom = r[0] * s[1] - r[1] * s[0]
    if abs(denom) < EPS:
        return None
    qp = sub(b1, a1)
    t = (qp[0] * s[1] - qp[1] * s[0]) / denom
    u = (qp[0] * r[1] - qp[1] * r[0]) / denom
    if -EPS <= t <= 1 + EPS and -EPS <= u <= 1 + EPS:
        return (max(0.0, min(1.0, t)), (a1[0] + t * r[0], a1[1] + t * r[1]))
    return None


def param_on_line(line: Line, p: Vec) -> float:
    """1-D coordinate of ``p`` along ``line``'s direction vector.

    Two points on the same line can be compared/ordered by this parameter;
    it underpins the interval arithmetic used when merging inner half-cells
    along shared Voronoi edges.
    """
    return dot(line.direction(), p)


def angle_of(v: Vec) -> float:
    """Angle of vector ``v`` in radians in ``(-pi, pi]``."""
    return math.atan2(v[1], v[0])
