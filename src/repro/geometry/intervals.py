"""1-D closed-interval arithmetic.

When the sink merges the inner half-cells of adjacent Voronoi cells, the
portion of a shared cell edge covered by *both* inner parts is interior to
the merged region and must be removed from the boundary.  Each shared edge
lies on a single line, so the computation reduces to subtracting one set of
1-D intervals from another along that line's parameterisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class Interval:
    """The closed interval ``[lo, hi]`` (normalised so ``lo <= hi``)."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            lo, hi = self.hi, self.lo
            object.__setattr__(self, "lo", lo)
            object.__setattr__(self, "hi", hi)

    @property
    def length(self) -> float:
        return self.hi - self.lo

    def is_degenerate(self, tol: float = 1e-9) -> bool:
        return self.length <= tol

    def intersects(self, other: "Interval", tol: float = 0.0) -> bool:
        return self.lo <= other.hi + tol and other.lo <= self.hi + tol

    def intersection(self, other: "Interval") -> "Interval | None":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if hi < lo:
            return None
        return Interval(lo, hi)


def merge_intervals(intervals: Iterable[Interval], tol: float = 1e-9) -> List[Interval]:
    """Union of intervals as a sorted list of disjoint intervals.

    Intervals closer than ``tol`` are coalesced, which keeps the boundary
    stitching robust against floating-point slivers at shared endpoints.
    """
    items = sorted(intervals, key=lambda iv: iv.lo)
    out: List[Interval] = []
    for iv in items:
        if out and iv.lo <= out[-1].hi + tol:
            if iv.hi > out[-1].hi:
                out[-1] = Interval(out[-1].lo, iv.hi)
        else:
            out.append(iv)
    return out


def subtract_intervals(
    base: Interval, holes: Sequence[Interval], tol: float = 1e-9
) -> List[Interval]:
    """``base`` minus the union of ``holes``, as disjoint intervals.

    Degenerate leftovers (length <= tol) are dropped: they correspond to
    zero-length boundary slivers that would otherwise pollute loop
    stitching.
    """
    remaining = [base]
    for hole in merge_intervals(holes, tol):
        next_remaining: List[Interval] = []
        for seg in remaining:
            if hole.hi <= seg.lo + tol or hole.lo >= seg.hi - tol:
                # No significant overlap: the segment survives untouched.
                next_remaining.append(seg)
                continue
            left = Interval(seg.lo, max(seg.lo, hole.lo))
            right = Interval(min(seg.hi, hole.hi), seg.hi)
            if not left.is_degenerate(tol):
                next_remaining.append(left)
            if not right.is_degenerate(tol):
                next_remaining.append(right)
        remaining = next_remaining
    return [seg for seg in remaining if not seg.is_degenerate(tol)]


def total_length(intervals: Iterable[Interval]) -> float:
    """Total length of a union of intervals."""
    return sum(iv.length for iv in merge_intervals(intervals))
