"""Tolerance-bounded isoline simplification (minimum-link style).

Reconstructed isolines are *dense* polylines -- one vertex per boundary
segment the merge step produced -- so anything that ships them (the
serving layer's wire payloads, figure exports, the Hausdorff resampler)
pays an order of magnitude more bytes than the geometry requires.  This
module implements the ROADMAP's "minimum-link isoline simplification"
stage, grounded in *Scalable Isocontour Visualization in Road Networks
via Minimum-Link Paths* (arXiv:1602.01777): a Douglas-Peucker-style
link minimiser with an **exact per-segment tolerance guarantee** --

    every dropped vertex lies within ``tolerance`` of the retained
    segment that spans it (point-to-*segment* distance, not distance to
    the infinite chord line),

which bounds the symmetric Hausdorff distance between the original and
the simplified curve by ``tolerance`` (each original segment has both
endpoints within ``tolerance`` of one *convex* retained segment, so the
whole original curve stays inside the tolerance tube; retained vertices
are a subset of the original, so the reverse direction is immediate).

Kernel pairing (the PR-1/PR-3 convention): the scalar reference
:func:`simplify_polyline_reference` is retained next to the vectorized
:func:`simplify_polyline`, both evaluating the *same* floating-point
formula in the same order, so their outputs are **bit-identical** --
pinned by the differential tests in ``tests/geometry/test_simplify.py``
and re-verified by ``benchmarks/bench_simplify.py``.

Closed rings (:func:`simplify_ring`) are split at two anchor vertices
(the first vertex and the vertex farthest from it), each arc simplified
independently, and rejoined -- orientation and the starting vertex are
preserved, and the per-arc guarantee carries over to the ring.

Topology safety (:func:`simplify_rings`), motivated by the
contour-tree work in *Some theoretical results on discrete contour
trees* (arXiv:2206.12123): a simplification that introduces a
self-intersection or flips the nesting relation between two rings is
*rejected* -- the offending rings fall back to their originals -- so a
simplified level set is always a valid (possibly less smooth) contour
family, never a topologically different one.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.polygon import point_in_polygon
from repro.geometry.primitives import Vec

__all__ = [
    "simplify_polyline_reference",
    "simplify_polyline",
    "simplify_ring_reference",
    "simplify_ring",
    "simplify_rings",
    "simplify_isolines",
    "polyline_deviation",
    "ring_self_intersects",
    "chain_points",
]


# ----------------------------------------------------------------------
# Shared distance formula (the pairing contract)
# ----------------------------------------------------------------------
#
# Both kernels MUST evaluate exactly this expression, in this order, on
# IEEE-754 doubles: t = clamp(((p-a).(b-a)) / |b-a|^2), e = (p-a) - t*(b-a),
# d^2 = e.e.  NumPy float64 and Python floats share rounding for +,-,*,/,
# so elementwise evaluation of the same expression is bitwise equal.


def _seg_dist_sq(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """Squared distance from point ``p`` to segment ``a-b`` (scalar)."""
    dx = bx - ax
    dy = by - ay
    apx = px - ax
    apy = py - ay
    denom = dx * dx + dy * dy
    if denom > 0.0:
        t = (apx * dx + apy * dy) / denom
        if t < 0.0:
            t = 0.0
        elif t > 1.0:
            t = 1.0
    else:
        t = 0.0
    ex = apx - t * dx
    ey = apy - t * dy
    return ex * ex + ey * ey


def _span_dist_sq(pts: np.ndarray, i: int, j: int) -> np.ndarray:
    """Squared distances of vertices ``i+1 .. j-1`` to segment ``i-j``.

    The vectorized twin of :func:`_seg_dist_sq` over one span -- same
    expression, same operation order, elementwise.
    """
    ax, ay = pts[i, 0], pts[i, 1]
    dx = pts[j, 0] - ax
    dy = pts[j, 1] - ay
    apx = pts[i + 1 : j, 0] - ax
    apy = pts[i + 1 : j, 1] - ay
    denom = dx * dx + dy * dy
    if denom > 0.0:
        t = (apx * dx + apy * dy) / denom
        np.clip(t, 0.0, 1.0, out=t)
    else:
        t = np.zeros(j - i - 1)
    ex = apx - t * dx
    ey = apy - t * dy
    return ex * ex + ey * ey


# ----------------------------------------------------------------------
# Open polylines
# ----------------------------------------------------------------------


def simplify_polyline_reference(
    points: Sequence[Vec], tolerance: float
) -> List[Vec]:
    """Scalar Douglas-Peucker with the exact segment-tolerance guarantee.

    Retained as the reference half of the kernel pair (see module
    docstring).  Endpoints are always kept; with ``tolerance <= 0`` the
    input is returned unchanged (the tolerance-0 identity the serving
    differentials lean on).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    n = len(points)
    if tolerance == 0.0 or n <= 2:
        return [(p[0], p[1]) for p in points]
    tol_sq = tolerance * tolerance
    keep = [False] * n
    keep[0] = keep[n - 1] = True
    stack: List[Tuple[int, int]] = [(0, n - 1)]
    while stack:
        i, j = stack.pop()
        if j - i < 2:
            continue
        ax, ay = points[i][0], points[i][1]
        bx, by = points[j][0], points[j][1]
        worst = -1.0
        worst_k = -1
        for k in range(i + 1, j):
            d = _seg_dist_sq(points[k][0], points[k][1], ax, ay, bx, by)
            if d > worst:  # strict: first maximum wins, matching argmax
                worst = d
                worst_k = k
        if worst > tol_sq:
            keep[worst_k] = True
            stack.append((i, worst_k))
            stack.append((worst_k, j))
    return [(points[k][0], points[k][1]) for k in range(n) if keep[k]]


def simplify_polyline(points: Sequence[Vec], tolerance: float) -> List[Vec]:
    """Vectorized Douglas-Peucker, bit-identical to the scalar reference.

    Same span recursion, same keep decisions: distances for a whole span
    are evaluated in one NumPy pass with the shared formula, and
    ``argmax`` picks the first maximum exactly as the scalar loop's
    strict comparison does.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    n = len(points)
    if tolerance == 0.0 or n <= 2:
        return [(p[0], p[1]) for p in points]
    pts = np.asarray(points, dtype=float)
    tol_sq = tolerance * tolerance
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[n - 1] = True
    stack: List[Tuple[int, int]] = [(0, n - 1)]
    while stack:
        i, j = stack.pop()
        if j - i < 2:
            continue
        d = _span_dist_sq(pts, i, j)
        k = int(np.argmax(d))  # first maximum, like the scalar strict >
        if float(d[k]) > tol_sq:
            worst_k = i + 1 + k
            keep[worst_k] = True
            stack.append((i, worst_k))
            stack.append((worst_k, j))
    return [(points[k][0], points[k][1]) for k in np.nonzero(keep)[0]]


def polyline_deviation(
    original: Sequence[Vec], simplified: Sequence[Vec]
) -> float:
    """Max distance from ``original``'s vertices to the simplified curve.

    The quantity the simplifier guarantees to keep ``<= tolerance``
    (and, by the convexity argument in the module docstring, a bound on
    the symmetric Hausdorff distance between the two curves).  Used by
    the property tests and the fidelity sweeps.
    """
    if len(simplified) == 0:
        raise ValueError("simplified polyline is empty")
    if len(simplified) == 1:
        sx, sy = simplified[0]
        return float(
            max(
                np.hypot(p[0] - sx, p[1] - sy)
                for p in original
            )
        )
    pts = np.asarray(original, dtype=float)
    seg = np.asarray(simplified, dtype=float)
    a = seg[:-1]
    b = seg[1:]
    dx = b[:, 0] - a[:, 0]
    dy = b[:, 1] - a[:, 1]
    denom = dx * dx + dy * dy
    denom_safe = np.where(denom > 0.0, denom, 1.0)
    worst = 0.0
    for px, py in pts:
        apx = px - a[:, 0]
        apy = py - a[:, 1]
        t = np.clip((apx * dx + apy * dy) / denom_safe, 0.0, 1.0)
        t = np.where(denom > 0.0, t, 0.0)
        ex = apx - t * dx
        ey = apy - t * dy
        best = float(np.min(ex * ex + ey * ey))
        if best > worst:
            worst = best
    return float(np.sqrt(worst))


# ----------------------------------------------------------------------
# Closed rings
# ----------------------------------------------------------------------


def _ring_anchors(points: Sequence[Vec]) -> int:
    """The second anchor: index of the vertex farthest from vertex 0.

    First maximum wins (strict comparison), so both ring kernels split
    at the identical vertex.
    """
    x0, y0 = points[0][0], points[0][1]
    worst = -1.0
    worst_k = 0
    for k in range(1, len(points)):
        dx = points[k][0] - x0
        dy = points[k][1] - y0
        d = dx * dx + dy * dy
        if d > worst:
            worst = d
            worst_k = k
    return worst_k


def _simplify_ring_with(
    points: Sequence[Vec],
    tolerance: float,
    open_simplify: Callable[[Sequence[Vec], float], List[Vec]],
) -> List[Vec]:
    """Shared ring logic: split at anchors, simplify both arcs, rejoin."""
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    pts = [(p[0], p[1]) for p in points]
    n = len(pts)
    if tolerance == 0.0 or n <= 4:
        return pts
    split = _ring_anchors(pts)
    if split == 0:  # all vertices coincide with vertex 0
        return pts
    arc1 = open_simplify(pts[: split + 1], tolerance)
    arc2 = open_simplify(pts[split:] + pts[:1], tolerance)
    out = arc1[:-1] + arc2[:-1]
    if len(out) < 3:
        # Degenerate collapse (a ring needs at least a triangle): the
        # topology-safe answer is the original ring.
        return pts
    return out


def simplify_ring_reference(points: Sequence[Vec], tolerance: float) -> List[Vec]:
    """Scalar ring simplification (ring = vertex list, closed implicitly).

    The starting vertex, vertex order and orientation (signed area sign)
    are preserved; the per-arc tolerance guarantee carries over to the
    ring because every dropped vertex belongs to exactly one arc.
    """
    return _simplify_ring_with(points, tolerance, simplify_polyline_reference)


def simplify_ring(points: Sequence[Vec], tolerance: float) -> List[Vec]:
    """Vectorized ring simplification, bit-identical to the reference."""
    return _simplify_ring_with(points, tolerance, simplify_polyline)


# ----------------------------------------------------------------------
# Topology guard
# ----------------------------------------------------------------------


def _orient(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> float:
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def _segments_cross(p1: Vec, p2: Vec, q1: Vec, q2: Vec) -> bool:
    """True when the open segments properly intersect (shared endpoints
    and pure collinear touching do not count)."""
    d1 = _orient(q1[0], q1[1], q2[0], q2[1], p1[0], p1[1])
    d2 = _orient(q1[0], q1[1], q2[0], q2[1], p2[0], p2[1])
    d3 = _orient(p1[0], p1[1], p2[0], p2[1], q1[0], q1[1])
    d4 = _orient(p1[0], p1[1], p2[0], p2[1], q2[0], q2[1])
    return ((d1 > 0) != (d2 > 0)) and (d1 != 0) and (d2 != 0) and (
        (d3 > 0) != (d4 > 0)
    ) and (d3 != 0) and (d4 != 0)


def ring_self_intersects(points: Sequence[Vec]) -> bool:
    """True when any two non-adjacent edges of the ring properly cross.

    O(k^2) over the (simplified, therefore small) ring.
    """
    n = len(points)
    if n < 4:
        return False
    edges = [(points[i], points[(i + 1) % n]) for i in range(n)]
    for i in range(n):
        for j in range(i + 2, n):
            if i == 0 and j == n - 1:
                continue  # adjacent around the wrap
            if _segments_cross(edges[i][0], edges[i][1], edges[j][0], edges[j][1]):
                return True
    return False


def _nesting_matrix(rings: Sequence[Sequence[Vec]]) -> List[List[bool]]:
    """``m[i][j]`` = ring i's first vertex lies inside ring j."""
    n = len(rings)
    m = [[False] * n for _ in range(n)]
    for i in range(n):
        p = rings[i][0]
        for j in range(n):
            if i != j and len(rings[j]) >= 3:
                m[i][j] = point_in_polygon(rings[j], p)
    return m


def simplify_rings(
    rings: Sequence[Sequence[Vec]],
    tolerance: float,
    reference: bool = False,
) -> List[List[Vec]]:
    """Simplify a family of closed rings, topology-safely.

    Each ring is simplified independently (:func:`simplify_ring`); a
    ring whose simplification self-intersects, or whose simplification
    flips any pairwise nesting relation (tested on the rings' retained
    first vertices, which every simplification keeps), is *reverted* to
    its original geometry.  Reversion loops until the nesting matrix is
    stable, so the returned family always has the input's topology.

    Args:
        rings: vertex lists, closed implicitly (no repeated last point).
        tolerance: the Hausdorff budget per ring.
        reference: run the scalar kernel pair (for differential tests).
    """
    ring_fn = simplify_ring_reference if reference else simplify_ring
    originals = [[(p[0], p[1]) for p in r] for r in rings]
    simplified = [ring_fn(r, tolerance) for r in originals]
    for i, s in enumerate(simplified):
        if ring_self_intersects(s):
            simplified[i] = originals[i]
    if len(rings) > 1:
        want = _nesting_matrix(originals)
        for _ in range(len(rings)):
            have = _nesting_matrix(simplified)
            bad = sorted(
                {
                    k
                    for i in range(len(rings))
                    for j in range(len(rings))
                    if want[i][j] != have[i][j]
                    for k in (i, j)
                }
            )
            if not bad:
                break
            changed = False
            for k in bad:
                if simplified[k] is not originals[k]:
                    simplified[k] = originals[k]
                    changed = True
            if not changed:  # pragma: no cover - input itself inconsistent
                break
    return simplified


def simplify_isolines(
    polylines: Sequence[Sequence[Vec]],
    tolerance: float,
    close_tol: float = 1e-9,
) -> List[List[Vec]]:
    """Simplify a level's isoline family (mixed open runs and rings).

    Reconstruction emits open runs (loops are cut where they touch the
    field border) and, when a loop closes inside the field, polylines
    whose first and last vertices coincide.  A polyline whose endpoints
    coincide within ``close_tol`` is treated as an explicitly closed
    ring -- it goes through :func:`simplify_rings` with the other rings
    of its level (topology guard included) and comes back with the
    closing vertex restored.  Open runs get plain endpoint-anchored DP.
    """
    ring_idx: List[int] = []
    rings: List[Sequence[Vec]] = []
    out: List[Optional[List[Vec]]] = [None] * len(polylines)
    for i, line in enumerate(polylines):
        if len(line) >= 4 and (
            abs(line[0][0] - line[-1][0]) <= close_tol
            and abs(line[0][1] - line[-1][1]) <= close_tol
        ):
            ring_idx.append(i)
            rings.append(line[:-1])
        else:
            out[i] = simplify_polyline(line, tolerance)
    if rings:
        for i, ring in zip(ring_idx, simplify_rings(rings, tolerance)):
            out[i] = ring + [ring[0]]
    return [line for line in out if line is not None]


# ----------------------------------------------------------------------
# Point chaining (for unordered isoline samples, e.g. wire records)
# ----------------------------------------------------------------------


def chain_points(
    points: Sequence[Vec],
    max_gap: Optional[float] = None,
    gap_factor: float = 3.0,
) -> List[Tuple[List[int], bool]]:
    """Order an unordered isoline point sample into polyline chains.

    Greedy deterministic nearest-neighbour chaining: starting from the
    lowest-index unvisited point, the chain is extended from its tail
    (then from its head) to the nearest unvisited point within
    ``max_gap``; ties break on the lower index.  Returns
    ``(indices, is_ring)`` per chain, where ``is_ring`` is True when the
    chain's endpoints are themselves within ``max_gap``.

    ``max_gap`` defaults to ``gap_factor`` (3x) the median
    nearest-neighbour distance -- a deterministic, data-derived cutoff
    that connects points along one isoline branch without jumping across
    to another.  Callers chaining for *record selection* rather than
    display can pass a larger ``gap_factor``: longer chains expose more
    interior points to simplification (chain endpoints are always kept),
    and a mis-bridge cannot break the tolerance guarantee because every
    dropped point is bounded against the retained span of its own chain.
    """
    n = len(points)
    if n == 0:
        return []
    if n == 1:
        return [([0], False)]
    pts = np.asarray(points, dtype=float)
    # Dense pairwise distances; isoline samples per level are small
    # (hundreds), so the O(n^2) matrix is cheap and deterministic.
    d2 = (pts[:, 0:1] - pts[None, :, 0]) ** 2 + (pts[:, 1:2] - pts[None, :, 1]) ** 2
    np.fill_diagonal(d2, np.inf)
    if max_gap is None:
        nn = np.sqrt(d2.min(axis=1))
        max_gap = gap_factor * float(np.median(nn))
    gap_sq = max_gap * max_gap

    visited = np.zeros(n, dtype=bool)
    chains: List[Tuple[List[int], bool]] = []
    for start in range(n):
        if visited[start]:
            continue
        visited[start] = True
        chain = [start]
        for grow_head in (False, True):
            while True:
                tip = chain[0] if grow_head else chain[-1]
                row = np.where(visited, np.inf, d2[tip])
                k = int(np.argmin(row))  # first minimum: lowest index wins ties
                if not np.isfinite(row[k]) or row[k] > gap_sq:
                    break
                visited[k] = True
                if grow_head:
                    chain.insert(0, k)
                else:
                    chain.append(k)
        is_ring = (
            len(chain) >= 3
            and float(d2[chain[0], chain[-1]]) <= gap_sq
        )
        chains.append((chain, is_ring))
    return chains
