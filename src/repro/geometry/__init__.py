"""Computational-geometry substrate for the Iso-Map reproduction.

Everything the sink-side contour reconstruction needs is implemented here
from scratch on plain Python floats:

- :mod:`repro.geometry.primitives` -- points, vectors, bounding boxes.
- :mod:`repro.geometry.lines` -- infinite lines, intersections, projections.
- :mod:`repro.geometry.polygon` -- convex polygons with per-edge provenance
  labels and half-plane clipping.
- :mod:`repro.geometry.voronoi` -- bounded Voronoi diagrams with neighbour
  adjacency, built by half-plane intersection.
- :mod:`repro.geometry.intervals` -- 1-D interval arithmetic used to subtract
  shared cell-border portions when merging inner half-cells.
- :mod:`repro.geometry.polyline` -- polyline utilities and loop stitching.

The module deliberately avoids scipy/shapely so that the reconstruction
pipeline is self-contained and its numerical tolerances are under our
control.
"""

from repro.geometry.primitives import (
    EPS,
    BoundingBox,
    Vec,
    add,
    angle_between,
    cross,
    dist,
    dist_sq,
    dot,
    norm,
    normalize,
    perpendicular,
    scale,
    sub,
    unit_from_angle,
)
from repro.geometry.lines import (
    Line,
    line_through,
    line_point_normal,
    intersect_lines,
    project_point,
    point_line_signed_distance,
)
from repro.geometry.polygon import (
    BORDER_LABEL,
    ConvexPolygon,
    HalfPlane,
    polygon_area,
    point_in_convex,
    point_in_polygon,
)
from repro.geometry.voronoi import VoronoiCell, bounded_voronoi
from repro.geometry.intervals import Interval, merge_intervals, subtract_intervals
from repro.geometry.polyline import (
    polyline_length,
    resample_polyline,
    stitch_segments_into_loops,
)
from repro.geometry.simplify import (
    chain_points,
    polyline_deviation,
    ring_self_intersects,
    simplify_isolines,
    simplify_polyline,
    simplify_polyline_reference,
    simplify_ring,
    simplify_ring_reference,
    simplify_rings,
)

__all__ = [
    "EPS",
    "BoundingBox",
    "Vec",
    "add",
    "angle_between",
    "cross",
    "dist",
    "dist_sq",
    "dot",
    "norm",
    "normalize",
    "perpendicular",
    "scale",
    "sub",
    "unit_from_angle",
    "Line",
    "line_through",
    "line_point_normal",
    "intersect_lines",
    "project_point",
    "point_line_signed_distance",
    "BORDER_LABEL",
    "ConvexPolygon",
    "HalfPlane",
    "polygon_area",
    "point_in_convex",
    "point_in_polygon",
    "VoronoiCell",
    "bounded_voronoi",
    "Interval",
    "merge_intervals",
    "subtract_intervals",
    "polyline_length",
    "resample_polyline",
    "stitch_segments_into_loops",
    "chain_points",
    "polyline_deviation",
    "ring_self_intersects",
    "simplify_isolines",
    "simplify_polyline",
    "simplify_polyline_reference",
    "simplify_ring",
    "simplify_ring_reference",
    "simplify_rings",
]
