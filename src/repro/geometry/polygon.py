"""Convex polygons with per-edge provenance labels, and half-plane clipping.

The Iso-Map sink builds each Voronoi cell by clipping the field bounding box
against one bisector half-plane per competing site.  To later tell which cell
edge came from which neighbour (needed for type-2 boundary extraction and for
the Rule-1/Rule-2 regulation), every edge of a :class:`ConvexPolygon` carries
an integer *label*:

- ``label >= 0``   -- the edge lies on the bisector against site ``label``
  (or, after the inner/outer cut, on the cut line when the cut uses its own
  dedicated label);
- ``BORDER_LABEL`` -- the edge lies on the field boundary box.

Clipping is Sutherland–Hodgman restricted to a single half-plane, which for
convex input yields convex output and introduces at most one new edge (the
clip chord), labelled by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry.lines import Line
from repro.geometry.primitives import EPS, Vec, cross, dot, sub

#: Edge label for edges lying on the field bounding box.
BORDER_LABEL = -1


@dataclass(frozen=True)
class HalfPlane:
    """The closed half-plane ``{x : normal . x <= offset}``.

    The *inside* is the side the normal points away from.  A Voronoi
    bisector half-plane keeping site ``a`` against site ``b`` is built with
    :meth:`bisector`.
    """

    normal: Vec
    offset: float

    def contains(self, p: Vec, tol: float = EPS) -> bool:
        """Closed-containment test with tolerance."""
        return dot(self.normal, p) <= self.offset + tol

    def signed_violation(self, p: Vec) -> float:
        """How far ``p`` is outside the half-plane (negative = inside)."""
        return dot(self.normal, p) - self.offset

    def boundary_line(self) -> Line:
        """The boundary of the half-plane as a :class:`Line`."""
        return Line(self.normal, self.offset)

    @staticmethod
    def bisector(keep: Vec, other: Vec) -> "HalfPlane":
        """Half-plane of points at least as close to ``keep`` as to ``other``.

        Raises:
            ValueError: if the two sites coincide (no bisector exists).
        """
        n = sub(other, keep)
        n2 = dot(n, n)
        if n2 < EPS * EPS:
            raise ValueError("cannot build a bisector between coincident sites")
        mid = ((keep[0] + other[0]) / 2.0, (keep[1] + other[1]) / 2.0)
        return HalfPlane(n, dot(n, mid))

    @staticmethod
    def from_line(line: Line, inside_point: Vec) -> "HalfPlane":
        """The half-plane bounded by ``line`` that contains ``inside_point``.

        Used to build the Iso-Map inner half-plane: the cut line through an
        isoposition, keeping the side *opposite* the gradient direction
        (the uphill / inside-the-contour side).
        """
        if line.signed_distance(inside_point) <= 0:
            return HalfPlane(line.normal, line.offset)
        return HalfPlane((-line.normal[0], -line.normal[1]), -line.offset)


class ConvexPolygon:
    """A convex polygon with counter-clockwise vertices and labelled edges.

    ``labels[i]`` describes the edge from ``vertices[i]`` to
    ``vertices[(i + 1) % len]``.  The polygon may be empty (fully clipped
    away); an empty polygon has no vertices and zero area.
    """

    __slots__ = ("vertices", "labels")

    def __init__(self, vertices: Sequence[Vec], labels: Optional[Sequence[int]] = None):
        verts = _dedupe_ring(list(vertices))
        if len(verts) < 3:
            # Degenerate input collapses to the empty polygon.
            self.vertices: List[Vec] = []
            self.labels: List[int] = []
            return
        if labels is None:
            labels = [BORDER_LABEL] * len(vertices)
        if len(labels) != len(vertices):
            raise ValueError("labels must parallel vertices (one per outgoing edge)")
        # Re-run dedupe with labels attached so labels stay aligned.
        verts_l = _dedupe_ring_labeled(list(vertices), list(labels))
        if verts_l is None:
            self.vertices = []
            self.labels = []
            return
        self.vertices, self.labels = verts_l

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_box(xmin: float, ymin: float, xmax: float, ymax: float) -> "ConvexPolygon":
        """The rectangle as a polygon with all edges labelled BORDER."""
        return ConvexPolygon(
            [(xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)],
            [BORDER_LABEL] * 4,
        )

    @staticmethod
    def empty() -> "ConvexPolygon":
        return ConvexPolygon([])

    # ------------------------------------------------------------------
    # Predicates and measures
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.vertices

    def area(self) -> float:
        """Unsigned area (shoelace; vertices are CCW so the sum is >= 0)."""
        return polygon_area(self.vertices)

    def centroid(self) -> Vec:
        """Area centroid.

        Raises:
            ValueError: on the empty polygon.
        """
        if self.is_empty:
            raise ValueError("empty polygon has no centroid")
        a2 = 0.0
        cx = 0.0
        cy = 0.0
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            x0, y0 = verts[i]
            x1, y1 = verts[(i + 1) % n]
            w = x0 * y1 - x1 * y0
            a2 += w
            cx += (x0 + x1) * w
            cy += (y0 + y1) * w
        if abs(a2) < EPS:
            # Near-degenerate sliver: fall back to the vertex mean.
            return (
                sum(v[0] for v in verts) / n,
                sum(v[1] for v in verts) / n,
            )
        return (cx / (3.0 * a2), cy / (3.0 * a2))

    def contains(self, p: Vec, tol: float = EPS) -> bool:
        """Closed point-in-polygon test (convex: all edges on the left)."""
        return point_in_convex(self.vertices, p, tol)

    def edges(self) -> List[Tuple[Vec, Vec, int]]:
        """All edges as ``(start, end, label)`` triples."""
        verts = self.vertices
        n = len(verts)
        return [(verts[i], verts[(i + 1) % n], self.labels[i]) for i in range(n)]

    def edges_with_label(self, label: int) -> List[Tuple[Vec, Vec]]:
        """Edges whose label equals ``label``."""
        return [(a, b) for a, b, l in self.edges() if l == label]

    def max_vertex_distance(self, p: Vec) -> float:
        """Largest distance from ``p`` to any vertex (cell circumradius).

        Drives the early-exit in the Voronoi construction: a site farther
        than twice this radius cannot cut the current cell.
        """
        if self.is_empty:
            return 0.0
        return max(
            ((v[0] - p[0]) ** 2 + (v[1] - p[1]) ** 2) ** 0.5 for v in self.vertices
        )

    def with_labels(self, labels: Sequence[int]) -> "ConvexPolygon":
        """Copy with the same vertices but new edge labels.

        Bypasses the constructor's ring dedupe (the vertices are already
        a normalised ring), so the geometry is shared verbatim -- the
        incremental reconstruction uses this to renumber retained cells
        after a site-index remap without perturbing a single bit.
        """
        if len(labels) != len(self.labels):
            raise ValueError("labels must parallel the existing edges")
        result = ConvexPolygon.__new__(ConvexPolygon)
        result.vertices = list(self.vertices)
        result.labels = list(labels)
        return result

    # ------------------------------------------------------------------
    # Clipping
    # ------------------------------------------------------------------

    def clip(self, hp: HalfPlane, new_label: int) -> "ConvexPolygon":
        """Intersection of this polygon with ``hp``.

        Any newly created edge (the clip chord) is labelled ``new_label``.
        Edges that survive keep their labels; edges cut in half keep theirs
        on the surviving portion.  Returns the empty polygon when nothing
        survives.
        """
        if self.is_empty:
            return self
        verts = self.vertices
        labels = self.labels
        n = len(verts)
        dists = [hp.signed_violation(v) for v in verts]

        if all(d <= EPS for d in dists):
            return self  # fully inside, untouched
        if all(d >= -EPS for d in dists):
            return ConvexPolygon.empty()  # fully outside

        out_v: List[Vec] = []
        out_l: List[int] = []
        for i in range(n):
            a, b = verts[i], verts[(i + 1) % n]
            da, db = dists[i], dists[(i + 1) % n]
            lab = labels[i]
            a_in = da <= EPS
            b_in = db <= EPS
            if a_in:
                out_v.append(a)
                if b_in:
                    out_l.append(lab)
                else:
                    out_l.append(lab)
                    out_v.append(_lerp_crossing(a, b, da, db))
                    out_l.append(new_label)
            elif b_in:
                out_v.append(_lerp_crossing(a, b, da, db))
                out_l.append(lab)
        result = ConvexPolygon.__new__(ConvexPolygon)
        deduped = _dedupe_ring_labeled(out_v, out_l)
        if deduped is None:
            result.vertices = []
            result.labels = []
        else:
            result.vertices, result.labels = deduped
        return result

    def split(self, hp: HalfPlane, new_label: int) -> Tuple["ConvexPolygon", "ConvexPolygon"]:
        """Split into (inside-of-hp, outside-of-hp) parts.

        The Iso-Map inner/outer partition of a Voronoi cell by the type-1
        cut line is exactly this operation: both halves carry the cut chord
        labelled ``new_label``.
        """
        inside = self.clip(hp, new_label)
        flipped = HalfPlane((-hp.normal[0], -hp.normal[1]), -hp.offset)
        outside = self.clip(flipped, new_label)
        return inside, outside

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ConvexPolygon({len(self.vertices)} vertices, area={self.area():.4g})"


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------


def polygon_area(vertices: Sequence[Vec]) -> float:
    """Unsigned shoelace area of a (not necessarily convex) simple polygon."""
    n = len(vertices)
    if n < 3:
        return 0.0
    a2 = 0.0
    for i in range(n):
        x0, y0 = vertices[i]
        x1, y1 = vertices[(i + 1) % n]
        a2 += x0 * y1 - x1 * y0
    return abs(a2) / 2.0


def point_in_convex(vertices: Sequence[Vec], p: Vec, tol: float = EPS) -> bool:
    """Closed containment in a CCW convex polygon.

    ``p`` is inside iff it lies on the left of (or on) every directed edge.
    The tolerance is an absolute cross-product bound, adequate for the
    O(10)-unit coordinates of the simulation field.
    """
    n = len(vertices)
    if n < 3:
        return False
    for i in range(n):
        a = vertices[i]
        b = vertices[(i + 1) % n]
        if cross(sub(b, a), sub(p, a)) < -tol * max(1.0, abs(p[0]) + abs(p[1])):
            return False
    return True


def point_in_polygon(vertices: Sequence[Vec], p: Vec) -> bool:
    """Even-odd (ray casting) containment test for simple polygons.

    Used for the regulated, possibly non-convex region loops.  Points
    exactly on an edge may land on either side; metric code samples interior
    raster points so this does not matter there.
    """
    n = len(vertices)
    if n < 3:
        return False
    x, y = p
    inside = False
    j = n - 1
    for i in range(n):
        xi, yi = vertices[i]
        xj, yj = vertices[j]
        if (yi > y) != (yj > y):
            x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
            if x < x_cross:
                inside = not inside
        j = i
    return inside


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _lerp_crossing(a: Vec, b: Vec, da: float, db: float) -> Vec:
    """Point on segment ``a-b`` where the signed violation crosses zero."""
    t = da / (da - db)
    t = max(0.0, min(1.0, t))
    return (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]))


def _dedupe_ring(verts: List[Vec], tol: float = 1e-9) -> List[Vec]:
    """Remove consecutive (cyclically) duplicate vertices."""
    out: List[Vec] = []
    for v in verts:
        if not out or abs(v[0] - out[-1][0]) > tol or abs(v[1] - out[-1][1]) > tol:
            out.append(v)
    while len(out) >= 2 and abs(out[0][0] - out[-1][0]) <= tol and abs(out[0][1] - out[-1][1]) <= tol:
        out.pop()
    return out


def _dedupe_ring_labeled(
    verts: List[Vec], labels: List[int], tol: float = 1e-9
) -> Optional[Tuple[List[Vec], List[int]]]:
    """Dedupe a labelled ring, keeping labels aligned with surviving edges.

    When vertex ``i+1`` duplicates vertex ``i``, the zero-length edge
    between them (label ``labels[i]``... the *outgoing* edge of the dropped
    vertex) disappears; the surviving vertex keeps its own outgoing label
    only if its edge has positive length.  Concretely we keep the label of
    the *last* occurrence in each duplicate run, since that is the edge that
    actually leaves the merged vertex.
    """
    n = len(verts)
    if n == 0:
        return None
    out_v: List[Vec] = []
    out_l: List[int] = []
    for i in range(n):
        v = verts[i]
        lab = labels[i]
        if out_v and abs(v[0] - out_v[-1][0]) <= tol and abs(v[1] - out_v[-1][1]) <= tol:
            # v duplicates the previous vertex: drop it, but its outgoing
            # edge label supersedes the (zero-length) one recorded before.
            out_l[-1] = lab
            continue
        out_v.append(v)
        out_l.append(lab)
    # Close the ring: last vertex duplicating the first.
    while (
        len(out_v) >= 2
        and abs(out_v[0][0] - out_v[-1][0]) <= tol
        and abs(out_v[0][1] - out_v[-1][1]) <= tol
    ):
        # The last vertex merges into the first: its outgoing edge (to the
        # first vertex) is zero-length and disappears; the first vertex
        # keeps its own outgoing label, so both the vertex and its label
        # are simply dropped.
        out_v.pop()
        out_l.pop()
    if len(out_v) < 3:
        return None
    return out_v, out_l
