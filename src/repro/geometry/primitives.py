"""Basic 2-D vector math and bounding boxes.

Points and vectors are plain ``(x, y)`` tuples of floats.  Keeping them as
tuples (rather than a class) makes the geometry kernel allocation-light and
lets hypothesis generate them directly in property tests.  All functions are
pure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

#: Absolute tolerance used throughout the geometry kernel for "is this point
#: on that line / inside that half-plane" style predicates.  The simulation
#: field spans tens of units, so 1e-9 is ~1e-10 of the field size.
EPS = 1e-9

#: A 2-D point or vector.
Vec = Tuple[float, float]


def add(a: Vec, b: Vec) -> Vec:
    """Component-wise sum ``a + b``."""
    return (a[0] + b[0], a[1] + b[1])


def sub(a: Vec, b: Vec) -> Vec:
    """Component-wise difference ``a - b``."""
    return (a[0] - b[0], a[1] - b[1])


def scale(a: Vec, s: float) -> Vec:
    """Scalar multiple ``s * a``."""
    return (a[0] * s, a[1] * s)


def dot(a: Vec, b: Vec) -> float:
    """Dot product."""
    return a[0] * b[0] + a[1] * b[1]


def cross(a: Vec, b: Vec) -> float:
    """2-D cross product (z component of the 3-D cross product)."""
    return a[0] * b[1] - a[1] * b[0]


def norm(a: Vec) -> float:
    """Euclidean length."""
    return math.hypot(a[0], a[1])


def dist(a: Vec, b: Vec) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def dist_sq(a: Vec, b: Vec) -> float:
    """Squared euclidean distance (avoids the sqrt in hot loops)."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def normalize(a: Vec) -> Vec:
    """Unit vector in the direction of ``a``.

    Raises:
        ValueError: if ``a`` is (numerically) the zero vector.
    """
    n = norm(a)
    if n < EPS:
        raise ValueError("cannot normalize a zero-length vector")
    return (a[0] / n, a[1] / n)


def perpendicular(a: Vec) -> Vec:
    """The vector ``a`` rotated by +90 degrees (counter-clockwise)."""
    return (-a[1], a[0])


def unit_from_angle(theta: float) -> Vec:
    """Unit vector at angle ``theta`` radians from the +x axis."""
    return (math.cos(theta), math.sin(theta))


def angle_between(a: Vec, b: Vec) -> float:
    """Unsigned angle between two vectors, in radians, in ``[0, pi]``.

    Returns 0.0 when either vector is numerically zero (there is no
    meaningful angle; callers in the filtering pipeline treat that as
    "no angular separation").
    """
    na = norm(a)
    nb = norm(b)
    if na < EPS or nb < EPS:
        return 0.0
    c = dot(a, b) / (na * nb)
    c = max(-1.0, min(1.0, c))
    return math.acos(c)


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box ``[xmin, xmax] x [ymin, ymax]``.

    Used as the clipping window for bounded Voronoi cells and as the extent
    of the monitored sensor field.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmax < self.xmin or self.ymax < self.ymin:
            raise ValueError(
                f"degenerate bounding box: ({self.xmin}, {self.ymin}) .. "
                f"({self.xmax}, {self.ymax})"
            )

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Vec:
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    @property
    def diagonal(self) -> float:
        """Length of the box diagonal; a natural "infinite" scale."""
        return math.hypot(self.width, self.height)

    def contains(self, p: Vec, tol: float = EPS) -> bool:
        """True if ``p`` lies inside the box (closed, with tolerance)."""
        return (
            self.xmin - tol <= p[0] <= self.xmax + tol
            and self.ymin - tol <= p[1] <= self.ymax + tol
        )

    def corners(self) -> List[Vec]:
        """Corners in counter-clockwise order starting at (xmin, ymin)."""
        return [
            (self.xmin, self.ymin),
            (self.xmax, self.ymin),
            (self.xmax, self.ymax),
            (self.xmin, self.ymax),
        ]

    def clamp(self, p: Vec) -> Vec:
        """The closest point of the box to ``p``."""
        return (
            min(max(p[0], self.xmin), self.xmax),
            min(max(p[1], self.ymin), self.ymax),
        )

    def sample_grid(self, nx: int, ny: int) -> List[Vec]:
        """Cell-centre sample positions of an ``nx x ny`` raster of the box.

        Used by the raster accuracy metric: each returned point is the
        centre of one raster cell.
        """
        if nx <= 0 or ny <= 0:
            raise ValueError("raster dimensions must be positive")
        dx = self.width / nx
        dy = self.height / ny
        return [
            (self.xmin + (i + 0.5) * dx, self.ymin + (j + 0.5) * dy)
            for j in range(ny)
            for i in range(nx)
        ]

    @staticmethod
    def around(points: Iterable[Vec], margin: float = 0.0) -> "BoundingBox":
        """The tightest box containing ``points``, grown by ``margin``."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot bound an empty point set")
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return BoundingBox(
            min(xs) - margin, min(ys) - margin, max(xs) + margin, max(ys) + margin
        )
