"""Isoline-node reports (Section 3.3).

Each isoline node emits a 3-tuple ``<v, p, d>``: its isolevel, its
position, and the locally estimated gradient direction ``d = -grad f``
(the direction in which the attribute value most decreases).  On the wire
this is four 2-byte parameters: value, x, y and the gradient angle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.wire import ISOLINE_REPORT_BYTES
from repro.geometry import Vec, angle_between, dist


@dataclass(frozen=True)
class IsolineReport:
    """One isoline node's report.

    Attributes:
        isolevel: the isolevel ``v`` the node sits on.
        position: the node position ``p``.
        direction: unit gradient direction ``d`` (steepest *descent*).
        source: originating node id (simulation bookkeeping; not on the
            wire -- the position already identifies the source).
    """

    isolevel: float
    position: Vec
    direction: Vec
    source: int

    def __post_init__(self) -> None:
        n = math.hypot(self.direction[0], self.direction[1])
        if not 0.99 <= n <= 1.01:
            raise ValueError(
                f"report direction must be a unit vector, got |d| = {n:.4f}"
            )

    @property
    def wire_bytes(self) -> int:
        """Size of the report on the wire."""
        return ISOLINE_REPORT_BYTES

    def angular_separation(self, other: "IsolineReport") -> float:
        """``s_a``: the angle between the two gradient directions, radians."""
        return angle_between(self.direction, other.direction)

    def distance_separation(self, other: "IsolineReport") -> float:
        """``s_d``: the distance between the two report positions."""
        return dist(self.position, other.position)
