"""The Iso-Map protocol: the paper's primary contribution.

Pipeline (Section 3 of the paper):

1. :mod:`repro.core.query` -- the sink's contour query (data space,
   granularity, border epsilon).
2. :mod:`repro.core.detection` -- distributed isoline-node self-appointment
   (Definition 3.1) with exact traffic/computation accounting.
3. :mod:`repro.core.gradient` -- local least-squares plane regression and
   the gradient-direction estimate (Eqs. 1-3).
4. :mod:`repro.core.filtering` -- in-network report filtering by angular
   and distance separation (Section 3.5).
5. :mod:`repro.core.reconstruction` -- sink-side Voronoi reconstruction
   with type-1/type-2 boundaries and Rule-1/Rule-2 regulation
   (Section 3.4, Fig. 8).
6. :mod:`repro.core.contour_map` -- the resulting multi-level contour map.
7. :mod:`repro.core.protocol` -- :class:`IsoMapProtocol`, the end-to-end
   run against a :class:`repro.network.SensorNetwork`.
"""

from repro.core.query import ContourQuery
from repro.core.reports import IsolineReport
from repro.core.gradient import GradientEstimate, estimate_gradient
from repro.core.gradient_quadratic import estimate_gradient_quadratic
from repro.core.detection import detect_isoline_nodes
from repro.core.filtering import FilterConfig, InNetworkFilter
from repro.core.reconstruction import LevelRegion, build_level_region
from repro.core.contour_map import ContourMap, build_contour_map
from repro.core.protocol import IsoMapProtocol, IsoMapResult
from repro.core.continuous import ContinuousIsoMap, EpochResult
from repro.core.prediction import PredictionConfig, PredictorBank, Track
from repro.core.codec import ReportCodec, decode_query, encode_query

__all__ = [
    "ContourQuery",
    "IsolineReport",
    "GradientEstimate",
    "estimate_gradient",
    "estimate_gradient_quadratic",
    "detect_isoline_nodes",
    "FilterConfig",
    "InNetworkFilter",
    "LevelRegion",
    "build_level_region",
    "ContourMap",
    "build_contour_map",
    "IsoMapProtocol",
    "IsoMapResult",
    "ContinuousIsoMap",
    "EpochResult",
    "PredictionConfig",
    "PredictorBank",
    "Track",
    "ReportCodec",
    "encode_query",
    "decode_query",
]
