"""Quadratic local regression: an alternative gradient estimator.

Section 3.3 of the paper: "many regression models can be employed to
construct the approximated data value surface on the local data map,
among which linear regression is a simple and widely used one."  This
module implements the next model up -- the full quadratic surface

    v = c0 + c1 x + c2 y + c3 x^2 + c4 x y + c5 y^2

-- so the trade-off the paper gestures at can be measured: the quadratic
fit captures isoline curvature (helpful in strongly curved regions with
large neighbourhoods) at ~4x the arithmetic cost and a higher variance
under noise with small neighbourhoods.  The ablation bench
(``benchmarks/bench_ablations.py``) quantifies both effects.

The normal equations are solved with a small dense Gaussian elimination,
mirroring the hand-rolled 3x3 solver of the linear model so the op
accounting stays honest.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.gradient import GradientEstimate
from repro.geometry import Vec

#: Ops charged per neighbour sample: the 6-term design row, its outer
#: product accumulation and the right-hand-side products.
OPS_PER_SAMPLE = 48

#: Ops charged for the fixed-size 6x6 solve.
OPS_SOLVE = 200


def estimate_gradient_quadratic(
    center: Vec,
    center_value: float,
    neighbors: Sequence[Tuple[Vec, float]],
) -> Optional[GradientEstimate]:
    """Fit the quadratic surface and return the descent direction at
    the centre.

    Needs at least six well-placed sample points (centre + five
    neighbours); returns ``None`` on rank deficiency or a flat fitted
    gradient, like the linear estimator.  The returned
    :class:`GradientEstimate`'s ``coefficients`` are the *effective
    linear* coefficients at the centre ``(c0', df/dx, df/dy)`` so the
    result is drop-in compatible.
    """
    pts: List[Tuple[float, float, float]] = [(center[0], center[1], center_value)]
    pts.extend((p[0], p[1], v) for p, v in neighbors)
    m = len(pts)
    if m < 6:
        return None

    # Centre the coordinates on the node: improves conditioning and makes
    # the gradient at the node simply (c1, c2).
    x0, y0 = center
    a = [[0.0] * 6 for _ in range(6)]
    b = [0.0] * 6
    for (x, y, v) in pts:
        dx = x - x0
        dy = y - y0
        row = (1.0, dx, dy, dx * dx, dx * dy, dy * dy)
        for i in range(6):
            b[i] += row[i] * v
            for j in range(i, 6):
                a[i][j] += row[i] * row[j]
    for i in range(6):
        for j in range(i):
            a[i][j] = a[j][i]
    ops = OPS_PER_SAMPLE * m + OPS_SOLVE

    w = _solve_dense(a, b)
    if w is None:
        return None
    c0, c1, c2 = w[0], w[1], w[2]
    g = math.hypot(c1, c2)
    if g < 1e-9:
        return None
    direction = (-c1 / g, -c2 / g)
    return GradientEstimate(
        direction=direction,
        coefficients=(c0, c1, c2),
        ops=ops,
        sample_count=m,
    )


def _solve_dense(
    a: List[List[float]], b: List[float], tol: float = 1e-10
) -> Optional[List[float]]:
    """Gaussian elimination with partial pivoting for a small dense system.

    Returns ``None`` on numerical singularity (scale-relative pivot test).
    """
    n = len(b)
    scale = max(abs(a[i][j]) for i in range(n) for j in range(n))
    if scale == 0.0:
        return None
    m = [row[:] + [rhs] for row, rhs in zip(a, b)]
    for col in range(n):
        pivot_row = max(range(col, n), key=lambda r: abs(m[r][col]))
        if abs(m[pivot_row][col]) < tol * scale:
            return None
        if pivot_row != col:
            m[col], m[pivot_row] = m[pivot_row], m[col]
        for r in range(col + 1, n):
            f = m[r][col] / m[col][col]
            for c in range(col, n + 1):
                m[r][c] -= f * m[col][c]
    x = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = m[row][n]
        for c in range(row + 1, n):
            acc -= m[row][c] * x[c]
        x[row] = acc / m[row][row]
    return x
