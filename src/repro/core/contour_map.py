"""The multi-level contour map assembled at the sink (Section 3.4).

Levels are reconstructed independently and then nested: "the sink
initially builds isolines of the lowest isolevel, and the isolines of
isolevel v_L restrict the boundaries for all contour regions above ...
only the area inside the boundary is kept".  Point classification
implements that recursion directly: walk the levels in ascending order
and stop at the first level whose region does not contain the point;
the band index is the number of levels passed.

Levels with no surviving reports need disambiguation -- the field either
never reaches that level (empty region) or lies entirely above it (full
region).  If any report exists at a *higher* isolevel, the field provably
exceeds this level somewhere, so the region is the whole field;
otherwise the sink falls back to its own locally sensed value (the sink
is a sensor too).
"""

from __future__ import annotations

import time

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.reconstruction import (
    LevelRegion,
    ReconstructionCache,
    build_level_region,
)
from repro.core.reports import IsolineReport
from repro.geometry import BoundingBox, Vec
from repro.geometry.simplify import simplify_isolines


@dataclass
class ContourMap:
    """A reconstructed contour map over ``bounds``.

    Attributes:
        bounds: the field extent.
        levels: queried isolevels, ascending.
        regions: per-isolevel reconstruction (absent for empty levels).
        full_levels: isolevels whose region was inferred to be the whole
            field (no reports, but higher-level evidence or the sink's own
            reading says the field exceeds the level everywhere reports
            could have come from).
        simplify_tolerance: when > 0, :meth:`isolines` returns
            tolerance-bounded simplifications of the reconstructed
            polylines (topology-guarded, see
            :func:`repro.geometry.simplify.simplify_isolines`) instead
            of the dense originals.  Classification is unaffected -- the
            regions themselves are not simplified.
    """

    bounds: BoundingBox
    levels: List[float]
    regions: Dict[float, LevelRegion] = field(default_factory=dict)
    full_levels: List[float] = field(default_factory=list)
    simplify_tolerance: float = 0.0

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def level_contains(self, level: float, p: Vec) -> bool:
        """Membership of ``p`` in the (possibly inferred) region of ``level``."""
        if level in self.full_levels:
            return True
        region = self.regions.get(level)
        if region is None:
            return False
        return region.contains(p)

    def band_at(self, p: Vec) -> int:
        """The band index of ``p``: how many nested level regions hold it."""
        band = 0
        for level in self.levels:
            if self.level_contains(level, p):
                band += 1
            else:
                break
        return band

    def classify_points(self, points: Sequence[Vec]) -> np.ndarray:
        """Vectorised band classification of many points.

        Implements the same nested recursion as :meth:`band_at` but one
        level at a time over the whole point set, using the vectorised
        region membership.
        """
        pts = np.asarray(points, dtype=float)
        band = np.zeros(len(pts), dtype=int)
        active = np.ones(len(pts), dtype=bool)
        for level in self.levels:
            if not active.any():
                break
            if level in self.full_levels:
                band[active] += 1
                continue
            region = self.regions.get(level)
            if region is None:
                break
            inside = np.zeros(len(pts), dtype=bool)
            idx = np.nonzero(active)[0]
            inside[idx] = region.contains_many(pts[idx])
            band[inside] += 1
            active &= inside
        return band

    def classify_raster(self, nx: int, ny: int) -> np.ndarray:
        """Band raster of shape ``(ny, nx)`` over the bounds (cell centres)."""
        pts = self.bounds.sample_grid(nx, ny)
        return self.classify_points(pts).reshape(ny, nx)

    # ------------------------------------------------------------------
    # Geometry accessors
    # ------------------------------------------------------------------

    def isolines(self, level: float, regulated: bool = True) -> List[List[Vec]]:
        """Estimated isoline polylines at one level (empty if no region).

        With a positive :attr:`simplify_tolerance` the polylines are
        simplified to that Hausdorff tolerance before being returned.
        """
        region = self.regions.get(level)
        if region is None:
            return []
        lines = region.isoline_polylines(regulated=regulated)
        if self.simplify_tolerance > 0.0:
            lines = simplify_isolines(lines, self.simplify_tolerance)
        return lines

    def report_count(self) -> int:
        """Total reports used across all levels (after dedup)."""
        return sum(len(r.reports) for r in self.regions.values())


def build_contour_map(
    reports: Sequence[IsolineReport],
    levels: Sequence[float],
    bounds: BoundingBox,
    sink_value: Optional[float] = None,
    regulate: bool = True,
    simplify_tolerance: float = 0.0,
) -> ContourMap:
    """Assemble the full map from delivered reports.

    Args:
        reports: reports that reached the sink (post filtering).
        levels: the queried isolevels.
        bounds: field extent.
        sink_value: the sink's own sensed value, used to disambiguate
            all-empty levels (see module docstring).
        regulate: apply Rules 1-2 to each level's boundary.
        simplify_tolerance: forwarded to :attr:`ContourMap.simplify_tolerance`.
    """
    levels = sorted(levels)
    by_level: Dict[float, List[IsolineReport]] = {v: [] for v in levels}
    for r in reports:
        if r.isolevel in by_level:
            by_level[r.isolevel].append(r)

    cmap = ContourMap(
        bounds=bounds, levels=list(levels), simplify_tolerance=simplify_tolerance
    )
    for i, v in enumerate(levels):
        if by_level[v]:
            cmap.regions[v] = build_level_region(
                v, by_level[v], bounds, regulate=regulate
            )
        else:
            higher_evidence = any(by_level[w] for w in levels[i + 1 :])
            sink_above = sink_value is not None and sink_value >= v
            if higher_evidence or sink_above:
                cmap.full_levels.append(v)
            # else: empty region -- the level is simply absent.
    return cmap


class SinkReconstructor:
    """Stateful multi-level map assembly across monitoring epochs.

    Drop-in incremental counterpart of :func:`build_contour_map`: one
    :class:`~repro.core.reconstruction.ReconstructionCache` per queried
    isolevel, the same per-level grouping, and the same empty-level
    inference (full vs. absent), so :meth:`reconstruct` returns a map
    bit-identical to a from-scratch build of the same reports -- the
    differential tests pin this across drift and storm epoch sequences.

    Level membership is part of the per-level diff: reports are grouped
    by their *current* isolevel each epoch, so a source whose value
    crosses to a different level simply stops appearing in the old
    level's group and is evicted there as a retraction-like removal
    (and a level whose group empties entirely has its cache reset).
    A source can therefore never leave a stale cell behind on a level
    it no longer belongs to.
    """

    def __init__(
        self,
        levels: Sequence[float],
        bounds: BoundingBox,
        regulate: bool = True,
        full_rebuild_threshold: float = 0.35,
        simplify_tolerance: float = 0.0,
    ):
        self.levels = sorted(levels)
        self.bounds = bounds
        self.regulate = regulate
        self.simplify_tolerance = simplify_tolerance
        self._caches: Dict[float, ReconstructionCache] = {
            v: ReconstructionCache(
                v,
                bounds,
                regulate=regulate,
                full_rebuild_threshold=full_rebuild_threshold,
            )
            for v in self.levels
        }
        #: Wall-clock seconds of the most recent :meth:`reconstruct`.
        self.last_seconds: float = 0.0
        self.last_cells_total: int = 0
        self.last_cells_recomputed: int = 0
        self.last_full_rebuilds: int = 0

    def cache(self, level: float) -> ReconstructionCache:
        """The per-level cache (for stats inspection and tests)."""
        return self._caches[level]

    def last_dirty_fraction(self) -> float:
        """Recomputed-cell share of the last epoch (1.0 when nothing ran)."""
        if self.last_cells_total == 0:
            return 1.0
        return self.last_cells_recomputed / self.last_cells_total

    def reconstruct(
        self,
        reports: Sequence[IsolineReport],
        sink_value: Optional[float] = None,
    ) -> ContourMap:
        """Assemble the epoch's map, reusing retained per-level geometry.

        Takes the sink's *complete* current report cache (same contract
        as :func:`build_contour_map`); the per-level caches derive the
        epoch deltas themselves.
        """
        t0 = time.perf_counter()
        by_level: Dict[float, List[IsolineReport]] = {v: [] for v in self.levels}
        for r in reports:
            if r.isolevel in by_level:
                by_level[r.isolevel].append(r)

        cmap = ContourMap(
            bounds=self.bounds,
            levels=list(self.levels),
            simplify_tolerance=self.simplify_tolerance,
        )
        cells_total = 0
        cells_recomputed = 0
        full_rebuilds = 0
        for i, v in enumerate(self.levels):
            cache = self._caches[v]
            if by_level[v]:
                cmap.regions[v] = cache.update(by_level[v])
                cells_total += cache.stats.last_cells_total
                cells_recomputed += cache.stats.last_cells_recomputed
                full_rebuilds += int(cache.stats.last_full_rebuild)
            else:
                # The level emptied: retained cells would be stale, and a
                # later non-empty epoch must rebuild from scratch.
                cache.reset()
                higher_evidence = any(
                    by_level[w] for w in self.levels[i + 1 :]
                )
                sink_above = sink_value is not None and sink_value >= v
                if higher_evidence or sink_above:
                    cmap.full_levels.append(v)
        self.last_seconds = time.perf_counter() - t0
        self.last_cells_total = cells_total
        self.last_cells_recomputed = cells_recomputed
        self.last_full_rebuilds = full_rebuilds
        return cmap
